//! Analysis walkthrough: preflight a catalog workload's task graph, race-check a real
//! execution trace with vector clocks, and exhaustively model-check the coherence protocol.
//!
//! Run with `cargo run --release --example analyze_workload`.

use tis_analyze::{detect_races, model_check_protocol, GraphSpec};
use tis_bench::{Harness, Platform};
use tis_workloads::paper_catalog;

fn main() {
    // 1. Static preflight: prove the graph is acyclic, reference-clean, and that every
    //    pair of conflicting tasks is covered by an edge, a barrier, or a dependence chain.
    let catalog = paper_catalog();
    let workload = catalog
        .iter()
        .filter(|w| w.program.reference_graph().edge_count() > 0)
        .min_by_key(|w| w.program.task_count())
        .expect("the catalog has dependence-carrying workloads");
    let analysis = tis_analyze::analyze_program(&workload.program).expect("catalog graphs are sound");
    println!(
        "{}: {} tasks, {} edges, {} conflicting pairs \
         ({} covered by an edge, {} by a barrier, {} transitively)",
        workload.label(),
        analysis.tasks,
        analysis.edges,
        analysis.conflict_pairs,
        analysis.covered_by_edge,
        analysis.covered_by_phase,
        analysis.covered_transitively,
    );

    // 2. Dynamic race check: run the workload on every platform and prove each trace
    //    orders every conflicting pair by happens-before (wake edges, program order,
    //    and taskwait barriers).
    let harness = Harness::default();
    let spec = GraphSpec::from_program(&workload.program);
    for platform in Platform::ALL {
        let report = harness.run(platform, &workload.program).expect("simulation completes");
        let races = detect_races(&spec, &report.records);
        assert!(races.is_race_free(), "{:?} raced: {:?}", platform, races.races);
        println!(
            "{}: race-free ({} conflicting pairs proven ordered)",
            platform.label(),
            races.pairs_checked
        );
    }

    // 3. Protocol model check: enumerate every reachable global MESI/directory state for
    //    one cache line and prove SWMR and directory precision in all of them.
    let cores = harness.cores();
    let report = model_check_protocol(cores).expect("the protocol keeps its invariants");
    println!(
        "protocol model check at {cores} cores: {} reachable states, {} transitions, \
         {}/8 reachable (DirState, DirOp) pairs exercised",
        report.states_explored,
        report.transitions,
        report.dir_pairs_covered(),
    );
    assert!(report.full_reachable_dir_coverage());
    println!("SWMR and directory precision hold in every reachable state");
}
