//! Demonstrate the deadlock-avoidance property of the non-blocking instructions
//! (paper Section IV-C).
//!
//! A single thread both submits and executes tasks. The Picos task memory is made artificially
//! tiny, so submissions start failing as soon as a few tasks are in flight. Because the
//! submission instructions are non-blocking, the thread simply switches to executing ready tasks
//! and the program completes; with blocking instructions it would stall forever in Deadlock
//! Scenario 1 of the paper.
//!
//! Run with `cargo run -p tis-bench --release --example deadlock_avoidance`.

use tis_core::{PhentosConfig, Phentos, TisConfig, TisFabric};
use tis_machine::{run_machine, MachineConfig};
use tis_picos::{PicosConfig, TrackerConfig};
use tis_taskmodel::{Dependence, Payload, ProgramBuilder};

fn main() {
    // 64 independent tasks, but the hardware can only track 3 at a time.
    let mut b = ProgramBuilder::new("deadlock-avoidance");
    for i in 0..64u64 {
        b.spawn(Payload::compute(5_000), vec![Dependence::write(0x7000_0000 + i * 64)]);
    }
    b.taskwait();
    let program = b.build();

    let machine = MachineConfig::rocket_with_cores(1); // one thread: producer AND consumer
    let tis = TisConfig {
        picos: PicosConfig {
            tracker: TrackerConfig { task_memory_entries: 3, address_table_entries: 64 },
            ..PicosConfig::default()
        },
        ..TisConfig::default()
    };

    let mut runtime = Phentos::new(&program, machine.cores, PhentosConfig::default());
    let mut fabric = TisFabric::new(machine.cores, tis);
    let report = run_machine(&machine, &mut runtime, &mut fabric).expect("non-blocking instructions avoid the deadlock");
    report.validate_against(&program).expect("schedule is valid");

    let stats = &report.fabric_stats;
    println!("tasks retired:            {}", report.tasks_retired);
    println!("submission failures seen: {}", stats.submission_failures);
    println!("fetch failures seen:      {}", stats.fetch_failures);
    println!("total cycles:             {}", report.total_cycles);
    println!();
    println!("Every submission failure was handled by the runtime picking up a ready task instead");
    println!("of blocking — the exact scenario Section IV-C designs the ISA around.");
    assert!(stats.submission_failures > 0, "the tiny task memory must have caused rejections");
}
