//! Compare the three runtimes of Figure 9 on the blackscholes benchmark, across block sizes.
//!
//! This is the paper's motivating scenario: the finer the tasks, the more the software runtime's
//! scheduling overhead eats into the speedup, while the tightly-integrated Phentos keeps scaling.
//!
//! Run with `cargo run -p tis-bench --release --example blackscholes_compare`.

use tis_bench::{evaluate_workload, Harness, Platform};
use tis_workloads::blackscholes::blackscholes;
use tis_workloads::WorkloadInstance;

fn main() {
    let harness = Harness::paper_prototype();
    println!("blackscholes, 16K options, 8 cores: speedup over serial execution");
    println!("{:>10} | {:>10} | {:>10} | {:>10}", "block", "Nanos-SW", "Nanos-RV", "Phentos");
    println!("{}", "-".repeat(50));
    for block in [8usize, 16, 32, 64, 128, 256] {
        let w = WorkloadInstance {
            benchmark: "blackscholes",
            input: format!("16K B{block}"),
            program: blackscholes(16 * 1024, block),
        };
        let r = evaluate_workload(&harness, &w, &Platform::FIGURE9);
        println!(
            "{:>10} | {:>10.2} | {:>10.2} | {:>10.2}",
            format!("B{block}"),
            r.speedup(Platform::NanosSw).unwrap(),
            r.speedup(Platform::NanosRv).unwrap(),
            r.speedup(Platform::Phentos).unwrap()
        );
    }
    println!();
    println!("Smaller blocks mean finer tasks: the software runtime collapses first, Nanos-RV");
    println!("holds on longer, and Phentos keeps most of the parallel speedup — the behaviour");
    println!("Figure 9 of the paper reports.");
}
