//! Quickstart for the observability layer (`tis-obs`): observe one sweep cell end to end.
//!
//! The example runs a small dependence-dense sweep twice — once observed, once not — and
//! walks through everything the observed run produced:
//!
//! * the per-cell critical-path table, attributing every makespan cycle to task bodies,
//!   memory stalls, dispatch waits, or scheduler overhead (machine-checked to sum exactly);
//! * the `TRACE_*.json` Chrome trace-event documents — set `TIS_BENCH_JSON=out` and load
//!   them in <https://ui.perfetto.dev> to see per-core tracks and counter timelines;
//! * the `METRICS_*.json` cycle-bucketed gauge timelines.
//!
//! It then proves, by byte comparison, that the unobserved sweep's artifact is identical to
//! one produced with observability compiled in but switched off — the zero-cost-when-off
//! property CI re-checks on every push. A mismatch panics (non-zero exit).
//!
//! Run with `cargo run --release --example trace_explorer`
//! (add `TIS_BENCH_JSON=out` to keep the trace/metrics files).

use tis::exp::{ObsConfig, Sweep, SynthFamily, SynthSpec, WorkloadSpec};
use tis::bench::Platform;
use tis::obs::PathCategory;

fn sweep() -> Sweep {
    Sweep::new("trace-explorer")
        .over_cores([8])
        .over_platforms([Platform::Phentos, Platform::NanosRv])
        .with_workload(WorkloadSpec::synth(SynthSpec {
            family: SynthFamily::ErdosRenyi { density: 0.1 },
            tasks: 96,
            task_cycles: 8_000,
            jitter: 0.25,
        }))
}

fn main() {
    let observed = sweep().with_obs(ObsConfig::full()).run();

    print!("{}", observed.render_table());
    println!();
    for (i, cell) in observed.cells.iter().enumerate() {
        let obs = cell.obs.as_ref().expect("every cell of a with_obs sweep is observed");
        println!(
            "cell {i}: {} on {} — {} task events, {} samples",
            cell.workload, cell.platform.key(), obs.task_events, obs.samples
        );
        print!("{}", obs.critical.render_table());
        println!(
            "  critical-path tasks: {:?} (scheduler share {:.1}%)",
            obs.critical.tasks(),
            100.0 * obs.critical.fraction(PathCategory::Scheduler)
        );
        println!();
    }

    match observed.write_obs_artifacts_if_requested() {
        Ok(paths) if paths.is_empty() => {
            println!("set TIS_BENCH_JSON=<dir> to keep the TRACE_/METRICS_ JSON files");
        }
        Ok(paths) => {
            println!("wrote {} observability artifacts:", paths.len());
            for p in &paths {
                println!("  {} (TRACE_* files load in ui.perfetto.dev)", p.display());
            }
        }
        Err(e) => panic!("could not write observability artifacts: {e}"),
    }
    println!();

    // The obs-off gate: a sweep without `with_obs` must render the exact bytes it rendered
    // before observability existed — and running it twice pins determinism on top.
    let off_a = sweep().run().to_json().render();
    let off_b = sweep().run().to_json().render();
    assert_eq!(off_a, off_b, "obs-off sweep artifacts must be deterministic");
    assert!(
        !off_a.contains("obs_") && !off_a.contains("critical_path"),
        "an obs-off sweep may not emit observability keys"
    );
    // Observation must not move a single simulated cycle.
    for (plain, obs) in sweep().run().cells.iter().zip(&observed.cells) {
        assert_eq!(
            plain.total_cycles, obs.total_cycles,
            "{} on {}: observing the cell changed its makespan",
            plain.workload,
            plain.platform.key()
        );
    }
    println!("obs-off byte-identity and obs-on cycle-identity checks passed");
}
