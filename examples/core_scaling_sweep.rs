//! Quickstart for the `tis-exp` experiment engine: define a declarative sweep over core count
//! and platform, run it on host threads, and read the grid back.
//!
//! This is a scaled-down sibling of the `sweep_core_scaling` bench target (which runs the full
//! 2→64-core grid and writes `BENCH_sweep_core-scaling.json`); it finishes in a few seconds.
//!
//! Run with `cargo run --release --example core_scaling_sweep`.

use tis::bench::Platform;
use tis::exp::{run_sweep_with_workers, Sweep, SynthFamily, SynthSpec, WorkloadSpec};

fn main() {
    // Three workload families: one paper-catalog entry (instantiated with core-count context,
    // so bigger machines get proportionally more blocks) and two synthetic graph families.
    let sweep = Sweep::new("quickstart")
        .over_cores([2, 8, 16])
        .over_platforms([Platform::Phentos, Platform::NanosRv])
        .with_workload(WorkloadSpec::catalog("blackscholes", "4K B64"))
        .with_workload(WorkloadSpec::synth(SynthSpec::uniform(
            SynthFamily::Diamond { width: 12 },
            140,
            15_000,
        )))
        .with_workload(WorkloadSpec::synth(SynthSpec {
            family: SynthFamily::ErdosRenyi { density: 0.05 },
            tasks: 128,
            task_cycles: 10_000,
            jitter: 0.25,
        }));

    // Independent, fully deterministic cells fan out across host threads; the report is
    // bit-identical for any worker count.
    let workers = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let report = run_sweep_with_workers(&sweep, workers);

    print!("{}", report.render_table());
    println!();
    let violations = report.bound_violations().len();
    if violations == 0 {
        println!("Every measured speedup sits below its MTT bound. The tightly-integrated");
        println!("platform keeps scaling with the machine; the software-heavy runtime saturates");
        println!("at the scheduler's task throughput — the paper's §VII story, quantified.");
    } else {
        println!("{violations} cell(s) EXCEED their MTT bound — a cost-model inconsistency;");
        println!("see the 'within' column above.");
        std::process::exit(1);
    }
}
