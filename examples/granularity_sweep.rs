//! Sweep the task granularity of a uniform synthetic workload and watch each platform's speedup
//! approach (or fail to approach) the MTT-derived bound — the story of Figures 6, 8 and 10.
//!
//! Run with `cargo run -p tis-bench --release --example granularity_sweep`.

use tis_bench::{measure_lifetime_overhead, Harness, Platform};
use tis_machine::mtt_speedup_bound;
use tis_workloads::microbench::uniform_tasks;
use tis_workloads::task_chain;

fn main() {
    let harness = Harness::paper_prototype();
    let cores = harness.cores();
    let chain = task_chain(100, 1);

    println!("uniform independent tasks, 8 cores: measured speedup (and MTT bound) per platform");
    println!(
        "{:>12} | {:>22} | {:>22} | {:>22}",
        "task cycles", "Phentos", "Nanos-RV", "Nanos-SW"
    );
    println!("{}", "-".repeat(88));
    for task_cycles in [500u64, 2_000, 8_000, 32_000, 128_000, 512_000] {
        let n = (2_000_000 / task_cycles).clamp(64, 1_024) as usize;
        let program = uniform_tasks(n, task_cycles);
        let serial = harness.serial_cycles(&program);
        let mut cells = Vec::new();
        for platform in [Platform::Phentos, Platform::NanosRv, Platform::NanosSw] {
            let report = harness.run(platform, &program).expect("run completes");
            let lo = measure_lifetime_overhead(&harness, platform, &chain);
            let bound = mtt_speedup_bound(task_cycles as f64, lo, cores);
            cells.push(format!("{:>6.2}x (bound {:>5.2})", report.speedup_over(serial), bound));
        }
        println!("{:>12} | {:>22} | {:>22} | {:>22}", task_cycles, cells[0], cells[1], cells[2]);
    }
    println!();
    println!("Fine tasks: only Phentos gets meaningful speedup. Coarse tasks: everyone converges,");
    println!("because scheduling overhead is amortised — the paper's third hypothesis.");
}
