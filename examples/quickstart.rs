//! Quickstart: build a small task-parallel program, run it on the tightly-integrated system
//! with the Phentos runtime, and inspect the result.
//!
//! Run with `cargo run -p tis-bench --release --example quickstart`.

use tis_core::system::TisSystem;
use tis_taskmodel::{Dependence, Payload, ProgramBuilder};

fn main() {
    // A tiny blocked pipeline: produce two blocks, combine them, then post-process the result.
    let block_a = 0x1000;
    let block_b = 0x2000;
    let result = 0x3000;

    let mut program = ProgramBuilder::new("quickstart");
    program.spawn(Payload::compute(20_000), vec![Dependence::write(block_a)]);
    program.spawn(Payload::compute(20_000), vec![Dependence::write(block_b)]);
    program.spawn(
        Payload::compute(30_000),
        vec![Dependence::read(block_a), Dependence::read(block_b), Dependence::write(result)],
    );
    program.taskwait();
    program.spawn(Payload::compute(10_000), vec![Dependence::read_write(result)]);
    let program = program.build();

    let graph = program.reference_graph();
    println!("program '{}' spawns {} tasks with {} dependence edges", program.name(), program.task_count(), graph.edge_count());

    let system = TisSystem::eight_core();
    let report = system.run_phentos(&program).expect("simulation completes");
    report.validate_against(&program).expect("the schedule honours every dependence");

    println!("ran on {} cores in {} cycles using the {} fabric", report.cores, report.total_cycles, report.fabric);
    println!("speedup over serial execution: {:.2}x", report.speedup_over(system.serial_cycles(&program)));
    for rec in &report.records {
        println!("  {} ran on core {} from cycle {} to {}", rec.task, rec.core, rec.start, rec.end);
    }
}
