//! Quickstart for the fault-injection axis: run one workload fault-free, under a zero-rate
//! schedule (the fault layer engaged but silent), under the canonical recoverable schedule and
//! under a deliberately harsher storm — then show the negative path, where a dead mesh link is
//! *diagnosed* instead of hanging the machine.
//!
//! This is a scaled-down sibling of the `sweep_fault_injection` bench target (which gates the
//! zero-rate exactness and functional-identity properties in CI and writes
//! `BENCH_sweep_fault-injection.json`); it finishes in a few seconds. Every number printed here
//! replays exactly: a fault schedule is a pure function of `(seed, FaultConfig)`.
//!
//! Run with `cargo run --release --example fault_injection_sweep`.

use tis::bench::{Harness, Platform};
use tis::exp::{
    run_sweep_with_workers, FaultConfig, MemoryModel, Sweep, SynthFamily, SynthSpec, WorkloadSpec,
};
use tis::machine::EngineError;
use tis::taskmodel::{Dependence, Payload, ProgramBuilder};

fn main() {
    // Four points on the fault axis. The storm doubles the recoverable rates and tightens the
    // retry budget — still bounded-drop, so it must still complete with identical function.
    let storm = FaultConfig {
        seed: 0x0057_AB1E,
        drop_ppm: 40_000,
        delay_ppm: 100_000,
        tracker_loss_ppm: 20_000,
        max_retries: 2,
        ..FaultConfig::none()
    };
    let sweep = Sweep::new("fault-quickstart")
        .over_cores([8])
        .over_memory_models([MemoryModel::directory_mesh_contended()])
        .over_faults([FaultConfig::none(), FaultConfig::zero_rate(), FaultConfig::recoverable(), storm])
        .over_platforms([Platform::Phentos])
        .with_workload(WorkloadSpec::synth(SynthSpec {
            family: SynthFamily::ErdosRenyi { density: 0.1 },
            tasks: 128,
            task_cycles: 6_000,
            jitter: 0.25,
        }));

    let workers = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let report = run_sweep_with_workers(&sweep, workers);

    print!("{}", report.render_table());
    println!();
    println!("per-cell fault ledger (drops and losses are each recovered, and priced):");
    let clean_cycles = report.cells[0].total_cycles;
    for cell in &report.cells {
        println!(
            "  {:<58} {:>9} cyc ({:+6.2}%)  drops {:>3}  delays {:>3}  retries {:>3}  \
             tracker losses {:>2}  recovery {:>6} cyc",
            cell.fault.key(),
            cell.total_cycles,
            cell.total_cycles as f64 / clean_cycles as f64 * 100.0 - 100.0,
            cell.fault_drops,
            cell.fault_delays,
            cell.fault_retries,
            cell.fault_tracker_losses,
            cell.fault_recovery_cycles,
        );
    }
    println!();
    println!(
        "note the zero-rate row: the fault layer is fully engaged there, yet the makespan is \
         bit-identical to the fault-free row — faults cost nothing until one fires."
    );
    println!();

    // The negative path: kill every mesh link. The run must end in a precise diagnosis — which
    // link, which endpoints, how many attempts, how much work was blocked — not a hang.
    let mut b = ProgramBuilder::new("doomed");
    for i in 0..32u64 {
        b.spawn(Payload::compute(2_000), vec![Dependence::read_write(0x7000_0000 + (i % 8) * 64)]);
    }
    b.taskwait();
    let doomed = b.build();
    let err = Harness::with_cores(8)
        .with_memory_model(MemoryModel::directory_mesh_contended())
        .with_faults(FaultConfig { dead_links: u32::MAX, ..FaultConfig::none() })
        .run(Platform::Phentos, &doomed)
        .expect_err("an all-dead mesh cannot run a multi-core program");
    match &err {
        EngineError::UnrecoverableFault { .. } => println!("dead-link run diagnosed:\n  {err}"),
        other => panic!("expected an unrecoverable-fault diagnosis, got: {other}"),
    }
}
