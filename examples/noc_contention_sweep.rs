//! Quickstart for the NoC-contention axis: run the same dense workload on the same mesh with
//! ideal and contended links side by side, and read the contention penalty off the grid.
//!
//! This is a scaled-down sibling of the `sweep_noc_contention` bench target (which runs the
//! full 8→64-core grid with its scaling gates and writes
//! `BENCH_sweep_noc-contention.json`); it finishes in a few seconds.
//!
//! Run with `cargo run --release --example noc_contention_sweep`.

use tis::bench::Platform;
use tis::exp::{
    run_sweep_with_workers, LinkContention, MemoryModel, NocConfig, NocContention, Sweep,
    SynthFamily, SynthSpec, WorkloadSpec,
};

fn main() {
    // Three link models on the same directory mesh: ideal (infinite bandwidth, the PR 4
    // baseline), the default contended point (8 B/cycle links, 4-flit buffers), and a
    // deliberately starved mesh with half the bandwidth and unbuffered routers.
    let starved = MemoryModel::DirectoryMesh(NocConfig {
        contention: NocContention::Contended(LinkContention {
            link_bytes_per_cycle: 4,
            buffer_flits: 0,
            flit_bytes: 16,
        }),
        ..NocConfig::default()
    });
    let sweep = Sweep::new("noc-quickstart")
        .over_cores([8, 16])
        .over_memory_models([
            MemoryModel::directory_mesh(),
            MemoryModel::directory_mesh_contended(),
            starved,
        ])
        .over_platforms([Platform::Phentos])
        .with_workload(WorkloadSpec::synth(SynthSpec {
            family: SynthFamily::ErdosRenyi { density: 0.1 },
            tasks: 128,
            task_cycles: 6_000,
            jitter: 0.25,
        }));

    let workers = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let report = run_sweep_with_workers(&sweep, workers);

    print!("{}", report.render_table());
    println!();
    println!("per-cell NoC traffic (the contended mesh queues, the ideal one never does):");
    for cell in &report.cells {
        println!(
            "  {:>10} cores={:<2} {:<16} link wait {:>8} cyc, max link occupancy {:>4} flits",
            cell.memory.key(),
            cell.cores,
            cell.memory.noc_key(),
            cell.noc_link_wait_cycles,
            cell.max_link_occupancy,
        );
    }
    println!();

    // The headline number: how much the default contention point inflates mean memory latency
    // on a dense DAG once the machine outgrows one snoop domain.
    for &cores in &[8usize, 16] {
        let find = |model: MemoryModel| {
            report
                .cells
                .iter()
                .find(|c| c.cores == cores && c.memory == model)
                .expect("grid is complete")
        };
        let ideal = find(MemoryModel::directory_mesh());
        let contended = find(MemoryModel::directory_mesh_contended());
        println!(
            "{cores} cores: contended/ideal mean memory latency = {:.2}x",
            contended.mean_mem_latency / ideal.mean_mem_latency
        );
    }
    assert!(
        report.bound_violations().is_empty(),
        "every measured speedup must sit below its MTT bound"
    );
}
