//! Whole task-parallel programs.
//!
//! A [`TaskProgram`] is the trace of actions performed by the *main thread* of an OmpSs
//! application, in program order: spawn a task, spawn another, hit a `taskwait`, spawn more, …
//! This is exactly the information a Task Scheduling runtime consumes, and it is what the
//! workload generators in `tis-workloads` produce for each benchmark input of the paper.

use crate::dep::Dependence;
use crate::graph::DepGraph;
use crate::task::{Payload, TaskId, TaskSpec, TaskSpecError};

/// One action of the main thread, in program order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProgramOp {
    /// Spawn (submit) a task.
    Spawn(TaskSpec),
    /// Wait until every task spawned so far has retired (`#pragma omp taskwait`).
    TaskWait,
}

/// A complete task-parallel program: an ordered stream of spawns and barriers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskProgram {
    name: String,
    ops: Vec<ProgramOp>,
}

impl TaskProgram {
    /// Creates a program from raw parts. Most callers should use [`ProgramBuilder`] instead.
    pub fn from_ops(name: impl Into<String>, ops: Vec<ProgramOp>) -> Self {
        TaskProgram { name: name.into(), ops }
    }

    /// Human-readable program name (e.g. `"sparselu N32 M4"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The ordered operation stream.
    pub fn ops(&self) -> &[ProgramOp] {
        &self.ops
    }

    /// Iterates over the task specs in program (submission) order.
    pub fn tasks(&self) -> impl Iterator<Item = &TaskSpec> {
        self.ops.iter().filter_map(|op| match op {
            ProgramOp::Spawn(t) => Some(t),
            ProgramOp::TaskWait => None,
        })
    }

    /// Number of spawned tasks.
    pub fn task_count(&self) -> usize {
        self.tasks().count()
    }

    /// Number of `taskwait` barriers.
    pub fn taskwait_count(&self) -> usize {
        self.ops.iter().filter(|op| matches!(op, ProgramOp::TaskWait)).count()
    }

    /// Validates every task in the program.
    ///
    /// # Errors
    ///
    /// Returns the first [`TaskSpecError`] found, plus a synthetic duplicate-ID error mapped to
    /// [`TaskSpecError::DuplicateAddress`]-style failure is *not* produced here: duplicate task
    /// IDs are a generator bug and are reported as a panic by [`ProgramBuilder`].
    pub fn validate(&self) -> Result<(), TaskSpecError> {
        for t in self.tasks() {
            t.validate()?;
        }
        Ok(())
    }

    /// Builds the reference dependence graph (sequential-semantics ground truth) for this
    /// program. `taskwait` barriers are modelled as all-to-all orderings between the tasks before
    /// and after the barrier.
    pub fn reference_graph(&self) -> DepGraph {
        DepGraph::from_program(self)
    }

    /// Summary statistics used by the experiment harnesses (task count, granularity…).
    pub fn stats(&self, bytes_per_cycle: f64) -> ProgramStats {
        let mut total_compute = 0u64;
        let mut total_bytes = 0u64;
        let mut total_serial = 0u64;
        let mut min_serial = u64::MAX;
        let mut max_serial = 0u64;
        let mut deps = 0usize;
        let mut n = 0usize;
        for t in self.tasks() {
            let s = t.payload.serial_cycles(bytes_per_cycle);
            total_compute += t.payload.compute_cycles;
            total_bytes += t.payload.memory_bytes;
            total_serial += s;
            min_serial = min_serial.min(s);
            max_serial = max_serial.max(s);
            deps += t.dep_count();
            n += 1;
        }
        ProgramStats {
            tasks: n,
            taskwaits: self.taskwait_count(),
            total_compute_cycles: total_compute,
            total_memory_bytes: total_bytes,
            total_serial_cycles: total_serial,
            mean_task_cycles: if n == 0 { 0.0 } else { total_serial as f64 / n as f64 },
            min_task_cycles: if n == 0 { 0 } else { min_serial },
            max_task_cycles: max_serial,
            mean_deps_per_task: if n == 0 { 0.0 } else { deps as f64 / n as f64 },
        }
    }

    /// Serial-execution time of the program in cycles: every task body executed back-to-back on
    /// one core, plus `per_task_call_overhead` cycles of plain function-call overhead per task
    /// (the serial versions of the benchmarks call the task body as an ordinary function).
    pub fn serial_cycles(&self, bytes_per_cycle: f64, per_task_call_overhead: u64) -> u64 {
        self.tasks()
            .map(|t| t.payload.serial_cycles(bytes_per_cycle) + per_task_call_overhead)
            .sum()
    }
}

/// Aggregate program statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct ProgramStats {
    /// Number of spawned tasks.
    pub tasks: usize,
    /// Number of taskwait barriers.
    pub taskwaits: usize,
    /// Sum of task compute cycles.
    pub total_compute_cycles: u64,
    /// Sum of task memory bytes.
    pub total_memory_bytes: u64,
    /// Sum of serial task durations (compute + single-core memory time).
    pub total_serial_cycles: u64,
    /// Mean serial task duration — the paper's "task granularity"/"task size" axis.
    pub mean_task_cycles: f64,
    /// Smallest serial task duration.
    pub min_task_cycles: u64,
    /// Largest serial task duration.
    pub max_task_cycles: u64,
    /// Mean number of annotated dependences per task.
    pub mean_deps_per_task: f64,
}

/// Incremental builder for [`TaskProgram`]s.
///
/// The builder assigns consecutive [`TaskId`]s in spawn order — matching how every runtime in the
/// paper identifies tasks by submission order — and panics on malformed tasks so that workload
/// generator bugs surface immediately in tests.
#[derive(Debug, Clone)]
pub struct ProgramBuilder {
    name: String,
    ops: Vec<ProgramOp>,
    next_id: u64,
}

impl ProgramBuilder {
    /// Creates an empty builder for a program with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        ProgramBuilder { name: name.into(), ops: Vec::new(), next_id: 0 }
    }

    /// Spawns a task with the given payload and dependence annotations, returning its id.
    ///
    /// # Panics
    ///
    /// Panics if the task would violate the Picos descriptor constraints (more than 15
    /// dependences or a duplicated address); this is a workload-generator bug.
    pub fn spawn(&mut self, payload: Payload, deps: Vec<Dependence>) -> TaskId {
        let id = TaskId(self.next_id);
        self.next_id += 1;
        let spec = TaskSpec::new(id, payload, deps);
        if let Err(e) = spec.validate() {
            panic!("invalid task produced by workload generator: {e}");
        }
        self.ops.push(ProgramOp::Spawn(spec));
        id
    }

    /// Inserts a `taskwait` barrier.
    pub fn taskwait(&mut self) {
        self.ops.push(ProgramOp::TaskWait);
    }

    /// Number of tasks spawned so far.
    pub fn spawned(&self) -> usize {
        self.next_id as usize
    }

    /// Finalises the program.
    pub fn build(self) -> TaskProgram {
        TaskProgram { name: self.name, ops: self.ops }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dep::{Dependence, Direction};

    fn small_program() -> TaskProgram {
        let mut b = ProgramBuilder::new("unit");
        b.spawn(Payload::compute(100), vec![Dependence::write(0x10)]);
        b.spawn(Payload::compute(200), vec![Dependence::read(0x10)]);
        b.taskwait();
        b.spawn(Payload::new(300, 64), vec![]);
        b.build()
    }

    #[test]
    fn builder_assigns_sequential_ids() {
        let p = small_program();
        let ids: Vec<u64> = p.tasks().map(|t| t.id.raw()).collect();
        assert_eq!(ids, vec![0, 1, 2]);
        assert_eq!(p.task_count(), 3);
        assert_eq!(p.taskwait_count(), 1);
        assert_eq!(p.name(), "unit");
    }

    #[test]
    fn stats_aggregation() {
        let p = small_program();
        let s = p.stats(8.0);
        assert_eq!(s.tasks, 3);
        assert_eq!(s.taskwaits, 1);
        assert_eq!(s.total_compute_cycles, 600);
        assert_eq!(s.total_memory_bytes, 64);
        assert_eq!(s.total_serial_cycles, 100 + 200 + 308);
        assert_eq!(s.min_task_cycles, 100);
        assert_eq!(s.max_task_cycles, 308);
        assert!((s.mean_deps_per_task - (2.0 / 3.0)).abs() < 1e-12);
    }

    #[test]
    fn serial_cycles_includes_call_overhead() {
        let p = small_program();
        assert_eq!(p.serial_cycles(8.0, 0), 608);
        assert_eq!(p.serial_cycles(8.0, 10), 638);
    }

    #[test]
    fn empty_program_stats() {
        let p = ProgramBuilder::new("empty").build();
        let s = p.stats(8.0);
        assert_eq!(s.tasks, 0);
        assert_eq!(s.mean_task_cycles, 0.0);
        assert_eq!(s.min_task_cycles, 0);
        assert_eq!(p.serial_cycles(8.0, 7), 0);
        assert!(p.validate().is_ok());
    }

    #[test]
    #[should_panic(expected = "invalid task")]
    fn builder_panics_on_invalid_task() {
        let mut b = ProgramBuilder::new("bad");
        let deps: Vec<_> = (0..16u64).map(|i| Dependence::new(i * 8, Direction::In)).collect();
        b.spawn(Payload::empty(), deps);
    }

    #[test]
    fn from_ops_preserves_order() {
        let spec = TaskSpec::new(0u64, Payload::compute(1), vec![]);
        let p = TaskProgram::from_ops("manual", vec![ProgramOp::Spawn(spec), ProgramOp::TaskWait]);
        assert_eq!(p.ops().len(), 2);
        assert!(matches!(p.ops()[1], ProgramOp::TaskWait));
        assert!(p.validate().is_ok());
    }
}
