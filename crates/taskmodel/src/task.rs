//! Task descriptors.
//!
//! A [`TaskSpec`] is what an application hands to a runtime when it spawns a task: an identifier,
//! the list of annotated pointer parameters ([`Dependence`]s), and an abstract *payload*
//! describing how much work the task body performs. Payloads are abstract because the paper's
//! evaluation depends only on task *granularity* (execution cycles) and memory intensity, not on
//! the actual arithmetic the task performs.

use crate::dep::Dependence;

/// Maximum number of annotated dependences per task supported by Picos.
///
/// Figure 3 of the paper: a task descriptor always occupies 48 32-bit packets — a 3-packet header
/// plus 15 dependence slots of 3 packets each — so a task may carry at most 15 dependences.
pub const MAX_DEPENDENCES: usize = 15;

/// Identifier of a task within one program.
///
/// This is the "SW ID" of the paper: the value the runtime hands to Picos at submission time and
/// receives back from `Fetch SW ID` when the task becomes ready.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct TaskId(pub u64);

impl TaskId {
    /// Returns the raw identifier value.
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl core::fmt::Display for TaskId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "T{}", self.0)
    }
}

impl From<u64> for TaskId {
    fn from(v: u64) -> Self {
        TaskId(v)
    }
}

/// Abstract description of the work performed by a task body.
///
/// * `compute_cycles` — cycles the task spends executing instructions whose operands hit in the
///   private L1 (or in registers);
/// * `memory_bytes` — bytes the task moves to/from DRAM. These are charged against the machine's
///   shared memory bandwidth, so memory-bound workloads (the stream benchmarks) stop scaling
///   before the compute-bound ones, as observed in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Payload {
    /// Cycles of core-private computation.
    pub compute_cycles: u64,
    /// Bytes transferred to/from main memory by the task body.
    pub memory_bytes: u64,
}

impl Payload {
    /// A purely compute-bound payload.
    pub fn compute(cycles: u64) -> Self {
        Payload { compute_cycles: cycles, memory_bytes: 0 }
    }

    /// A payload with both a compute and a memory component.
    pub fn new(compute_cycles: u64, memory_bytes: u64) -> Self {
        Payload { compute_cycles, memory_bytes }
    }

    /// An empty payload, used by the Task-Free / Task-Chain overhead microbenchmarks, whose
    /// tasks do nothing so that the measured per-task cost is pure scheduling overhead.
    pub fn empty() -> Self {
        Payload::default()
    }

    /// Whether the payload performs no work at all.
    pub fn is_empty(&self) -> bool {
        self.compute_cycles == 0 && self.memory_bytes == 0
    }

    /// A lower bound on the task's serial execution time in cycles, assuming the machine can
    /// stream `bytes_per_cycle` bytes from DRAM when a single core is active.
    pub fn serial_cycles(&self, bytes_per_cycle: f64) -> u64 {
        let mem = if self.memory_bytes == 0 {
            0.0
        } else {
            self.memory_bytes as f64 / bytes_per_cycle.max(f64::MIN_POSITIVE)
        };
        self.compute_cycles + mem.ceil() as u64
    }
}

/// Errors produced when validating a [`TaskSpec`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TaskSpecError {
    /// The task declares more dependences than Picos can encode (more than
    /// [`MAX_DEPENDENCES`]).
    TooManyDependences {
        /// Identifier of the offending task.
        task: TaskId,
        /// Number of dependences the task declared.
        count: usize,
    },
    /// The task declares the same address twice.
    ///
    /// OmpSs collapses repeated annotations on the same address into the strongest direction;
    /// our generators are expected to do that collapsing themselves, so a duplicate reaching the
    /// model indicates a workload bug.
    DuplicateAddress {
        /// Identifier of the offending task.
        task: TaskId,
        /// The duplicated address.
        addr: u64,
    },
}

impl core::fmt::Display for TaskSpecError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            TaskSpecError::TooManyDependences { task, count } => write!(
                f,
                "task {task} declares {count} dependences, more than the Picos limit of {MAX_DEPENDENCES}"
            ),
            TaskSpecError::DuplicateAddress { task, addr } => {
                write!(f, "task {task} annotates address 0x{addr:x} more than once")
            }
        }
    }
}

impl std::error::Error for TaskSpecError {}

/// A task as spawned by an application.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskSpec {
    /// Program-unique identifier (the SW ID handed to the scheduler).
    pub id: TaskId,
    /// Annotated pointer parameters.
    pub deps: Vec<Dependence>,
    /// Abstract work performed by the task body.
    pub payload: Payload,
}

impl TaskSpec {
    /// Creates a task descriptor.
    pub fn new(id: impl Into<TaskId>, payload: Payload, deps: Vec<Dependence>) -> Self {
        TaskSpec { id: id.into(), deps, payload }
    }

    /// Number of annotated dependences.
    pub fn dep_count(&self) -> usize {
        self.deps.len()
    }

    /// Validates the descriptor against the constraints of the Picos encoding.
    ///
    /// # Errors
    ///
    /// Returns [`TaskSpecError::TooManyDependences`] if more than [`MAX_DEPENDENCES`] addresses
    /// are annotated and [`TaskSpecError::DuplicateAddress`] if an address appears twice.
    pub fn validate(&self) -> Result<(), TaskSpecError> {
        if self.deps.len() > MAX_DEPENDENCES {
            return Err(TaskSpecError::TooManyDependences { task: self.id, count: self.deps.len() });
        }
        for (i, d) in self.deps.iter().enumerate() {
            if self.deps[..i].iter().any(|prev| prev.addr == d.addr) {
                return Err(TaskSpecError::DuplicateAddress { task: self.id, addr: d.addr });
            }
        }
        Ok(())
    }

    /// Number of non-zero 32-bit submission packets needed to describe this task (paper
    /// Figure 3): a 3-packet header plus 3 packets per dependence.
    pub fn nonzero_packet_count(&self) -> usize {
        3 + 3 * self.deps.len()
    }

    /// Number of trailing zero packets Picos Manager must append so that Picos receives the full
    /// 48-packet descriptor (paper Figure 3).
    pub fn zero_packet_count(&self) -> usize {
        48 - self.nonzero_packet_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dep::{Dependence, Direction};

    fn dep(addr: u64) -> Dependence {
        Dependence::new(addr, Direction::InOut)
    }

    #[test]
    fn task_id_display_and_conversion() {
        let id: TaskId = 7u64.into();
        assert_eq!(id.to_string(), "T7");
        assert_eq!(id.raw(), 7);
    }

    #[test]
    fn payload_serial_cycles() {
        assert_eq!(Payload::compute(100).serial_cycles(8.0), 100);
        assert_eq!(Payload::new(100, 80).serial_cycles(8.0), 110);
        assert!(Payload::empty().is_empty());
        assert_eq!(Payload::empty().serial_cycles(8.0), 0);
    }

    #[test]
    fn packet_counts_match_figure_3() {
        // A task with N dependences needs 3 + 3N non-zero packets and 48 total.
        for n in 0..=MAX_DEPENDENCES {
            let t = TaskSpec::new(1u64, Payload::empty(), (0..n as u64).map(|i| dep(0x1000 + i * 8)).collect());
            assert_eq!(t.nonzero_packet_count(), 3 + 3 * n);
            assert_eq!(t.nonzero_packet_count() + t.zero_packet_count(), 48);
            assert!(t.validate().is_ok());
        }
    }

    #[test]
    fn too_many_dependences_rejected() {
        let t = TaskSpec::new(
            9u64,
            Payload::empty(),
            (0..16u64).map(|i| dep(0x2000 + i * 8)).collect(),
        );
        match t.validate() {
            Err(TaskSpecError::TooManyDependences { task, count }) => {
                assert_eq!(task, TaskId(9));
                assert_eq!(count, 16);
            }
            other => panic!("expected TooManyDependences, got {other:?}"),
        }
    }

    #[test]
    fn duplicate_address_rejected() {
        let t = TaskSpec::new(3u64, Payload::empty(), vec![dep(0x10), dep(0x20), dep(0x10)]);
        let err = t.validate().unwrap_err();
        assert_eq!(err, TaskSpecError::DuplicateAddress { task: TaskId(3), addr: 0x10 });
        assert!(err.to_string().contains("0x10"));
    }

    #[test]
    fn error_messages_are_informative() {
        let t = TaskSpec::new(1u64, Payload::empty(), (0..16u64).map(|i| dep(i * 8)).collect());
        let msg = t.validate().unwrap_err().to_string();
        assert!(msg.contains("16"));
        assert!(msg.contains("15"));
    }
}
