//! Reference dependence graph and execution validation.
//!
//! Every scheduler in this workspace — the Picos hardware model, the Nanos-SW software
//! dependence domain and the Phentos/Nanos-RV paths through the RoCC fabric — must agree with
//! the *sequential semantics* definition of task dependences (Section III-A of the paper).
//! [`DepGraph::from_program`] computes that ground truth directly from program order and the
//! RAW/WAW/WAR rules, and [`ExecutionValidator`] checks that a simulated execution honoured it.
//! These two types are the backbone of the workspace's correctness tests.

use std::collections::HashMap;

use crate::dep::DepAddr;
use crate::program::{ProgramOp, TaskProgram};
use crate::task::TaskId;

/// Sequential-semantics dependence graph of a [`TaskProgram`].
///
/// Nodes are tasks (indexed by their [`TaskId`], which the [`crate::ProgramBuilder`] assigns
/// densely in spawn order); edges point from a task to the later tasks that must wait for it.
/// `taskwait` barriers are recorded as *phases* rather than as edges: a task spawned after the
/// k-th barrier belongs to phase k and may not start before every task of earlier phases has
/// finished (because the main thread cannot even spawn it until then).
#[derive(Debug, Clone)]
pub struct DepGraph {
    successors: Vec<Vec<usize>>,
    predecessor_count: Vec<usize>,
    phase: Vec<usize>,
    edge_count: usize,
}

impl DepGraph {
    /// Builds the reference graph for a program.
    ///
    /// # Panics
    ///
    /// Panics if task ids are not dense (0..n in spawn order); the [`crate::ProgramBuilder`]
    /// guarantees density, so a violation indicates a hand-built, inconsistent program.
    pub fn from_program(program: &TaskProgram) -> Self {
        let n = program.task_count();
        let mut successors: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut predecessor_count = vec![0usize; n];
        let mut phase = vec![0usize; n];
        let mut edge_count = 0usize;

        // Per-address tracking of the last writer and of the readers that arrived after it.
        #[derive(Default)]
        struct AddrState {
            last_writer: Option<usize>,
            readers_since_write: Vec<usize>,
        }
        let mut addr_state: HashMap<DepAddr, AddrState> = HashMap::new();
        let mut current_phase = 0usize;
        let mut next_index = 0usize;

        let add_edge = |from: usize,
                            to: usize,
                            successors: &mut Vec<Vec<usize>>,
                            predecessor_count: &mut Vec<usize>,
                            edge_count: &mut usize| {
            debug_assert!(from < to, "dependence edges always point forward in program order");
            if !successors[from].contains(&to) {
                successors[from].push(to);
                predecessor_count[to] += 1;
                *edge_count += 1;
            }
        };

        for op in program.ops() {
            match op {
                ProgramOp::TaskWait => current_phase += 1,
                ProgramOp::Spawn(spec) => {
                    let idx = spec.id.raw() as usize;
                    assert_eq!(
                        idx, next_index,
                        "task ids must be dense and in spawn order (got {idx}, expected {next_index})"
                    );
                    next_index += 1;
                    phase[idx] = current_phase;
                    for dep in &spec.deps {
                        let st = addr_state.entry(dep.addr).or_default();
                        if dep.dir.reads() {
                            if let Some(w) = st.last_writer {
                                add_edge(w, idx, &mut successors, &mut predecessor_count, &mut edge_count);
                            }
                        }
                        if dep.dir.writes() {
                            if let Some(w) = st.last_writer {
                                add_edge(w, idx, &mut successors, &mut predecessor_count, &mut edge_count);
                            }
                            for &r in &st.readers_since_write {
                                if r != idx {
                                    add_edge(r, idx, &mut successors, &mut predecessor_count, &mut edge_count);
                                }
                            }
                        }
                        // Update the address state *after* computing edges against the past.
                        if dep.dir.writes() {
                            st.last_writer = Some(idx);
                            st.readers_since_write.clear();
                            if dep.dir.reads() {
                                st.readers_since_write.push(idx);
                            }
                        } else {
                            st.readers_since_write.push(idx);
                        }
                    }
                }
            }
        }

        DepGraph { successors, predecessor_count, phase, edge_count }
    }

    /// Number of tasks (nodes).
    pub fn task_count(&self) -> usize {
        self.successors.len()
    }

    /// Number of distinct dependence edges.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Whether there is a direct dependence edge from `from` to `to`.
    pub fn has_edge(&self, from: TaskId, to: TaskId) -> bool {
        self.successors
            .get(from.raw() as usize)
            .map(|s| s.contains(&(to.raw() as usize)))
            .unwrap_or(false)
    }

    /// Direct successors of a task.
    pub fn successors(&self, of: TaskId) -> impl Iterator<Item = TaskId> + '_ {
        self.successors
            .get(of.raw() as usize)
            .into_iter()
            .flatten()
            .map(|&i| TaskId(i as u64))
    }

    /// Number of direct predecessors (in-degree) of a task.
    pub fn predecessor_count(&self, of: TaskId) -> usize {
        self.predecessor_count.get(of.raw() as usize).copied().unwrap_or(0)
    }

    /// Taskwait phase of a task: the number of `taskwait` barriers the main thread executed
    /// before spawning it.
    pub fn phase(&self, of: TaskId) -> usize {
        self.phase.get(of.raw() as usize).copied().unwrap_or(0)
    }

    /// Tasks with no predecessors in their phase-constrained graph: the initially-ready set of
    /// phase 0.
    pub fn initially_ready(&self) -> Vec<TaskId> {
        (0..self.task_count())
            .filter(|&i| self.predecessor_count[i] == 0 && self.phase[i] == 0)
            .map(|i| TaskId(i as u64))
            .collect()
    }

    /// Structural statistics: critical path and an ideal-parallelism profile.
    ///
    /// `weights[i]` is the execution cost of task `i` (use `1.0` everywhere for a purely
    /// structural view). Both the dependence edges and the phase (taskwait) constraints are
    /// honoured. The returned [`GraphStats::max_width`] is the largest number of tasks that an
    /// infinitely wide machine would run concurrently under list scheduling — an upper bound on
    /// exploitable parallelism.
    ///
    /// # Panics
    ///
    /// Panics if `weights.len()` differs from the number of tasks.
    pub fn stats(&self, weights: &[f64]) -> GraphStats {
        let n = self.task_count();
        assert_eq!(weights.len(), n, "one weight per task required");
        if n == 0 {
            return GraphStats {
                tasks: 0,
                edges: 0,
                phases: 1,
                critical_path_weight: 0.0,
                total_weight: 0.0,
                ideal_parallelism: 0.0,
                max_width: 0,
            };
        }
        // Longest path to each node, processed in topological (= id) order. Phases are handled
        // by forcing each task to start no earlier than the completion of the previous phases.
        let mut finish = vec![0.0f64; n];
        let mut phase_end: Vec<f64> = Vec::new();
        let max_phase = self.phase.iter().copied().max().unwrap_or(0);
        phase_end.resize(max_phase + 1, 0.0);
        let mut earliest = vec![0.0f64; n];
        for i in 0..n {
            let ph = self.phase[i];
            let barrier_floor = if ph == 0 { 0.0 } else { phase_end[ph - 1] };
            let start = earliest[i].max(barrier_floor);
            finish[i] = start + weights[i];
            phase_end[ph] = phase_end[ph].max(finish[i]);
            for &s in &self.successors[i] {
                earliest[s] = earliest[s].max(finish[i]);
            }
        }
        // Propagate barrier floors forward so phase_end is monotone even for empty phases.
        for p in 1..phase_end.len() {
            if phase_end[p] < phase_end[p - 1] {
                phase_end[p] = phase_end[p - 1];
            }
        }
        let critical = finish.iter().copied().fold(0.0f64, f64::max);
        let total: f64 = weights.iter().sum();
        // Structural width: schedule every task at its earliest start on infinite cores and take
        // the maximum number of overlapping tasks (sampled at start events).
        let mut intervals: Vec<(f64, f64)> = (0..n)
            .map(|i| (finish[i] - weights[i], finish[i]))
            .collect();
        intervals.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        let mut max_width = 0usize;
        for &(start, _) in &intervals {
            let width = intervals
                .iter()
                .filter(|&&(s, e)| s <= start && start < e || (s == e && s == start))
                .count();
            max_width = max_width.max(width);
        }
        GraphStats {
            tasks: n,
            edges: self.edge_count,
            phases: max_phase + 1,
            critical_path_weight: critical,
            total_weight: total,
            ideal_parallelism: if critical > 0.0 { total / critical } else { n as f64 },
            max_width,
        }
    }
}

/// Structural statistics of a dependence graph.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphStats {
    /// Number of tasks.
    pub tasks: usize,
    /// Number of dependence edges.
    pub edges: usize,
    /// Number of taskwait-delimited phases.
    pub phases: usize,
    /// Weight of the heaviest dependence chain (including barrier constraints).
    pub critical_path_weight: f64,
    /// Sum of all task weights.
    pub total_weight: f64,
    /// `total_weight / critical_path_weight`: the parallelism an infinitely wide machine could
    /// exploit (Amdahl-style bound).
    pub ideal_parallelism: f64,
    /// Maximum number of tasks simultaneously in flight under earliest-start scheduling on
    /// infinite cores.
    pub max_width: usize,
}

/// A record of one task's simulated execution, as reported by the machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecRecord {
    /// Which task executed.
    pub task: TaskId,
    /// Core the task body ran on.
    pub core: usize,
    /// Cycle at which the task body started executing.
    pub start: u64,
    /// Cycle at which the task body finished executing (before retirement bookkeeping).
    pub end: u64,
}

/// Errors detected by [`ExecutionValidator::check`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidationError {
    /// A spawned task never executed.
    MissingTask(TaskId),
    /// A task executed more than once.
    DuplicateTask(TaskId),
    /// A task that was never part of the program appeared in the execution.
    UnknownTask(TaskId),
    /// A record has `end < start`.
    NegativeDuration(TaskId),
    /// A dependence edge was violated: the successor started before the predecessor finished.
    OrderViolation {
        /// The earlier task of the violated edge.
        predecessor: TaskId,
        /// The later task of the violated edge.
        successor: TaskId,
        /// Cycle at which the predecessor finished.
        predecessor_end: u64,
        /// Cycle at which the successor started.
        successor_start: u64,
    },
    /// A task from a later taskwait phase started before an earlier-phase task finished.
    BarrierViolation {
        /// Task from the earlier phase.
        earlier: TaskId,
        /// Task from the later phase that started too soon.
        later: TaskId,
    },
    /// Two records overlap in time on the same core.
    CoreOverlap {
        /// Core on which the overlap happened.
        core: usize,
        /// First of the two overlapping tasks.
        first: TaskId,
        /// Second of the two overlapping tasks.
        second: TaskId,
    },
}

impl core::fmt::Display for ValidationError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ValidationError::MissingTask(t) => write!(f, "task {t} was spawned but never executed"),
            ValidationError::DuplicateTask(t) => write!(f, "task {t} executed more than once"),
            ValidationError::UnknownTask(t) => write!(f, "task {t} is not part of the program"),
            ValidationError::NegativeDuration(t) => write!(f, "task {t} has end before start"),
            ValidationError::OrderViolation { predecessor, successor, predecessor_end, successor_start } => write!(
                f,
                "dependence violated: {successor} started at {successor_start} before {predecessor} finished at {predecessor_end}"
            ),
            ValidationError::BarrierViolation { earlier, later } => {
                write!(f, "taskwait violated: {later} started before {earlier} finished")
            }
            ValidationError::CoreOverlap { core, first, second } => {
                write!(f, "core {core} ran {first} and {second} at overlapping times")
            }
        }
    }
}

impl std::error::Error for ValidationError {}

/// Checks a simulated execution against a program's sequential semantics.
#[derive(Debug, Clone)]
pub struct ExecutionValidator {
    graph: DepGraph,
}

impl ExecutionValidator {
    /// Creates a validator for a program.
    pub fn new(program: &TaskProgram) -> Self {
        ExecutionValidator { graph: program.reference_graph() }
    }

    /// Creates a validator from an already-built graph.
    pub fn from_graph(graph: DepGraph) -> Self {
        ExecutionValidator { graph }
    }

    /// Validates an execution trace.
    ///
    /// # Errors
    ///
    /// Returns the first violation found: every task executes exactly once, dependence edges and
    /// taskwait phases are honoured, and no core runs two task bodies at once.
    pub fn check(&self, records: &[ExecRecord]) -> Result<(), ValidationError> {
        let n = self.graph.task_count();
        let mut by_task: Vec<Option<ExecRecord>> = vec![None; n];
        for r in records {
            let idx = r.task.raw() as usize;
            if idx >= n {
                return Err(ValidationError::UnknownTask(r.task));
            }
            if r.end < r.start {
                return Err(ValidationError::NegativeDuration(r.task));
            }
            if by_task[idx].is_some() {
                return Err(ValidationError::DuplicateTask(r.task));
            }
            by_task[idx] = Some(*r);
        }
        for (i, slot) in by_task.iter().enumerate() {
            if slot.is_none() {
                return Err(ValidationError::MissingTask(TaskId(i as u64)));
            }
        }
        let rec = |i: usize| by_task[i].expect("verified present above");

        // Dependence edges.
        for i in 0..n {
            for s in self.graph.successors(TaskId(i as u64)) {
                let p = rec(i);
                let c = rec(s.raw() as usize);
                if c.start < p.end {
                    return Err(ValidationError::OrderViolation {
                        predecessor: TaskId(i as u64),
                        successor: s,
                        predecessor_end: p.end,
                        successor_start: c.start,
                    });
                }
            }
        }
        // Barrier phases.
        for i in 0..n {
            for j in 0..n {
                if self.graph.phase(TaskId(j as u64)) > self.graph.phase(TaskId(i as u64))
                    && rec(j).start < rec(i).end
                {
                    return Err(ValidationError::BarrierViolation {
                        earlier: TaskId(i as u64),
                        later: TaskId(j as u64),
                    });
                }
            }
        }
        // Core exclusivity.
        let mut by_core: HashMap<usize, Vec<ExecRecord>> = HashMap::new();
        for r in by_task.iter().flatten() {
            by_core.entry(r.core).or_default().push(*r);
        }
        for (core, mut recs) in by_core {
            recs.sort_by_key(|r| r.start);
            for pair in recs.windows(2) {
                // Zero-length records (empty payloads) may share a start cycle.
                if pair[1].start < pair[0].end {
                    return Err(ValidationError::CoreOverlap {
                        core,
                        first: pair[0].task,
                        second: pair[1].task,
                    });
                }
            }
        }
        Ok(())
    }

    /// The underlying reference graph.
    pub fn graph(&self) -> &DepGraph {
        &self.graph
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dep::Dependence;
    use crate::program::ProgramBuilder;
    use crate::task::Payload;

    /// a writes X; b reads X (RAW); c reads X (no dep on b); d writes X (WAR on b and c, WAW on a).
    fn diamond() -> TaskProgram {
        let mut b = ProgramBuilder::new("diamond");
        b.spawn(Payload::compute(10), vec![Dependence::write(0xA)]);
        b.spawn(Payload::compute(10), vec![Dependence::read(0xA)]);
        b.spawn(Payload::compute(10), vec![Dependence::read(0xA)]);
        b.spawn(Payload::compute(10), vec![Dependence::write(0xA)]);
        b.build()
    }

    #[test]
    fn raw_war_waw_edges() {
        let g = diamond().reference_graph();
        assert!(g.has_edge(TaskId(0), TaskId(1)), "RAW");
        assert!(g.has_edge(TaskId(0), TaskId(2)), "RAW");
        assert!(!g.has_edge(TaskId(1), TaskId(2)), "read-read must not create an edge");
        assert!(g.has_edge(TaskId(1), TaskId(3)), "WAR");
        assert!(g.has_edge(TaskId(2), TaskId(3)), "WAR");
        assert!(g.has_edge(TaskId(0), TaskId(3)), "WAW");
        assert_eq!(g.edge_count(), 5);
        assert_eq!(g.initially_ready(), vec![TaskId(0)]);
        assert_eq!(g.predecessor_count(TaskId(3)), 3);
    }

    #[test]
    fn independent_tasks_have_no_edges() {
        let mut b = ProgramBuilder::new("indep");
        for i in 0..8u64 {
            b.spawn(Payload::compute(5), vec![Dependence::write(0x100 + i * 8)]);
        }
        let g = b.build().reference_graph();
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.initially_ready().len(), 8);
        let stats = g.stats(&[1.0; 8]);
        assert_eq!(stats.max_width, 8);
        assert!((stats.ideal_parallelism - 8.0).abs() < 1e-9);
    }

    #[test]
    fn chain_has_linear_critical_path() {
        let mut b = ProgramBuilder::new("chain");
        for _ in 0..6 {
            b.spawn(Payload::compute(7), vec![Dependence::read_write(0x40)]);
        }
        let g = b.build().reference_graph();
        assert_eq!(g.edge_count(), 5);
        let stats = g.stats(&[7.0; 6]);
        assert!((stats.critical_path_weight - 42.0).abs() < 1e-9);
        assert!((stats.ideal_parallelism - 1.0).abs() < 1e-9);
        assert_eq!(stats.max_width, 1);
    }

    #[test]
    fn taskwait_partitions_phases() {
        let mut b = ProgramBuilder::new("phases");
        b.spawn(Payload::compute(1), vec![Dependence::write(0x1)]);
        b.taskwait();
        b.spawn(Payload::compute(1), vec![Dependence::write(0x2)]);
        let p = b.build();
        let g = p.reference_graph();
        assert_eq!(g.phase(TaskId(0)), 0);
        assert_eq!(g.phase(TaskId(1)), 1);
        assert_eq!(g.edge_count(), 0, "barrier ordering is a phase, not a data edge");
        let stats = g.stats(&[1.0, 1.0]);
        assert_eq!(stats.phases, 2);
        assert!((stats.critical_path_weight - 2.0).abs() < 1e-9, "barrier serialises the two tasks");
    }

    #[test]
    fn validator_accepts_serial_execution() {
        let p = diamond();
        let v = ExecutionValidator::new(&p);
        let recs: Vec<ExecRecord> = (0..4)
            .map(|i| ExecRecord { task: TaskId(i), core: 0, start: i * 10, end: i * 10 + 10 })
            .collect();
        assert_eq!(v.check(&recs), Ok(()));
    }

    #[test]
    fn validator_detects_order_violation() {
        let p = diamond();
        let v = ExecutionValidator::new(&p);
        let recs = vec![
            ExecRecord { task: TaskId(0), core: 0, start: 0, end: 10 },
            ExecRecord { task: TaskId(1), core: 1, start: 5, end: 15 }, // starts before T0 ends
            ExecRecord { task: TaskId(2), core: 2, start: 10, end: 20 },
            ExecRecord { task: TaskId(3), core: 0, start: 30, end: 40 },
        ];
        match v.check(&recs) {
            Err(ValidationError::OrderViolation { predecessor, successor, .. }) => {
                assert_eq!(predecessor, TaskId(0));
                assert_eq!(successor, TaskId(1));
            }
            other => panic!("expected OrderViolation, got {other:?}"),
        }
    }

    #[test]
    fn validator_detects_missing_duplicate_unknown_and_overlap() {
        let p = diamond();
        let v = ExecutionValidator::new(&p);
        // Missing task 3.
        let recs: Vec<ExecRecord> = (0..3)
            .map(|i| ExecRecord { task: TaskId(i), core: 0, start: i * 10, end: i * 10 + 10 })
            .collect();
        assert_eq!(v.check(&recs), Err(ValidationError::MissingTask(TaskId(3))));
        // Duplicate.
        let mut dup: Vec<ExecRecord> = (0..4)
            .map(|i| ExecRecord { task: TaskId(i), core: 0, start: i * 10, end: i * 10 + 10 })
            .collect();
        dup.push(ExecRecord { task: TaskId(2), core: 1, start: 100, end: 110 });
        assert_eq!(v.check(&dup), Err(ValidationError::DuplicateTask(TaskId(2))));
        // Unknown.
        let mut unk = dup.clone();
        unk.pop();
        unk.push(ExecRecord { task: TaskId(77), core: 1, start: 100, end: 110 });
        assert_eq!(v.check(&unk), Err(ValidationError::UnknownTask(TaskId(77))));
        // Core overlap (independent tasks on the same core at the same time).
        let mut b = ProgramBuilder::new("overlap");
        b.spawn(Payload::compute(10), vec![]);
        b.spawn(Payload::compute(10), vec![]);
        let v2 = ExecutionValidator::new(&b.build());
        let recs = vec![
            ExecRecord { task: TaskId(0), core: 0, start: 0, end: 10 },
            ExecRecord { task: TaskId(1), core: 0, start: 5, end: 15 },
        ];
        match v2.check(&recs) {
            Err(ValidationError::CoreOverlap { core: 0, .. }) => {}
            other => panic!("expected CoreOverlap, got {other:?}"),
        }
    }

    #[test]
    fn validator_detects_barrier_violation() {
        let mut b = ProgramBuilder::new("barrier");
        b.spawn(Payload::compute(10), vec![Dependence::write(0x1)]);
        b.taskwait();
        b.spawn(Payload::compute(10), vec![Dependence::write(0x2)]);
        let v = ExecutionValidator::new(&b.build());
        let recs = vec![
            ExecRecord { task: TaskId(0), core: 0, start: 0, end: 10 },
            ExecRecord { task: TaskId(1), core: 1, start: 5, end: 15 },
        ];
        match v.check(&recs) {
            Err(ValidationError::BarrierViolation { earlier, later }) => {
                assert_eq!(earlier, TaskId(0));
                assert_eq!(later, TaskId(1));
            }
            other => panic!("expected BarrierViolation, got {other:?}"),
        }
    }

    #[test]
    fn validation_error_display() {
        let e = ValidationError::OrderViolation {
            predecessor: TaskId(1),
            successor: TaskId(2),
            predecessor_end: 50,
            successor_start: 40,
        };
        let s = e.to_string();
        assert!(s.contains("T1") && s.contains("T2") && s.contains("50") && s.contains("40"));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::dep::{Dependence, Direction};
    use crate::program::ProgramBuilder;
    use crate::task::Payload;
    use proptest::prelude::*;

    fn arbitrary_program(max_tasks: usize, max_addrs: u64) -> impl Strategy<Value = TaskProgram> {
        let task = (
            proptest::collection::vec((0..max_addrs, 0..3u8), 0..5),
            1u64..50,
            proptest::bool::ANY,
        );
        proptest::collection::vec(task, 1..max_tasks).prop_map(|tasks| {
            let mut b = ProgramBuilder::new("prop");
            for (deps, cycles, wait) in tasks {
                let mut seen = std::collections::HashSet::new();
                let deps: Vec<Dependence> = deps
                    .into_iter()
                    .filter(|(a, _)| seen.insert(*a))
                    .map(|(a, d)| {
                        let dir = match d {
                            0 => Direction::In,
                            1 => Direction::Out,
                            _ => Direction::InOut,
                        };
                        Dependence::new(0x1000 + a * 64, dir)
                    })
                    .collect();
                b.spawn(Payload::compute(cycles), deps);
                if wait {
                    b.taskwait();
                }
            }
            b.build()
        })
    }

    proptest! {
        /// Edges only ever point forward in program order and never exceed the all-pairs bound.
        #[test]
        fn edges_point_forward(p in arbitrary_program(24, 6)) {
            let g = p.reference_graph();
            let n = g.task_count();
            for i in 0..n {
                for s in g.successors(TaskId(i as u64)) {
                    prop_assert!(s.raw() as usize > i);
                }
            }
            prop_assert!(g.edge_count() <= n * (n - 1) / 2);
        }

        /// Executing tasks serially, in program order, is always a valid schedule — the defining
        /// property of sequential semantics.
        #[test]
        fn serial_order_is_always_valid(p in arbitrary_program(24, 6)) {
            let v = ExecutionValidator::new(&p);
            let mut t = 0u64;
            let mut recs = Vec::new();
            for spec in p.tasks() {
                let d = spec.payload.compute_cycles.max(1);
                recs.push(ExecRecord { task: spec.id, core: 0, start: t, end: t + d });
                t += d;
            }
            prop_assert_eq!(v.check(&recs), Ok(()));
        }

        /// The critical path never exceeds the total weight and parallelism is at least 1.
        #[test]
        fn critical_path_bounds(p in arbitrary_program(24, 6)) {
            let g = p.reference_graph();
            let weights: Vec<f64> = p.tasks().map(|t| t.payload.compute_cycles as f64).collect();
            let s = g.stats(&weights);
            prop_assert!(s.critical_path_weight <= s.total_weight + 1e-9);
            prop_assert!(s.ideal_parallelism >= 1.0 - 1e-9);
            prop_assert!(s.max_width >= 1);
            prop_assert!(s.max_width <= s.tasks);
        }
    }
}
