//! Streaming task sources.
//!
//! A [`TaskProgram`] materialises every task descriptor up front, which caps an experiment at
//! however many descriptors fit in host memory — tens of thousands of tasks, nowhere near the
//! steady-state regimes a finite hardware tracker is designed for. A [`TaskSource`] is the
//! streaming generalisation of the main-thread op stream: the runtime *pulls* one
//! [`ProgramOp`] at a time, the source keeps descriptors only for tasks that are in flight
//! (pulled but not yet retired), and [`TaskSource::retire`] frees a descriptor the moment the
//! runtime is done with it. A source with a bounded in-flight window therefore lets a single
//! cell simulate millions of tasks in `O(window)` memory.
//!
//! The contract mirrors how the main thread of an OmpSs application actually behaves:
//!
//! * ops are pulled in program order, exactly once each;
//! * a pulled `Spawn` makes its descriptor *resident* until the runtime retires it;
//! * a source may answer [`SourcePoll::Blocked`] when its in-flight window is full — the
//!   runtime should execute and retire in-flight work, then poll again (the same thing it
//!   already does when the hardware tracker is saturated). Because a streamed task may only
//!   depend on *earlier* tasks, the in-flight set always contains runnable work, so blocking
//!   cannot deadlock;
//! * once a source answers [`SourcePoll::Done`] it must keep answering `Done` (sources are
//!   fused).
//!
//! [`MaterializedSource`] adapts any existing [`TaskProgram`] to this interface without
//! changing a single simulated cycle: it never blocks, and it hands out exactly the ops the
//! program contains, so every materialized workload, figure pin and checked-in baseline stays
//! byte-identical through the streaming engine.

use crate::program::{ProgramOp, TaskProgram};
use crate::task::TaskSpec;

/// One pull from a [`TaskSource`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SourcePoll {
    /// The next main-thread operation, consumed from the stream.
    Op(ProgramOp),
    /// The source's in-flight window is full: retire resident tasks and poll again.
    Blocked,
    /// The stream is exhausted (fused: every later poll also answers `Done`).
    Done,
}

/// A pull-based stream of main-thread operations with bounded descriptor residency.
///
/// Implementors own the descriptors of in-flight tasks; [`spec`](TaskSource::spec) looks one
/// up by SW ID between its `Spawn` being pulled and [`retire`](TaskSource::retire) being
/// called. SW IDs are assigned densely in spawn order (`0, 1, 2, …`), matching
/// [`crate::ProgramBuilder`].
pub trait TaskSource: std::fmt::Debug {
    /// Human-readable name of the workload this source streams (the analogue of
    /// [`TaskProgram::name`]).
    fn name(&self) -> &str;

    /// Pulls the next operation. A returned [`SourcePoll::Op`] is consumed: the source will
    /// never hand it out again, so a runtime that cannot act on it immediately must hold it
    /// (e.g. in a pending-op slot) rather than re-poll.
    fn poll(&mut self) -> SourcePoll;

    /// The descriptor of an in-flight task.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `sw_id` does not name a task that is currently resident
    /// (pulled and not yet retired) — that is a runtime bug, not a workload property.
    fn spec(&self, sw_id: u64) -> &TaskSpec;

    /// Frees the descriptor of a retired task. After this call [`spec`](TaskSource::spec) for
    /// the same ID is allowed to panic.
    fn retire(&mut self, sw_id: u64);

    /// [`retire`](TaskSource::retire) with the retiring core's simulated timestamp attached.
    ///
    /// Runtimes call this variant so time-aware sources (the multi-tenant merger measures
    /// per-task turnaround from it) see when each task finished; the default simply drops the
    /// timestamp, so plain sources behave exactly as before.
    fn retire_at(&mut self, sw_id: u64, _now: u64) {
        self.retire(sw_id);
    }

    /// Informs the source of the polling core's current simulated time.
    ///
    /// Runtimes call this immediately before [`poll`](TaskSource::poll); sources with
    /// deterministic arrival processes ([`crate::TenantSource`]) gate spawn release on it.
    /// The default is a no-op, so time-blind sources are unaffected.
    fn advance_to(&mut self, _now: u64) {}

    /// Per-tenant serving metrics, if this source multiplexes tenants
    /// ([`crate::TenantSource`]). Single-tenant sources report none.
    fn tenant_reports(&self) -> Vec<crate::tenant::TenantReport> {
        Vec::new()
    }

    /// Downcast hook for sources that expose post-run state beyond this trait (the
    /// multi-tenant merger hands back its tenant assignment through it). `None` by default.
    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        None
    }

    /// Upper bound on [`TaskSpec::dep_count`] over every task the source will ever emit.
    ///
    /// Runtimes size per-task metadata (e.g. the Phentos packed-metadata element) from this
    /// hint, since a streaming source cannot be scanned up front.
    fn max_deps(&self) -> usize;

    /// Number of descriptors currently resident (pulled, not yet retired).
    fn resident(&self) -> usize;

    /// High-water mark of [`resident`](TaskSource::resident) over the source's lifetime —
    /// the memory-footprint proxy the streaming-scale gate checks against the configured
    /// window.
    fn peak_resident(&self) -> usize;
}

/// A [`TaskSource`] over a fully materialized [`TaskProgram`].
///
/// Never blocks, keeps every descriptor alive for the program's whole lifetime (retirement
/// only updates the residency accounting), and yields exactly `program.ops()` in order — so a
/// runtime driven through this adapter behaves byte-identically to one holding the program
/// directly, while still reporting a true peak-residency figure.
#[derive(Debug, Clone)]
pub struct MaterializedSource {
    name: String,
    ops: Vec<ProgramOp>,
    specs: Vec<TaskSpec>,
    cursor: usize,
    max_deps: usize,
    resident: usize,
    peak_resident: usize,
}

impl MaterializedSource {
    /// Wraps a program. The descriptor table is cloned once, exactly as the runtimes used to
    /// do before the streaming refactor.
    pub fn new(program: &TaskProgram) -> Self {
        let specs: Vec<TaskSpec> = program.tasks().cloned().collect();
        let max_deps = specs.iter().map(|t| t.dep_count()).max().unwrap_or(0);
        MaterializedSource {
            name: program.name().to_string(),
            ops: program.ops().to_vec(),
            specs,
            cursor: 0,
            max_deps,
            resident: 0,
            peak_resident: 0,
        }
    }
}

impl TaskSource for MaterializedSource {
    fn name(&self) -> &str {
        &self.name
    }

    fn poll(&mut self) -> SourcePoll {
        match self.ops.get(self.cursor).cloned() {
            Some(op) => {
                self.cursor += 1;
                if matches!(op, ProgramOp::Spawn(_)) {
                    self.resident += 1;
                    self.peak_resident = self.peak_resident.max(self.resident);
                }
                SourcePoll::Op(op)
            }
            None => SourcePoll::Done,
        }
    }

    fn spec(&self, sw_id: u64) -> &TaskSpec {
        &self.specs[sw_id as usize]
    }

    fn retire(&mut self, sw_id: u64) {
        debug_assert!((sw_id as usize) < self.specs.len(), "retire of unknown task T{sw_id}");
        debug_assert!(self.resident > 0, "retire with no resident tasks");
        self.resident = self.resident.saturating_sub(1);
    }

    fn max_deps(&self) -> usize {
        self.max_deps
    }

    fn resident(&self) -> usize {
        self.resident
    }

    fn peak_resident(&self) -> usize {
        self.peak_resident
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dep::Dependence;
    use crate::program::ProgramBuilder;
    use crate::task::Payload;

    fn sample() -> TaskProgram {
        let mut b = ProgramBuilder::new("sample");
        b.spawn(Payload::compute(100), vec![Dependence::write(0x10)]);
        b.spawn(Payload::compute(200), vec![Dependence::read(0x10), Dependence::write(0x20)]);
        b.taskwait();
        b.spawn(Payload::compute(300), vec![]);
        b.build()
    }

    #[test]
    fn materialized_source_replays_the_program_in_order() {
        let program = sample();
        let mut src = MaterializedSource::new(&program);
        assert_eq!(src.name(), "sample");
        assert_eq!(src.max_deps(), 2);
        let mut ops = Vec::new();
        loop {
            match src.poll() {
                SourcePoll::Op(op) => ops.push(op),
                SourcePoll::Blocked => panic!("materialized sources never block"),
                SourcePoll::Done => break,
            }
        }
        assert_eq!(ops, program.ops().to_vec());
        // Fused: polling past the end keeps answering Done.
        assert_eq!(src.poll(), SourcePoll::Done);
    }

    #[test]
    fn residency_tracks_spawns_and_retires() {
        let program = sample();
        let mut src = MaterializedSource::new(&program);
        assert_eq!(src.resident(), 0);
        src.poll(); // spawn T0
        src.poll(); // spawn T1
        assert_eq!(src.resident(), 2);
        assert_eq!(src.spec(1).payload.compute_cycles, 200);
        src.retire(0);
        assert_eq!(src.resident(), 1);
        src.poll(); // taskwait: no residency change
        assert_eq!(src.resident(), 1);
        src.poll(); // spawn T2
        src.retire(1);
        src.retire(2);
        assert_eq!(src.resident(), 0);
        assert_eq!(src.peak_resident(), 2);
        // Specs stay addressable after retirement in the materialized adapter.
        assert_eq!(src.spec(0).payload.compute_cycles, 100);
    }

    #[test]
    fn empty_program_is_immediately_done() {
        let mut src = MaterializedSource::new(&ProgramBuilder::new("empty").build());
        assert_eq!(src.poll(), SourcePoll::Done);
        assert_eq!(src.max_deps(), 0);
        assert_eq!(src.peak_resident(), 0);
    }
}
