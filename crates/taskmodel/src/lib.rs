//! Task-parallel program model shared by the whole workspace.
//!
//! Task Parallelism (OmpSs / OpenMP 4.0 style) describes a program as a sequence of *task
//! spawns*, each annotated with the memory regions the task reads and/or writes. A runtime —
//! software (Nanos-SW), hardware-assisted (Nanos-RV, Nanos-AXI) or the paper's tightly-integrated
//! Phentos — infers dependences between tasks from those annotations and schedules ready tasks
//! onto cores.
//!
//! This crate defines the *input* side of that contract:
//!
//! * [`dep`] — dependence directionality ([`Direction`]) and annotated addresses
//!   ([`Dependence`]), including the RAW/WAW/WAR conflict rules of Section III-A of the paper;
//! * [`task`] — task descriptors ([`TaskSpec`]) with an abstract payload (compute cycles +
//!   memory bytes);
//! * [`program`] — whole programs ([`TaskProgram`]): an ordered stream of spawns and
//!   `taskwait` barriers, as emitted by the main thread of an OmpSs application;
//! * [`source`] — streaming programs ([`TaskSource`]): the same op stream pulled on demand
//!   with a bounded in-flight descriptor window, so million-task workloads run in
//!   `O(window)` memory ([`MaterializedSource`] adapts any built program losslessly);
//! * [`tenant`] — multi-tenant co-scheduling ([`TenantSet`] / [`TenantSource`]): N independent
//!   task graphs merged into one op stream under deterministic arrival processes, with
//!   per-tenant turnaround accounting and tracker-sharing policy;
//! * [`graph`] — a *reference* dependence graph builder used to validate every scheduler in the
//!   workspace against the paradigm's sequential-semantics definition, plus critical-path and
//!   parallelism analysis.
//!
//! The crate is intentionally independent of any simulator: workload generators produce
//! [`TaskProgram`]s, runtimes consume them, and the reference graph is the ground truth both are
//! tested against.
//!
//! # Example
//!
//! ```
//! use tis_taskmodel::{Dependence, Direction, Payload, ProgramBuilder};
//!
//! let mut b = ProgramBuilder::new("example");
//! let a = b.spawn(Payload::compute(1_000), vec![Dependence::new(0x100, Direction::Out)]);
//! let c = b.spawn(Payload::compute(1_000), vec![Dependence::new(0x100, Direction::In)]);
//! b.taskwait();
//! let program = b.build();
//! let graph = program.reference_graph();
//! assert!(graph.has_edge(a, c)); // RAW dependence
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dep;
pub mod graph;
pub mod program;
pub mod source;
pub mod task;
pub mod tenant;

pub use dep::{DepAddr, Dependence, Direction};
pub use graph::{DepGraph, ExecRecord, ExecutionValidator, GraphStats, ValidationError};
pub use program::{ProgramBuilder, ProgramOp, ProgramStats, TaskProgram};
pub use source::{MaterializedSource, SourcePoll, TaskSource};
pub use task::{Payload, TaskId, TaskSpec, TaskSpecError, MAX_DEPENDENCES};
pub use tenant::{
    ArrivalGen, ArrivalProcess, TenantReport, TenantRunData, TenantSet, TenantSource, TenantSpec,
    TenantTrackerPolicy, TENANT_ADDR_SHIFT,
};
