//! Multi-tenant co-scheduling: N independent task graphs merged into one op stream.
//!
//! The paper — and every sweep before this module — runs one task graph at a time. A serving
//! system runs *many*: independent clients (tenants) submit their own task graphs to one
//! machine, tasks arrive over time rather than all at cycle zero, and the metrics that matter
//! are per-tenant (makespan, turnaround percentiles, fairness) rather than aggregate speedup.
//!
//! [`TenantSource`] is the merged [`TaskSource`]: it owns one inner source per tenant (each
//! may itself be a bounded-window streaming source, so million-task tenants work unchanged),
//! assigns **global** SW IDs densely in pull order, remaps each tenant's dependence addresses
//! into a private window so tenants never alias, and gates each tenant's spawns behind a
//! deterministic [`ArrivalProcess`]. Per-task turnaround (retire cycle − arrival cycle) is
//! accumulated into an exact per-tenant histogram, surfaced as [`TenantReport`]s through
//! `ExecutionReport`.
//!
//! # The degenerate case is byte-identical
//!
//! A 1-tenant set under [`ArrivalProcess::BatchAtZero`] and [`TenantTrackerPolicy::Shared`]
//! is a pure pass-through: global IDs equal the inner source's local IDs, the tenant-0
//! address offset is zero, `taskwait` ops are forwarded verbatim, and arrivals never gate —
//! so the merged source emits a bit-identical op stream and the run's `ExecutionReport`
//! matches the legacy single-program path field for field (the differential wall in
//! `tests/multi_tenant.rs` machine-enforces this across all four platforms).
//!
//! # Tenant-local barriers
//!
//! With more than one tenant, an inner `taskwait` must not barrier the whole machine: the
//! merged source consumes it internally and simply refuses to release that tenant's later
//! ops until the tenant's own in-flight count drains to zero — the same semantics at tenant
//! granularity, while other tenants keep the cores busy.
//!
//! # Tracker policy
//!
//! The Picos descriptor encoding has no spare bits for a tenant tag, so partitioning is
//! enforced at *admission*: [`TenantTrackerPolicy::Partitioned`] caps each tenant's in-flight
//! tasks at its share of the tracker's task-memory entries (see
//! `tis_picos::TrackerConfig::per_tenant_entries`), which reserves the remaining entries for
//! the other tenants exactly as a hard-partitioned task memory would.

use tis_sim::{FxHashMap, SimRng};

use crate::program::ProgramOp;
use crate::source::{SourcePoll, TaskSource};
use crate::task::{TaskId, TaskSpec};

/// Address-window shift per tenant: tenant `t`'s dependence addresses are offset by
/// `t << TENANT_ADDR_SHIFT`, so tenants can never alias as long as each tenant's own
/// addresses stay below `1 << TENANT_ADDR_SHIFT` (every generator in the workspace uses
/// addresses far below 2⁴⁰). Tenant 0's offset is zero — the degenerate case is untouched.
pub const TENANT_ADDR_SHIFT: u32 = 40;

/// When the k-th spawn of a tenant becomes *pullable* (simulated-cycle arrival time).
///
/// Arrival draws are a pure function of `(seed, process)` via [`SimRng::stream`] substreams,
/// so any arrival trace replays bit-exactly — the chaos/property suites rely on it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrivalProcess {
    /// The whole graph is available at cycle 0 (the paper's implicit model).
    BatchAtZero,
    /// Open-loop Poisson arrivals: exponential interarrival gaps with the given mean,
    /// rounded to whole cycles and accumulated.
    Poisson {
        /// Mean interarrival gap in cycles.
        mean_interarrival: u64,
    },
    /// Deterministic on/off trace: spawns arrive in back-to-back bursts of `burst` tasks,
    /// one burst every `period` cycles (the k-th spawn arrives at `(k / burst) * period`).
    Bursty {
        /// Tasks per burst.
        burst: u64,
        /// Cycles between burst starts.
        period: u64,
    },
}

impl ArrivalProcess {
    /// Stable short key for experiment labels, e.g. `batch`, `poi200`, `burst256x100000`.
    pub fn key(&self) -> String {
        match self {
            ArrivalProcess::BatchAtZero => "batch".to_string(),
            ArrivalProcess::Poisson { mean_interarrival } => format!("poi{mean_interarrival}"),
            ArrivalProcess::Bursty { burst, period } => format!("burst{burst}x{period}"),
        }
    }
}

/// Deterministic arrival-time generator for one tenant: the k-th call to
/// [`next_arrival`](ArrivalGen::next_arrival) returns the arrival cycle of that tenant's
/// k-th spawn (non-decreasing).
#[derive(Debug, Clone)]
pub struct ArrivalGen {
    process: ArrivalProcess,
    rng: SimRng,
    clock: u64,
    generated: u64,
}

impl ArrivalGen {
    /// Creates a generator; `rng` should be a dedicated [`SimRng::stream`] substream so the
    /// trace is a pure function of `(seed, process)`.
    pub fn new(process: ArrivalProcess, rng: SimRng) -> Self {
        ArrivalGen { process, rng, clock: 0, generated: 0 }
    }

    /// Arrival cycle of the next spawn. Monotone non-decreasing across calls.
    pub fn next_arrival(&mut self) -> u64 {
        let arrival = match self.process {
            ArrivalProcess::BatchAtZero => 0,
            ArrivalProcess::Poisson { mean_interarrival } => {
                // Inverse-CDF exponential draw; `1 - u` is in (0, 1], so `ln` is finite and
                // the gap is bounded by ~37 × mean (u is a 53-bit uniform).
                let u = self.rng.next_f64();
                let gap = (-(1.0 - u).ln() * mean_interarrival as f64).round() as u64;
                self.clock = self.clock.checked_add(gap).expect("arrival clock overflows u64");
                self.clock
            }
            ArrivalProcess::Bursty { burst, period } => (self.generated / burst.max(1))
                .checked_mul(period)
                .expect("arrival clock overflows u64"),
        };
        self.generated += 1;
        arrival
    }
}

/// How tenants share the hardware tracker's task-memory entries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TenantTrackerPolicy {
    /// All tenants compete for the full tracker (first come, first tracked).
    Shared,
    /// Each tenant's in-flight tasks are capped at `per_tenant_entries`, reserving the rest
    /// of the task memory for the other tenants (admission-enforced hard partitioning).
    Partitioned {
        /// In-flight task cap per tenant (typically `task_memory_entries / tenants`).
        per_tenant_entries: usize,
    },
}

impl TenantTrackerPolicy {
    /// Stable short key for experiment labels, e.g. `shared`, `part32`.
    pub fn key(&self) -> String {
        match self {
            TenantTrackerPolicy::Shared => "shared".to_string(),
            TenantTrackerPolicy::Partitioned { per_tenant_entries } => {
                format!("part{per_tenant_entries}")
            }
        }
    }
}

/// Per-tenant serving metrics, carried on `ExecutionReport::tenants`.
///
/// Two equal reports still describe bit-identical executions: every field here is a pure
/// function of the simulated schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantReport {
    /// Tenant name.
    pub name: String,
    /// Tasks retired by this tenant.
    pub tasks: u64,
    /// Arrival cycle of the tenant's first released spawn.
    pub first_arrival: u64,
    /// Retire cycle of the tenant's last task.
    pub last_retire: u64,
    /// `last_retire − first_arrival`: the tenant's own makespan.
    pub makespan: u64,
    /// Sum of per-task turnarounds (retire − arrival), for sum-consistency checks.
    pub turnaround_total: u64,
    /// Exact (nearest-rank) median task turnaround in cycles.
    pub p50: u64,
    /// Exact 90th-percentile task turnaround in cycles.
    pub p90: u64,
    /// Exact 99th-percentile task turnaround in cycles.
    pub p99: u64,
}

impl TenantReport {
    /// Mean task turnaround in cycles.
    pub fn mean_turnaround(&self) -> f64 {
        if self.tasks == 0 {
            return 0.0;
        }
        self.turnaround_total as f64 / self.tasks as f64
    }

    /// Task throughput over the tenant's own makespan, in tasks per cycle.
    pub fn throughput(&self) -> f64 {
        if self.makespan == 0 {
            return 0.0;
        }
        self.tasks as f64 / self.makespan as f64
    }
}

/// One tenant: a name, its own task stream, and its arrival process.
#[derive(Debug)]
pub struct TenantSpec {
    /// Tenant name (used in reports and trace track groups).
    pub name: String,
    /// The tenant's own op stream (materialized or streaming).
    pub source: Box<dyn TaskSource>,
    /// When the tenant's spawns become pullable.
    pub arrival: ArrivalProcess,
}

/// Builder for a multi-tenant scenario: N tenants plus the tracker-sharing policy.
#[derive(Debug, Default)]
pub struct TenantSet {
    tenants: Vec<TenantSpec>,
    policy: Option<TenantTrackerPolicy>,
}

impl TenantSet {
    /// An empty set (add tenants with [`tenant`](TenantSet::tenant)).
    pub fn new() -> Self {
        TenantSet::default()
    }

    /// Adds a tenant.
    pub fn tenant(
        mut self,
        name: impl Into<String>,
        source: Box<dyn TaskSource>,
        arrival: ArrivalProcess,
    ) -> Self {
        self.tenants.push(TenantSpec { name: name.into(), source, arrival });
        self
    }

    /// Sets the tracker-sharing policy (default: [`TenantTrackerPolicy::Shared`]).
    pub fn with_policy(mut self, policy: TenantTrackerPolicy) -> Self {
        self.policy = Some(policy);
        self
    }

    /// Number of tenants added so far.
    pub fn len(&self) -> usize {
        self.tenants.len()
    }

    /// Whether no tenant has been added yet.
    pub fn is_empty(&self) -> bool {
        self.tenants.is_empty()
    }

    /// Builds the merged [`TaskSource`]. `rng` seeds the per-tenant arrival substreams
    /// (tenant `t` draws from `rng.stream("tenant-arrivals", t)`), so the whole scenario is a
    /// pure function of `(rng seed, tenant specs, policy)`.
    ///
    /// # Panics
    ///
    /// Panics on an empty set.
    pub fn into_source(self, rng: SimRng) -> TenantSource {
        assert!(!self.tenants.is_empty(), "a tenant set needs at least one tenant");
        let policy = self.policy.unwrap_or(TenantTrackerPolicy::Shared);
        let name = format!(
            "tenants[{}]",
            self.tenants.iter().map(|t| t.name.as_str()).collect::<Vec<_>>().join("+")
        );
        let max_deps = self.tenants.iter().map(|t| t.source.max_deps()).max().unwrap_or(0);
        let tenants = self
            .tenants
            .into_iter()
            .enumerate()
            .map(|(i, spec)| TenantState {
                name: spec.name,
                source: spec.source,
                arrivals: ArrivalGen::new(spec.arrival, rng.stream("tenant-arrivals", i as u64)),
                pending: None,
                done: false,
                gated: false,
                resident: 0,
                first_arrival: None,
                last_retire: 0,
                turnaround_total: 0,
                tasks_retired: 0,
                histogram: FxHashMap::default(),
            })
            .collect();
        TenantSource {
            name,
            tenants,
            policy,
            now: 0,
            cursor: 0,
            next_global: 0,
            resident: FxHashMap::default(),
            peak_resident: 0,
            assignment: Vec::new(),
            max_deps,
        }
    }
}

/// An op the merged source pulled from a tenant but has not released yet.
#[derive(Debug)]
enum PendingOp {
    /// A spawn waiting for its arrival time and/or a free admission slot.
    Spawn { spec: TaskSpec, arrival: u64 },
    /// A tenant-local barrier waiting to be consumed.
    Wait,
}

/// Per-tenant live state inside the merged source.
#[derive(Debug)]
struct TenantState {
    name: String,
    source: Box<dyn TaskSource>,
    arrivals: ArrivalGen,
    pending: Option<PendingOp>,
    /// Inner source answered `Done` (fused).
    done: bool,
    /// A tenant-local `taskwait` is draining: no more pulls until `resident == 0`.
    gated: bool,
    /// Tenant tasks currently in flight (released, not yet retired).
    resident: u64,
    first_arrival: Option<u64>,
    last_retire: u64,
    turnaround_total: u64,
    tasks_retired: u64,
    /// Exact turnaround distribution: value → count.
    histogram: FxHashMap<u64, u64>,
}

/// A resident (released, unretired) task's bookkeeping in the merged source.
#[derive(Debug)]
struct ResidentTask {
    tenant: u32,
    local_id: u64,
    arrival: u64,
    spec: TaskSpec,
}

/// Everything the post-run consumers (per-tenant traces, per-tenant critical paths) need
/// beyond the [`TenantReport`]s: the tenant names and the global-ID → tenant assignment.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TenantRunData {
    /// Tenant names, indexed by tenant.
    pub names: Vec<String>,
    /// `assignment[global_sw_id]` is the tenant index that spawned that task, in global
    /// spawn order.
    pub assignment: Vec<u32>,
}

/// The merged multi-tenant [`TaskSource`] built by [`TenantSet::into_source`].
#[derive(Debug)]
pub struct TenantSource {
    name: String,
    tenants: Vec<TenantState>,
    policy: TenantTrackerPolicy,
    /// Latest main-core time observed through [`TaskSource::advance_to`]; arrivals gate on it.
    now: u64,
    /// Round-robin release cursor, advanced after every released spawn.
    cursor: usize,
    next_global: u64,
    resident: FxHashMap<u64, ResidentTask>,
    peak_resident: usize,
    assignment: Vec<u32>,
    max_deps: usize,
}

impl TenantSource {
    /// Number of tenants.
    pub fn tenants(&self) -> usize {
        self.tenants.len()
    }

    /// The tracker-sharing policy in force.
    pub fn policy(&self) -> TenantTrackerPolicy {
        self.policy
    }

    /// Takes the tenant names + global-ID assignment out of the source (call after the run;
    /// the assignment vector is left empty).
    pub fn take_run_data(&mut self) -> TenantRunData {
        TenantRunData {
            names: self.tenants.iter().map(|t| t.name.clone()).collect(),
            assignment: std::mem::take(&mut self.assignment),
        }
    }

    /// Whether tenant `t` is at its admission cap under the current policy.
    fn quota_full(&self, t: usize) -> bool {
        match self.policy {
            TenantTrackerPolicy::Shared => false,
            TenantTrackerPolicy::Partitioned { per_tenant_entries } => {
                self.tenants[t].resident as usize >= per_tenant_entries.max(1)
            }
        }
    }

    /// Releases tenant `t`'s pending spawn: assigns the next global SW ID, remaps the
    /// dependence addresses into the tenant's private window, and records the arrival.
    fn release_spawn(&mut self, t: usize, spec: TaskSpec, arrival: u64) -> SourcePoll {
        let global = self.next_global;
        self.next_global += 1;
        let offset = (t as u64) << TENANT_ADDR_SHIFT;
        let mut deps = spec.deps.clone();
        for d in &mut deps {
            debug_assert!(
                d.addr < 1u64 << TENANT_ADDR_SHIFT,
                "tenant address {:#x} collides with the tenant window",
                d.addr
            );
            d.addr += offset;
        }
        let local_id = spec.id.raw();
        let remapped = TaskSpec::new(TaskId(global), spec.payload, deps);
        let state = &mut self.tenants[t];
        state.resident += 1;
        if state.first_arrival.is_none() {
            state.first_arrival = Some(arrival);
        }
        self.resident.insert(
            global,
            ResidentTask { tenant: t as u32, local_id, arrival, spec: remapped.clone() },
        );
        self.peak_resident = self.peak_resident.max(self.resident.len());
        self.assignment.push(t as u32);
        self.cursor = (t + 1) % self.tenants.len();
        SourcePoll::Op(ProgramOp::Spawn(remapped))
    }
}

impl TaskSource for TenantSource {
    fn name(&self) -> &str {
        &self.name
    }

    fn poll(&mut self) -> SourcePoll {
        let n = self.tenants.len();
        for offset in 0..n {
            let t = (self.cursor + offset) % n;
            loop {
                {
                    let state = &mut self.tenants[t];
                    if state.gated && state.resident == 0 {
                        state.gated = false;
                    }
                    if state.done || state.gated {
                        break;
                    }
                    if state.pending.is_none() {
                        match state.source.poll() {
                            SourcePoll::Op(ProgramOp::Spawn(spec)) => {
                                let arrival = state.arrivals.next_arrival();
                                state.pending = Some(PendingOp::Spawn { spec, arrival });
                            }
                            SourcePoll::Op(ProgramOp::TaskWait) => {
                                state.pending = Some(PendingOp::Wait);
                            }
                            // Inner window full: the tenant's in-flight set contains runnable
                            // work, so the run always makes progress.
                            SourcePoll::Blocked => break,
                            SourcePoll::Done => {
                                state.done = true;
                                break;
                            }
                        }
                    }
                }
                let releasable = match self.tenants[t].pending.as_ref() {
                    Some(PendingOp::Wait) => true,
                    Some(PendingOp::Spawn { arrival, .. }) => {
                        *arrival <= self.now && !self.quota_full(t)
                    }
                    None => unreachable!("pending op was just filled"),
                };
                if !releasable {
                    break; // not yet arrived / admission cap: keep it pending
                }
                match self.tenants[t].pending.take() {
                    Some(PendingOp::Wait) => {
                        if n == 1 {
                            // Degenerate single-tenant case: forward the barrier verbatim so
                            // the op stream stays bit-identical to the inner source.
                            return SourcePoll::Op(ProgramOp::TaskWait);
                        }
                        // Tenant-local barrier: drain this tenant's own in-flight set before
                        // releasing its later ops; other tenants are unaffected.
                        self.tenants[t].gated = self.tenants[t].resident > 0;
                        continue;
                    }
                    Some(PendingOp::Spawn { spec, arrival }) => {
                        return self.release_spawn(t, spec, arrival);
                    }
                    None => unreachable!("pending op was just matched"),
                }
            }
        }
        if self.tenants.iter().all(|t| t.done && t.pending.is_none()) {
            SourcePoll::Done
        } else {
            SourcePoll::Blocked
        }
    }

    fn spec(&self, sw_id: u64) -> &TaskSpec {
        &self
            .resident
            .get(&sw_id)
            .unwrap_or_else(|| panic!("T{sw_id} is not resident (released and unretired)"))
            .spec
    }

    fn retire(&mut self, sw_id: u64) {
        let now = self.now;
        self.retire_at(sw_id, now);
    }

    fn retire_at(&mut self, sw_id: u64, now: u64) {
        let task = self
            .resident
            .remove(&sw_id)
            .unwrap_or_else(|| panic!("retire of non-resident task T{sw_id}"));
        let state = &mut self.tenants[task.tenant as usize];
        debug_assert!(state.resident > 0, "tenant retire with no resident tasks");
        state.resident -= 1;
        state.source.retire_at(task.local_id, now);
        state.tasks_retired += 1;
        state.last_retire = state.last_retire.max(now);
        let turnaround = now.saturating_sub(task.arrival);
        state.turnaround_total = state
            .turnaround_total
            .checked_add(turnaround)
            .expect("tenant turnaround total overflows u64");
        *state.histogram.entry(turnaround).or_insert(0) += 1;
    }

    fn advance_to(&mut self, now: u64) {
        self.now = self.now.max(now);
    }

    fn max_deps(&self) -> usize {
        self.max_deps
    }

    fn resident(&self) -> usize {
        self.resident.len()
    }

    fn peak_resident(&self) -> usize {
        self.peak_resident
    }

    fn tenant_reports(&self) -> Vec<TenantReport> {
        self.tenants
            .iter()
            .map(|t| {
                let (p50, p90, p99) = exact_percentiles(&t.histogram, t.tasks_retired);
                let first = t.first_arrival.unwrap_or(0);
                TenantReport {
                    name: t.name.clone(),
                    tasks: t.tasks_retired,
                    first_arrival: first,
                    last_retire: t.last_retire,
                    makespan: t.last_retire.saturating_sub(first),
                    turnaround_total: t.turnaround_total,
                    p50,
                    p90,
                    p99,
                }
            })
            .collect()
    }

    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        Some(self)
    }
}

/// Exact nearest-rank percentiles over a value → count histogram: the p-th percentile is the
/// smallest value whose cumulative count reaches `ceil(p/100 × total)`.
fn exact_percentiles(histogram: &FxHashMap<u64, u64>, total: u64) -> (u64, u64, u64) {
    if total == 0 {
        return (0, 0, 0);
    }
    let mut values: Vec<(u64, u64)> = histogram.iter().map(|(&v, &c)| (v, c)).collect();
    values.sort_unstable();
    let rank = |p: u64| total.saturating_mul(p).div_ceil(100).max(1);
    let mut targets = [(rank(50), 0u64), (rank(90), 0u64), (rank(99), 0u64)];
    let mut cumulative = 0u64;
    for (value, count) in values {
        cumulative += count;
        for (target, out) in &mut targets {
            if *target != u64::MAX && cumulative >= *target {
                *out = value;
                *target = u64::MAX; // resolved
            }
        }
        if targets.iter().all(|(t, _)| *t == u64::MAX) {
            break;
        }
    }
    (targets[0].1, targets[1].1, targets[2].1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dep::Dependence;
    use crate::program::ProgramBuilder;
    use crate::source::MaterializedSource;
    use crate::task::Payload;

    fn chain(name: &str, tasks: u64) -> Box<dyn TaskSource> {
        let mut b = ProgramBuilder::new(name);
        for i in 0..tasks {
            let mut deps = vec![Dependence::write(0x1000 + i * 64)];
            if i > 0 {
                deps.push(Dependence::read(0x1000 + (i - 1) * 64));
            }
            b.spawn(Payload::compute(100), deps);
        }
        b.taskwait();
        Box::new(MaterializedSource::new(&b.build()))
    }

    fn drain(src: &mut TenantSource, now: u64) -> Vec<ProgramOp> {
        src.advance_to(now);
        let mut ops = Vec::new();
        loop {
            match src.poll() {
                SourcePoll::Op(op) => {
                    if let ProgramOp::Spawn(s) = &op {
                        src.retire_at(s.id.raw(), now + 1);
                    }
                    ops.push(op);
                }
                SourcePoll::Blocked => break,
                SourcePoll::Done => break,
            }
        }
        ops
    }

    #[test]
    fn single_tenant_batch_is_a_pure_passthrough() {
        let mut b = ProgramBuilder::new("p");
        b.spawn(Payload::compute(10), vec![Dependence::write(0x10)]);
        b.spawn(Payload::compute(20), vec![Dependence::read(0x10), Dependence::write(0x20)]);
        b.taskwait();
        b.spawn(Payload::compute(30), vec![]);
        let program = b.build();

        let mut merged = TenantSet::new()
            .tenant("solo", Box::new(MaterializedSource::new(&program)), ArrivalProcess::BatchAtZero)
            .into_source(SimRng::new(7));
        let mut inner = MaterializedSource::new(&program);

        loop {
            let got = merged.poll();
            let want = inner.poll();
            assert_eq!(got, want, "merged 1-tenant stream must be bit-identical");
            match got {
                SourcePoll::Op(ProgramOp::Spawn(s)) => {
                    assert_eq!(merged.spec(s.id.raw()), inner.spec(s.id.raw()));
                    merged.retire_at(s.id.raw(), 5);
                    inner.retire(s.id.raw());
                }
                SourcePoll::Done => break,
                _ => {}
            }
        }
        let reports = merged.tenant_reports();
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].tasks, 3);
        assert_eq!(reports[0].first_arrival, 0);
    }

    #[test]
    fn two_tenants_interleave_with_disjoint_addresses_and_dense_global_ids() {
        let mut src = TenantSet::new()
            .tenant("a", chain("a", 3), ArrivalProcess::BatchAtZero)
            .tenant("b", chain("b", 3), ArrivalProcess::BatchAtZero)
            .into_source(SimRng::new(1));
        let ops = drain(&mut src, 0);
        let spawns: Vec<&TaskSpec> = ops
            .iter()
            .filter_map(|op| match op {
                ProgramOp::Spawn(s) => Some(s),
                _ => None,
            })
            .collect();
        assert_eq!(spawns.len(), 6);
        // Global IDs are dense in release order.
        for (i, s) in spawns.iter().enumerate() {
            assert_eq!(s.id.raw(), i as u64);
        }
        // Round-robin: tenants alternate while both are pullable.
        let mut data = src.take_run_data();
        assert_eq!(data.names, vec!["a".to_string(), "b".to_string()]);
        assert_eq!(data.assignment, vec![0, 1, 0, 1, 0, 1]);
        // Tenant-local `taskwait`s were consumed internally, never forwarded.
        assert!(ops.iter().all(|op| !matches!(op, ProgramOp::TaskWait)));
        // Tenant 1's addresses live in a disjoint window.
        for s in &spawns {
            let tenant = data.assignment[s.id.raw() as usize];
            for d in &s.deps {
                assert_eq!(d.addr >> TENANT_ADDR_SHIFT, tenant as u64);
            }
        }
        // Taking the run data drains the assignment.
        data = src.take_run_data();
        assert!(data.assignment.is_empty());
    }

    #[test]
    fn arrivals_gate_spawns_until_time_advances() {
        let mut src = TenantSet::new()
            .tenant("t", chain("t", 4), ArrivalProcess::Bursty { burst: 2, period: 1_000 })
            .into_source(SimRng::new(2));
        // At time 0 only the first burst (2 tasks) is pullable.
        src.advance_to(0);
        assert!(matches!(src.poll(), SourcePoll::Op(ProgramOp::Spawn(_))));
        assert!(matches!(src.poll(), SourcePoll::Op(ProgramOp::Spawn(_))));
        assert_eq!(src.poll(), SourcePoll::Blocked);
        // The second burst arrives at cycle 1000.
        src.advance_to(999);
        assert_eq!(src.poll(), SourcePoll::Blocked);
        src.advance_to(1_000);
        assert!(matches!(src.poll(), SourcePoll::Op(ProgramOp::Spawn(_))));
    }

    #[test]
    fn partitioned_policy_caps_per_tenant_in_flight() {
        let mut src = TenantSet::new()
            .tenant("greedy", chain("g", 8), ArrivalProcess::BatchAtZero)
            .with_policy(TenantTrackerPolicy::Partitioned { per_tenant_entries: 2 })
            .into_source(SimRng::new(3));
        src.advance_to(0);
        assert!(matches!(src.poll(), SourcePoll::Op(ProgramOp::Spawn(_))));
        assert!(matches!(src.poll(), SourcePoll::Op(ProgramOp::Spawn(_))));
        assert_eq!(src.poll(), SourcePoll::Blocked, "admission cap reached");
        src.retire_at(0, 10);
        assert!(matches!(src.poll(), SourcePoll::Op(ProgramOp::Spawn(_))));
        assert_eq!(src.resident(), 2);
    }

    #[test]
    fn turnaround_percentiles_are_exact_nearest_rank() {
        let mut h = FxHashMap::default();
        // 100 samples: values 1..=100, one each.
        for v in 1..=100u64 {
            h.insert(v, 1);
        }
        assert_eq!(exact_percentiles(&h, 100), (50, 90, 99));
        // Skewed: 99 fast + 1 slow.
        let mut h = FxHashMap::default();
        h.insert(10, 99);
        h.insert(1_000, 1);
        assert_eq!(exact_percentiles(&h, 100), (10, 10, 10));
        let mut h = FxHashMap::default();
        h.insert(10, 98);
        h.insert(1_000, 2);
        assert_eq!(exact_percentiles(&h, 100), (10, 10, 1_000));
        assert_eq!(exact_percentiles(&FxHashMap::default(), 0), (0, 0, 0));
    }

    #[test]
    fn poisson_arrivals_replay_bit_exact_from_seed_and_config() {
        let process = ArrivalProcess::Poisson { mean_interarrival: 250 };
        let a: Vec<u64> = {
            let mut g = ArrivalGen::new(process, SimRng::new(9).stream("tenant-arrivals", 0));
            (0..500).map(|_| g.next_arrival()).collect()
        };
        let b: Vec<u64> = {
            let mut g = ArrivalGen::new(process, SimRng::new(9).stream("tenant-arrivals", 0));
            (0..500).map(|_| g.next_arrival()).collect()
        };
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0] <= w[1]), "arrivals are monotone");
        let mean_gap = a.last().unwrap() / 499;
        assert!((100..=500).contains(&mean_gap), "mean gap {mean_gap} far from 250");
    }

    #[test]
    fn tenant_reports_sum_to_the_released_task_count() {
        let mut src = TenantSet::new()
            .tenant("a", chain("a", 5), ArrivalProcess::BatchAtZero)
            .tenant("b", chain("b", 3), ArrivalProcess::Poisson { mean_interarrival: 1 })
            .into_source(SimRng::new(4));
        let _ = drain(&mut src, 1_000_000);
        let reports = src.tenant_reports();
        assert_eq!(reports.iter().map(|r| r.tasks).sum::<u64>(), 8);
        for r in &reports {
            assert!(r.p50 <= r.p90 && r.p90 <= r.p99);
            assert!(r.turnaround_total >= r.p50 * (r.tasks / 2));
        }
    }
}
