//! Dependence annotations.
//!
//! A task annotates each pointer parameter with a [`Direction`]: whether the task reads the
//! pointed-to data (`in`), writes it (`out`) or both (`inout`). Section III-A of the paper
//! defines when a later task *B* depends on an earlier task *A*:
//!
//! * **RAW** — A writes position *p*, B reads *p*;
//! * **WAW** — A writes position *p*, B writes *p*;
//! * **WAR** — A reads position *p*, B writes *p*.
//!
//! [`Direction::creates_dependence`] encodes exactly this table and is the single source of truth
//! used by the reference graph builder, the software dependence tracker of Nanos-SW and the Picos
//! hardware model, so all three are guaranteed to agree on semantics (their *timing* of course
//! differs — that is the whole point of the paper).

/// Virtual address of a task parameter used for dependence tracking.
///
/// The paper's Picos encodes addresses as two 32-bit packets (high/low); we keep the full 64-bit
/// value and let the packet codec split it.
pub type DepAddr = u64;

/// How a task accesses one of its annotated pointer parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Direction {
    /// The task only reads through the pointer (`in` clause).
    In,
    /// The task only writes through the pointer (`out` clause).
    Out,
    /// The task both reads and writes through the pointer (`inout` clause).
    InOut,
}

impl Default for Direction {
    /// Defaults to [`Direction::In`], the weakest access — used only to zero-initialise inline
    /// buffers (e.g. `tis_sim::InlineVec`), never as a semantic fallback.
    fn default() -> Self {
        Direction::In
    }
}

impl Direction {
    /// All directions, useful for exhaustive tests and property generators.
    pub const ALL: [Direction; 3] = [Direction::In, Direction::Out, Direction::InOut];

    /// Whether this access reads the data.
    pub fn reads(self) -> bool {
        matches!(self, Direction::In | Direction::InOut)
    }

    /// Whether this access writes the data.
    pub fn writes(self) -> bool {
        matches!(self, Direction::Out | Direction::InOut)
    }

    /// Whether an *earlier* access with direction `self` followed by a *later* access with
    /// direction `later` on the same address creates a dependence (RAW, WAW or WAR).
    ///
    /// Two reads never conflict; every other combination does.
    pub fn creates_dependence(self, later: Direction) -> bool {
        self.writes() || later.writes()
    }

    /// The combined direction of two accesses by the *same* task to the *same* address: the
    /// union of their read/write sets (`in` + `out` = `inout`, `in` + `in` = `in`, …).
    ///
    /// Used to collapse duplicate same-address annotations at submission: a task declaring
    /// `[read(a), write(a)]` occupies one address-table slot with direction `inout`, exactly as
    /// if the programmer had written the collapsed clause.
    pub fn merge(self, other: Direction) -> Direction {
        match (self.reads() || other.reads(), self.writes() || other.writes()) {
            (true, true) => Direction::InOut,
            (true, false) => Direction::In,
            (false, true) => Direction::Out,
            (false, false) => unreachable!("every Direction reads or writes"),
        }
    }

    /// The 2-bit encoding used in the Picos submission packet `directionality` field.
    ///
    /// The concrete bit assignment is an implementation detail of our packet codec (the paper
    /// does not publish Picos' internal encoding); what matters is that it round-trips.
    pub fn encode(self) -> u32 {
        match self {
            Direction::In => 0b01,
            Direction::Out => 0b10,
            Direction::InOut => 0b11,
        }
    }

    /// Decodes the 2-bit directionality field. Returns `None` for the reserved value `0b00`.
    pub fn decode(bits: u32) -> Option<Direction> {
        match bits & 0b11 {
            0b01 => Some(Direction::In),
            0b10 => Some(Direction::Out),
            0b11 => Some(Direction::InOut),
            _ => None,
        }
    }
}

impl core::fmt::Display for Direction {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = match self {
            Direction::In => "in",
            Direction::Out => "out",
            Direction::InOut => "inout",
        };
        f.write_str(s)
    }
}

/// One annotated pointer parameter of a task: an address plus its access direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Dependence {
    /// Address of the data the task accesses.
    pub addr: DepAddr,
    /// How the task accesses it.
    pub dir: Direction,
}

impl Dependence {
    /// Creates a dependence annotation.
    pub fn new(addr: DepAddr, dir: Direction) -> Self {
        Dependence { addr, dir }
    }

    /// Shorthand for an `in` annotation.
    pub fn read(addr: DepAddr) -> Self {
        Dependence::new(addr, Direction::In)
    }

    /// Shorthand for an `out` annotation.
    pub fn write(addr: DepAddr) -> Self {
        Dependence::new(addr, Direction::Out)
    }

    /// Shorthand for an `inout` annotation.
    pub fn read_write(addr: DepAddr) -> Self {
        Dependence::new(addr, Direction::InOut)
    }

    /// Whether an earlier task carrying `self` conflicts with a later task carrying `later`
    /// (i.e. same address and a RAW/WAW/WAR relationship).
    pub fn conflicts_with(&self, later: &Dependence) -> bool {
        self.addr == later.addr && self.dir.creates_dependence(later.dir)
    }
}

impl core::fmt::Display for Dependence {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}(0x{:x})", self.dir, self.addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_and_writes_classification() {
        assert!(Direction::In.reads() && !Direction::In.writes());
        assert!(!Direction::Out.reads() && Direction::Out.writes());
        assert!(Direction::InOut.reads() && Direction::InOut.writes());
    }

    #[test]
    fn dependence_table_matches_paper_section_iii_a() {
        use Direction::*;
        // (earlier, later, expected dependence?)
        let cases = [
            (In, In, false),     // read after read: no dependence
            (In, Out, true),     // WAR
            (In, InOut, true),   // WAR
            (Out, In, true),     // RAW
            (Out, Out, true),    // WAW
            (Out, InOut, true),  // RAW+WAW
            (InOut, In, true),   // RAW
            (InOut, Out, true),  // WAW+WAR
            (InOut, InOut, true),
        ];
        for (a, b, expected) in cases {
            assert_eq!(a.creates_dependence(b), expected, "{a} -> {b}");
        }
    }

    #[test]
    fn merge_is_the_union_of_access_sets() {
        use Direction::*;
        for a in Direction::ALL {
            for b in Direction::ALL {
                let m = a.merge(b);
                assert_eq!(m.reads(), a.reads() || b.reads(), "{a} + {b}");
                assert_eq!(m.writes(), a.writes() || b.writes(), "{a} + {b}");
                assert_eq!(m, b.merge(a), "merge is commutative");
            }
        }
        assert_eq!(In.merge(Out), InOut);
        assert_eq!(In.merge(In), In);
        assert_eq!(Out.merge(InOut), InOut);
    }

    #[test]
    fn encode_decode_roundtrip() {
        for d in Direction::ALL {
            assert_eq!(Direction::decode(d.encode()), Some(d));
        }
        assert_eq!(Direction::decode(0), None);
        // Only the low two bits participate.
        assert_eq!(Direction::decode(0b101), Some(Direction::In));
    }

    #[test]
    fn conflicts_require_same_address() {
        let a = Dependence::write(0x1000);
        let b = Dependence::read(0x1000);
        let c = Dependence::read(0x2000);
        assert!(a.conflicts_with(&b));
        assert!(!a.conflicts_with(&c));
        assert!(!b.conflicts_with(&c));
        // read-read on same address: not a conflict
        assert!(!Dependence::read(0x1000).conflicts_with(&b));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Dependence::read_write(0xff).to_string(), "inout(0xff)");
        assert_eq!(Direction::Out.to_string(), "out");
    }
}
