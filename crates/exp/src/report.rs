//! Structured sweep results and their machine-readable serialisation.

use tis_analyze::AnalysisConfig;
use tis_bench::{Json, Platform};
use tis_machine::{FaultConfig, MemoryModel};
use tis_obs::{CriticalPath, ObsConfig};
use tis_picos::TrackerConfig;
use tis_taskmodel::TenantReport;

/// Per-tenant serving measurements of one co-scheduled cell.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantCellData {
    /// The scenario key the cell ran under (e.g. `t4-burst64x200000-part`).
    pub scenario: String,
    /// Per-tenant serving reports, in tenant order (tenant 0 is the cell's own shared
    /// program; co-tenants follow).
    pub reports: Vec<TenantReport>,
    /// Jain fairness index over the tenants' throughputs (1.0 = perfectly even service).
    pub jain: f64,
}

/// The measurements of one grid cell.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepCell {
    /// Workload row label (catalog label or synthetic spec name).
    pub workload: String,
    /// Workload family key (benchmark name or synthetic family).
    pub family: String,
    /// Core count of the simulated machine.
    pub cores: usize,
    /// Memory-system model the cell was simulated on.
    pub memory: MemoryModel,
    /// Platform that ran the cell.
    pub platform: Platform,
    /// Picos tracker capacities in effect.
    pub tracker: TrackerConfig,
    /// Fault schedule the cell ran under (with its per-cell derived seed resolved, so the cell
    /// is replayable from this value alone). [`FaultConfig::none`] for fault-free cells.
    pub fault: FaultConfig,
    /// Messages the fault layer dropped (and the retry protocol recovered).
    pub fault_drops: u64,
    /// Messages the fault layer delayed in flight.
    pub fault_delays: u64,
    /// Retransmissions issued by the timeout/retry protocol (message legs plus tracker
    /// resubmits).
    pub fault_retries: u64,
    /// Tracker entries transiently lost and resubmitted.
    pub fault_tracker_losses: u64,
    /// Total cycles spent detecting faults and recovering (timeouts, backoff, resubmits).
    pub fault_recovery_cycles: u64,
    /// Number of tasks in the instantiated program.
    pub tasks: usize,
    /// Mean serial task duration in cycles (the paper's granularity axis).
    pub mean_task_cycles: f64,
    /// Serial baseline of the instantiated program, in cycles.
    pub serial_cycles: u64,
    /// Measured makespan, in cycles.
    pub total_cycles: u64,
    /// Measured speedup over the serial baseline.
    pub speedup: f64,
    /// Single-core lifetime overhead of the platform/tracker pair (Task-Chain, 1 dep) — the
    /// Figure 7 metric, reported for context.
    pub lifetime_overhead: f64,
    /// Measured maximum task throughput of the scheduling system at this cell's core count,
    /// in tasks per cycle (empty-payload Task-Free probe).
    pub mtt_tasks_per_cycle: f64,
    /// The MTT-derived maximum speedup `min(cores, mean_task_cycles × mtt_tasks_per_cycle)`
    /// for this cell's core count.
    pub mtt_bound: f64,
    /// Number of coherent memory accesses the runtimes issued during the cell's run.
    pub mem_accesses: u64,
    /// Total stall cycles those accesses charged — the metric `sweep_memory_scaling` compares
    /// between the snooping-bus and directory/NoC models.
    pub mem_stall_cycles: u64,
    /// Mean stall cycles per access (`mem_stall_cycles / mem_accesses`).
    pub mean_mem_latency: f64,
    /// Total cycles NoC messages spent queueing for busy links — non-zero only on a contended
    /// directory mesh; the metric `sweep_noc_contention` tracks.
    pub noc_link_wait_cycles: u64,
    /// Maximum observed occupancy of one directed mesh link, in flits (zero off the contended
    /// mesh).
    pub max_link_occupancy: u64,
    /// Analysis passes the cell ran under. [`AnalysisConfig::off`] for unanalysed cells; the
    /// passes are pure observers, so the simulated cycle counts are identical either way.
    pub analysis: AnalysisConfig,
    /// Conflicting frontier pairs the race detector proved happens-before-ordered in this
    /// cell's trace (zero when race detection was off).
    pub race_pairs_checked: u64,
    /// Per-tenant serving metrics for co-scheduled cells (`None` on the single-program path,
    /// so legacy sweeps — and every checked-in baseline — render byte-identical JSON). Boxed
    /// so the common single-tenant cell stays small.
    pub tenant: Option<Box<TenantCellData>>,
    /// What the cell's observer collected, for observed cells only (`None` otherwise — and
    /// observation is a pure tap, so every other field is identical either way). Boxed so the
    /// common unobserved cell stays small.
    pub obs: Option<Box<ObsCellData>>,
}

/// Everything one observed cell recorded: counts of the event streams, the machine-checked
/// critical-path decomposition, and the rendered Perfetto/metrics documents that
/// [`SweepReport::write_obs_artifacts_if_requested`] writes out as `TRACE_`/`METRICS_` files.
#[derive(Debug, Clone, PartialEq)]
pub struct ObsCellData {
    /// The observer configuration the cell ran under.
    pub config: ObsConfig,
    /// Task-lifecycle events observed.
    pub task_events: u64,
    /// Gauge-timeline samples taken.
    pub samples: u64,
    /// The critical-path decomposition of the cell's makespan (segment totals sum to the
    /// makespan exactly).
    pub critical: CriticalPath,
    /// Per-tenant critical-path decompositions, in tenant order — populated only for
    /// co-scheduled cells (empty on the single-program path). Each decomposition sums to
    /// that tenant's own makespan.
    pub tenant_critical: Vec<CriticalPath>,
    /// The rendered Chrome trace-event / Perfetto document.
    pub trace_json: String,
    /// The rendered metrics document (counters, histograms, gauge timeline).
    pub metrics_json: String,
}

impl SweepCell {
    /// Whether the measured speedup respects the MTT-derived bound. The bound uses the
    /// throughput measured at the cell's own core count, so no parallelisation slack is
    /// needed; a violation is a cost-model inconsistency.
    pub fn within_bound(&self) -> bool {
        self.speedup <= self.mtt_bound
    }
}

/// The complete result of one sweep, in grid order.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepReport {
    /// The sweep's name.
    pub name: String,
    /// The seed synthetic workloads were generated from.
    pub seed: u64,
    /// One entry per grid cell, in grid order (independent of how the sweep was scheduled
    /// across workers).
    pub cells: Vec<SweepCell>,
}

impl SweepReport {
    /// Cells whose measured speedup exceeds the MTT-derived bound — each one is either a
    /// model bug or a discovery.
    pub fn bound_violations(&self) -> Vec<&SweepCell> {
        self.cells.iter().filter(|c| !c.within_bound()).collect()
    }

    /// Machine-readable snapshot, rendered into [`Self::artifact_filename`] by
    /// [`write_json_if_requested`](Self::write_json_if_requested).
    pub fn to_json(&self) -> Json {
        let cells = self
            .cells
            .iter()
            .map(|c| {
                let mut pairs = Json::obj([
                    ("workload", Json::Str(c.workload.clone())),
                    ("family", Json::Str(c.family.clone())),
                    ("cores", Json::UInt(c.cores as u64)),
                    ("memory", Json::Str(c.memory.key().to_string())),
                    // The NoC-contention coordinate ("none" / "ideal" / the link-parameter
                    // key): part of the cell's identity, so `bench-diff` keeps rows
                    // label-stable when a sweep varies the contention sub-axis.
                    ("noc", Json::Str(c.memory.noc_key())),
                    ("platform", Json::Str(c.platform.key().to_string())),
                    (
                        "tracker",
                        Json::obj([
                            ("task_memory_entries", Json::UInt(c.tracker.task_memory_entries as u64)),
                            (
                                "address_table_entries",
                                Json::UInt(c.tracker.address_table_entries as u64),
                            ),
                        ]),
                    ),
                    ("tasks", Json::UInt(c.tasks as u64)),
                    ("mean_task_cycles", Json::Num(c.mean_task_cycles)),
                    ("serial_cycles", Json::UInt(c.serial_cycles)),
                    ("cycles", Json::UInt(c.total_cycles)),
                    ("speedup_over_serial", Json::Num(c.speedup)),
                    ("lifetime_overhead_cycles", Json::Num(c.lifetime_overhead)),
                    ("mtt_tasks_per_cycle", Json::Num(c.mtt_tasks_per_cycle)),
                    ("mtt_speedup_bound", Json::Num(c.mtt_bound)),
                    ("mem_accesses", Json::UInt(c.mem_accesses)),
                    ("mem_stall_cycles", Json::UInt(c.mem_stall_cycles)),
                    ("mean_mem_latency", Json::Num(c.mean_mem_latency)),
                    ("noc_link_wait_cycles", Json::UInt(c.noc_link_wait_cycles)),
                    ("max_link_occupancy", Json::UInt(c.max_link_occupancy)),
                ]);
                // Fault keys appear only for cells whose fault schedule engages, so fault-free
                // sweeps (and every pre-existing checked-in baseline) stay byte-identical.
                if c.fault.engages() {
                    if let Json::Obj(entries) = &mut pairs {
                        entries.extend([
                            ("fault".to_string(), Json::Str(c.fault.key())),
                            ("fault_drops".to_string(), Json::UInt(c.fault_drops)),
                            ("fault_delays".to_string(), Json::UInt(c.fault_delays)),
                            ("fault_retries".to_string(), Json::UInt(c.fault_retries)),
                            ("fault_tracker_losses".to_string(), Json::UInt(c.fault_tracker_losses)),
                            ("fault_recovery_cycles".to_string(), Json::UInt(c.fault_recovery_cycles)),
                        ]);
                    }
                }
                // Analysis keys likewise appear only for analysed cells, keeping every
                // analysis-off artifact (and all checked-in baselines) byte-identical.
                if c.analysis.engages() {
                    if let Json::Obj(entries) = &mut pairs {
                        entries.extend([
                            ("analysis".to_string(), Json::Str(c.analysis.key().to_string())),
                            ("race_pairs_checked".to_string(), Json::UInt(c.race_pairs_checked)),
                        ]);
                    }
                }
                // Tenant keys appear only for co-scheduled cells, so single-tenant sweeps
                // (and every pre-existing checked-in baseline) stay byte-identical.
                if let Some(tenant) = &c.tenant {
                    if let Json::Obj(entries) = &mut pairs {
                        let reports = tenant
                            .reports
                            .iter()
                            .map(|r| {
                                Json::obj([
                                    ("name", Json::Str(r.name.clone())),
                                    ("tasks", Json::UInt(r.tasks)),
                                    ("first_arrival", Json::UInt(r.first_arrival)),
                                    ("last_retire", Json::UInt(r.last_retire)),
                                    ("makespan", Json::UInt(r.makespan)),
                                    ("mean_turnaround", Json::Num(r.mean_turnaround())),
                                    ("p50_turnaround", Json::UInt(r.p50)),
                                    ("p90_turnaround", Json::UInt(r.p90)),
                                    ("p99_turnaround", Json::UInt(r.p99)),
                                    ("throughput_tasks_per_cycle", Json::Num(r.throughput())),
                                ])
                            })
                            .collect();
                        entries.extend([
                            ("tenants".to_string(), Json::Str(tenant.scenario.clone())),
                            ("tenant_jain_fairness".to_string(), Json::Num(tenant.jain)),
                            ("tenant_reports".to_string(), Json::Arr(reports)),
                        ]);
                    }
                }
                // Obs keys appear only for observed cells (same byte-identity rule). The full
                // trace/metrics documents are separate TRACE_/METRICS_ artifacts; the sweep
                // report inlines only the critical-path summary and stream counts.
                if let Some(obs) = &c.obs {
                    if let Json::Obj(entries) = &mut pairs {
                        entries.extend([
                            (
                                "obs_sample_interval".to_string(),
                                Json::UInt(obs.config.sample_interval),
                            ),
                            ("obs_task_events".to_string(), Json::UInt(obs.task_events)),
                            ("obs_samples".to_string(), Json::UInt(obs.samples)),
                            (
                                "critical_path".to_string(),
                                Json::obj([
                                    ("task_body", Json::UInt(obs.critical.task_body)),
                                    ("memory_stall", Json::UInt(obs.critical.memory_stall)),
                                    ("dispatch_wait", Json::UInt(obs.critical.dispatch_wait)),
                                    ("scheduler", Json::UInt(obs.critical.scheduler)),
                                    ("makespan", Json::UInt(obs.critical.makespan)),
                                ]),
                            ),
                        ]);
                        // Per-tenant decompositions ride along only for observed co-scheduled
                        // cells, keeping every single-tenant observed artifact byte-identical.
                        if !obs.tenant_critical.is_empty() {
                            let per_tenant = obs
                                .tenant_critical
                                .iter()
                                .map(|cp| {
                                    Json::obj([
                                        ("task_body", Json::UInt(cp.task_body)),
                                        ("memory_stall", Json::UInt(cp.memory_stall)),
                                        ("dispatch_wait", Json::UInt(cp.dispatch_wait)),
                                        ("scheduler", Json::UInt(cp.scheduler)),
                                        ("makespan", Json::UInt(cp.makespan)),
                                    ])
                                })
                                .collect();
                            entries.push((
                                "tenant_critical_paths".to_string(),
                                Json::Arr(per_tenant),
                            ));
                        }
                    }
                }
                pairs
            })
            .collect();
        Json::obj([
            ("experiment", Json::Str(self.name.clone())),
            ("seed", Json::UInt(self.seed)),
            ("cells", Json::Arr(cells)),
        ])
    }

    /// Renders an aligned text table of all cells, one row per cell in grid order. The `noc`
    /// column carries the contention coordinate, so two contended cells at different link
    /// parameter points stay distinguishable in text output, not just in JSON.
    pub fn render_table(&self) -> String {
        let label_width =
            self.cells.iter().map(|c| c.workload.len()).max().unwrap_or(8).max("workload".len());
        let noc_width = self
            .cells
            .iter()
            .map(|c| c.memory.noc_key().len())
            .max()
            .unwrap_or(3)
            .max("noc".len());
        // The fault column only appears when some cell actually runs under an engaging fault
        // schedule, so fault-free sweep tables render exactly as before the fault axis existed.
        let fault_width = self
            .cells
            .iter()
            .filter(|c| c.fault.engages())
            .map(|c| c.fault.key().len())
            .max()
            .map(|w| w.max("fault".len()));
        // Same rule for the analysis column: unanalysed sweeps render exactly as before.
        let analysis_width = self
            .cells
            .iter()
            .filter(|c| c.analysis.engages())
            .map(|c| c.analysis.key().len())
            .max()
            .map(|w| w.max("analysis".len()));
        // And for the tenants column: single-tenant sweeps render exactly as before.
        let tenant_width = self
            .cells
            .iter()
            .filter_map(|c| c.tenant.as_ref())
            .map(|t| t.scenario.len())
            .max()
            .map(|w| w.max("tenants".len()));
        let mut out = String::new();
        out.push_str(&format!(
            "{:<label_width$} | {:>5} | {:>10} | {:>noc_width$} | {:>9} | {:>13} | {:>6} | {:>8} | {:>9} | {:>8} | {:>6}",
            "workload", "cores", "memory", "noc", "platform", "tracker", "tasks", "speedup", "MTT bound", "mem lat", "within"
        ));
        if let Some(fault_width) = fault_width {
            out.push_str(&format!(" | {:>fault_width$}", "fault"));
        }
        if let Some(analysis_width) = analysis_width {
            out.push_str(&format!(" | {:>analysis_width$}", "analysis"));
        }
        if let Some(tenant_width) = tenant_width {
            out.push_str(&format!(" | {:>tenant_width$}", "tenants"));
        }
        out.push('\n');
        out.push_str(&"-".repeat(
            label_width
                + noc_width
                + 103
                + fault_width.map_or(0, |w| w + 3)
                + analysis_width.map_or(0, |w| w + 3)
                + tenant_width.map_or(0, |w| w + 3),
        ));
        out.push('\n');
        for c in &self.cells {
            out.push_str(&format!(
                "{:<label_width$} | {:>5} | {:>10} | {:>noc_width$} | {:>9} | {:>13} | {:>6} | {:>7.2}x | {:>8.2}x | {:>8.2} | {:>6}",
                c.workload,
                c.cores,
                c.memory.key(),
                c.memory.noc_key(),
                c.platform.key(),
                c.tracker.label(),
                c.tasks,
                c.speedup,
                c.mtt_bound,
                c.mean_mem_latency,
                if c.within_bound() { "yes" } else { "NO" },
            ));
            if let Some(fault_width) = fault_width {
                out.push_str(&format!(" | {:>fault_width$}", c.fault.key()));
            }
            if let Some(analysis_width) = analysis_width {
                out.push_str(&format!(" | {:>analysis_width$}", c.analysis.key()));
            }
            if let Some(tenant_width) = tenant_width {
                let scenario = c.tenant.as_ref().map_or("single", |t| t.scenario.as_str());
                out.push_str(&format!(" | {:>tenant_width$}", scenario));
            }
            out.push('\n');
        }
        out
    }

    /// The artifact filename this report writes: `BENCH_sweep_<name>.json`, with the sweep name
    /// sanitised to `[A-Za-z0-9_-]`. Per-sweep names let CI collect several sweeps' artifacts
    /// into one directory without collisions.
    pub fn artifact_filename(&self) -> String {
        format!("BENCH_sweep_{}.json", self.sanitised_name())
    }

    /// The sweep name restricted to `[A-Za-z0-9_-]`, shared by every artifact filename.
    fn sanitised_name(&self) -> String {
        self.name
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() || c == '-' || c == '_' { c } else { '-' })
            .collect()
    }

    /// Writes [`Self::artifact_filename`] into the directory named by the `TIS_BENCH_JSON`
    /// environment variable (same contract as `tis_bench::write_fig09_json_if_requested`:
    /// unset means no side effect, empty means the current directory).
    ///
    /// # Errors
    ///
    /// Propagates any I/O error from creating the directory or writing the file.
    pub fn write_json_if_requested(&self) -> std::io::Result<Option<std::path::PathBuf>> {
        let Some(dir) = std::env::var_os("TIS_BENCH_JSON") else {
            return Ok(None);
        };
        let dir = if dir.is_empty() { std::path::PathBuf::from(".") } else { dir.into() };
        std::fs::create_dir_all(&dir)?;
        let path = dir.join(self.artifact_filename());
        std::fs::write(&path, self.to_json().render())?;
        Ok(Some(path))
    }

    /// Writes every observed cell's trace and metrics documents as
    /// `TRACE_<sweep>-<cell>.json` / `METRICS_<sweep>-<cell>.json` under the `TIS_BENCH_JSON`
    /// directory (same contract as [`Self::write_json_if_requested`]: unset means no side
    /// effect, empty means the current directory). Unobserved sweeps write nothing and create
    /// no directory. Returns the paths written.
    ///
    /// # Errors
    ///
    /// Propagates any I/O error from creating the directory or writing a file.
    pub fn write_obs_artifacts_if_requested(&self) -> std::io::Result<Vec<std::path::PathBuf>> {
        let mut written = Vec::new();
        let Some(dir) = std::env::var_os("TIS_BENCH_JSON") else {
            return Ok(written);
        };
        if self.cells.iter().all(|c| c.obs.is_none()) {
            return Ok(written);
        }
        let dir = if dir.is_empty() { std::path::PathBuf::from(".") } else { dir.into() };
        std::fs::create_dir_all(&dir)?;
        let name = self.sanitised_name();
        for (i, cell) in self.cells.iter().enumerate() {
            let Some(obs) = &cell.obs else { continue };
            for (prefix, doc) in [("TRACE", &obs.trace_json), ("METRICS", &obs.metrics_json)] {
                let path = dir.join(format!("{prefix}_{name}-{i:03}.json"));
                std::fs::write(&path, doc)?;
                written.push(path);
            }
        }
        Ok(written)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(speedup: f64, bound: f64) -> SweepCell {
        SweepCell {
            workload: "synth-chain x10 t100".into(),
            family: "synth-chain".into(),
            cores: 4,
            memory: MemoryModel::SnoopBus,
            platform: Platform::Phentos,
            tracker: TrackerConfig::default(),
            tasks: 10,
            mean_task_cycles: 100.0,
            serial_cycles: 1_000,
            total_cycles: 500,
            speedup,
            lifetime_overhead: 162.0,
            mtt_tasks_per_cycle: 1.0 / 162.0,
            mtt_bound: bound,
            mem_accesses: 120,
            mem_stall_cycles: 600,
            mean_mem_latency: 5.0,
            noc_link_wait_cycles: 0,
            max_link_occupancy: 0,
            fault: FaultConfig::none(),
            fault_drops: 0,
            fault_delays: 0,
            fault_retries: 0,
            fault_tracker_losses: 0,
            fault_recovery_cycles: 0,
            analysis: AnalysisConfig::off(),
            race_pairs_checked: 0,
            tenant: None,
            obs: None,
        }
    }

    #[test]
    fn bound_violations_are_strict() {
        let report = SweepReport {
            name: "t".into(),
            seed: 1,
            cells: vec![cell(2.0, 4.0), cell(4.0, 4.0), cell(6.0, 4.0)],
        };
        assert_eq!(report.bound_violations().len(), 1);
        assert_eq!(report.bound_violations()[0].speedup, 6.0);
        let table = report.render_table();
        assert!(table.contains("NO"), "violations are flagged in the table:\n{table}");
        assert!(table.contains("tm256-at2048"));
    }

    #[test]
    fn json_round_trips_through_the_bench_parser() {
        let report =
            SweepReport { name: "core-scaling".into(), seed: 7, cells: vec![cell(2.0, 4.0)] };
        let rendered = report.to_json().render();
        let parsed = Json::parse(&rendered).unwrap();
        assert_eq!(parsed.get("experiment").and_then(Json::as_str), Some("core-scaling"));
        let cells = match parsed.get("cells") {
            Some(Json::Arr(c)) => c,
            other => panic!("cells must be an array, got {other:?}"),
        };
        assert_eq!(cells.len(), 1);
        assert_eq!(cells[0].get("platform").and_then(Json::as_str), Some("phentos"));
        assert_eq!(cells[0].get("memory").and_then(Json::as_str), Some("snoop-bus"));
        assert_eq!(cells[0].get("noc").and_then(Json::as_str), Some("none"));
        assert_eq!(cells[0].get("noc_link_wait_cycles").and_then(Json::as_f64), Some(0.0));
        assert_eq!(cells[0].get("max_link_occupancy").and_then(Json::as_f64), Some(0.0));
        assert_eq!(cells[0].get("speedup_over_serial").and_then(Json::as_f64), Some(2.0));
        assert_eq!(cells[0].get("mem_stall_cycles").and_then(Json::as_f64), Some(600.0));
        assert_eq!(cells[0].get("mean_mem_latency").and_then(Json::as_f64), Some(5.0));
        assert_eq!(
            cells[0].get("tracker").and_then(|t| t.get("task_memory_entries")).and_then(Json::as_f64),
            Some(256.0)
        );
    }

    #[test]
    fn artifact_filenames_are_per_sweep_and_sanitised() {
        let mut report = SweepReport { name: "core-scaling".into(), seed: 1, cells: vec![] };
        assert_eq!(report.artifact_filename(), "BENCH_sweep_core-scaling.json");
        report.name = "weird name/π".into();
        assert_eq!(report.artifact_filename(), "BENCH_sweep_weird-name--.json");
    }

    #[test]
    fn table_shows_the_memory_model_column() {
        let mut dir_cell = cell(2.0, 4.0);
        dir_cell.memory = MemoryModel::directory_mesh();
        let mut contended_cell = cell(2.0, 4.0);
        contended_cell.memory = MemoryModel::directory_mesh_contended();
        let report = SweepReport {
            name: "t".into(),
            seed: 1,
            cells: vec![cell(2.0, 4.0), dir_cell, contended_cell],
        };
        let table = report.render_table();
        assert!(table.contains("snoop-bus"), "table names the bus model:\n{table}");
        assert!(table.contains("dir-mesh"), "table names the mesh model:\n{table}");
        assert!(table.contains("dir-mesh-c"), "table names the contended mesh:\n{table}");
        assert!(table.contains("mem lat"), "table carries the memory-latency column:\n{table}");
    }

    #[test]
    fn fault_keys_and_column_appear_only_for_engaging_cells() {
        let clean = SweepReport { name: "f".into(), seed: 1, cells: vec![cell(2.0, 4.0)] };
        let rendered = clean.to_json().render();
        assert!(!rendered.contains("fault"), "fault-free cells carry no fault keys:\n{rendered}");
        assert!(!clean.render_table().contains("fault"));

        let mut faulted_cell = cell(2.0, 4.0);
        faulted_cell.fault = FaultConfig::recoverable();
        faulted_cell.fault_drops = 3;
        faulted_cell.fault_retries = 3;
        faulted_cell.fault_recovery_cycles = 210;
        let faulted =
            SweepReport { name: "f".into(), seed: 1, cells: vec![cell(2.0, 4.0), faulted_cell] };
        let parsed = Json::parse(&faulted.to_json().render()).unwrap();
        let cells = match parsed.get("cells") {
            Some(Json::Arr(c)) => c,
            other => panic!("cells must be an array, got {other:?}"),
        };
        assert!(cells[0].get("fault").is_none(), "the fault-free cell stays key-free");
        assert_eq!(
            cells[1].get("fault").and_then(Json::as_str),
            Some(FaultConfig::recoverable().key().as_str())
        );
        assert_eq!(cells[1].get("fault_drops").and_then(Json::as_f64), Some(3.0));
        assert_eq!(cells[1].get("fault_recovery_cycles").and_then(Json::as_f64), Some(210.0));
        let table = faulted.render_table();
        assert!(table.contains("fault"), "an engaging cell brings the fault column:\n{table}");
        assert!(table.contains(&FaultConfig::recoverable().key()));
        assert!(table.contains("none"), "fault-free rows show 'none' in the fault column");
    }

    #[test]
    fn analysis_keys_and_column_appear_only_for_analysed_cells() {
        let plain = SweepReport { name: "a".into(), seed: 1, cells: vec![cell(2.0, 4.0)] };
        let rendered = plain.to_json().render();
        assert!(
            !rendered.contains("analysis"),
            "analysis-off cells carry no analysis keys:\n{rendered}"
        );
        assert!(!plain.render_table().contains("analysis"));

        let mut analysed_cell = cell(2.0, 4.0);
        analysed_cell.analysis = AnalysisConfig::full();
        analysed_cell.race_pairs_checked = 42;
        let analysed =
            SweepReport { name: "a".into(), seed: 1, cells: vec![cell(2.0, 4.0), analysed_cell] };
        let parsed = Json::parse(&analysed.to_json().render()).unwrap();
        let cells = match parsed.get("cells") {
            Some(Json::Arr(c)) => c,
            other => panic!("cells must be an array, got {other:?}"),
        };
        assert!(cells[0].get("analysis").is_none(), "the analysis-off cell stays key-free");
        assert_eq!(cells[1].get("analysis").and_then(Json::as_str), Some("full"));
        assert_eq!(cells[1].get("race_pairs_checked").and_then(Json::as_f64), Some(42.0));
        let table = analysed.render_table();
        assert!(table.contains("analysis"), "an analysed cell brings the column:\n{table}");
        assert!(table.contains("full"));
        assert!(table.contains("off"), "analysis-off rows show 'off' in the analysis column");
    }

    #[test]
    fn obs_keys_appear_only_for_observed_cells() {
        let plain = SweepReport { name: "o".into(), seed: 1, cells: vec![cell(2.0, 4.0)] };
        let rendered = plain.to_json().render();
        assert!(!rendered.contains("obs_"), "unobserved cells carry no obs keys:\n{rendered}");
        assert!(!rendered.contains("critical_path"));

        let mut observed_cell = cell(2.0, 4.0);
        observed_cell.obs = Some(Box::new(ObsCellData {
            config: ObsConfig::default(),
            task_events: 60,
            samples: 3,
            critical: CriticalPath {
                makespan: 500,
                segments: vec![],
                task_body: 300,
                memory_stall: 50,
                dispatch_wait: 20,
                scheduler: 130,
            },
            tenant_critical: Vec::new(),
            trace_json: "{}".into(),
            metrics_json: "{}".into(),
        }));
        let observed =
            SweepReport { name: "o".into(), seed: 1, cells: vec![cell(2.0, 4.0), observed_cell] };
        let parsed = Json::parse(&observed.to_json().render()).unwrap();
        let cells = match parsed.get("cells") {
            Some(Json::Arr(c)) => c,
            other => panic!("cells must be an array, got {other:?}"),
        };
        assert!(cells[0].get("obs_task_events").is_none(), "the unobserved cell stays key-free");
        assert_eq!(cells[1].get("obs_task_events").and_then(Json::as_f64), Some(60.0));
        assert_eq!(cells[1].get("obs_samples").and_then(Json::as_f64), Some(3.0));
        let cp = cells[1].get("critical_path").expect("observed cells inline the decomposition");
        assert_eq!(cp.get("task_body").and_then(Json::as_f64), Some(300.0));
        assert_eq!(cp.get("makespan").and_then(Json::as_f64), Some(500.0));
    }

    #[test]
    fn tenant_keys_and_column_appear_only_for_co_scheduled_cells() {
        let plain = SweepReport { name: "mt".into(), seed: 1, cells: vec![cell(2.0, 4.0)] };
        let rendered = plain.to_json().render();
        assert!(
            !rendered.contains("tenant"),
            "single-tenant cells carry no tenant keys:\n{rendered}"
        );
        assert!(!plain.render_table().contains("tenants"));

        let mut co_cell = cell(2.0, 4.0);
        co_cell.tenant = Some(Box::new(TenantCellData {
            scenario: "t2-burst64x200000-part".into(),
            reports: vec![
                TenantReport {
                    name: "t0".into(),
                    tasks: 10,
                    first_arrival: 0,
                    last_retire: 500,
                    makespan: 500,
                    turnaround_total: 1_000,
                    p50: 90,
                    p90: 180,
                    p99: 240,
                },
                TenantReport {
                    name: "t1".into(),
                    tasks: 10,
                    first_arrival: 100,
                    last_retire: 600,
                    makespan: 500,
                    turnaround_total: 1_500,
                    p50: 120,
                    p90: 260,
                    p99: 380,
                },
            ],
            jain: 1.0,
        }));
        let co = SweepReport { name: "mt".into(), seed: 1, cells: vec![cell(2.0, 4.0), co_cell] };
        let parsed = Json::parse(&co.to_json().render()).unwrap();
        let cells = match parsed.get("cells") {
            Some(Json::Arr(c)) => c,
            other => panic!("cells must be an array, got {other:?}"),
        };
        assert!(cells[0].get("tenants").is_none(), "the single-tenant cell stays key-free");
        assert_eq!(
            cells[1].get("tenants").and_then(Json::as_str),
            Some("t2-burst64x200000-part")
        );
        assert_eq!(cells[1].get("tenant_jain_fairness").and_then(Json::as_f64), Some(1.0));
        let reports = match cells[1].get("tenant_reports") {
            Some(Json::Arr(r)) => r,
            other => panic!("tenant_reports must be an array, got {other:?}"),
        };
        assert_eq!(reports.len(), 2);
        assert_eq!(reports[0].get("name").and_then(Json::as_str), Some("t0"));
        assert_eq!(reports[0].get("p99_turnaround").and_then(Json::as_f64), Some(240.0));
        assert_eq!(reports[1].get("mean_turnaround").and_then(Json::as_f64), Some(150.0));
        assert_eq!(reports[1].get("makespan").and_then(Json::as_f64), Some(500.0));
        let table = co.render_table();
        assert!(table.contains("tenants"), "a co-scheduled cell brings the column:\n{table}");
        assert!(table.contains("t2-burst64x200000-part"));
        assert!(table.contains("single"), "single-tenant rows show 'single' in the column");
    }

    #[test]
    fn per_tenant_critical_paths_ride_only_on_observed_co_scheduled_cells() {
        let mut observed_cell = cell(2.0, 4.0);
        observed_cell.obs = Some(Box::new(ObsCellData {
            config: ObsConfig::default(),
            task_events: 60,
            samples: 3,
            critical: CriticalPath {
                makespan: 500,
                segments: vec![],
                task_body: 300,
                memory_stall: 50,
                dispatch_wait: 20,
                scheduler: 130,
            },
            tenant_critical: vec![CriticalPath {
                makespan: 220,
                segments: vec![],
                task_body: 150,
                memory_stall: 40,
                dispatch_wait: 10,
                scheduler: 20,
            }],
            trace_json: "{}".into(),
            metrics_json: "{}".into(),
        }));
        let report =
            SweepReport { name: "mtc".into(), seed: 1, cells: vec![cell(2.0, 4.0), observed_cell] };
        let parsed = Json::parse(&report.to_json().render()).unwrap();
        let cells = match parsed.get("cells") {
            Some(Json::Arr(c)) => c,
            other => panic!("cells must be an array, got {other:?}"),
        };
        assert!(cells[0].get("tenant_critical_paths").is_none());
        let per_tenant = match cells[1].get("tenant_critical_paths") {
            Some(Json::Arr(t)) => t,
            other => panic!("tenant_critical_paths must be an array, got {other:?}"),
        };
        assert_eq!(per_tenant.len(), 1);
        assert_eq!(per_tenant[0].get("makespan").and_then(Json::as_f64), Some(220.0));
        assert_eq!(per_tenant[0].get("task_body").and_then(Json::as_f64), Some(150.0));
    }

    #[test]
    fn json_carries_the_noc_coordinate_per_model() {
        let mut contended_cell = cell(2.0, 4.0);
        contended_cell.memory = MemoryModel::directory_mesh_contended();
        contended_cell.noc_link_wait_cycles = 1234;
        contended_cell.max_link_occupancy = 17;
        let report = SweepReport { name: "noc".into(), seed: 1, cells: vec![contended_cell] };
        let parsed = Json::parse(&report.to_json().render()).unwrap();
        let cells = match parsed.get("cells") {
            Some(Json::Arr(c)) => c,
            other => panic!("cells must be an array, got {other:?}"),
        };
        assert_eq!(cells[0].get("memory").and_then(Json::as_str), Some("dir-mesh-c"));
        assert_eq!(cells[0].get("noc").and_then(Json::as_str), Some("bw8-buf4-flit16"));
        assert_eq!(cells[0].get("noc_link_wait_cycles").and_then(Json::as_f64), Some(1234.0));
        assert_eq!(cells[0].get("max_link_occupancy").and_then(Json::as_f64), Some(17.0));
    }
}
