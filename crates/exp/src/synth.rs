//! Deterministic synthetic task-graph generation.
//!
//! The paper evaluates a fixed 37-workload catalog; exploring the design space (core counts,
//! tracker capacities, scheduling fabrics) needs workload *families* whose shape and size are
//! free parameters. Every generator here is a pure function of its [`SynthSpec`] and the
//! [`SimRng`] it is handed, so a sweep cell's program depends only on the sweep seed and the
//! cell's coordinates — never on evaluation order or worker count.
//!
//! Encoding: task `i` writes one private output address and reads the output addresses of its
//! predecessors, so the sequential-semantics reference graph of the generated program contains
//! exactly the intended RAW edges (each address has a single writer, hence no WAW/WAR edges).
//! Every family therefore respects the Picos descriptor limit by capping the in-degree at
//! [`MAX_IN_DEGREE`] (15 dependences = 1 write + 14 reads).

use tis_sim::SimRng;
use tis_taskmodel::{Dependence, Payload, ProgramBuilder, TaskProgram, MAX_DEPENDENCES};

/// Base address of the synthetic per-task output slots (distinct from the workload crates'
/// address ranges only for readability in traces; programs never share an address space).
const SYNTH_BASE: u64 = 0xD000_0000;

/// Output address of synthetic task `i` — shared by the materializing generator and the
/// streaming source so the two emit bit-identical descriptors.
pub(crate) fn out_addr(i: usize) -> u64 {
    SYNTH_BASE + (i as u64) * 64
}

/// Maximum number of predecessors a synthetic task may read: one dependence slot is reserved
/// for the task's own output write.
pub const MAX_IN_DEGREE: usize = MAX_DEPENDENCES - 1;

/// How many preceding tasks an Erdős–Rényi task draws candidate edges from. Bounding the
/// window keeps generation `O(window × tasks)` instead of quadratic while preserving the
/// family's character (dense local dependence structure).
pub const ER_WINDOW: usize = 256;

/// The structural family of a synthetic graph.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SynthFamily {
    /// A single dependence chain: task `i` reads task `i-1`. Zero parallelism; the pure
    /// scheduling-latency probe.
    Chain,
    /// An out-tree: task `i` reads its parent `(i-1)/arity`. Parallelism grows geometrically
    /// with depth.
    Tree {
        /// Fan-out of every node (≥ 1).
        arity: usize,
    },
    /// Repeated source → `width` middles → sink blocks, each sink feeding the next source.
    /// Alternates full fan-out with full fan-in, the classic reduction shape.
    Diamond {
        /// Number of parallel middle tasks per block (1 ..= [`MAX_IN_DEGREE`]).
        width: usize,
    },
    /// Layered fork-join: layers of `width` independent tasks separated by `taskwait`
    /// barriers — the shape OpenMP-style loop parallelism produces.
    ForkJoin {
        /// Tasks per layer (≥ 1).
        width: usize,
    },
    /// Windowed Erdős–Rényi DAG: each task draws a Bernoulli(`density`) edge from each of its
    /// up to [`ER_WINDOW`] most recent predecessors, capped at [`MAX_IN_DEGREE`] reads.
    ErdosRenyi {
        /// Edge probability per candidate predecessor (0.0 ..= 1.0).
        density: f64,
    },
}

impl SynthFamily {
    /// Stable short key naming the family in reports (`synth-chain`, `synth-er`, …).
    pub fn key(self) -> &'static str {
        match self {
            SynthFamily::Chain => "synth-chain",
            SynthFamily::Tree { .. } => "synth-tree",
            SynthFamily::Diamond { .. } => "synth-diamond",
            SynthFamily::ForkJoin { .. } => "synth-forkjoin",
            SynthFamily::ErdosRenyi { .. } => "synth-er",
        }
    }
}

/// A complete description of one synthetic workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SynthSpec {
    /// Graph family and its structural parameter.
    pub family: SynthFamily,
    /// Number of tasks to generate (≥ 1).
    pub tasks: usize,
    /// Mean compute cycles per task.
    pub task_cycles: u64,
    /// Relative half-width of the uniform task-size jitter (`0.0` = every task identical,
    /// `0.25` = sizes drawn from `[0.75, 1.25] × task_cycles`). Must be in `[0, 1)`.
    pub jitter: f64,
}

impl SynthSpec {
    /// A spec with no size jitter.
    pub const fn uniform(family: SynthFamily, tasks: usize, task_cycles: u64) -> Self {
        SynthSpec { family, tasks, task_cycles, jitter: 0.0 }
    }

    /// Human-readable instance label carrying every generation parameter, e.g.
    /// `synth-er(d=0.02) x384 t6000 j0.25` — two distinct specs never share a label, which
    /// keeps sweep rows and `bench-diff` keys unambiguous.
    pub fn name(&self) -> String {
        let family = match self.family {
            SynthFamily::Chain => "synth-chain".to_string(),
            SynthFamily::Tree { arity } => format!("synth-tree(a={arity})"),
            SynthFamily::Diamond { width } => format!("synth-diamond(w={width})"),
            SynthFamily::ForkJoin { width } => format!("synth-forkjoin(w={width})"),
            SynthFamily::ErdosRenyi { density } => format!("synth-er(d={density})"),
        };
        let jitter = if self.jitter > 0.0 { format!(" j{}", self.jitter) } else { String::new() };
        format!("{family} x{} t{}{jitter}", self.tasks, self.task_cycles)
    }

    /// Checks the generation parameters (graph-level soundness — cycles,
    /// dangling references, conflict coverage — is proven separately: every
    /// generated program is routed through the [`tis_analyze::analyze_graph`]
    /// preflight chokepoint at the end of [`SynthSpec::generate`]).
    ///
    /// # Panics
    ///
    /// Panics on a degenerate spec (zero tasks or cycles, out-of-range density/jitter/width).
    pub(crate) fn assert_params(&self) {
        assert!(self.tasks > 0, "synthetic graph needs at least one task");
        assert!(self.task_cycles > 0, "tasks must cost cycles");
        assert!((0.0..1.0).contains(&self.jitter), "jitter must be in [0, 1)");
        match self.family {
            SynthFamily::Tree { arity } => assert!(arity >= 1, "tree arity must be at least 1"),
            SynthFamily::Diamond { width } => assert!(
                (1..=MAX_IN_DEGREE).contains(&width),
                "diamond width must be 1..={MAX_IN_DEGREE} (sink fan-in is capped by the \
                 Picos descriptor)"
            ),
            SynthFamily::ForkJoin { width } => assert!(width >= 1, "fork-join width must be at least 1"),
            SynthFamily::ErdosRenyi { density } => {
                assert!((0.0..=1.0).contains(&density), "density is a probability")
            }
            SynthFamily::Chain => {}
        }
    }

    /// An upper bound on the number of RAW edges any program generated from this spec can
    /// contain — the "declared density bound" the property tests pin.
    pub fn max_edges(&self) -> usize {
        let n = self.tasks;
        match self.family {
            SynthFamily::Chain | SynthFamily::Tree { .. } => n.saturating_sub(1),
            // Every task has at most MAX_IN_DEGREE predecessors by construction.
            SynthFamily::Diamond { .. } | SynthFamily::ErdosRenyi { .. } => n * MAX_IN_DEGREE,
            SynthFamily::ForkJoin { .. } => 0,
        }
    }

    /// Generates the task program, consuming randomness only from `rng`.
    ///
    /// Every generated program passes the [`tis_analyze::analyze_graph`]
    /// preflight before it is returned: an acyclic graph, no dangling or
    /// duplicate references, and every conflicting task pair covered by an
    /// ordering edge or barrier. A generator bug that breaks any of those
    /// panics here rather than producing a silently-racy sweep cell.
    pub fn generate(&self, rng: &mut SimRng) -> TaskProgram {
        self.assert_params();
        let n = self.tasks;
        let mut b = ProgramBuilder::new(self.name());
        let out = out_addr;
        for i in 0..n {
            let mut deps = vec![Dependence::write(out(i))];
            match self.family {
                SynthFamily::Chain => {
                    if i > 0 {
                        deps.push(Dependence::read(out(i - 1)));
                    }
                }
                SynthFamily::Tree { arity } => {
                    if i > 0 {
                        deps.push(Dependence::read(out((i - 1) / arity)));
                    }
                }
                SynthFamily::Diamond { width } => {
                    // Block layout: [source, width × middle, sink], truncated at n.
                    let block_len = width + 2;
                    let block_start = (i / block_len) * block_len;
                    let pos = i - block_start;
                    if pos == 0 {
                        // Source reads the previous block's sink, if one exists.
                        if block_start > 0 {
                            deps.push(Dependence::read(out(block_start - 1)));
                        }
                    } else if pos <= width {
                        deps.push(Dependence::read(out(block_start)));
                    } else {
                        for mid in (block_start + 1)..i {
                            deps.push(Dependence::read(out(mid)));
                        }
                    }
                }
                SynthFamily::ForkJoin { width } => {
                    // Data-independent layers; the barrier below provides the join.
                    if i > 0 && i % width == 0 {
                        b.taskwait();
                    }
                }
                SynthFamily::ErdosRenyi { density } => {
                    let window_start = i.saturating_sub(ER_WINDOW);
                    for pred in window_start..i {
                        if deps.len() > MAX_IN_DEGREE {
                            break;
                        }
                        if rng.chance(density) {
                            deps.push(Dependence::read(out(pred)));
                        }
                    }
                }
            }
            b.spawn(Payload::compute(self.draw_cycles(rng)), deps);
        }
        b.taskwait();
        let program = b.build();
        if let Err(e) = tis_analyze::analyze_program(&program) {
            panic!("synthetic generator produced an unsound graph for {}: {e}", self.name());
        }
        program
    }

    /// Draws one task's compute cycles (mean `task_cycles`, uniform ±`jitter`).
    pub(crate) fn draw_cycles(&self, rng: &mut SimRng) -> u64 {
        if self.jitter == 0.0 {
            return self.task_cycles;
        }
        let half = (self.task_cycles as f64 * self.jitter) as u64;
        let lo = self.task_cycles.saturating_sub(half).max(1);
        let hi = self.task_cycles + half;
        rng.range(lo, hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tis_taskmodel::TaskId;

    fn gen(spec: SynthSpec) -> TaskProgram {
        spec.generate(&mut SimRng::new(0xDEC0DE))
    }

    #[test]
    fn chain_is_a_single_dependence_chain() {
        let p = gen(SynthSpec::uniform(SynthFamily::Chain, 20, 500));
        p.validate().unwrap();
        let g = p.reference_graph();
        assert_eq!(g.task_count(), 20);
        assert_eq!(g.edge_count(), 19);
        let s = g.stats(&[1.0; 20]);
        assert_eq!(s.max_width, 1, "a chain has no parallelism");
    }

    #[test]
    fn tree_fans_out_geometrically() {
        let p = gen(SynthSpec::uniform(SynthFamily::Tree { arity: 3 }, 40, 500));
        let g = p.reference_graph();
        assert_eq!(g.edge_count(), 39, "a tree has n-1 edges");
        assert!(g.has_edge(TaskId(0), TaskId(1)) && g.has_edge(TaskId(0), TaskId(3)));
        assert!(g.stats(&vec![1.0; 40]).max_width > 8);
    }

    #[test]
    fn diamond_alternates_fan_out_and_fan_in() {
        let width = 4;
        let p = gen(SynthSpec::uniform(SynthFamily::Diamond { width }, 12, 500));
        let g = p.reference_graph();
        // Block 0: source 0, middles 1..=4, sink 5; block 1: source 6 reads sink 5.
        for mid in 1..=width {
            assert!(g.has_edge(TaskId(0), TaskId(mid as u64)), "source feeds middle {mid}");
            assert!(g.has_edge(TaskId(mid as u64), TaskId(5)), "middle {mid} feeds the sink");
        }
        assert!(g.has_edge(TaskId(5), TaskId(6)), "sink feeds the next source");
        assert_eq!(g.stats(&[1.0; 12]).max_width, width);
    }

    #[test]
    fn forkjoin_layers_are_barrier_separated() {
        let p = gen(SynthSpec::uniform(SynthFamily::ForkJoin { width: 8 }, 32, 500));
        let g = p.reference_graph();
        assert_eq!(g.edge_count(), 0, "fork-join parallelism is phase-based, not edge-based");
        let s = g.stats(&vec![1.0; 32]);
        assert_eq!(s.phases, 4, "one phase per layer (the trailing taskwait spawns no tasks)");
        assert_eq!(s.max_width, 8);
    }

    #[test]
    fn erdos_renyi_extremes_are_exact() {
        let empty = gen(SynthSpec::uniform(SynthFamily::ErdosRenyi { density: 0.0 }, 30, 500));
        assert_eq!(empty.reference_graph().edge_count(), 0);
        let full = gen(SynthSpec::uniform(SynthFamily::ErdosRenyi { density: 1.0 }, 30, 500));
        let g = full.reference_graph();
        for v in 1..30usize {
            assert_eq!(
                g.predecessor_count(TaskId(v as u64)),
                v.min(MAX_IN_DEGREE),
                "at density 1 every task saturates its in-degree cap"
            );
        }
    }

    #[test]
    fn generation_is_deterministic_in_the_rng() {
        let spec = SynthSpec {
            family: SynthFamily::ErdosRenyi { density: 0.1 },
            tasks: 60,
            task_cycles: 2_000,
            jitter: 0.5,
        };
        let a = spec.generate(&mut SimRng::new(7));
        let b = spec.generate(&mut SimRng::new(7));
        let c = spec.generate(&mut SimRng::new(8));
        assert_eq!(a, b, "same seed, same program");
        assert_ne!(a, c, "different seed, different jitter/edges");
    }

    #[test]
    fn jitter_respects_mean_band() {
        let spec = SynthSpec {
            family: SynthFamily::Chain,
            tasks: 200,
            task_cycles: 1_000,
            jitter: 0.25,
        };
        let p = gen(spec);
        let stats = p.stats(16.0);
        assert!(stats.min_task_cycles >= 750 && stats.max_task_cycles <= 1_250);
        assert!((stats.mean_task_cycles - 1_000.0).abs() < 100.0, "mean stays near the target");
    }

    #[test]
    fn names_and_keys_are_stable() {
        let spec = SynthSpec::uniform(SynthFamily::ErdosRenyi { density: 0.02 }, 384, 6_000);
        assert_eq!(spec.name(), "synth-er(d=0.02) x384 t6000");
        assert_eq!(spec.family.key(), "synth-er");
        assert_eq!(SynthFamily::ForkJoin { width: 3 }.key(), "synth-forkjoin");
    }

    #[test]
    #[should_panic(expected = "diamond width")]
    fn oversized_diamond_is_rejected() {
        gen(SynthSpec::uniform(SynthFamily::Diamond { width: MAX_IN_DEGREE + 1 }, 10, 100));
    }
}
