//! Declarative sweep definitions: a cartesian grid over the design space.
//!
//! A [`Sweep`] names the axes the related design-space-exploration literature varies — core
//! count, memory-system model, runtime/fabric platform, Picos tracker capacities, fault
//! schedule, multi-tenant scenario, workload — and expands them into a flat list of
//! [`CellSpec`]s in a fixed **grid order** (workloads ▸ cores ▸ memory models ▸ trackers ▸
//! faults ▸ tenants ▸ platforms). Grid order is part of the contract: the
//! runner may evaluate cells on any worker in any order, but reports are always assembled in
//! grid order, so sweep output is bit-identical regardless of parallelism.

use tis_analyze::AnalysisConfig;
use tis_bench::Platform;
use tis_obs::ObsConfig;
use tis_machine::{FaultConfig, MemoryModel};
use tis_picos::TrackerConfig;
use tis_sim::SimRng;
use tis_taskmodel::{ArrivalProcess, TaskProgram};
use tis_workloads::entry_for_cores;

use crate::synth::SynthSpec;

/// One workload axis entry.
#[derive(Debug, Clone)]
pub enum WorkloadSpec {
    /// An entry of the paper's Figure 9 catalog, identified by benchmark name and input label,
    /// instantiated with the cell's **core-count context**
    /// ([`entry_for_cores`]), so bigger machines get proportionally more parallel work
    /// at unchanged task granularity.
    Catalog {
        /// Benchmark name (`"blackscholes"`, `"jacobi"`, `"sparselu"`, `"stream-barr"`,
        /// `"stream-deps"`).
        benchmark: &'static str,
        /// Input label as in Figure 9 (e.g. `"4K B64"`).
        input: &'static str,
    },
    /// A synthetic graph family (see [`crate::synth`]).
    Synth {
        /// The generator parameters.
        spec: SynthSpec,
        /// When true (the default from [`WorkloadSpec::synth`]), the task count is multiplied
        /// by `ceil(cores / 8)` so the per-core work matches the 8-core baseline.
        scale_with_cores: bool,
    },
    /// A fixed, pre-built program replayed identically in every cell (no core-count context).
    Fixed {
        /// Row label.
        label: String,
        /// Family key for grouping in reports.
        family: String,
        /// The program.
        program: TaskProgram,
    },
}

impl WorkloadSpec {
    /// A catalog workload with core-count context.
    pub fn catalog(benchmark: &'static str, input: &'static str) -> Self {
        WorkloadSpec::Catalog { benchmark, input }
    }

    /// A synthetic workload whose task count scales with the cell's core count.
    pub fn synth(spec: SynthSpec) -> Self {
        WorkloadSpec::Synth { spec, scale_with_cores: true }
    }

    /// A synthetic workload with a fixed task count across all core counts.
    pub fn synth_fixed_size(spec: SynthSpec) -> Self {
        WorkloadSpec::Synth { spec, scale_with_cores: false }
    }

    /// A fixed program.
    pub fn fixed(label: impl Into<String>, family: impl Into<String>, program: TaskProgram) -> Self {
        WorkloadSpec::Fixed { label: label.into(), family: family.into(), program }
    }

    /// Row label of this workload in reports. Labels are injective over distinct specs (the
    /// synthetic name carries every parameter, and the fixed-size variant is marked), so rows
    /// never collide within one sweep.
    pub fn label(&self) -> String {
        match self {
            WorkloadSpec::Catalog { benchmark, input } => format!("{benchmark} {input}"),
            WorkloadSpec::Synth { spec, scale_with_cores } => {
                if *scale_with_cores {
                    spec.name()
                } else {
                    format!("{} fixed-size", spec.name())
                }
            }
            WorkloadSpec::Fixed { label, .. } => label.clone(),
        }
    }

    /// Family key of this workload (benchmark name or synthetic family).
    pub fn family(&self) -> String {
        match self {
            WorkloadSpec::Catalog { benchmark, .. } => (*benchmark).to_string(),
            WorkloadSpec::Synth { spec, .. } => spec.family.key().to_string(),
            WorkloadSpec::Fixed { family, .. } => family.clone(),
        }
    }

    /// Builds the cell's program. `rng` must be the cell's derived stream (a pure function of
    /// the sweep seed and the cell coordinates); catalog and fixed workloads consume no
    /// randomness. The runner calls this once per `(workload, cores)` grid point and shares
    /// the program across that point's platform/tracker cells.
    pub fn instantiate(&self, cores: usize, rng: &mut SimRng) -> TaskProgram {
        match self {
            WorkloadSpec::Catalog { benchmark, input } => entry_for_cores(benchmark, input, cores)
                .unwrap_or_else(|| panic!("no catalog entry named '{benchmark} {input}'"))
                .program,
            WorkloadSpec::Synth { spec, scale_with_cores } => {
                let mut sized = *spec;
                if *scale_with_cores {
                    // Same scaling rule as the catalog's core-count context, so catalog and
                    // synthetic workloads in one sweep grow in lockstep.
                    sized.tasks = spec.tasks * tis_workloads::catalog::parallel_scale_for_cores(cores);
                }
                sized.generate(rng)
            }
            WorkloadSpec::Fixed { program, .. } => program.clone(),
        }
    }

    /// Panics early (at sweep build time, not mid-run) on specs that could never instantiate.
    fn check(&self) {
        match self {
            WorkloadSpec::Catalog { benchmark, input } => {
                assert!(
                    entry_for_cores(benchmark, input, 1).is_some(),
                    "no catalog entry named '{benchmark} {input}'"
                );
            }
            WorkloadSpec::Synth { spec, .. } => spec.assert_params(),
            WorkloadSpec::Fixed { program, .. } => {
                program.validate().expect("fixed sweep program must be valid");
                // Hand-supplied programs get the same preflight the generated
                // and catalog ones do: acyclic, no dangling references, every
                // conflicting pair ordered.
                if let Err(e) = tis_analyze::analyze_program(program) {
                    panic!("fixed sweep program '{}' failed preflight: {e}", program.name());
                }
            }
        }
    }
}

/// One entry of the multi-tenant axis: co-schedule `tenants` independent instances of the
/// cell's workload on one machine under a deterministic arrival process and tracker policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantScenario {
    /// Number of co-scheduled tenants (≥ 1). Tenant 0 — the *victim* — runs the cell's own
    /// instantiated program under [`TenantScenario::victim_arrival`], so a 1-tenant
    /// batch-at-zero scenario is the degenerate case — the runner's differential wall pins it
    /// cycle-identical to the plain single-program cell. Tenants `1..n` run independent
    /// instances drawn from the cell RNG's per-tenant substreams.
    pub tenants: usize,
    /// Arrival process of the victim (tenant 0). Batch-at-zero by default; a Poisson trickle
    /// here is what exposes the reservation value of partitioning — a trickling victim task
    /// can find the shared tracker flooded by a co-tenant burst, while a partitioned tracker
    /// always holds its share free.
    pub victim_arrival: ArrivalProcess,
    /// Arrival process of the co-tenants (tenants `1..n`).
    pub co_arrival: ArrivalProcess,
    /// When true the Picos task memory is hard-partitioned: every tenant's in-flight window
    /// is admission-capped at `tracker.per_tenant_entries(tenants)`, so a flooding co-tenant
    /// cannot evict a victim's share. When false all tenants contend for the full tracker
    /// (shared-with-tagging).
    pub partitioned: bool,
}

impl TenantScenario {
    /// All tenants released at cycle zero.
    pub fn batch(tenants: usize, partitioned: bool) -> Self {
        TenantScenario {
            tenants,
            victim_arrival: ArrivalProcess::BatchAtZero,
            co_arrival: ArrivalProcess::BatchAtZero,
            partitioned,
        }
    }

    /// Co-tenants arrive open-loop Poisson with the given mean interarrival gap.
    pub fn poisson(tenants: usize, mean_interarrival: u64, partitioned: bool) -> Self {
        TenantScenario {
            tenants,
            victim_arrival: ArrivalProcess::BatchAtZero,
            co_arrival: ArrivalProcess::Poisson { mean_interarrival },
            partitioned,
        }
    }

    /// Co-tenants arrive in deterministic on/off bursts: `burst` back-to-back spawns every
    /// `period` cycles — the antagonist of the `sweep_multi_tenant` p99-inflation gate.
    pub fn bursty(tenants: usize, burst: u64, period: u64, partitioned: bool) -> Self {
        TenantScenario {
            tenants,
            victim_arrival: ArrivalProcess::BatchAtZero,
            co_arrival: ArrivalProcess::Bursty { burst, period },
            partitioned,
        }
    }

    /// Replaces the victim's arrival process (tenant 0; batch-at-zero by default).
    pub fn with_victim_arrival(mut self, arrival: ArrivalProcess) -> Self {
        self.victim_arrival = arrival;
        self
    }

    /// Stable column label, e.g. `t4-burst64x200000-part` / `t1-batch-shared`. A non-batch
    /// victim appends its own arrival key (`…-vpoi2000`), so scenario keys stay unique per
    /// configuration.
    pub fn key(&self) -> String {
        let mut key = format!(
            "t{}-{}-{}",
            self.tenants,
            self.co_arrival.key(),
            if self.partitioned { "part" } else { "shared" }
        );
        if self.victim_arrival != ArrivalProcess::BatchAtZero {
            key.push_str(&format!("-v{}", self.victim_arrival.key()));
        }
        key
    }
}

/// Coordinates of one grid cell (indices into the sweep's axes, plus the resolved values).
#[derive(Debug, Clone)]
pub struct CellSpec {
    /// Position in grid order; reports are assembled by this index.
    pub index: usize,
    /// Index into [`Sweep::workloads`].
    pub workload: usize,
    /// Index into [`Sweep::cores`].
    pub core_axis: usize,
    /// Resolved core count.
    pub cores: usize,
    /// Index into [`Sweep::memory_models`].
    pub memory: usize,
    /// Index into [`Sweep::trackers`].
    pub tracker: usize,
    /// Index into [`Sweep::faults`].
    pub fault: usize,
    /// Index into [`Sweep::tenants`].
    pub tenant: usize,
    /// Index into [`Sweep::platforms`].
    pub platform: usize,
}

/// A declarative experiment: a cartesian grid over workloads, core counts, tracker capacities
/// and platforms, all run through `tis_machine::engine::run_machine` by the
/// [runner](crate::runner).
///
/// ```
/// use tis_exp::{Sweep, SynthFamily, SynthSpec, WorkloadSpec};
/// use tis_bench::Platform;
///
/// let sweep = Sweep::new("quick")
///     .over_cores([2, 4])
///     .over_platforms([Platform::Phentos])
///     .with_workload(WorkloadSpec::synth(SynthSpec::uniform(
///         SynthFamily::ForkJoin { width: 8 },
///         64,
///         4_000,
///     )));
/// let report = sweep.run();
/// assert_eq!(report.cells.len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct Sweep {
    /// Experiment name (recorded in reports and the `BENCH_sweep_<name>.json` artifact).
    pub name: String,
    /// Root seed for synthetic workload generation.
    pub seed: u64,
    /// Core-count axis.
    pub cores: Vec<usize>,
    /// Memory-system model axis (the paper's snooping bus, the directory/NoC model, or both
    /// side by side — the `sweep_memory_scaling` experiment).
    pub memory_models: Vec<MemoryModel>,
    /// Platform axis.
    pub platforms: Vec<Platform>,
    /// Picos tracker-capacity axis (applied to both RoCC- and AXI-attached Picos).
    pub trackers: Vec<TrackerConfig>,
    /// Deterministic fault-schedule axis (NoC message faults plus tracker-entry losses; see
    /// `tis-fault`). The default single [`FaultConfig::none`] entry constructs no fault layer
    /// at all, so fault-free sweeps stay bit-identical to the pre-fault engine.
    pub faults: Vec<FaultConfig>,
    /// Multi-tenant scenario axis. The default single `None` entry runs every cell on the
    /// plain single-program path, so sweeps that never touch this axis stay byte-identical
    /// to the pre-tenant runner; a `Some` entry co-schedules N instances of the cell's
    /// workload through a [`tis_taskmodel::TenantSource`].
    pub tenants: Vec<Option<TenantScenario>>,
    /// Workload axis.
    pub workloads: Vec<WorkloadSpec>,
    /// Which `tis-analyze` passes the runner performs: a preflight graph
    /// analysis of every instantiated program and/or a vector-clock race
    /// check of every cell's schedule. Off by default — analysis is an
    /// observer, so it never changes simulated cycles, and report artifacts
    /// gain analysis keys only when it engages.
    pub analysis: AnalysisConfig,
    /// Observability: when `Some`, observed cells run under a [`tis_obs::Recorder`] attached
    /// through the engine's observer chokepoint, and their [`SweepCell`](crate::SweepCell)s
    /// carry an obs summary plus rendered `TRACE_`/`METRICS_` documents. Off by default —
    /// observation never moves a simulated cycle, and report artifacts gain obs keys only for
    /// observed cells, so obs-off sweeps stay byte-identical.
    pub obs: Option<ObsConfig>,
    /// Per-cell opt-in: grid indices of the cells to observe when [`Sweep::obs`] engages.
    /// Empty means *every* cell; tracing one heavy sweep cell costs nothing for the others.
    pub observe_cells: Vec<usize>,
    /// Whether every cell's schedule is validated against the reference dependence graph
    /// (on by default; sweeps exist to explore, and an invalid schedule is a finding, not a
    /// data point).
    pub validate: bool,
}

impl Sweep {
    /// Creates a sweep with the paper's defaults on every axis: 8 cores, the snooping-bus
    /// memory model, the Phentos platform, the prototype tracker capacities, no workloads,
    /// validation on.
    pub fn new(name: impl Into<String>) -> Self {
        Sweep {
            name: name.into(),
            seed: 0x5EED_5EED_5EED_5EED,
            cores: vec![8],
            memory_models: vec![MemoryModel::SnoopBus],
            platforms: vec![Platform::Phentos],
            trackers: vec![TrackerConfig::default()],
            faults: vec![FaultConfig::none()],
            tenants: vec![None],
            workloads: Vec::new(),
            analysis: AnalysisConfig::off(),
            obs: None,
            observe_cells: Vec::new(),
            validate: true,
        }
    }

    /// Replaces the core-count axis.
    pub fn over_cores(mut self, cores: impl IntoIterator<Item = usize>) -> Self {
        self.cores = cores.into_iter().collect();
        self
    }

    /// Replaces the memory-model axis.
    pub fn over_memory_models(mut self, models: impl IntoIterator<Item = MemoryModel>) -> Self {
        self.memory_models = models.into_iter().collect();
        self
    }

    /// Replaces the platform axis.
    pub fn over_platforms(mut self, platforms: impl IntoIterator<Item = Platform>) -> Self {
        self.platforms = platforms.into_iter().collect();
        self
    }

    /// Replaces the tracker-capacity axis.
    pub fn over_trackers(mut self, trackers: impl IntoIterator<Item = TrackerConfig>) -> Self {
        self.trackers = trackers.into_iter().collect();
        self
    }

    /// Replaces the fault-schedule axis. Each engaging entry derives a per-cell fault seed from
    /// the sweep seed and the cell index (see [`crate::runner`]), so every cell replays its own
    /// fault schedule exactly at any worker count.
    pub fn over_faults(mut self, faults: impl IntoIterator<Item = FaultConfig>) -> Self {
        self.faults = faults.into_iter().collect();
        self
    }

    /// Replaces the multi-tenant scenario axis. `None` entries run the plain single-program
    /// path; `Some` entries co-schedule. Mixing both in one sweep puts single-tenant control
    /// columns next to co-scheduled ones (how the `sweep_multi_tenant` bench pins its
    /// 1-tenant column cycle-identical to the control).
    pub fn over_tenants(mut self, tenants: impl IntoIterator<Item = Option<TenantScenario>>) -> Self {
        self.tenants = tenants.into_iter().collect();
        self
    }

    /// Appends a workload to the workload axis.
    pub fn with_workload(mut self, workload: WorkloadSpec) -> Self {
        self.workloads.push(workload);
        self
    }

    /// Sets the synthetic-generation seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enables `tis-analyze` passes for this sweep (see [`Sweep::analysis`]).
    pub fn with_analysis(mut self, analysis: AnalysisConfig) -> Self {
        self.analysis = analysis;
        self
    }

    /// Attaches observability to this sweep (see [`Sweep::obs`]): every cell — or the subset
    /// opted in via [`Sweep::observe_only`] — runs under a recorder and reports trace,
    /// metrics-timeline, and critical-path data alongside its measurements.
    pub fn with_obs(mut self, config: ObsConfig) -> Self {
        self.obs = Some(config);
        self
    }

    /// Restricts observation to the given grid cell indices (no effect unless
    /// [`Sweep::with_obs`] engages).
    pub fn observe_only(mut self, cells: impl IntoIterator<Item = usize>) -> Self {
        self.observe_cells = cells.into_iter().collect();
        self
    }

    /// The observer config cell `index` runs under, or `None` for an unobserved cell.
    pub fn cell_obs(&self, index: usize) -> Option<ObsConfig> {
        self.obs.filter(|_| self.observe_cells.is_empty() || self.observe_cells.contains(&index))
    }

    /// Disables per-cell schedule validation (validation costs one reference-graph
    /// construction and check per cell; heavy sweeps that only read makespans may skip it).
    pub fn without_validation(mut self) -> Self {
        self.validate = false;
        self
    }

    /// Number of grid cells.
    pub fn cell_count(&self) -> usize {
        self.workloads.len()
            * self.cores.len()
            * self.memory_models.len()
            * self.trackers.len()
            * self.faults.len()
            * self.tenants.len()
            * self.platforms.len()
    }

    /// Expands the grid into cells, in grid order (workloads ▸ cores ▸ memory models ▸
    /// trackers ▸ faults ▸ tenants ▸ platforms).
    pub fn cells(&self) -> Vec<CellSpec> {
        let mut out = Vec::with_capacity(self.cell_count());
        for (wi, _) in self.workloads.iter().enumerate() {
            for (ci, &cores) in self.cores.iter().enumerate() {
                for (mi, _) in self.memory_models.iter().enumerate() {
                    for (ti, _) in self.trackers.iter().enumerate() {
                        for (fi, _) in self.faults.iter().enumerate() {
                            for (ni, _) in self.tenants.iter().enumerate() {
                                for (pi, _) in self.platforms.iter().enumerate() {
                                    out.push(CellSpec {
                                        index: out.len(),
                                        workload: wi,
                                        core_axis: ci,
                                        cores,
                                        memory: mi,
                                        tracker: ti,
                                        fault: fi,
                                        tenant: ni,
                                        platform: pi,
                                    });
                                }
                            }
                        }
                    }
                }
            }
        }
        out
    }

    /// The RNG stream for a cell's workload instantiation. Depends only on the sweep seed and
    /// the cell's `(workload, cores)` coordinates — *not* on memory model, tracker or platform
    /// — so every memory/platform/tracker combination of one workload×cores point schedules
    /// the **same** program, and parallel evaluation order cannot perturb generation.
    pub fn cell_rng(&self, workload: usize, cores: usize) -> SimRng {
        SimRng::new(self.seed).stream("sweep-workload", workload as u64).stream("cores", cores as u64)
    }

    /// Validates the whole sweep definition.
    ///
    /// # Panics
    ///
    /// Panics on an empty axis, a zero core count, degenerate tracker capacities, or a
    /// workload spec that could never instantiate.
    pub fn check(&self) {
        assert!(!self.workloads.is_empty(), "sweep '{}' has no workloads", self.name);
        assert!(!self.cores.is_empty(), "sweep '{}' has an empty core axis", self.name);
        assert!(
            !self.memory_models.is_empty(),
            "sweep '{}' has an empty memory-model axis",
            self.name
        );
        assert!(!self.platforms.is_empty(), "sweep '{}' has an empty platform axis", self.name);
        assert!(!self.trackers.is_empty(), "sweep '{}' has an empty tracker axis", self.name);
        assert!(!self.faults.is_empty(), "sweep '{}' has an empty fault axis", self.name);
        assert!(!self.tenants.is_empty(), "sweep '{}' has an empty tenant axis", self.name);
        for scenario in self.tenants.iter().flatten() {
            assert!(
                scenario.tenants >= 1,
                "sweep '{}': a tenant scenario needs at least one tenant",
                self.name
            );
        }
        for &c in &self.cores {
            assert!(c > 0, "sweep '{}': zero-core machines cannot run", self.name);
        }
        for &i in &self.observe_cells {
            assert!(
                i < self.cell_count(),
                "sweep '{}': observed cell {i} is out of range ({} cells)",
                self.name,
                self.cell_count()
            );
        }
        for t in &self.trackers {
            t.validate();
        }
        for f in &self.faults {
            f.validate();
        }
        for w in &self.workloads {
            w.check();
        }
    }

    /// Runs the sweep sequentially. See [`crate::runner::run_sweep`].
    pub fn run(&self) -> crate::report::SweepReport {
        crate::runner::run_sweep(self)
    }

    /// Runs the sweep on `workers` host threads. See [`crate::runner::run_sweep_with_workers`].
    pub fn run_parallel(&self, workers: usize) -> crate::report::SweepReport {
        crate::runner::run_sweep_with_workers(self, workers)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::SynthFamily;

    #[test]
    fn cells_enumerate_in_grid_order() {
        let sweep = Sweep::new("order")
            .over_cores([2, 4])
            .over_platforms([Platform::Phentos, Platform::NanosSw])
            .over_trackers([TrackerConfig::default(), TrackerConfig::new(64, 256)])
            .with_workload(WorkloadSpec::synth(SynthSpec::uniform(SynthFamily::Chain, 10, 100)))
            .with_workload(WorkloadSpec::catalog("blackscholes", "4K B64"));
        assert_eq!(sweep.cell_count(), 2 * 2 * 2 * 2);
        let cells = sweep.cells();
        assert_eq!(cells.len(), 16);
        // Platforms vary fastest, then trackers, then cores, then workloads.
        assert_eq!((cells[0].workload, cells[0].cores, cells[0].tracker, cells[0].platform), (0, 2, 0, 0));
        assert_eq!((cells[1].workload, cells[1].cores, cells[1].tracker, cells[1].platform), (0, 2, 0, 1));
        assert_eq!((cells[2].workload, cells[2].cores, cells[2].tracker, cells[2].platform), (0, 2, 1, 0));
        assert_eq!((cells[4].workload, cells[4].cores, cells[4].tracker, cells[4].platform), (0, 4, 0, 0));
        assert_eq!((cells[8].workload, cells[8].cores, cells[8].tracker, cells[8].platform), (1, 2, 0, 0));
        for (i, c) in cells.iter().enumerate() {
            assert_eq!(c.index, i);
            assert_eq!(c.memory, 0, "a single-entry memory axis stays at index 0");
        }
        sweep.check();
    }

    #[test]
    fn memory_axis_sits_between_cores_and_trackers() {
        let sweep = Sweep::new("mem-order")
            .over_cores([2, 4])
            .over_memory_models([MemoryModel::SnoopBus, MemoryModel::directory_mesh()])
            .over_trackers([TrackerConfig::default(), TrackerConfig::new(64, 256)])
            .over_platforms([Platform::Phentos, Platform::NanosSw])
            .with_workload(WorkloadSpec::synth(SynthSpec::uniform(SynthFamily::Chain, 10, 100)));
        assert_eq!(sweep.cell_count(), 2 * 2 * 2 * 2);
        let cells = sweep.cells();
        // Memory varies slower than trackers/platforms, faster than cores.
        assert_eq!((cells[0].memory, cells[0].tracker, cells[0].platform), (0, 0, 0));
        assert_eq!((cells[3].memory, cells[3].tracker, cells[3].platform), (0, 1, 1));
        assert_eq!((cells[4].memory, cells[4].tracker, cells[4].platform), (1, 0, 0));
        assert_eq!(cells[7].cores, 2);
        assert_eq!((cells[8].cores, cells[8].memory), (4, 0));
        sweep.check();
    }

    #[test]
    fn fault_axis_sits_between_trackers_and_platforms() {
        let sweep = Sweep::new("fault-order")
            .over_trackers([TrackerConfig::default(), TrackerConfig::new(64, 256)])
            .over_faults([FaultConfig::none(), FaultConfig::recoverable()])
            .over_platforms([Platform::Phentos, Platform::NanosSw])
            .with_workload(WorkloadSpec::synth(SynthSpec::uniform(SynthFamily::Chain, 10, 100)));
        assert_eq!(sweep.cell_count(), 2 * 2 * 2);
        let cells = sweep.cells();
        assert_eq!((cells[0].tracker, cells[0].fault, cells[0].platform), (0, 0, 0));
        assert_eq!((cells[1].tracker, cells[1].fault, cells[1].platform), (0, 0, 1));
        assert_eq!((cells[2].tracker, cells[2].fault, cells[2].platform), (0, 1, 0));
        assert_eq!((cells[4].tracker, cells[4].fault, cells[4].platform), (1, 0, 0));
        sweep.check();
    }

    #[test]
    fn tenant_axis_sits_between_faults_and_platforms() {
        let sweep = Sweep::new("tenant-order")
            .over_faults([FaultConfig::none(), FaultConfig::recoverable()])
            .over_tenants([None, Some(TenantScenario::batch(2, false))])
            .over_platforms([Platform::Phentos, Platform::NanosSw])
            .with_workload(WorkloadSpec::synth(SynthSpec::uniform(SynthFamily::Chain, 10, 100)));
        assert_eq!(sweep.cell_count(), 2 * 2 * 2);
        let cells = sweep.cells();
        assert_eq!((cells[0].fault, cells[0].tenant, cells[0].platform), (0, 0, 0));
        assert_eq!((cells[1].fault, cells[1].tenant, cells[1].platform), (0, 0, 1));
        assert_eq!((cells[2].fault, cells[2].tenant, cells[2].platform), (0, 1, 0));
        assert_eq!((cells[4].fault, cells[4].tenant, cells[4].platform), (1, 0, 0));
        sweep.check();
    }

    #[test]
    fn tenant_scenario_keys_are_stable() {
        assert_eq!(TenantScenario::batch(1, false).key(), "t1-batch-shared");
        assert_eq!(TenantScenario::poisson(4, 200, true).key(), "t4-poi200-part");
        assert_eq!(TenantScenario::bursty(2, 64, 200_000, true).key(), "t2-burst64x200000-part");
        assert_eq!(
            TenantScenario::bursty(2, 64, 200_000, true)
                .with_victim_arrival(ArrivalProcess::Poisson { mean_interarrival: 2_000 })
                .key(),
            "t2-burst64x200000-part-vpoi2000"
        );
    }

    #[test]
    #[should_panic(expected = "at least one tenant")]
    fn zero_tenant_scenarios_fail_at_check_time() {
        Sweep::new("bad-tenants")
            .over_tenants([Some(TenantScenario::batch(0, false))])
            .with_workload(WorkloadSpec::catalog("blackscholes", "4K B64"))
            .check();
    }

    #[test]
    #[should_panic(expected = "detection timeout")]
    fn degenerate_fault_axis_entries_fail_at_check_time() {
        let bad = FaultConfig { retry_timeout: 0, ..FaultConfig::recoverable() };
        Sweep::new("bad-fault")
            .over_faults([bad])
            .with_workload(WorkloadSpec::catalog("blackscholes", "4K B64"))
            .check();
    }

    #[test]
    fn cell_rng_ignores_platform_and_tracker_axes() {
        let sweep = Sweep::new("rng");
        let mut a = sweep.cell_rng(0, 4);
        let mut b = sweep.cell_rng(0, 4);
        let mut c = sweep.cell_rng(1, 4);
        let mut d = sweep.cell_rng(0, 8);
        let first = a.next_u64();
        assert_eq!(first, b.next_u64());
        assert_ne!(first, c.next_u64());
        assert_ne!(first, d.next_u64());
    }

    #[test]
    fn workload_spec_labels_and_instantiation() {
        let cat = WorkloadSpec::catalog("blackscholes", "4K B64");
        assert_eq!(cat.label(), "blackscholes 4K B64");
        assert_eq!(cat.family(), "blackscholes");
        let mut rng = SimRng::new(1);
        let p8 = cat.instantiate(8, &mut rng);
        let p64 = cat.instantiate(64, &mut rng);
        assert_eq!(p8.task_count() * 8, p64.task_count(), "catalog scales with cores");

        let spec = SynthSpec::uniform(SynthFamily::ForkJoin { width: 4 }, 16, 1_000);
        let synth = WorkloadSpec::synth(spec);
        assert_eq!(synth.family(), "synth-forkjoin");
        assert_eq!(synth.instantiate(64, &mut SimRng::new(2)).task_count(), 16 * 8);
        let fixed_size = WorkloadSpec::synth_fixed_size(spec);
        assert_eq!(fixed_size.instantiate(64, &mut SimRng::new(2)).task_count(), 16);

        let fixed = WorkloadSpec::fixed("probe", "micro", p8.clone());
        assert_eq!(fixed.label(), "probe");
        assert_eq!(fixed.family(), "micro");
        assert_eq!(fixed.instantiate(64, &mut rng), p8);
    }

    #[test]
    #[should_panic(expected = "no catalog entry")]
    fn unknown_catalog_entry_fails_at_check_time() {
        Sweep::new("bad").with_workload(WorkloadSpec::catalog("blackscholes", "9K B7")).check();
    }

    #[test]
    #[should_panic(expected = "no workloads")]
    fn empty_sweep_is_rejected() {
        Sweep::new("empty").check();
    }
}
