//! Streaming synthetic workloads: million-task graphs in `O(window)` memory.
//!
//! [`SynthSpec::generate`] materializes every descriptor before the first simulated cycle,
//! which caps a cell at however many tasks fit in host memory. [`StreamingSynth`] is the
//! [`TaskSource`] counterpart for the families whose structure is *local* — chain, layered
//! fork-join, and windowed Erdős–Rényi — generating each descriptor the moment the runtime
//! pulls it and freeing it on retire, so only the in-flight window is ever resident.
//!
//! Two invariants make the streamed and materialized paths interchangeable:
//!
//! * **Bit-identical op streams.** The source consumes its [`SimRng`] in exactly the order
//!   `generate` does (per task: edge draws, then the size draw), shares the same output
//!   addressing (`out_addr` — one private write per task plus reads
//!   of predecessor outputs), and emits the same `taskwait` placement. With a window the run
//!   never fills, a streamed cell's [`ExecutionReport`](tis_machine::ExecutionReport) is
//!   byte-identical to its materialized twin.
//! * **Inline validation.** Where `generate` routes the finished program through the
//!   [`tis_analyze::analyze_program`] preflight, a stream cannot be scanned up front: every
//!   spawn instead passes through a [`WindowedPreflight`], which proves the same structural
//!   properties and enumerates the conflict frontier over a bounded history window. A
//!   generator bug panics at the offending spawn rather than producing a racy cell.
//!
//! Blocking cannot deadlock: a streamed task only reads outputs of *earlier* tasks, so when
//! the window is full the in-flight set always contains runnable work and the runtime drains
//! it exactly as it does when the hardware tracker refuses a submission.

use tis_analyze::WindowedPreflight;
use tis_sim::{FxHashMap, SimRng};
use tis_taskmodel::{
    Dependence, Payload, ProgramOp, SourcePoll, TaskId, TaskSource, TaskSpec, MAX_DEPENDENCES,
};

use crate::synth::{out_addr, SynthFamily, SynthSpec, ER_WINDOW, MAX_IN_DEGREE};

/// A bounded-residency [`TaskSource`] over a streamable [`SynthSpec`].
///
/// Streamable families are [`SynthFamily::Chain`], [`SynthFamily::ForkJoin`] and
/// [`SynthFamily::ErdosRenyi`]; [`new`](StreamingSynth::new) panics on the others (their
/// fan-in structure is what the materializing generator is for).
#[derive(Debug)]
pub struct StreamingSynth {
    spec: SynthSpec,
    name: String,
    rng: SimRng,
    /// Maximum number of resident (pulled, unretired) descriptors before `poll` blocks.
    window: usize,
    /// Next task to emit; every id below it has been pulled.
    next_id: u64,
    /// Whether the barrier preceding `next_id`'s layer has been emitted (fork-join only).
    layer_barrier_emitted: bool,
    /// Whether the trailing `taskwait` that ends every synthetic program has been emitted.
    trailing_wait_emitted: bool,
    resident: FxHashMap<u64, TaskSpec>,
    peak_resident: usize,
    preflight: WindowedPreflight,
}

impl StreamingSynth {
    /// Creates a streaming source for `spec`, blocking whenever more than `window` descriptors
    /// are in flight. Randomness comes only from `rng`, in the exact order
    /// [`SynthSpec::generate`] would consume it.
    ///
    /// # Panics
    ///
    /// Panics on a degenerate spec, a zero window, or a non-streamable family.
    pub fn new(spec: SynthSpec, window: usize, rng: SimRng) -> Self {
        spec.assert_params();
        assert!(window > 0, "a streaming source needs a nonzero in-flight window");
        assert!(
            matches!(
                spec.family,
                SynthFamily::Chain | SynthFamily::ForkJoin { .. } | SynthFamily::ErdosRenyi { .. }
            ),
            "{} is not a streamable family (tree and diamond graphs are materialized)",
            spec.family.key()
        );
        StreamingSynth {
            name: spec.name(),
            spec,
            rng,
            window,
            next_id: 0,
            layer_barrier_emitted: false,
            trailing_wait_emitted: false,
            resident: FxHashMap::default(),
            peak_resident: 0,
            // The preflight's history window tracks the dependence structure's reach, not the
            // residency window: ER reads up to ER_WINDOW back, the others one task back.
            preflight: WindowedPreflight::new(ER_WINDOW.max(window)),
        }
    }

    /// The generation parameters this source streams.
    pub fn synth_spec(&self) -> &SynthSpec {
        &self.spec
    }

    /// The completed windowed-preflight summary; call once the stream is exhausted.
    pub fn preflight_summary(&self) -> tis_analyze::WindowedAnalysis {
        self.preflight.clone().finish()
    }

    /// Generates the descriptor of task `next_id`, consuming RNG in `generate` order.
    fn next_spec(&mut self) -> TaskSpec {
        let i = self.next_id as usize;
        let mut deps = vec![Dependence::write(out_addr(i))];
        match self.spec.family {
            SynthFamily::Chain => {
                if i > 0 {
                    deps.push(Dependence::read(out_addr(i - 1)));
                }
            }
            SynthFamily::ForkJoin { .. } => {
                // Data-independent layers; the barriers emitted by `poll` provide the joins.
            }
            SynthFamily::ErdosRenyi { density } => {
                let window_start = i.saturating_sub(ER_WINDOW);
                for pred in window_start..i {
                    if deps.len() > MAX_IN_DEGREE {
                        break;
                    }
                    if self.rng.chance(density) {
                        deps.push(Dependence::read(out_addr(pred)));
                    }
                }
            }
            SynthFamily::Tree { .. } | SynthFamily::Diamond { .. } => {
                unreachable!("non-streamable families are rejected at construction")
            }
        }
        let payload = Payload::compute(self.spec.draw_cycles(&mut self.rng));
        TaskSpec::new(TaskId(self.next_id), payload, deps)
    }

    /// Whether a fork-join layer barrier precedes task `next_id`.
    fn barrier_due(&self) -> bool {
        match self.spec.family {
            SynthFamily::ForkJoin { width } => {
                self.next_id > 0 && self.next_id.is_multiple_of(width as u64)
            }
            _ => false,
        }
    }
}

impl TaskSource for StreamingSynth {
    fn name(&self) -> &str {
        &self.name
    }

    fn poll(&mut self) -> SourcePoll {
        if self.next_id as usize >= self.spec.tasks {
            // Every synthetic program ends with one trailing taskwait; after it the source
            // is fused Done.
            if self.trailing_wait_emitted {
                return SourcePoll::Done;
            }
            self.trailing_wait_emitted = true;
            self.preflight.observe_taskwait();
            return SourcePoll::Op(ProgramOp::TaskWait);
        }
        if self.barrier_due() && !self.layer_barrier_emitted {
            self.layer_barrier_emitted = true;
            self.preflight.observe_taskwait();
            return SourcePoll::Op(ProgramOp::TaskWait);
        }
        if self.resident.len() >= self.window {
            return SourcePoll::Blocked;
        }
        let spec = self.next_spec();
        if let Err(e) = self.preflight.observe_spawn(self.next_id, &spec.deps) {
            panic!("streaming generator produced an unsound spawn for {}: {e:?}", self.name);
        }
        self.next_id += 1;
        self.layer_barrier_emitted = false;
        self.resident.insert(spec.id.raw(), spec.clone());
        self.peak_resident = self.peak_resident.max(self.resident.len());
        SourcePoll::Op(ProgramOp::Spawn(spec))
    }

    fn spec(&self, sw_id: u64) -> &TaskSpec {
        self.resident
            .get(&sw_id)
            .unwrap_or_else(|| panic!("T{sw_id} is not resident (pulled and unretired)"))
    }

    fn retire(&mut self, sw_id: u64) {
        let freed = self.resident.remove(&sw_id);
        debug_assert!(freed.is_some(), "retire of non-resident task T{sw_id}");
    }

    fn max_deps(&self) -> usize {
        match self.spec.family {
            SynthFamily::Chain => 2,
            SynthFamily::ForkJoin { .. } => 1,
            // 1 write + up to MAX_IN_DEGREE reads — the descriptor-format cap.
            _ => MAX_DEPENDENCES,
        }
    }

    fn resident(&self) -> usize {
        self.resident.len()
    }

    fn peak_resident(&self) -> usize {
        self.peak_resident
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(mut src: StreamingSynth) -> Vec<ProgramOp> {
        let mut ops = Vec::new();
        loop {
            match src.poll() {
                SourcePoll::Op(op) => {
                    if let ProgramOp::Spawn(s) = &op {
                        let id = s.id.raw();
                        src.retire(id); // retire immediately: the window never fills
                    }
                    ops.push(op);
                }
                SourcePoll::Blocked => panic!("window cannot fill with immediate retirement"),
                SourcePoll::Done => break,
            }
        }
        assert_eq!(src.poll(), SourcePoll::Done, "sources are fused");
        ops
    }

    #[test]
    fn streamed_ops_equal_generated_ops_for_every_streamable_family() {
        for family in [
            SynthFamily::Chain,
            SynthFamily::ForkJoin { width: 7 },
            SynthFamily::ErdosRenyi { density: 0.08 },
        ] {
            let spec = SynthSpec { family, tasks: 300, task_cycles: 2_000, jitter: 0.3 };
            let program = spec.generate(&mut SimRng::new(0xFEED));
            let streamed = drain(StreamingSynth::new(spec, 4096, SimRng::new(0xFEED)));
            assert_eq!(
                streamed,
                program.ops().to_vec(),
                "{}: streamed op sequence must be bit-identical to the materialized program",
                spec.name()
            );
        }
    }

    #[test]
    fn window_blocks_and_frees_exactly_at_capacity() {
        let spec = SynthSpec::uniform(SynthFamily::Chain, 10, 500);
        let mut src = StreamingSynth::new(spec, 3, SimRng::new(1));
        for _ in 0..3 {
            assert!(matches!(src.poll(), SourcePoll::Op(ProgramOp::Spawn(_))));
        }
        assert_eq!(src.poll(), SourcePoll::Blocked);
        assert_eq!(src.resident(), 3);
        src.retire(0);
        assert!(matches!(src.poll(), SourcePoll::Op(ProgramOp::Spawn(_))));
        assert_eq!(src.peak_resident(), 3);
        assert_eq!(src.spec(2).payload.compute_cycles, 500);
    }

    #[test]
    fn preflight_summary_sees_the_whole_stream() {
        let spec = SynthSpec::uniform(SynthFamily::ForkJoin { width: 4 }, 16, 100);
        let src = StreamingSynth::new(spec, 64, SimRng::new(2));
        let ops = drain_count(src);
        assert_eq!(ops.0, 16);
        assert_eq!(ops.1, 4); // three layer barriers + the trailing taskwait
    }

    fn drain_count(mut src: StreamingSynth) -> (u64, u64) {
        loop {
            match src.poll() {
                SourcePoll::Op(ProgramOp::Spawn(s)) => {
                    let id = s.id.raw();
                    src.retire(id);
                }
                SourcePoll::Op(ProgramOp::TaskWait) => {}
                SourcePoll::Blocked => unreachable!(),
                SourcePoll::Done => break,
            }
        }
        let a = src.preflight_summary();
        (a.tasks, a.taskwaits)
    }

    #[test]
    #[should_panic(expected = "not a streamable family")]
    fn tree_is_rejected() {
        StreamingSynth::new(
            SynthSpec::uniform(SynthFamily::Tree { arity: 2 }, 10, 100),
            8,
            SimRng::new(0),
        );
    }
}
