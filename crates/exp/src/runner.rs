//! The sweep runner: evaluates grid cells through `tis_machine::engine::run_machine`,
//! optionally fanning independent cells out across host threads.
//!
//! Every cell is a fully deterministic, self-contained simulation — it builds its own
//! [`Harness`], instantiates its own program from a pure per-cell RNG stream
//! ([`Sweep::cell_rng`]), and shares no mutable state with other cells. Workers pull cell
//! indices from an atomic counter and write results into the cell's own slot, so the report is
//! assembled in grid order and is **bit-identical for any worker count** (pinned by
//! `tests/sweep_determinism.rs`).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use tis_bench::{measure_lifetime_overhead, measure_task_throughput, Harness};
use tis_machine::{mtt_speedup_bound_from_throughput, FaultConfig};
use tis_sim::SimRng;
use tis_taskmodel::{MaterializedSource, TenantSet, TenantTrackerPolicy};
use tis_workloads::task_chain;

use crate::grid::{CellSpec, Sweep, TenantScenario};
use crate::report::{ObsCellData, SweepCell, SweepReport, TenantCellData};

/// Number of tasks in the Task-Chain probe used to measure per-platform lifetime overhead.
const OVERHEAD_PROBE_TASKS: usize = 100;

/// Scheduler-saturation probes measured once per `(memory model, tracker, cores, platform)`
/// combination and shared by every cell at that point: the single-core lifetime overhead `Lo`
/// (the Figure 7 metric, reported for context) and the maximum task throughput `MTT` at the
/// cell's core count, from which the cell's speedup bound `min(cores, t × MTT)` is derived.
/// Measuring MTT *at the swept core count* — instead of assuming `1 / Lo`, which is only tight
/// when per-task overhead serialises — is what keeps the bound honest for runtimes whose
/// overhead parallelises across workers (the 8-core shortcut the ROADMAP's sweep item calls
/// out). The memory model is part of the probe coordinates because directory/NoC latencies
/// slow the scheduling paths themselves: a bound measured on the snooping bus would be
/// inconsistent with cells simulated on the mesh.
struct SchedulerProbes {
    /// `Lo` per `(memory, tracker, platform)` in cycles per task.
    lifetime_overhead: Vec<f64>,
    /// `MTT` per `(memory, tracker, core_axis, platform)` in tasks per cycle.
    throughput: Vec<f64>,
}

impl SchedulerProbes {
    fn measure(sweep: &Sweep) -> Self {
        let chain = task_chain(OVERHEAD_PROBE_TASKS, 1);
        let mut lifetime_overhead = Vec::with_capacity(
            sweep.memory_models.len() * sweep.trackers.len() * sweep.platforms.len(),
        );
        let mut throughput = Vec::with_capacity(
            sweep.memory_models.len()
                * sweep.trackers.len()
                * sweep.cores.len()
                * sweep.platforms.len(),
        );
        for &memory in &sweep.memory_models {
            for &tracker in &sweep.trackers {
                let prototype =
                    Harness::paper_prototype().with_tracker(tracker).with_memory_model(memory);
                for &platform in &sweep.platforms {
                    lifetime_overhead.push(measure_lifetime_overhead(&prototype, platform, &chain));
                }
                for &cores in &sweep.cores {
                    let harness =
                        Harness::with_cores(cores).with_tracker(tracker).with_memory_model(memory);
                    // Enough independent empty tasks that steady-state throughput dominates the
                    // ramp-up, at every swept core count.
                    let probe_tasks = (cores * 32).max(256);
                    for &platform in &sweep.platforms {
                        throughput.push(measure_task_throughput(&harness, platform, probe_tasks));
                    }
                }
            }
        }
        SchedulerProbes { lifetime_overhead, throughput }
    }

    fn lifetime_overhead(&self, sweep: &Sweep, cell: &CellSpec) -> f64 {
        let per_memory = sweep.trackers.len() * sweep.platforms.len();
        self.lifetime_overhead
            [cell.memory * per_memory + cell.tracker * sweep.platforms.len() + cell.platform]
    }

    fn throughput(&self, sweep: &Sweep, cell: &CellSpec) -> f64 {
        let per_tracker = sweep.cores.len() * sweep.platforms.len();
        let per_memory = sweep.trackers.len() * per_tracker;
        self.throughput[cell.memory * per_memory
            + cell.tracker * per_tracker
            + cell.core_axis * sweep.platforms.len()
            + cell.platform]
    }
}

/// Runs a sweep sequentially (one worker).
pub fn run_sweep(sweep: &Sweep) -> SweepReport {
    run_sweep_with_workers(sweep, 1)
}

/// Worker count for the curated sweep benches: the `TIS_SWEEP_WORKERS` environment variable
/// when set to a valid number, otherwise the host's available parallelism (1 as a last
/// resort). One place, so the policy cannot diverge between bench targets.
pub fn workers_from_env() -> usize {
    std::env::var("TIS_SWEEP_WORKERS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or_else(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1))
}

/// Runs a sweep with `workers` host threads (clamped to the cell count; `0` is treated as 1).
///
/// # Panics
///
/// Panics if the sweep definition is invalid ([`Sweep::check`]), if any cell's simulation
/// deadlocks or exceeds its cycle cap, or if validation is enabled and a schedule violates the
/// reference dependence graph.
pub fn run_sweep_with_workers(sweep: &Sweep, workers: usize) -> SweepReport {
    sweep.check();
    let cells = sweep.cells();

    // Scheduler probes depend only on axis coordinates, not on the workload; measuring them
    // once up front keeps the per-cell work purely cell-local. Likewise, all cells of one
    // (workload, cores) grid point schedule the same program, so it is instantiated once here
    // and shared, not regenerated per platform/tracker cell.
    let probes = SchedulerProbes::measure(sweep);
    let mut programs = Vec::with_capacity(sweep.workloads.len() * sweep.cores.len());
    for (wi, spec) in sweep.workloads.iter().enumerate() {
        for &cores in &sweep.cores {
            let mut rng = sweep.cell_rng(wi, cores);
            let program = spec.instantiate(cores, &mut rng);
            // Preflight chokepoint: prove the graph acyclic, reference-clean,
            // and conflict-covered before a single cell simulates it.
            if sweep.analysis.preflight {
                if let Err(e) = tis_analyze::analyze_program(&program) {
                    panic!(
                        "sweep '{}': preflight failed for {} at {cores} cores: {e}",
                        sweep.name,
                        spec.label()
                    );
                }
            }
            programs.push(program);
        }
    }
    let program_of = |cell: &CellSpec| &programs[cell.workload * sweep.cores.len() + cell.core_axis];

    let workers = workers.max(1).min(cells.len().max(1));
    let mut slots: Vec<Option<SweepCell>> = vec![None; cells.len()];
    if workers <= 1 {
        for cell in &cells {
            slots[cell.index] = Some(run_cell(sweep, cell, program_of(cell), &probes));
        }
    } else {
        let next = AtomicUsize::new(0);
        let results = Mutex::new(&mut slots);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(cell) = cells.get(i) else { break };
                    let done = run_cell(sweep, cell, program_of(cell), &probes);
                    results.lock().expect("no worker panicked holding the slot lock")[cell.index] =
                        Some(done);
                });
            }
        });
    }

    SweepReport {
        name: sweep.name.clone(),
        seed: sweep.seed,
        cells: slots.into_iter().map(|c| c.expect("every cell index was evaluated")).collect(),
    }
}

/// Evaluates one cell on its grid point's shared program.
fn run_cell(
    sweep: &Sweep,
    cell: &CellSpec,
    program: &tis_taskmodel::TaskProgram,
    probes: &SchedulerProbes,
) -> SweepCell {
    if let Some(scenario) = sweep.tenants[cell.tenant] {
        return run_tenant_cell(sweep, cell, program, probes, scenario);
    }
    let lifetime_overhead = probes.lifetime_overhead(sweep, cell);
    let tasks_per_cycle = probes.throughput(sweep, cell);
    let spec = &sweep.workloads[cell.workload];
    let platform = sweep.platforms[cell.platform];
    let tracker = sweep.trackers[cell.tracker];
    let memory = sweep.memory_models[cell.memory];
    // Each engaging cell replays its own fault schedule: the schedule seed is a pure function
    // of the sweep seed and the cell's grid index, so it is identical at any worker count and
    // the resolved config recorded in the report replays the cell exactly. A non-engaging
    // config is passed through untouched, constructing no fault layer at all.
    let base_fault = sweep.faults[cell.fault];
    let fault = if base_fault.engages() {
        let mut seeds = SimRng::new(sweep.seed).stream("sweep-fault", cell.index as u64);
        FaultConfig { seed: seeds.next_u64(), ..base_fault }
    } else {
        base_fault
    };
    let harness = Harness::with_cores(cell.cores)
        .with_tracker(tracker)
        .with_memory_model(memory)
        .with_faults(fault);
    let context = || {
        format!(
            "sweep '{}' cell {}: {} on {} cores, {}, {}, {}, fault {}",
            sweep.name,
            cell.index,
            spec.label(),
            cell.cores,
            memory.label(),
            platform.label(),
            tracker.label(),
            fault.key()
        )
    };
    // An observed cell runs with a recorder attached through the engine's observer
    // chokepoint. Observation is a pure tap — the simulated cycle counts are identical either
    // way (`observing_a_sweep_changes_no_measurement` pins this) — so observed and unobserved
    // cells of one report remain directly comparable.
    let cell_obs = sweep.cell_obs(cell.index);
    let mut recorder = cell_obs.map(tis_obs::Recorder::new);
    let report = match recorder.as_mut() {
        Some(r) => harness.run_observed(platform, program, r),
        None => harness.run(platform, program),
    }
    .unwrap_or_else(|e| panic!("{} failed: {e}", context()));
    if sweep.validate {
        report
            .validate_against(program)
            .unwrap_or_else(|e| panic!("{} produced an invalid schedule: {e}", context()));
    }
    // Dynamic race check over the dispatch/retire trace. A detected race means the
    // platform executed a conflicting pair without a happens-before path — like a
    // validation failure, that is a bug to surface, not a data point to record.
    let race_pairs_checked = if sweep.analysis.races {
        let spec_graph = tis_analyze::GraphSpec::from_program(program);
        let analysis = tis_analyze::detect_races(&spec_graph, &report.records);
        if !analysis.is_race_free() {
            let mut detail = String::new();
            for race in &analysis.races {
                detail.push_str(&format!("\n  {race}"));
            }
            panic!(
                "{} raced ({} of {} conflicting pairs unordered, {} unrecorded):{detail}",
                context(),
                analysis.races.len(),
                analysis.pairs_checked,
                analysis.pairs_skipped
            );
        }
        analysis.pairs_checked as u64
    } else {
        0
    };
    // Fold the recorder into the cell: critical path over the program's happens-before edges
    // (the same edges the race detector walks), plus the rendered trace/metrics documents.
    let obs = recorder.map(|r| {
        let edges = tis_analyze::GraphSpec::from_program(program).edges;
        let label = format!("{} cell {} ({})", sweep.name, cell.index, spec.label());
        Box::new(ObsCellData {
            config: cell_obs.expect("a recorder implies an engaged obs config"),
            task_events: r.task_events(),
            samples: r.metrics().samples().len() as u64,
            critical: r.critical_path(&edges, report.total_cycles),
            tenant_critical: Vec::new(),
            trace_json: r.perfetto_json(&label, cell.cores).render(),
            metrics_json: r.metrics_json(&label, report.total_cycles).render(),
        })
    });
    let stats = program.stats(harness.machine.dram_bytes_per_cycle);
    let serial = harness.serial_cycles(program);
    SweepCell {
        workload: spec.label(),
        family: spec.family(),
        cores: cell.cores,
        memory,
        platform,
        tracker,
        tasks: stats.tasks,
        mean_task_cycles: stats.mean_task_cycles,
        serial_cycles: serial,
        total_cycles: report.total_cycles,
        speedup: report.speedup_over(serial),
        lifetime_overhead,
        mtt_tasks_per_cycle: tasks_per_cycle,
        mtt_bound: mtt_speedup_bound_from_throughput(
            stats.mean_task_cycles,
            tasks_per_cycle,
            cell.cores,
        ),
        mem_accesses: report.memory_stats.accesses,
        mem_stall_cycles: report.memory_stats.stall_cycles,
        mean_mem_latency: report.memory_stats.mean_access_latency(),
        noc_link_wait_cycles: report.memory_stats.noc_link_wait_cycles,
        max_link_occupancy: report.memory_stats.max_link_occupancy,
        fault,
        fault_drops: report.memory_stats.fault.drops,
        fault_delays: report.memory_stats.fault.delays,
        fault_retries: report.memory_stats.fault.retries + report.fabric_stats.tracker_resubmits,
        fault_tracker_losses: report.fabric_stats.tracker_losses,
        fault_recovery_cycles: report.memory_stats.fault.recovery_cycles
            + report.fabric_stats.tracker_recovery_cycles,
        analysis: sweep.analysis,
        race_pairs_checked,
        tenant: None,
        obs,
    }
}

/// Evaluates one co-scheduled cell. Tenant 0 runs the grid point's shared program
/// batch-at-zero — so the 1-tenant batch/shared scenario is the degenerate case, pinned
/// cycle-identical to the plain single-program cell — and tenants `1..n` run independent
/// instances of the same workload spec drawn from per-tenant substreams of the cell RNG.
/// The whole scenario replays bit-exactly from `(sweep seed, cell coordinates)` alone.
///
/// Schedule validation and race detection are skipped here: both check against a single
/// program's reference graph, and a merged run's global task IDs span all tenants. The
/// per-tenant critical paths (observed cells) cover the merged run instead.
fn run_tenant_cell(
    sweep: &Sweep,
    cell: &CellSpec,
    program: &tis_taskmodel::TaskProgram,
    probes: &SchedulerProbes,
    scenario: TenantScenario,
) -> SweepCell {
    let lifetime_overhead = probes.lifetime_overhead(sweep, cell);
    let tasks_per_cycle = probes.throughput(sweep, cell);
    let spec = &sweep.workloads[cell.workload];
    let platform = sweep.platforms[cell.platform];
    let tracker = sweep.trackers[cell.tracker];
    let memory = sweep.memory_models[cell.memory];
    let base_fault = sweep.faults[cell.fault];
    let fault = if base_fault.engages() {
        let mut seeds = SimRng::new(sweep.seed).stream("sweep-fault", cell.index as u64);
        FaultConfig { seed: seeds.next_u64(), ..base_fault }
    } else {
        base_fault
    };
    let harness = Harness::with_cores(cell.cores)
        .with_tracker(tracker)
        .with_memory_model(memory)
        .with_faults(fault);
    let context = || {
        format!(
            "sweep '{}' cell {}: {} ({}) on {} cores, {}, {}, {}, fault {}",
            sweep.name,
            cell.index,
            spec.label(),
            scenario.key(),
            cell.cores,
            memory.label(),
            platform.label(),
            tracker.label(),
            fault.key()
        )
    };
    let mut tenant_programs = vec![program.clone()];
    for t in 1..scenario.tenants {
        let mut rng = sweep.cell_rng(cell.workload, cell.cores).stream("tenant", t as u64);
        tenant_programs.push(spec.instantiate(cell.cores, &mut rng));
    }
    let policy = if scenario.partitioned {
        TenantTrackerPolicy::Partitioned {
            per_tenant_entries: tracker.per_tenant_entries(scenario.tenants),
        }
    } else {
        TenantTrackerPolicy::Shared
    };
    let mut set = TenantSet::new().with_policy(policy);
    for (t, p) in tenant_programs.iter().enumerate() {
        let arrival = if t == 0 { scenario.victim_arrival } else { scenario.co_arrival };
        set = set.tenant(format!("t{t}"), Box::new(MaterializedSource::new(p)), arrival);
    }
    // Arrival draws are offered load, not schedule: deriving them from the cell's
    // (workload, cores) stream — never from the policy or the grid index — keeps a
    // shared-vs-partitioned pair of cells facing byte-identical arrival times, so the pair
    // isolates the tracker policy and nothing else.
    let arrivals = sweep.cell_rng(cell.workload, cell.cores).stream("tenant-arrivals", 0);
    let source = set.into_source(arrivals);
    let cell_obs = sweep.cell_obs(cell.index);
    let mut recorder = cell_obs.map(tis_obs::Recorder::new);
    let (report, run_data) = harness
        .run_tenants(
            platform,
            source,
            false,
            recorder.as_mut().map(|r| r as &mut dyn tis_obs::Observer),
        )
        .unwrap_or_else(|e| panic!("{} failed: {e}", context()));
    let obs = recorder.map(|r| {
        // The merged run's happens-before edges are each tenant's program edges remapped to
        // global task IDs through the release-order assignment (tenant t's k-th release is
        // the k-th global ID assigned to t), so the whole-run critical path stays
        // machine-checked; the per-tenant decompositions reuse the same assignment.
        let tenant_edges: Vec<Vec<(usize, usize)>> = tenant_programs
            .iter()
            .map(|p| tis_analyze::GraphSpec::from_program(p).edges)
            .collect();
        let mut globals: Vec<Vec<usize>> = vec![Vec::new(); tenant_programs.len()];
        for (global, &t) in run_data.assignment.iter().enumerate() {
            globals[t as usize].push(global);
        }
        let merged_edges: Vec<(usize, usize)> = tenant_edges
            .iter()
            .enumerate()
            .flat_map(|(t, edges)| {
                let map = &globals[t];
                edges.iter().map(move |&(a, b)| (map[a], map[b]))
            })
            .collect();
        let label = format!("{} cell {} ({})", sweep.name, cell.index, spec.label());
        Box::new(ObsCellData {
            config: cell_obs.expect("a recorder implies an engaged obs config"),
            task_events: r.task_events(),
            samples: r.metrics().samples().len() as u64,
            critical: r.critical_path(&merged_edges, report.total_cycles),
            tenant_critical: tis_obs::critical_path_per_tenant(
                r.spans(),
                &run_data.assignment,
                &tenant_edges,
            ),
            trace_json: tis_obs::trace_json_tenants(
                &label,
                cell.cores,
                r.spans(),
                r.metrics().samples(),
                &run_data.names,
                &run_data.assignment,
            )
            .render(),
            metrics_json: r.metrics_json(&label, report.total_cycles).render(),
        })
    });
    // Aggregate workload statistics across tenants; the serial baseline is one machine doing
    // every tenant's work back to back, so speedup stays speedup-over-serial for the whole
    // offered load.
    let mut tasks = 0usize;
    let mut weighted_cycles = 0.0;
    let mut serial = 0u64;
    for p in &tenant_programs {
        let stats = p.stats(harness.machine.dram_bytes_per_cycle);
        weighted_cycles += stats.mean_task_cycles * stats.tasks as f64;
        tasks += stats.tasks;
        serial += harness.serial_cycles(p);
    }
    let mean_task_cycles = if tasks == 0 { 0.0 } else { weighted_cycles / tasks as f64 };
    SweepCell {
        workload: spec.label(),
        family: spec.family(),
        cores: cell.cores,
        memory,
        platform,
        tracker,
        tasks,
        mean_task_cycles,
        serial_cycles: serial,
        total_cycles: report.total_cycles,
        speedup: report.speedup_over(serial),
        lifetime_overhead,
        mtt_tasks_per_cycle: tasks_per_cycle,
        mtt_bound: mtt_speedup_bound_from_throughput(mean_task_cycles, tasks_per_cycle, cell.cores),
        mem_accesses: report.memory_stats.accesses,
        mem_stall_cycles: report.memory_stats.stall_cycles,
        mean_mem_latency: report.memory_stats.mean_access_latency(),
        noc_link_wait_cycles: report.memory_stats.noc_link_wait_cycles,
        max_link_occupancy: report.memory_stats.max_link_occupancy,
        fault,
        fault_drops: report.memory_stats.fault.drops,
        fault_delays: report.memory_stats.fault.delays,
        fault_retries: report.memory_stats.fault.retries + report.fabric_stats.tracker_resubmits,
        fault_tracker_losses: report.fabric_stats.tracker_losses,
        fault_recovery_cycles: report.memory_stats.fault.recovery_cycles
            + report.fabric_stats.tracker_recovery_cycles,
        analysis: sweep.analysis,
        race_pairs_checked: 0,
        tenant: Some(Box::new(TenantCellData {
            scenario: scenario.key(),
            reports: report.tenants.clone(),
            jain: report.tenant_jain_fairness(),
        })),
        obs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::WorkloadSpec;
    use crate::synth::{SynthFamily, SynthSpec};
    use tis_bench::Platform;
    use tis_picos::TrackerConfig;

    fn small_sweep() -> Sweep {
        Sweep::new("unit")
            .over_cores([1, 4])
            .over_platforms([Platform::Phentos, Platform::NanosSw])
            .with_workload(WorkloadSpec::synth(SynthSpec::uniform(
                SynthFamily::ForkJoin { width: 8 },
                32,
                20_000,
            )))
            .with_workload(WorkloadSpec::synth(SynthSpec {
                family: SynthFamily::ErdosRenyi { density: 0.1 },
                tasks: 24,
                task_cycles: 10_000,
                jitter: 0.25,
            }))
    }

    #[test]
    fn sequential_run_fills_every_cell_in_grid_order() {
        let sweep = small_sweep();
        let report = sweep.run();
        assert_eq!(report.cells.len(), sweep.cell_count());
        for (cell, spec) in report.cells.iter().zip(sweep.cells()) {
            assert_eq!(cell.workload, sweep.workloads[spec.workload].label());
            assert_eq!(cell.cores, spec.cores);
            assert_eq!(cell.platform, sweep.platforms[spec.platform]);
            assert!(cell.total_cycles > 0);
            assert!(cell.speedup > 0.0);
            assert!(cell.lifetime_overhead > 0.0);
        }
        // Single-core speedup can never exceed 1; the 4-core fork-join must beat single-core.
        let single = &report.cells[0];
        assert_eq!(single.cores, 1);
        assert!(single.speedup <= 1.0 + 1e-9);
        let quad = &report.cells[2];
        assert_eq!(quad.cores, 4);
        assert!(quad.speedup > single.speedup, "more cores, more speedup on a fork-join");
        assert!(report.bound_violations().is_empty(), "{}", report.render_table());
    }

    #[test]
    fn worker_count_does_not_change_the_report() {
        let sweep = small_sweep();
        let one = run_sweep_with_workers(&sweep, 1);
        let many = run_sweep_with_workers(&sweep, 8);
        assert_eq!(one, many);
        assert_eq!(one.to_json().render(), many.to_json().render());
    }

    #[test]
    fn fault_axis_reaches_the_machine_without_changing_the_work() {
        let sweep = Sweep::new("fault")
            .over_cores([4])
            .over_memory_models([tis_machine::MemoryModel::directory_mesh()])
            .over_faults([FaultConfig::none(), FaultConfig::recoverable()])
            .with_workload(WorkloadSpec::synth(SynthSpec::uniform(
                SynthFamily::ForkJoin { width: 8 },
                32,
                5_000,
            )));
        let report = sweep.run();
        assert_eq!(report.cells.len(), 2);
        let (clean, faulted) = (&report.cells[0], &report.cells[1]);
        assert!(!clean.fault.engages());
        assert_eq!(clean.fault_drops + clean.fault_retries + clean.fault_recovery_cycles, 0);
        assert!(faulted.fault.engages());
        assert_ne!(
            faulted.fault.seed,
            FaultConfig::recoverable().seed,
            "the cell's schedule seed is derived from the sweep seed and cell index"
        );
        // Faults are latency-only: the same program ran to completion, only slower.
        assert_eq!(faulted.tasks, clean.tasks);
        assert_eq!(faulted.serial_cycles, clean.serial_cycles);
        assert!(faulted.total_cycles > clean.total_cycles, "recovery latency must show up");
        assert!(faulted.fault_drops > 0 && faulted.fault_recovery_cycles > 0);
        // Replay: the same sweep produces the same faulted cell, bit for bit.
        assert_eq!(sweep.run().cells[1], *faulted);
    }

    #[test]
    fn analysis_passes_change_no_measurement() {
        // The analyses are pure observers: preflighting the graphs and race-checking the
        // traces must leave every simulated number — and the JSON the cells render to,
        // minus the analysis keys themselves — untouched.
        let plain = small_sweep().run();
        let analysed = small_sweep().with_analysis(tis_analyze::AnalysisConfig::full()).run();
        assert_eq!(plain.cells.len(), analysed.cells.len());
        for (p, a) in plain.cells.iter().zip(&analysed.cells) {
            assert_eq!(p.total_cycles, a.total_cycles);
            assert_eq!(p.speedup, a.speedup);
            assert_eq!(p.mem_stall_cycles, a.mem_stall_cycles);
            assert!(a.analysis.engages());
            assert!(!p.analysis.engages());
        }
        // The Erdős–Rényi cells declare address dependences, so their frontiers were
        // actually walked; fork-join cells order purely by barrier and have no conflicting
        // pairs at all. Nothing raced — the runner panics on a race, so reaching this
        // line is the proof.
        for c in &analysed.cells {
            if c.family == "synth-er" {
                assert!(c.race_pairs_checked > 0, "{} checked no pairs", c.workload);
            } else {
                assert_eq!(c.race_pairs_checked, 0, "{} has no conflicts to check", c.workload);
            }
        }
        assert!(plain.cells.iter().all(|c| c.race_pairs_checked == 0));
    }

    #[test]
    fn observing_a_sweep_changes_no_measurement() {
        // Observation is a pure tap on the engine: every simulated number is identical, and
        // the obs-off report renders byte-identical JSON (no obs keys at all).
        let plain = small_sweep().run();
        let observed = small_sweep().with_obs(tis_obs::ObsConfig::full()).run();
        assert_eq!(plain.cells.len(), observed.cells.len());
        for (p, o) in plain.cells.iter().zip(&observed.cells) {
            assert_eq!(p.total_cycles, o.total_cycles);
            assert_eq!(p.speedup, o.speedup);
            assert_eq!(p.mem_stall_cycles, o.mem_stall_cycles);
            assert!(p.obs.is_none());
            let obs = o.obs.as_ref().expect("every cell of a with_obs sweep is observed");
            // The critical path partitions the makespan exactly, and every task's full
            // lifecycle was seen (6 stages per task, minus software-tracked shortcuts).
            assert_eq!(obs.critical.total(), o.total_cycles);
            assert!(obs.task_events >= 6 * o.tasks as u64, "{}: {} events", o.workload, obs.task_events);
            assert!(obs.samples > 0, "full() samples every 1024 cycles");
            assert!(obs.trace_json.contains("traceEvents"));
            assert!(obs.metrics_json.contains("tis-metrics-v1"));
        }
        assert!(!plain.to_json().render().contains("obs_"));
    }

    #[test]
    fn per_cell_opt_in_observes_only_the_chosen_cells() {
        let report = small_sweep().with_obs(tis_obs::ObsConfig::default()).observe_only([2]).run();
        for (i, cell) in report.cells.iter().enumerate() {
            assert_eq!(cell.obs.is_some(), i == 2, "only cell 2 opted in");
        }
    }

    #[test]
    fn one_tenant_batch_cells_are_cycle_identical_to_the_plain_path() {
        // The degenerate scenario — one tenant, batch-at-zero, shared tracker — is a pure
        // passthrough: its cells must reproduce the plain single-program cells' cycle counts
        // exactly, on every platform in the sweep.
        let sweep = small_sweep().over_tenants([None, Some(TenantScenario::batch(1, false))]);
        let report = sweep.run();
        let (plain, tenant): (Vec<_>, Vec<_>) =
            report.cells.iter().partition(|c| c.tenant.is_none());
        assert_eq!(plain.len(), tenant.len());
        for (p, t) in plain.iter().zip(&tenant) {
            assert_eq!(p.total_cycles, t.total_cycles, "{}: degenerate tenant run", p.workload);
            assert_eq!(p.serial_cycles, t.serial_cycles);
            assert_eq!(p.speedup, t.speedup);
            assert_eq!(p.mem_stall_cycles, t.mem_stall_cycles);
            let data = t.tenant.as_ref().expect("co-scheduled cells carry tenant data");
            assert_eq!(data.scenario, "t1-batch-shared");
            assert_eq!(data.reports.len(), 1);
            assert_eq!(data.reports[0].tasks, t.tasks as u64);
            assert_eq!(data.jain, 1.0, "a single tenant is trivially fair");
        }
    }

    #[test]
    fn co_scheduled_cells_report_per_tenant_distributions() {
        let sweep = Sweep::new("mt")
            .over_cores([4])
            .over_platforms([Platform::Phentos, Platform::NanosSw])
            .over_tenants([Some(TenantScenario::batch(3, false))])
            .with_workload(WorkloadSpec::synth(SynthSpec::uniform(
                SynthFamily::ForkJoin { width: 8 },
                32,
                5_000,
            )));
        let report = sweep.run();
        assert_eq!(report.cells.len(), 2);
        for cell in &report.cells {
            let data = cell.tenant.as_ref().expect("tenant axis engaged");
            assert_eq!(data.reports.len(), 3);
            let total: u64 = data.reports.iter().map(|r| r.tasks).sum();
            assert_eq!(total, cell.tasks as u64, "per-tenant tasks sum to the cell total");
            assert_eq!(cell.tasks, 96, "three instances of the 32-task workload");
            for r in &data.reports {
                assert!(r.tasks > 0 && r.makespan > 0);
                assert!(r.p50 <= r.p90 && r.p90 <= r.p99, "{}: percentiles are ordered", r.name);
                assert!(r.p99 <= r.makespan, "a turnaround cannot exceed the tenant makespan");
            }
            assert!(data.jain > 0.0 && data.jain <= 1.0 + 1e-12);
            assert!(cell.serial_cycles > 0 && cell.total_cycles > 0);
        }
        // Replay: same sweep, same cells, bit for bit — and worker count changes nothing.
        assert_eq!(sweep.run(), report);
        assert_eq!(run_sweep_with_workers(&sweep, 8), report);
    }

    #[test]
    fn observed_tenant_cells_carry_per_tenant_tracks_and_critical_paths() {
        let sweep = Sweep::new("mt-obs")
            .over_cores([4])
            .over_platforms([Platform::Phentos])
            .over_tenants([Some(TenantScenario::batch(2, false))])
            .with_obs(tis_obs::ObsConfig::default())
            .with_workload(WorkloadSpec::synth(SynthSpec::uniform(
                SynthFamily::ForkJoin { width: 8 },
                32,
                5_000,
            )));
        let report = sweep.run();
        let cell = &report.cells[0];
        let obs = cell.obs.as_ref().expect("observed sweep");
        // The merged-run critical path still partitions the makespan exactly.
        assert_eq!(obs.critical.total(), cell.total_cycles);
        assert_eq!(obs.tenant_critical.len(), 2);
        for (cp, r) in obs.tenant_critical.iter().zip(
            &cell.tenant.as_ref().expect("tenant data").reports,
        ) {
            assert!(cp.makespan > 0);
            assert!(cp.makespan <= r.last_retire, "tenant path is bounded by its last retire");
        }
        // The trace groups tasks into per-tenant process tracks.
        assert!(obs.trace_json.contains("tenant 0"));
        assert!(obs.trace_json.contains("tenant 1"));
    }

    #[test]
    fn tracker_axis_reaches_the_fabric() {
        // A tracker with a single task-memory entry serialises Phentos completely: the
        // makespan must be strictly worse than with the prototype capacities.
        let base = Sweep::new("tracker")
            .over_cores([4])
            .over_trackers([TrackerConfig::default(), TrackerConfig::new(1, 16)])
            .with_workload(WorkloadSpec::synth(SynthSpec::uniform(
                SynthFamily::ForkJoin { width: 8 },
                32,
                5_000,
            )));
        let report = base.run();
        assert_eq!(report.cells.len(), 2);
        let (roomy, starved) = (&report.cells[0], &report.cells[1]);
        assert_eq!(starved.tracker.task_memory_entries, 1);
        assert!(
            starved.total_cycles > roomy.total_cycles,
            "a one-entry task memory must hurt: {} vs {}",
            starved.total_cycles,
            roomy.total_cycles
        );
    }
}
