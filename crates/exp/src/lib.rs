//! `tis-exp` — the declarative experiment engine: parameter sweeps over the design space,
//! synthetic task-graph generation, and a deterministic host-parallel sweep runner.
//!
//! The paper evaluates one fixed design point — eight Rocket cores, one tracker sizing, a
//! 37-workload catalog — and names scaling beyond it as future work (§VII). The related
//! design-space literature (HTS, the ESP SoC methodology) treats *parameterised exploration in
//! simulation* as the core activity instead. This crate adds that layer on top of the existing
//! stack:
//!
//! * [`grid`] — the [`Sweep`] builder: a cartesian grid over core count, memory-system model
//!   (snooping bus vs directory/NoC), platform, Picos tracker capacities and workload,
//!   expanded into cells in a fixed grid order;
//! * [`synth`] — deterministic synthetic task-graph families (chain, tree, diamond, layered
//!   fork-join, windowed Erdős–Rényi), seeded from [`tis_sim::SimRng`] streams so workloads go
//!   far beyond the fixed catalog while staying perfectly reproducible;
//! * [`stream`] — the streaming counterpart ([`StreamingSynth`]): the locally-structured
//!   families (chain, fork-join, windowed ER) as bounded-residency
//!   [`TaskSource`](tis_taskmodel::TaskSource)s, so a single cell simulates millions of tasks
//!   in `O(window)` host memory with bit-identical RNG consumption;
//! * [`runner`] — evaluates cells through `tis_machine::engine::run_machine`, optionally on N
//!   host threads; results are merged in grid order so output is bit-identical for any worker
//!   count;
//! * [`report`] — structured [`SweepReport`] rows, text tables, and the `BENCH_sweep_<name>.json`
//!   artifact (written via the same `TIS_BENCH_JSON` contract as the figure benches).
//!
//! Four curated bench targets consume this engine in CI: `sweep_core_scaling` (the
//! paper-style "beyond 8 cores" table — 2→64 cores, measured speedup vs MTT bound),
//! `sweep_tracker_capacity` (Picos task-memory/address-table sizing at 8 cores),
//! `sweep_memory_scaling` (snooping bus vs directory/NoC memory latency from 2→64 cores)
//! and `sweep_noc_contention` (ideal vs contended mesh links from 8→64 cores).
//!
//! # Example
//!
//! ```
//! use tis_bench::Platform;
//! use tis_exp::{Sweep, SynthFamily, SynthSpec, WorkloadSpec};
//!
//! let report = Sweep::new("doc")
//!     .over_cores([2, 8])
//!     .over_platforms([Platform::Phentos, Platform::NanosSw])
//!     .with_workload(WorkloadSpec::synth(SynthSpec::uniform(
//!         SynthFamily::Diamond { width: 8 },
//!         40,
//!         20_000,
//!     )))
//!     .run();
//! assert_eq!(report.cells.len(), 4);
//! assert!(report.bound_violations().is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod grid;
pub mod report;
pub mod runner;
pub mod stream;
pub mod synth;

pub use grid::{CellSpec, Sweep, TenantScenario, WorkloadSpec};
pub use report::{ObsCellData, SweepCell, SweepReport, TenantCellData};
pub use runner::{run_sweep, run_sweep_with_workers, workers_from_env};
pub use stream::StreamingSynth;
pub use synth::{SynthFamily, SynthSpec, ER_WINDOW, MAX_IN_DEGREE};
// The memory-model axis values, re-exported so sweep definitions need no extra dependency.
pub use tis_machine::{
    FaultConfig, FaultStats, LinkContention, MemoryModel, NocConfig, NocContention,
};
// The analysis switch, re-exported for the same reason.
pub use tis_analyze::AnalysisConfig;
// The observability switch, likewise.
pub use tis_obs::ObsConfig;
// The multi-tenant vocabulary (arrival processes, per-tenant reports), likewise.
pub use tis_taskmodel::{ArrivalProcess, TenantReport, TenantTrackerPolicy};
