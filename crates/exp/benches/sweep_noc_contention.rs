//! The NoC-contention experiment: ideal vs contended mesh links from 8 to 64 cores.
//!
//! PR 4's directory/NoC model made *distance* honest at scale but left links infinitely wide:
//! any number of concurrent messages crossed a link without queueing, so dense-communication
//! workloads looked optimistic exactly where the HTS study (arXiv:1907.00271) shows
//! scheduler/memory traffic interference dominating. The contended link model
//! (`NocContention::Contended`) adds per-link bandwidth and finite router buffers; this bench
//! quantifies what that changes, running the same workloads on the same mesh with ideal and
//! contended links side by side.
//!
//! Run with `cargo bench -p tis-exp --bench sweep_noc_contention`. Set `TIS_BENCH_JSON=<dir>`
//! to write the machine-readable `BENCH_sweep_noc-contention.json` artifact and
//! `TIS_SWEEP_WORKERS=<n>` to override the host thread count.
//!
//! The bench exits non-zero if any cell exceeds its MTT bound, or if contention fails its
//! scaling story on the dense workload (a high-density windowed Erdős–Rényi DAG whose
//! cross-task dependences keep coherence traffic criss-crossing the mesh):
//!
//! * at 64 cores, contended mean memory latency must be **strictly higher** than ideal;
//! * the contended/ideal latency ratio must be **monotonically non-decreasing** in core count
//!   over {8, 16, 32, 64} — contention is a scaling effect, not a constant tax;
//! * the ≤8-core catalog cell must stay **within noise** (makespan moved by at most 1%):
//!   at the paper's scale, where the figure reproductions live, link contention must not
//!   rewrite the story.

use tis_bench::Platform;
use tis_exp::{run_sweep_with_workers, workers_from_env, MemoryModel, Sweep, SynthFamily, SynthSpec, WorkloadSpec};

/// Maximum relative makespan change the 8-core catalog cell may see under contention.
const CATALOG_NOISE: f64 = 0.01;

fn main() {
    let cores = [8usize, 16, 32, 64];
    // High density relative to the ER window: at 0.1 every task saturates its in-degree cap
    // (MAX_IN_DEGREE reads drawn from the 256-task window), so cross-task dependences keep
    // lines migrating across the whole mesh for the entire run.
    let dense = WorkloadSpec::synth(SynthSpec {
        family: SynthFamily::ErdosRenyi { density: 0.1 },
        tasks: 192,
        task_cycles: 6_000,
        jitter: 0.25,
    });
    let dense_label = dense.label();
    let catalog = WorkloadSpec::catalog("blackscholes", "4K B64");
    let catalog_label = catalog.label();
    let sweep = Sweep::new("noc-contention")
        .over_cores(cores)
        .over_memory_models([MemoryModel::directory_mesh(), MemoryModel::directory_mesh_contended()])
        .over_platforms([Platform::Phentos])
        .with_workload(dense)
        .with_workload(catalog);

    let workers = workers_from_env();
    let report = run_sweep_with_workers(&sweep, workers);

    println!(
        "noc-contention sweep: {} cells ({} workloads x {} core counts x 2 link models), {} workers",
        report.cells.len(),
        sweep.workloads.len(),
        cores.len(),
        workers
    );
    println!();
    print!("{}", report.render_table());
    println!();

    let find = |workload: &str, n: usize, model: MemoryModel| {
        report
            .cells
            .iter()
            .find(|c| c.workload == workload && c.cores == n && c.memory == model)
            .expect("grid is complete")
    };

    // The headline trajectory: per workload and core count, mean memory latency under ideal
    // and contended links, the ratio between them, and the observed queueing.
    let mut failures = 0;
    for (label, is_dense) in [(&dense_label, true), (&catalog_label, false)] {
        println!("{label}:");
        println!(
            "  {:>5} | {:>13} | {:>13} | {:>9} | {:>11} | {:>14} | {:>9}",
            "cores", "ideal mem lat", "cont. mem lat", "lat ratio", "cycle ratio", "link wait cyc", "max occ"
        );
        let mut prev_ratio = 0.0f64;
        for &n in &cores {
            let ideal = find(label, n, MemoryModel::directory_mesh());
            let contended = find(label, n, MemoryModel::directory_mesh_contended());
            let ratio = contended.mean_mem_latency / ideal.mean_mem_latency.max(f64::MIN_POSITIVE);
            let cycle_ratio = contended.total_cycles as f64 / ideal.total_cycles.max(1) as f64;
            println!(
                "  {:>5} | {:>13.2} | {:>13.2} | {:>8.3}x | {:>10.3}x | {:>14} | {:>9}",
                n,
                ideal.mean_mem_latency,
                contended.mean_mem_latency,
                ratio,
                cycle_ratio,
                contended.noc_link_wait_cycles,
                contended.max_link_occupancy,
            );
            if is_dense {
                if n == 64 && contended.mean_mem_latency <= ideal.mean_mem_latency {
                    eprintln!(
                        "CONTENTION GAP MISSING: {label} at 64 cores: contended latency {:.2} <= ideal {:.2}",
                        contended.mean_mem_latency, ideal.mean_mem_latency
                    );
                    failures += 1;
                }
                if ratio + 1e-12 < prev_ratio {
                    eprintln!(
                        "RATIO NOT MONOTONE: {label} at {n} cores: contended/ideal {ratio:.4} < previous {prev_ratio:.4}"
                    );
                    failures += 1;
                }
                prev_ratio = ratio;
            } else if n == 8 {
                let drift = (cycle_ratio - 1.0).abs();
                if drift > CATALOG_NOISE {
                    eprintln!(
                        "CATALOG PERTURBED: {label} at 8 cores: contention moved the makespan by {:.2}% (> {:.0}%)",
                        drift * 100.0,
                        CATALOG_NOISE * 100.0
                    );
                    failures += 1;
                }
            }
        }
        println!();
    }

    let violations = report.bound_violations();
    for c in &violations {
        eprintln!(
            "BOUND EXCEEDED: {} on {} cores ({}): measured {:.2}x > bound {:.2}x",
            c.workload,
            c.cores,
            c.memory.key(),
            c.speedup,
            c.mtt_bound
        );
    }
    println!(
        "{} of {} cells exceed their MTT bound, {} contention-scaling failure(s)",
        violations.len(),
        report.cells.len(),
        failures
    );

    match report.write_json_if_requested() {
        Ok(Some(path)) => println!("wrote machine-readable results to {}", path.display()),
        Ok(None) => {}
        Err(e) => {
            eprintln!("failed to write the sweep artifact: {e}");
            std::process::exit(1);
        }
    }

    if !violations.is_empty() || failures > 0 {
        std::process::exit(1);
    }
}
