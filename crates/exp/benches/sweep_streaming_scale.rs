//! The streaming-scale gate: a **million-task cell in O(window) memory**. This bench drives
//! [`tis_exp::StreamingSynth`] sources straight through [`tis_bench::Harness::run_source`]
//! (records off), so no `TaskProgram` — and no O(tasks) descriptor table — ever exists:
//!
//! * a 1,000,000-task dependence chain, the acceptance workload for the streaming engine;
//! * a 200,000-task windowed Erdős–Rényi DAG, the family whose sliding-window structure
//!   motivated streaming in the first place (every spawn passes the inline
//!   `tis_analyze::WindowedPreflight`).
//!
//! Two gates, both hard failures (non-zero exit):
//!
//! * **Peak-residency (the RSS proxy):** the report's `peak_resident_tasks` high-water mark
//!   must stay within each cell's configured window. A regression back to O(tasks) residency
//!   — a runtime that stops retiring into the source, or a source that stops blocking —
//!   trips this on the first CI run.
//! * **Host throughput:** simulated tasks per host second must clear a floor set far below
//!   the locally observed rate, so it catches an algorithmic regression (an O(tasks) scan in
//!   the per-step path), not a slow CI host. Strict mode is unconditional here — unlike the
//!   `micro_components` guards, a 1M-task cell that slows 50x would stall CI anyway.
//!
//! Run with `cargo bench -p tis-exp --bench sweep_streaming_scale`. Set `TIS_BENCH_JSON=<dir>`
//! to write `BENCH_sweep_streaming-scale.json`; the artifact carries only deterministic
//! simulation fields (cycles, retirements, residency — never host time), so it diffs cleanly
//! under the `bench-diff` trajectory gate.

use std::time::Instant;
use tis_bench::{Harness, Platform};
use tis_exp::{StreamingSynth, SynthFamily, SynthSpec};
use tis_sim::{Json, SimRng};

/// One streamed cell: a spec, its residency window, and the platform that runs it.
struct Cell {
    spec: SynthSpec,
    window: usize,
    platform: Platform,
}

/// Tasks per host second below which the bench fails. Locally the chain runs at >100k tasks/s;
/// the floor leaves a ~10x margin for slower CI hosts.
const FLOOR_TASKS_PER_HOST_SECOND: f64 = 10_000.0;

fn main() {
    let seed = 0x5EED_57AE;
    let cells = [
        Cell {
            spec: SynthSpec::uniform(SynthFamily::Chain, 1_000_000, 500),
            window: 1_024,
            platform: Platform::Phentos,
        },
        Cell {
            spec: SynthSpec {
                family: SynthFamily::ErdosRenyi { density: 0.05 },
                tasks: 200_000,
                task_cycles: 2_000,
                jitter: 0.25,
            },
            window: 4_096,
            platform: Platform::Phentos,
        },
    ];

    let harness = Harness::paper_prototype();
    let mut rows = Vec::new();
    let mut failures = 0;
    println!(
        "streaming-scale sweep: {} cells, {} cores, records off",
        cells.len(),
        harness.cores()
    );
    println!();

    for cell in &cells {
        let source = StreamingSynth::new(cell.spec, cell.window, SimRng::new(seed));
        let name = source.synth_spec().name();
        let t0 = Instant::now();
        let report = harness
            .run_source(cell.platform, Box::new(source), false)
            .unwrap_or_else(|e| panic!("streamed cell {name} failed: {e}"));
        let elapsed = t0.elapsed().as_secs_f64();
        let tasks = cell.spec.tasks as u64;
        let tasks_per_host_second = tasks as f64 / elapsed;

        let resident_ok = report.peak_resident_tasks <= cell.window as u64;
        let retired_ok = report.tasks_retired == tasks;
        let throughput_ok = tasks_per_host_second >= FLOOR_TASKS_PER_HOST_SECOND;
        if !resident_ok {
            eprintln!(
                "RESIDENCY REGRESSION: {name}: peak resident {} exceeds the {}-task window",
                report.peak_resident_tasks, cell.window
            );
            failures += 1;
        }
        if !retired_ok {
            eprintln!(
                "LOST TASKS: {name}: retired {} of {} streamed tasks",
                report.tasks_retired, tasks
            );
            failures += 1;
        }
        if !throughput_ok {
            eprintln!(
                "THROUGHPUT REGRESSION: {name}: {tasks_per_host_second:.0} tasks/host-second \
                 (floor {FLOOR_TASKS_PER_HOST_SECOND:.0})"
            );
            failures += 1;
        }
        println!(
            "{:<34} {:>9} | {} tasks | {:>12} cycles | window {:>5} | peak resident {:>4} | {:>7.0} tasks/host-s ... {}",
            name,
            cell.platform.key(),
            tasks,
            report.total_cycles,
            cell.window,
            report.peak_resident_tasks,
            tasks_per_host_second,
            if resident_ok && retired_ok && throughput_ok { "ok" } else { "FAIL" },
        );

        // Deterministic fields only: host-time figures stay on stdout so the artifact is
        // byte-stable run to run and machine to machine.
        rows.push(Json::obj([
            ("workload", Json::Str(name.clone())),
            ("family", Json::Str(cell.spec.family.key().to_string())),
            ("platform", Json::Str(cell.platform.key().to_string())),
            ("cores", Json::UInt(harness.cores() as u64)),
            ("tasks", Json::UInt(tasks)),
            ("window", Json::UInt(cell.window as u64)),
            ("cycles", Json::UInt(report.total_cycles)),
            ("tasks_retired", Json::UInt(report.tasks_retired)),
            ("peak_resident_tasks", Json::UInt(report.peak_resident_tasks)),
            ("mean_cycles_per_task", Json::Num(report.mean_cycles_per_task())),
        ]));
    }
    println!();

    let doc = Json::obj([
        ("experiment", Json::Str("streaming-scale".to_string())),
        ("seed", Json::UInt(seed)),
        ("cells", Json::Arr(rows)),
    ]);
    if let Some(dir) = std::env::var_os("TIS_BENCH_JSON") {
        let dir = if dir.is_empty() { std::path::PathBuf::from(".") } else { dir.into() };
        if let Err(e) = std::fs::create_dir_all(&dir)
            .and_then(|()| std::fs::write(dir.join("BENCH_sweep_streaming-scale.json"), doc.render()))
        {
            eprintln!("failed to write the streaming-scale artifact: {e}");
            std::process::exit(1);
        }
        println!("wrote machine-readable results to {}", dir.join("BENCH_sweep_streaming-scale.json").display());
    }

    if failures > 0 {
        std::process::exit(1);
    }
}
