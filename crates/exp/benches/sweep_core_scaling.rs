//! The "beyond 8 cores" experiment the paper leaves as future work (§VII): sweep the machine
//! from 2 to 64 cores across two platforms and three workload families (one Figure 9 catalog
//! entry with core-count-scaled input, plus two synthetic families) and compare every measured
//! speedup against the MTT-derived bound `min(cores, t × MTT)`, with the maximum task
//! throughput measured at the swept core count (the Figure 6 `t / Lo` shortcut is pessimistic
//! beyond 8 cores for runtimes whose per-task overhead parallelises across workers).
//!
//! Run with `cargo bench -p tis-exp --bench sweep_core_scaling`. Set `TIS_BENCH_JSON=<dir>` to
//! also write the machine-readable `BENCH_sweep_core-scaling.json` artifact, and `TIS_SWEEP_WORKERS=<n>` to
//! override the host thread count (the report is bit-identical for any worker count).
//!
//! The bench exits non-zero if any cell's measured speedup exceeds its MTT bound — the bound
//! is the model's own consistency check, so a violation is a cost-model bug.

use tis_bench::Platform;
use tis_exp::{run_sweep_with_workers, workers_from_env, Sweep, SynthFamily, SynthSpec, WorkloadSpec};

fn main() {
    let sweep = Sweep::new("core-scaling")
        .over_cores([2, 4, 8, 16, 32, 64])
        .over_platforms([Platform::Phentos, Platform::NanosRv])
        // One catalog family with core-count context: 4K-option blackscholes at block size 64
        // (medium granularity; 64 tasks per 8 cores' worth of machine)...
        .with_workload(WorkloadSpec::catalog("blackscholes", "4K B64"))
        // ...plus two synthetic families: barrier-style layered fork-join and a dependence-
        // dense Erdős–Rényi DAG, both scaling task count with the machine.
        .with_workload(WorkloadSpec::synth(SynthSpec {
            family: SynthFamily::ForkJoin { width: 64 },
            tasks: 256,
            task_cycles: 8_000,
            jitter: 0.25,
        }))
        .with_workload(WorkloadSpec::synth(SynthSpec {
            family: SynthFamily::ErdosRenyi { density: 0.02 },
            tasks: 256,
            task_cycles: 12_000,
            jitter: 0.25,
        }));

    let workers = workers_from_env();
    let report = run_sweep_with_workers(&sweep, workers);

    println!(
        "core-scaling sweep: {} cells ({} workloads x {} core counts x {} platforms), {} workers",
        report.cells.len(),
        sweep.workloads.len(),
        sweep.cores.len(),
        sweep.platforms.len(),
        workers
    );
    println!();
    print!("{}", report.render_table());
    println!();

    // The paper-style scaling summary: per workload, the measured Phentos speedup trajectory.
    for spec in &sweep.workloads {
        let label = spec.label();
        print!("{:<28}", label);
        for &cores in &sweep.cores {
            let cell = report
                .cells
                .iter()
                .find(|c| c.workload == label && c.cores == cores && c.platform == Platform::Phentos)
                .expect("grid is complete");
            print!(" | {:>2}c {:>6.2}x", cores, cell.speedup);
        }
        println!();
    }
    println!();

    // Consistency gate: a measured speedup above the MTT bound is a cost-model bug.
    let strict = report.bound_violations();
    for c in &strict {
        eprintln!(
            "BOUND EXCEEDED: {} on {} cores, {}: measured {:.2}x > bound {:.2}x",
            c.workload,
            c.cores,
            c.platform.label(),
            c.speedup,
            c.mtt_bound
        );
    }
    println!(
        "{} of {} cells exceed their MTT bound (the paper's points all sit below their bounds)",
        strict.len(),
        report.cells.len()
    );

    match report.write_json_if_requested() {
        Ok(Some(path)) => println!("wrote machine-readable results to {}", path.display()),
        Ok(None) => {}
        Err(e) => {
            eprintln!("failed to write the sweep artifact: {e}");
            std::process::exit(1);
        }
    }

    if !strict.is_empty() {
        std::process::exit(1);
    }
}
