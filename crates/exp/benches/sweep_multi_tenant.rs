//! The multi-tenant serving experiment: N co-scheduled task graphs on one machine.
//!
//! PR 10's tenant layer merges independent task graphs into one machine through a
//! [`tis_taskmodel::TenantSource`], with per-tenant turnaround distributions (exact
//! p50/p90/p99), Jain fairness, and a tracker-sharing policy axis. This bench sweeps
//! 1/2/4/8 tenants at 8 and 32 cores — tenant 0 is the *victim* (the cell's own workload,
//! batch-at-zero) and the co-tenants are *antagonists* arriving in deterministic on/off
//! bursts — under both tracker policies, and gates the serving story:
//!
//! * **Degenerate identity:** the 1-tenant batch/shared cell must be **cycle-identical** to
//!   the plain single-program control cell — the tenant layer is free until a second tenant
//!   actually exists;
//! * **Partitioning bounds p99 inflation:** under a bursty co-tenant flood, the victim's p99
//!   turnaround with a hard-partitioned task memory must be **strictly below** its p99 with
//!   the shared (first-come, first-tracked) policy, at every tenant count and core count —
//!   the admission cap is what keeps an antagonist from evicting the victim's share;
//! * **Accounting consistency:** per-tenant task counts must sum to each cell's total, and
//!   every per-tenant percentile must be ordered (p50 ≤ p90 ≤ p99 ≤ tenant makespan).
//!
//! Two 8-tenant cells run observed, so the artifact directory also carries per-tenant
//! Perfetto track groups (`TRACE_multi-tenant-*.json`) — one process track per tenant.
//!
//! Run with `cargo bench -p tis-exp --bench sweep_multi_tenant`. Set `TIS_BENCH_JSON=<dir>`
//! to write `BENCH_sweep_multi-tenant.json` (plus the TRACE_/METRICS_ documents) and
//! `TIS_SWEEP_WORKERS=<n>` to override the host thread count.

use tis_bench::Platform;
use tis_exp::{
    run_sweep_with_workers, workers_from_env, ArrivalProcess, ObsConfig, Sweep, SweepCell,
    SynthFamily, SynthSpec, TenantScenario, WorkloadSpec,
};
use tis_picos::TrackerConfig;

/// Antagonist burst length: each co-tenant releases this many tasks back to back — one
/// burst alone overflows the whole 16-entry task memory sixfold.
const BURST: u64 = 96;

/// Antagonist burst period in cycles: short enough that the backlog at the source never
/// clears while the victim is running, long enough that arrivals stay bursts rather than a
/// steady stream.
const PERIOD: u64 = 100_000;

/// Victim mean interarrival gap in cycles, slightly above the mean task length: an open-loop
/// Poisson trickle that a healthy machine serves at arrival rate with ~one task in flight.
/// The victim keeps arriving *into* the antagonist clog — a batch-at-zero victim would
/// already hold its share of entries when the first burst lands; the trickle is what makes
/// the reservation matter.
const VICTIM_GAP: u64 = 36_000;

/// The gate scenario at a given tenant count and policy: bursty antagonists, trickling
/// victim.
fn serving(tenants: usize, partitioned: bool) -> TenantScenario {
    TenantScenario::bursty(tenants, BURST, PERIOD, partitioned)
        .with_victim_arrival(ArrivalProcess::Poisson { mean_interarrival: VICTIM_GAP })
}

fn main() {
    // Dependence chains are the tracker-clogging workload: a burst of chained tasks fills
    // the task memory with entries that are submitted but not ready (each waits on its
    // predecessor), so a shared tracker ends up full while cores sit idle — exactly the
    // pathology a per-tenant entry reservation exists to contain.
    let spec = SynthSpec {
        family: SynthFamily::Chain,
        tasks: 192,
        task_cycles: 30_000,
        jitter: 0.25,
    };
    let scenarios = [
        None,
        Some(TenantScenario::batch(1, false)),
        Some(serving(2, false)),
        Some(serving(2, true)),
        Some(serving(4, false)),
        Some(serving(4, true)),
        Some(serving(8, false)),
        Some(serving(8, true)),
    ];
    let scenario_count = scenarios.len();
    // A 16-entry task memory makes the tracker the contended resource (one antagonist burst
    // alone overflows it sixfold); the two 8-tenant cells at 8 cores run observed (grid
    // order: tenants ▸ platforms, one platform), so CI uploads per-tenant Perfetto track
    // groups for both policies.
    let sweep = Sweep::new("multi-tenant")
        .over_cores([8, 32])
        .over_trackers([TrackerConfig::new(16, 1024)])
        .over_platforms([Platform::Phentos])
        .over_tenants(scenarios)
        .with_obs(ObsConfig::default())
        .observe_only([6, 7])
        .with_workload(WorkloadSpec::synth(spec));

    let workers = workers_from_env();
    let report = run_sweep_with_workers(&sweep, workers);

    println!(
        "multi-tenant sweep: {} cells ({} scenarios x {} core counts), {} workers",
        report.cells.len(),
        scenario_count,
        sweep.cores.len(),
        workers
    );
    println!();
    print!("{}", report.render_table());
    println!();

    // Per-cell serving metrics: the victim is tenant 0 (batch-at-zero), the antagonists are
    // tenants 1..n.
    println!(
        "{:>5} | {:<22} | {:>12} | {:>12} | {:>12} | {:>12} | {:>6}",
        "cores", "scenario", "cycles", "victim p50", "victim p99", "victim mksp", "jain"
    );
    for cell in &report.cells {
        let Some(data) = &cell.tenant else {
            println!(
                "{:>5} | {:<22} | {:>12} | {:>12} | {:>12} | {:>12} | {:>6}",
                cell.cores, "single (control)", cell.total_cycles, "-", "-", "-", "-"
            );
            continue;
        };
        let victim = &data.reports[0];
        println!(
            "{:>5} | {:<22} | {:>12} | {:>12} | {:>12} | {:>12} | {:>6.3}",
            cell.cores,
            data.scenario,
            cell.total_cycles,
            victim.p50,
            victim.p99,
            victim.makespan,
            data.jain,
        );
    }
    println!();

    let mut failures = 0;
    let find = |cores: usize, key: &str| -> &SweepCell {
        report
            .cells
            .iter()
            .find(|c| {
                c.cores == cores
                    && c.tenant.as_ref().map(|t| t.scenario.as_str()) == Some(key)
            })
            .expect("grid is complete")
    };
    for &cores in &sweep.cores {
        // Gate 1: the tenant layer is free until a second tenant exists.
        let control = report
            .cells
            .iter()
            .find(|c| c.cores == cores && c.tenant.is_none())
            .expect("grid is complete");
        let degenerate = find(cores, &TenantScenario::batch(1, false).key());
        if degenerate.total_cycles != control.total_cycles {
            eprintln!(
                "DEGENERATE DRIFT: {cores} cores: 1-tenant batch cell ran {} cycles vs {} for \
                 the plain single-program cell",
                degenerate.total_cycles, control.total_cycles
            );
            failures += 1;
        }
        // Gate 2: partitioning strictly bounds the victim's p99 under every antagonist count.
        for tenants in [2usize, 4, 8] {
            let shared = find(cores, &serving(tenants, false).key());
            let part = find(cores, &serving(tenants, true).key());
            let shared_p99 = shared.tenant.as_ref().expect("co-scheduled").reports[0].p99;
            let part_p99 = part.tenant.as_ref().expect("co-scheduled").reports[0].p99;
            if part_p99 >= shared_p99 {
                eprintln!(
                    "P99 NOT BOUNDED: {tenants} tenants at {cores} cores: partitioned victim \
                     p99 {part_p99} must be strictly below shared {shared_p99}"
                );
                failures += 1;
            }
        }
    }
    // Gate 3: per-tenant accounting is sum-consistent and distribution-ordered everywhere.
    for cell in &report.cells {
        let Some(data) = &cell.tenant else { continue };
        let label = format!("{} at {} cores", data.scenario, cell.cores);
        let total: u64 = data.reports.iter().map(|r| r.tasks).sum();
        if total != cell.tasks as u64 {
            eprintln!(
                "ACCOUNTING DRIFT: {label}: per-tenant tasks sum to {total}, cell retired {}",
                cell.tasks
            );
            failures += 1;
        }
        for r in &data.reports {
            if !(r.p50 <= r.p90 && r.p90 <= r.p99 && r.p99 <= r.makespan) {
                eprintln!(
                    "DISORDERED DISTRIBUTION: {label}, tenant {}: p50 {} / p90 {} / p99 {} / \
                     makespan {}",
                    r.name, r.p50, r.p90, r.p99, r.makespan
                );
                failures += 1;
            }
        }
        if !(0.0..=1.0 + 1e-12).contains(&data.jain) {
            eprintln!("FAIRNESS OUT OF RANGE: {label}: Jain index {}", data.jain);
            failures += 1;
        }
    }

    let violations = report.bound_violations();
    for c in &violations {
        // Co-scheduled cells measure speedup against the summed serial baseline, which the
        // MTT bound still caps: a violation is a cost-model inconsistency, tenants or not.
        eprintln!(
            "BOUND EXCEEDED: {} ({}): measured {:.2}x > bound {:.2}x",
            c.workload,
            c.tenant.as_ref().map_or("single".to_string(), |t| t.scenario.clone()),
            c.speedup,
            c.mtt_bound
        );
    }
    println!(
        "{} of {} cells exceed their MTT bound, {} multi-tenant gate failure(s)",
        violations.len(),
        report.cells.len(),
        failures
    );

    match report.write_json_if_requested() {
        Ok(Some(path)) => println!("wrote machine-readable results to {}", path.display()),
        Ok(None) => {}
        Err(e) => {
            eprintln!("failed to write the sweep artifact: {e}");
            std::process::exit(1);
        }
    }
    match report.write_obs_artifacts_if_requested() {
        Ok(paths) => {
            for p in paths {
                println!("wrote per-tenant trace artifact {}", p.display());
            }
        }
        Err(e) => {
            eprintln!("failed to write the trace artifacts: {e}");
            std::process::exit(1);
        }
    }

    if !violations.is_empty() || failures > 0 {
        std::process::exit(1);
    }
}
