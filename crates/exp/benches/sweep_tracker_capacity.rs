//! The tracker-capacity experiment the ROADMAP asked for: the Picos task-memory and
//! address-table sizes have been a first-class sweep axis since the `tis-exp` engine landed,
//! but no curated experiment ever exercised it. This bench sweeps the paper's 8-core machine
//! across tracker sizings from starved (8-entry task memory — one in-flight task per core) to
//! the prototype's 256×2048, on two Picos-backed platforms and two dependence-heavy workloads,
//! answering the Table II question "how much tracker SRAM does the speedup actually need?".
//!
//! Run with `cargo bench -p tis-exp --bench sweep_tracker_capacity`. Set `TIS_BENCH_JSON=<dir>`
//! to write the machine-readable `BENCH_sweep_tracker-capacity.json` artifact and
//! `TIS_SWEEP_WORKERS=<n>` to override the host thread count.
//!
//! The bench exits non-zero if any cell exceeds its MTT bound, or on a **capacity inversion
//! at the envelope**: for each (workload, platform), the makespan with the starved tracker
//! must be at least the makespan with the prototype tracker. The gate deliberately compares
//! only the two envelope sizings, not adjacent pairs — a capacity change perturbs fetch
//! order, so mid-range sizings can jitter a few percent either way (the printed trajectory
//! shows it) — but a starved tracker beating the prototype would mean stalls somehow helped,
//! which is a model bug.

use tis_bench::Platform;
use tis_exp::{run_sweep_with_workers, workers_from_env, Sweep, SynthFamily, SynthSpec, WorkloadSpec};
use tis_picos::TrackerConfig;

fn main() {
    // Starved → cramped → halved → the paper's prototype sizing (Table II).
    let trackers = [
        TrackerConfig::new(8, 64),
        TrackerConfig::new(32, 256),
        TrackerConfig::new(128, 1024),
        TrackerConfig::default(),
    ];
    let sweep = Sweep::new("tracker-capacity")
        .over_cores([8])
        .over_trackers(trackers)
        .over_platforms([Platform::Phentos, Platform::NanosRv])
        // A wide fork-join keeps many tasks in flight (task-memory pressure) and a dense
        // Erdős–Rényi DAG keeps many addresses live (address-table pressure).
        .with_workload(WorkloadSpec::synth(SynthSpec {
            family: SynthFamily::ForkJoin { width: 64 },
            tasks: 256,
            task_cycles: 4_000,
            jitter: 0.25,
        }))
        .with_workload(WorkloadSpec::synth(SynthSpec {
            family: SynthFamily::ErdosRenyi { density: 0.06 },
            tasks: 192,
            task_cycles: 6_000,
            jitter: 0.25,
        }));

    let workers = workers_from_env();
    let report = run_sweep_with_workers(&sweep, workers);

    println!(
        "tracker-capacity sweep: {} cells ({} workloads x {} trackers x {} platforms), {} workers",
        report.cells.len(),
        sweep.workloads.len(),
        sweep.trackers.len(),
        sweep.platforms.len(),
        workers
    );
    println!();
    print!("{}", report.render_table());
    println!();

    // Per (workload, platform): the starved-to-prototype makespan trajectory.
    let mut failures = 0;
    for spec in &sweep.workloads {
        let label = spec.label();
        for &platform in &sweep.platforms {
            let row: Vec<_> = trackers
                .iter()
                .map(|t| {
                    report
                        .cells
                        .iter()
                        .find(|c| c.workload == label && c.platform == platform && c.tracker == *t)
                        .expect("grid is complete")
                })
                .collect();
            print!("{:<28} {:>9}", label, platform.key());
            for cell in &row {
                print!(" | {:>13}: {:>9}", cell.tracker.label(), cell.total_cycles);
            }
            println!();
            let starved = row.first().expect("non-empty tracker axis").total_cycles;
            let roomy = row.last().expect("non-empty tracker axis").total_cycles;
            if starved < roomy {
                eprintln!(
                    "CAPACITY INVERSION: {} on {}: starved tracker {} beats prototype {}",
                    label,
                    platform.key(),
                    starved,
                    roomy
                );
                failures += 1;
            }
        }
    }
    println!();

    let violations = report.bound_violations();
    for c in &violations {
        eprintln!(
            "BOUND EXCEEDED: {} {} on {}: measured {:.2}x > bound {:.2}x",
            c.workload,
            c.tracker.label(),
            c.platform.label(),
            c.speedup,
            c.mtt_bound
        );
    }
    println!(
        "{} of {} cells exceed their MTT bound, {} capacity inversion(s)",
        violations.len(),
        report.cells.len(),
        failures
    );

    match report.write_json_if_requested() {
        Ok(Some(path)) => println!("wrote machine-readable results to {}", path.display()),
        Ok(None) => {}
        Err(e) => {
            eprintln!("failed to write the sweep artifact: {e}");
            std::process::exit(1);
        }
    }

    if !violations.is_empty() || failures > 0 {
        std::process::exit(1);
    }
}
