//! The fault-injection experiment: chaos with a replay guarantee.
//!
//! PR 6's `tis-fault` layer injects deterministic message drops/delays and transient
//! tracker-entry losses into the contended directory mesh, paired with timeout/retry recovery.
//! This bench runs the same workloads fault-free, under a **zero-rate** schedule (the fault
//! layer fully engaged but never firing) and under the canonical **recoverable** schedule, and
//! gates the robustness story:
//!
//! * zero-rate cells must be **cycle-identical** to fault-free cells — the fault layer itself
//!   is free until a fault actually fires;
//! * fault-free cells must stay **within noise** (1%) of a direct harness measurement of the
//!   same workload — the fault axis must not perturb the fault-free path;
//! * recoverable cells must complete with **functional identity** (same tasks, same serial
//!   baseline) and report non-zero fault/recovery metrics — only latency may differ;
//! * no cell may exceed its MTT speedup bound.
//!
//! Run with `cargo bench -p tis-exp --bench sweep_fault_injection`. Set `TIS_BENCH_JSON=<dir>`
//! to write the machine-readable `BENCH_sweep_fault-injection.json` artifact and
//! `TIS_SWEEP_WORKERS=<n>` to override the host thread count.

use tis_bench::{Harness, Platform};
use tis_exp::{
    run_sweep_with_workers, workers_from_env, FaultConfig, MemoryModel, Sweep, SynthFamily,
    SynthSpec, WorkloadSpec,
};

/// Maximum relative makespan drift a fault-free cell may show against the direct harness run.
const CATALOG_NOISE: f64 = 0.01;

fn main() {
    // A dense windowed Erdős–Rényi DAG keeps coherence traffic criss-crossing the mesh (every
    // NoC leg is a fault opportunity); the catalog workload anchors the experiment at the
    // paper's scale.
    let dense = WorkloadSpec::synth(SynthSpec {
        family: SynthFamily::ErdosRenyi { density: 0.1 },
        tasks: 192,
        task_cycles: 6_000,
        jitter: 0.25,
    });
    let catalog = WorkloadSpec::catalog("blackscholes", "4K B64");
    let catalog_label = catalog.label();
    let faults = [FaultConfig::none(), FaultConfig::zero_rate(), FaultConfig::recoverable()];
    let sweep = Sweep::new("fault-injection")
        .over_cores([8])
        .over_memory_models([MemoryModel::directory_mesh_contended()])
        .over_faults(faults)
        .over_platforms([Platform::Phentos])
        .with_workload(dense)
        .with_workload(catalog);

    let workers = workers_from_env();
    let report = run_sweep_with_workers(&sweep, workers);

    println!(
        "fault-injection sweep: {} cells ({} workloads x {} fault schedules), {} workers",
        report.cells.len(),
        sweep.workloads.len(),
        faults.len(),
        workers
    );
    println!();
    print!("{}", report.render_table());
    println!();

    let find = |workload: &str, fault_key: &str| {
        report
            .cells
            .iter()
            .find(|c| {
                c.workload == workload
                    && (c.fault.key() == fault_key || (!c.fault.engages() && fault_key == "none"))
            })
            .expect("grid is complete")
    };
    // Engaging cells carry a derived per-cell seed, so match them by rate signature instead of
    // the full key: zero_rate never fires, recoverable keeps recoverable()'s rates.
    let cell_of = |workload: &str, f: FaultConfig| {
        report
            .cells
            .iter()
            .find(|c| {
                c.workload == workload
                    && c.fault.drop_ppm == f.drop_ppm
                    && c.fault.delay_ppm == f.delay_ppm
                    && c.fault.tracker_loss_ppm == f.tracker_loss_ppm
                    && c.fault.engages() == f.engages()
            })
            .expect("grid is complete")
    };

    let mut failures = 0;
    println!(
        "{:<32} | {:>12} | {:>13} | {:>12} | {:>6} | {:>7} | {:>7} | {:>7} | {:>13}",
        "workload", "clean cyc", "zero-rate cyc", "faulted cyc", "drops", "delays", "retries", "losses", "recovery cyc"
    );
    for spec in &sweep.workloads {
        let label = spec.label();
        let clean = find(&label, "none");
        let zero = cell_of(&label, FaultConfig::zero_rate());
        let faulted = cell_of(&label, FaultConfig::recoverable());
        println!(
            "{:<32} | {:>12} | {:>13} | {:>12} | {:>6} | {:>7} | {:>7} | {:>7} | {:>13}",
            label,
            clean.total_cycles,
            zero.total_cycles,
            faulted.total_cycles,
            faulted.fault_drops,
            faulted.fault_delays,
            faulted.fault_retries,
            faulted.fault_tracker_losses,
            faulted.fault_recovery_cycles,
        );
        if zero.total_cycles != clean.total_cycles {
            eprintln!(
                "ZERO-RATE DRIFT: {label}: zero-rate fault layer moved the makespan from {} to {}",
                clean.total_cycles, zero.total_cycles
            );
            failures += 1;
        }
        if zero.fault_drops + zero.fault_delays + zero.fault_retries + zero.fault_tracker_losses != 0 {
            eprintln!("ZERO-RATE FIRED: {label}: a zero-rate schedule reported fault events");
            failures += 1;
        }
        if faulted.tasks != clean.tasks || faulted.serial_cycles != clean.serial_cycles {
            eprintln!(
                "FUNCTIONAL DRIFT: {label}: faulted cell ran different work ({} tasks / {} serial) than clean ({} / {})",
                faulted.tasks, faulted.serial_cycles, clean.tasks, clean.serial_cycles
            );
            failures += 1;
        }
        if faulted.total_cycles < clean.total_cycles {
            eprintln!(
                "NEGATIVE RECOVERY COST: {label}: faulted makespan {} beats clean {}",
                faulted.total_cycles, clean.total_cycles
            );
            failures += 1;
        }
        if faulted.fault_drops + faulted.fault_delays == 0 {
            eprintln!("SCHEDULE SILENT: {label}: the recoverable schedule injected no message faults");
            failures += 1;
        }
    }
    println!();

    // The fault axis must not perturb the fault-free path: the clean catalog cell has to match
    // a direct harness measurement of the same workload within noise.
    let clean_catalog = find(&catalog_label, "none");
    let direct = Harness::with_cores(8)
        .with_memory_model(MemoryModel::directory_mesh_contended())
        .run(Platform::Phentos, &tis_workloads::entry_for_cores("blackscholes", "4K B64", 8).expect("catalog entry exists").program)
        .expect("direct catalog run completes");
    let drift = (clean_catalog.total_cycles as f64 / direct.total_cycles.max(1) as f64 - 1.0).abs();
    if drift > CATALOG_NOISE {
        eprintln!(
            "CATALOG PERTURBED: fault-free sweep cell {} vs direct run {} ({:.2}% > {:.0}%)",
            clean_catalog.total_cycles,
            direct.total_cycles,
            drift * 100.0,
            CATALOG_NOISE * 100.0
        );
        failures += 1;
    }

    let violations = report.bound_violations();
    for c in &violations {
        eprintln!(
            "BOUND EXCEEDED: {} under fault '{}': measured {:.2}x > bound {:.2}x",
            c.workload,
            c.fault.key(),
            c.speedup,
            c.mtt_bound
        );
    }
    println!(
        "{} of {} cells exceed their MTT bound, {} fault-injection gate failure(s)",
        violations.len(),
        report.cells.len(),
        failures
    );

    match report.write_json_if_requested() {
        Ok(Some(path)) => println!("wrote machine-readable results to {}", path.display()),
        Ok(None) => {}
        Err(e) => {
            eprintln!("failed to write the sweep artifact: {e}");
            std::process::exit(1);
        }
    }

    if !violations.is_empty() || failures > 0 {
        std::process::exit(1);
    }
}
