//! The memory-system scaling experiment: snooping bus vs directory/NoC from 2 to 64 cores.
//!
//! The paper's snooping/no-L2 model is faithful to the 8-core prototype but **optimistic** at
//! 64 cores — its bus wait is capped, so coherence is essentially free at any scale. The
//! directory/NoC model pays per-hop mesh latency instead, which grows with the machine. This
//! bench runs both models side by side on the same workloads (same programs cell-for-cell:
//! the memory axis never perturbs generation) and reports how the memory latency gap opens as
//! the mesh grows, turning the 64-core speedup story from "assumed free coherence" into a
//! defensible sensitivity range.
//!
//! Run with `cargo bench -p tis-exp --bench sweep_memory_scaling`. Set `TIS_BENCH_JSON=<dir>`
//! to write the machine-readable `BENCH_sweep_memory-scaling.json` artifact and
//! `TIS_SWEEP_WORKERS=<n>` to override the host thread count.
//!
//! The bench exits non-zero if any cell exceeds its MTT bound, or if the 64-core directory
//! cells fail to show **strictly higher** mean memory latency than their snooping twins — the
//! whole point of the second model is that distance is not free.

use tis_bench::Platform;
use tis_exp::{run_sweep_with_workers, workers_from_env, MemoryModel, Sweep, SynthFamily, SynthSpec, WorkloadSpec};

fn main() {
    let cores = [2usize, 4, 8, 16, 32, 64];
    let sweep = Sweep::new("memory-scaling")
        .over_cores(cores)
        .over_memory_models([MemoryModel::SnoopBus, MemoryModel::directory_mesh()])
        .over_platforms([Platform::Phentos])
        // The catalog's medium-granularity blackscholes with core-count context, plus a
        // coherence-heavy dense DAG whose cross-task dependences keep lines migrating.
        .with_workload(WorkloadSpec::catalog("blackscholes", "4K B64"))
        .with_workload(WorkloadSpec::synth(SynthSpec {
            family: SynthFamily::ErdosRenyi { density: 0.04 },
            tasks: 192,
            task_cycles: 6_000,
            jitter: 0.25,
        }));

    let workers = workers_from_env();
    let report = run_sweep_with_workers(&sweep, workers);

    println!(
        "memory-scaling sweep: {} cells ({} workloads x {} core counts x 2 memory models), {} workers",
        report.cells.len(),
        sweep.workloads.len(),
        cores.len(),
        workers
    );
    println!();
    print!("{}", report.render_table());
    println!();

    // The headline trajectory: per workload and core count, mean memory latency and makespan
    // under each model, and the ratio between them.
    let mut failures = 0;
    for spec in &sweep.workloads {
        let label = spec.label();
        println!("{label}:");
        println!(
            "  {:>5} | {:>14} | {:>14} | {:>9} | {:>11}",
            "cores", "bus mem lat", "mesh mem lat", "lat ratio", "cycle ratio"
        );
        for &n in &cores {
            let find = |model: MemoryModel| {
                report
                    .cells
                    .iter()
                    .find(|c| c.workload == label && c.cores == n && c.memory == model)
                    .expect("grid is complete")
            };
            let bus = find(MemoryModel::SnoopBus);
            let mesh = find(MemoryModel::directory_mesh());
            println!(
                "  {:>5} | {:>14.2} | {:>14.2} | {:>8.2}x | {:>10.3}x",
                n,
                bus.mean_mem_latency,
                mesh.mean_mem_latency,
                mesh.mean_mem_latency / bus.mean_mem_latency.max(f64::MIN_POSITIVE),
                mesh.total_cycles as f64 / bus.total_cycles.max(1) as f64,
            );
            if n == 64 && mesh.mean_mem_latency <= bus.mean_mem_latency {
                eprintln!(
                    "SCALING GAP MISSING: {label} at 64 cores: mesh latency {:.2} <= bus latency {:.2}",
                    mesh.mean_mem_latency, bus.mean_mem_latency
                );
                failures += 1;
            }
        }
        println!();
    }

    let violations = report.bound_violations();
    for c in &violations {
        eprintln!(
            "BOUND EXCEEDED: {} on {} cores ({}): measured {:.2}x > bound {:.2}x",
            c.workload,
            c.cores,
            c.memory.key(),
            c.speedup,
            c.mtt_bound
        );
    }
    println!(
        "{} of {} cells exceed their MTT bound, {} missing 64-core scaling gap(s)",
        violations.len(),
        report.cells.len(),
        failures
    );

    match report.write_json_if_requested() {
        Ok(Some(path)) => println!("wrote machine-readable results to {}", path.display()),
        Ok(None) => {}
        Err(e) => {
            eprintln!("failed to write the sweep artifact: {e}");
            std::process::exit(1);
        }
    }

    if !violations.is_empty() || failures > 0 {
        std::process::exit(1);
    }
}
