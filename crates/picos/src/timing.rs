//! Timing parameters of the Picos pipeline.
//!
//! The original Picos is a pipelined design clocked at the same 80 MHz as the cores in the
//! paper's prototype (both live in the same FPGA fabric). The constants below describe how many
//! core cycles each stage of the accelerator needs; they are calibrated so that the end-to-end
//! per-task lifetime overheads of the integrated system land in the range reported by Figure 7
//! (a few hundred cycles for Phentos), and are deliberately exposed so ablation benches can vary
//! them.

use tis_sim::Cycle;

/// Per-stage latencies of the Picos model, in core cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PicosTiming {
    /// Cycles Picos needs to absorb one 32-bit submission packet from its submission queue.
    pub packet_accept: Cycle,
    /// Fixed cost of inserting a new task into the task memory once all 48 packets arrived.
    pub task_insert_base: Cycle,
    /// Additional insertion cost per declared dependence (address-table lookup and linkage).
    pub task_insert_per_dep: Cycle,
    /// Cycles between a task becoming dependence-free and its descriptor appearing in the ready
    /// queue. The paper quotes an 8-cycle latency for fetching the three ready packets; half of
    /// it is hidden by Picos Manager's per-core ready queues.
    pub ready_publish: Cycle,
    /// Fixed cost of processing one retirement packet.
    pub retire_base: Cycle,
    /// Additional retirement cost per outgoing dependence edge woken by the retiring task.
    pub retire_per_successor: Cycle,
}

impl Default for PicosTiming {
    fn default() -> Self {
        PicosTiming {
            packet_accept: 1,
            task_insert_base: 6,
            task_insert_per_dep: 2,
            ready_publish: 8,
            retire_base: 4,
            retire_per_successor: 2,
        }
    }
}

impl PicosTiming {
    /// Total pipeline cycles needed to ingest and insert a task with `deps` dependences, from
    /// the first packet entering the submission queue to the task being linked into the graph.
    pub fn submission_cycles(&self, deps: usize) -> Cycle {
        let packets = (3 + 3 * deps) as Cycle;
        packets * self.packet_accept + self.task_insert_base + self.task_insert_per_dep * deps as Cycle
    }

    /// Cycles needed to process a retirement that wakes `successors` dependent tasks.
    pub fn retirement_cycles(&self, successors: usize) -> Cycle {
        self.retire_base + self.retire_per_successor * successors as Cycle
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn submission_cost_grows_with_deps() {
        let t = PicosTiming::default();
        let none = t.submission_cycles(0);
        let one = t.submission_cycles(1);
        let fifteen = t.submission_cycles(15);
        assert!(none < one && one < fifteen);
        // 0 deps: 3 packets * 1 + 6 = 9 cycles with the default timing.
        assert_eq!(none, 9);
        // 15 deps: 48 packets + 6 + 30 = 84 cycles.
        assert_eq!(fifteen, 84);
    }

    #[test]
    fn retirement_cost_grows_with_fanout() {
        let t = PicosTiming::default();
        assert_eq!(t.retirement_cycles(0), 4);
        assert_eq!(t.retirement_cycles(3), 10);
        assert!(t.retirement_cycles(10) > t.retirement_cycles(2));
    }

    #[test]
    fn defaults_keep_submission_well_under_previous_systems() {
        // The whole point of the paper: the hardware path must cost hundreds, not thousands,
        // of cycles per task.
        let t = PicosTiming::default();
        assert!(t.submission_cycles(15) < 200);
        assert!(t.retirement_cycles(15) < 100);
    }
}
