//! The timed Picos device: queues plus tracker plus pipeline timing.
//!
//! [`Picos`] is what Picos Manager (in `tis-core`) talks to. Its interface mirrors the three
//! hardware queues of Section IV-D:
//!
//! * [`Picos::try_submit`] — push a complete (already zero-padded) 48-packet descriptor;
//! * [`Picos::pop_ready`] — pop a ready-task descriptor, if one has been published;
//! * [`Picos::retire`] — push a retirement packet.
//!
//! The device is advanced lazily: every call carries the current cycle, and internal pipeline
//! completions that should have happened by then are applied first. This keeps the simulator
//! synchronous while still modelling the accelerator's processing latencies.

use tis_fault::{FaultConfig, TrackerFaults};
use tis_sim::{BoundedQueue, Cycle, TimedQueue};

use crate::packet::SubmittedTask;
use crate::timing::PicosTiming;
use crate::tracker::{DependenceTracker, PicosId, TrackerConfig, TrackerError, TrackerStats};

/// Configuration of the Picos device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PicosConfig {
    /// Capacity parameters of the dependence tracker.
    pub tracker: TrackerConfig,
    /// Pipeline timing parameters.
    pub timing: PicosTiming,
    /// Depth of the hardware ready queue (descriptors published and waiting to be fetched).
    pub ready_queue_depth: usize,
    /// Deterministic fault schedule for transient tracker-entry loss at the submission port.
    /// [`FaultConfig::none`] (the default) constructs no fault state at all; an engaging
    /// config draws a replayable loss fate per submission — each loss is detected by timeout
    /// and recovered by a resubmit, delaying (never losing) the commit.
    pub fault: FaultConfig,
}

impl Default for PicosConfig {
    fn default() -> Self {
        PicosConfig {
            tracker: TrackerConfig::default(),
            timing: PicosTiming::default(),
            ready_queue_depth: 16,
            fault: FaultConfig::none(),
        }
    }
}

/// A ready-to-run task descriptor as produced by Picos (before Picos Manager's Packet Encoder
/// compresses it into a 96-bit tuple).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadyTask {
    /// Task-memory index to hand back at retirement.
    pub picos_id: PicosId,
    /// Software identifier chosen by the runtime at submission.
    pub sw_id: u64,
    /// Cycle at which the descriptor became visible in the ready queue.
    pub available_at: Cycle,
}

/// Lifetime statistics of the device.
#[derive(Debug, Clone, Default)]
pub struct PicosStats {
    /// Tracker-level statistics.
    pub tracker: TrackerStats,
    /// Descriptors published to the ready queue.
    pub ready_published: u64,
    /// Highest ready-queue occupancy observed.
    pub ready_high_water: usize,
    /// Submissions rejected because the tracker was full.
    pub submissions_rejected: u64,
    /// Submissions transiently lost by an injected fault before their commit (each one was
    /// detected by timeout and recovered by a resubmit).
    pub tracker_losses: u64,
    /// Resubmissions issued to recover lost submissions (equals `tracker_losses`).
    pub tracker_resubmits: u64,
    /// Total cycles the submission port spent detecting losses and resubmitting.
    pub tracker_recovery_cycles: u64,
}

/// The Picos hardware task scheduler.
#[derive(Debug, Clone)]
pub struct Picos {
    config: PicosConfig,
    tracker: DependenceTracker,
    /// Tasks whose dependences are satisfied but whose ready descriptors are still being
    /// generated, keyed by publication time.
    pending_ready: TimedQueue<PicosId>,
    /// Retirement packets accepted but not yet applied to the task graph, keyed by completion
    /// time.
    ///
    /// Retirements are deferred until their simulated completion time so that a task submitted
    /// at an earlier simulated cycle (by a core whose clock lags the retiring core) still links
    /// to the producer — the hardware never reorders retirements ahead of earlier submissions.
    pending_retire: TimedQueue<PicosId>,
    ready_queue: BoundedQueue<ReadyTask>,
    /// Scratch buffer for the tracker's wake-up lists, reused across retirements.
    woken_scratch: Vec<PicosId>,
    submit_busy_until: Cycle,
    retire_busy_until: Cycle,
    /// Latest simulated instant every core is known to have reached (set by the integration
    /// layer). Retirements are only applied up to this horizon so that a core whose clock still
    /// lags cannot observe a retirement from its future.
    time_horizon: Option<Cycle>,
    /// Deterministic submission-loss state; `None` unless [`PicosConfig::fault`] engages.
    faults: Option<TrackerFaults>,
    stats: PicosStats,
    /// Observability: while `true`, every ready publication appends `(publish_cycle, sw_id)`
    /// to [`Picos::drain_ready_log`]'s buffer. Plain data — this crate carries no observer
    /// dependency — and nothing is buffered while disarmed (the default).
    observing: bool,
    ready_log: Vec<(Cycle, u64)>,
}

impl Picos {
    /// Creates a Picos device.
    pub fn new(config: PicosConfig) -> Self {
        Picos {
            config,
            tracker: DependenceTracker::new(config.tracker),
            pending_ready: TimedQueue::new(),
            pending_retire: TimedQueue::new(),
            ready_queue: BoundedQueue::new(config.ready_queue_depth),
            woken_scratch: Vec::new(),
            submit_busy_until: 0,
            retire_busy_until: 0,
            time_horizon: None,
            faults: config.fault.engages().then(|| TrackerFaults::new(config.fault)),
            stats: PicosStats::default(),
            observing: false,
            ready_log: Vec::new(),
        }
    }

    /// Arms (or disarms) ready-publication logging (see the `observing` field).
    pub fn set_observing(&mut self, on: bool) {
        self.observing = on;
        if !on {
            self.ready_log.clear();
        }
    }

    /// Drains buffered ready publications as `(publish_cycle, sw_id)` pairs, oldest first.
    pub fn drain_ready_log(&mut self, sink: &mut dyn FnMut(Cycle, u64)) {
        for (t, sw_id) in self.ready_log.drain(..) {
            sink(t, sw_id);
        }
    }

    /// Declares that no core will issue an operation timestamped earlier than `safe_now`.
    pub fn set_time_horizon(&mut self, safe_now: Cycle) {
        let new = match self.time_horizon {
            Some(h) => h.max(safe_now),
            None => safe_now,
        };
        self.time_horizon = Some(new);
    }

    /// Configuration in use.
    pub fn config(&self) -> PicosConfig {
        self.config
    }

    /// Number of in-flight tasks: inserted and not yet retired by the program. Tasks whose
    /// retirement packet has been accepted but is still being processed by the retirement
    /// pipeline are no longer counted (the program is done with them), although they still
    /// occupy task-memory entries until the pipeline drains.
    pub fn in_flight(&self) -> usize {
        self.tracker.in_flight() - self.pending_retire.len()
    }

    /// Whether the device can currently accept a new task descriptor.
    pub fn can_accept_submission(&self) -> bool {
        !self.tracker.is_full()
    }

    /// Applies all internal pipeline completions up to `now`: retirements whose processing time
    /// has been reached are applied to the task graph, and pending ready descriptors are
    /// published into the bounded ready queue, oldest first.
    pub fn advance(&mut self, now: Cycle) {
        // Retirements become visible no earlier than both their completion time and the horizon
        // every core has provably reached.
        let retire_gate = match self.time_horizon {
            Some(h) => now.min(h),
            None => now,
        };
        while let Some((t, id)) = self.pending_retire.pop_due(retire_gate) {
            self.tracker
                .retire_into(id, &mut self.woken_scratch)
                .expect("pending retirement refers to an in-flight task (validated at queue time)");
            for &w in &self.woken_scratch {
                self.pending_ready.schedule(t + self.config.timing.ready_publish, w);
            }
        }
        while let Some(t) = self.pending_ready.next_due() {
            if t > now || self.ready_queue.is_full() {
                break;
            }
            let (_, id) = self.pending_ready.pop_due(now).expect("head checked due above");
            let sw_id = self
                .tracker
                .sw_id(id)
                .expect("a pending-ready task is still in flight until it retires");
            let entry = ReadyTask { picos_id: id, sw_id, available_at: t };
            self.ready_queue
                .push(entry)
                .expect("checked for space above");
            if self.observing {
                self.ready_log.push((t, sw_id));
            }
            self.stats.ready_published += 1;
            self.stats.ready_high_water = self.stats.ready_high_water.max(self.ready_queue.len());
        }
    }

    /// Submits a complete task descriptor at cycle `now`.
    ///
    /// Returns the assigned Picos ID and the cycle at which the accelerator finishes absorbing
    /// the descriptor (the submission pipeline is busy until then).
    ///
    /// # Errors
    ///
    /// Returns the underlying [`TrackerError`] if the task memory or address table is full; the
    /// caller (Picos Manager) is expected to have checked [`Picos::can_accept_submission`] and to
    /// retry later otherwise.
    pub fn try_submit(&mut self, task: &SubmittedTask, now: Cycle) -> Result<(PicosId, Cycle), TrackerError> {
        self.advance(now);
        let (id, ready) = self.tracker.insert(task).inspect_err(|_e| {
            self.stats.submissions_rejected += 1;
        })?;
        // Injected tracker-entry loss: the descriptor may be lost (a bounded number of times)
        // before the insert above commits. A lost attempt leaves no semantic trace — detection
        // is a timeout at the submission port, recovery is a resubmit — so the fault shows up
        // purely as extra pipeline occupancy ahead of the commit.
        let mut loss_penalty = 0;
        if let Some(f) = &mut self.faults {
            let (lost, penalty) = f.submission_losses();
            self.stats.tracker_losses += lost as u64;
            self.stats.tracker_resubmits += lost as u64;
            self.stats.tracker_recovery_cycles += penalty;
            loss_penalty = penalty;
        }
        let start = self.submit_busy_until.max(now);
        let done = start + loss_penalty + self.config.timing.submission_cycles(task.deps.len());
        self.submit_busy_until = done;
        if ready {
            self.pending_ready.schedule(done + self.config.timing.ready_publish, id);
        }
        self.advance(now);
        Ok((id, done))
    }

    /// Pops the oldest ready descriptor that is visible at cycle `now`, if any.
    pub fn pop_ready(&mut self, now: Cycle) -> Option<ReadyTask> {
        self.advance(now);
        match self.ready_queue.front() {
            Some(rt) if rt.available_at <= now => self.ready_queue.pop(),
            _ => None,
        }
    }

    /// Whether a ready descriptor is visible at cycle `now`.
    pub fn has_ready(&mut self, now: Cycle) -> bool {
        self.advance(now);
        matches!(self.ready_queue.front(), Some(rt) if rt.available_at <= now)
    }

    /// Number of descriptors currently sitting in the ready queue (regardless of visibility).
    pub fn ready_queue_len(&self) -> usize {
        self.ready_queue.len() + self.pending_ready.len()
    }

    /// Retires a task at cycle `now`.
    ///
    /// Returns the cycle at which the retirement finishes processing inside the accelerator;
    /// tasks woken by this retirement become visible in the ready queue shortly afterwards.
    /// Picos always accepts retirement packets (Section IV-B), so this never reports "full".
    ///
    /// # Errors
    ///
    /// Returns [`TrackerError::UnknownTask`] on a double retire or a corrupted ID.
    pub fn retire(&mut self, id: PicosId, now: Cycle) -> Result<Cycle, TrackerError> {
        self.advance(now);
        if self.tracker.sw_id(id).is_none() || self.pending_retire.iter().any(|&(_, p)| p == id) {
            return Err(TrackerError::UnknownTask(id));
        }
        let fanout = self.tracker.successor_count(id);
        let start = self.retire_busy_until.max(now);
        let done = start + self.config.timing.retirement_cycles(fanout);
        self.retire_busy_until = done;
        self.pending_retire.schedule(done, id);
        self.advance(now);
        Ok(done)
    }

    /// Lifetime statistics.
    pub fn stats(&self) -> PicosStats {
        PicosStats { tracker: self.tracker.stats().clone(), ..self.stats.clone() }
    }
}

impl Default for Picos {
    fn default() -> Self {
        Picos::new(PicosConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tis_taskmodel::Dependence;

    fn t(sw_id: u64, deps: Vec<Dependence>) -> SubmittedTask {
        SubmittedTask::new(sw_id, deps)
    }

    #[test]
    fn independent_task_becomes_ready_after_pipeline_latency() {
        let mut p = Picos::default();
        let (_id, done) = p.try_submit(&t(7, vec![]), 0).unwrap();
        assert!(done >= PicosTiming::default().submission_cycles(0));
        assert!(p.pop_ready(0).is_none(), "not visible before the pipeline finishes");
        let visible_at = done + PicosTiming::default().ready_publish;
        assert!(p.pop_ready(visible_at - 1).is_none());
        let rt = p.pop_ready(visible_at).expect("ready after publication latency");
        assert_eq!(rt.sw_id, 7);
    }

    #[test]
    fn dependent_task_only_ready_after_predecessor_retires() {
        let mut p = Picos::default();
        let (a, _) = p.try_submit(&t(1, vec![Dependence::write(0x100)]), 0).unwrap();
        let (_b, _) = p.try_submit(&t(2, vec![Dependence::read(0x100)]), 10).unwrap();
        let ra = p.pop_ready(1_000).expect("first task ready");
        assert_eq!(ra.picos_id, a);
        assert!(p.pop_ready(1_000).is_none(), "second task still blocked");
        let done = p.retire(a, 2_000).unwrap();
        assert!(p.pop_ready(done).is_none() || done >= 2_000);
        let rb = p.pop_ready(done + PicosTiming::default().ready_publish).expect("woken by retirement");
        assert_eq!(rb.sw_id, 2);
    }

    #[test]
    fn ready_queue_backpressure_holds_descriptors() {
        let cfg = PicosConfig { ready_queue_depth: 2, ..PicosConfig::default() };
        let mut p = Picos::new(cfg);
        for i in 0..5 {
            p.try_submit(&t(i, vec![]), i * 10).unwrap();
        }
        p.advance(10_000);
        assert_eq!(p.ready_queue_len(), 5, "all five stay buffered somewhere");
        // Only two fit in the hardware ready queue; the rest are still pending publication.
        let mut popped = Vec::new();
        let mut now = 10_000;
        while let Some(rt) = p.pop_ready(now) {
            popped.push(rt.sw_id);
            now += 1;
        }
        assert_eq!(popped.len(), 5, "popping drains the backlog as space frees up");
        assert_eq!(popped, vec![0, 1, 2, 3, 4], "FIFO order by submission");
    }

    #[test]
    fn submission_rejected_when_task_memory_full() {
        let cfg = PicosConfig {
            tracker: TrackerConfig { task_memory_entries: 1, address_table_entries: 8 },
            ..PicosConfig::default()
        };
        let mut p = Picos::new(cfg);
        let (a, _) = p.try_submit(&t(1, vec![]), 0).unwrap();
        assert!(!p.can_accept_submission());
        assert!(p.try_submit(&t(2, vec![]), 5).is_err());
        assert_eq!(p.stats().submissions_rejected, 1);
        let done = p.retire(a, 100).unwrap();
        p.advance(done); // the task-memory entry frees once the retirement pipeline drains
        assert!(p.can_accept_submission());
        assert!(p.try_submit(&t(2, vec![]), 200).is_ok());
    }

    #[test]
    fn back_to_back_submissions_serialize_in_the_pipeline() {
        let mut p = Picos::default();
        let (_, d1) = p.try_submit(&t(1, vec![]), 0).unwrap();
        let (_, d2) = p.try_submit(&t(2, vec![]), 0).unwrap();
        assert!(d2 >= d1 + PicosTiming::default().submission_cycles(0));
    }

    #[test]
    fn retire_unknown_id_is_an_error() {
        let mut p = Picos::default();
        assert!(p.retire(PicosId(3), 0).is_err());
    }

    #[test]
    fn tracker_loss_delays_but_never_loses_submissions() {
        // 100% loss rate with a retry budget of 2: every submission is lost twice, resubmitted
        // and then commits — later by exactly the detection/backoff ramp, with nothing dropped.
        let fault = tis_fault::FaultConfig {
            tracker_loss_ppm: 1_000_000,
            max_retries: 2,
            retry_timeout: 50,
            retry_backoff: 10,
            ..tis_fault::FaultConfig::zero_rate()
        };
        let mut clean = Picos::default();
        let mut lossy = Picos::new(PicosConfig { fault, ..PicosConfig::default() });
        let (_, d_clean) = clean.try_submit(&t(1, vec![]), 0).unwrap();
        let (_, d_lossy) = lossy.try_submit(&t(1, vec![]), 0).unwrap();
        assert_eq!(d_lossy, d_clean + 50 + 60, "two losses, linear backoff, then commit");
        let rt = lossy.pop_ready(100_000).expect("the submission must still commit");
        assert_eq!(rt.sw_id, 1);
        let s = lossy.stats();
        assert_eq!(s.tracker_losses, 2);
        assert_eq!(s.tracker_resubmits, 2);
        assert_eq!(s.tracker_recovery_cycles, 110);
        // A zero-rate engaged config is cycle-identical to the fault-free device.
        let mut zeroed =
            Picos::new(PicosConfig { fault: tis_fault::FaultConfig::zero_rate(), ..PicosConfig::default() });
        let (_, d_zero) = zeroed.try_submit(&t(1, vec![]), 0).unwrap();
        assert_eq!(d_zero, d_clean);
        assert_eq!(zeroed.stats().tracker_losses, 0);
    }

    #[test]
    fn stats_reflect_activity() {
        let mut p = Picos::default();
        let (a, _) = p.try_submit(&t(1, vec![Dependence::write(0x10)]), 0).unwrap();
        let (_b, _) = p.try_submit(&t(2, vec![Dependence::read(0x10)]), 1).unwrap();
        let done = p.retire(a, 1_000).unwrap();
        p.advance(done + 100); // let the retirement pipeline drain
        let s = p.stats();
        assert_eq!(s.tracker.inserted, 2);
        assert_eq!(s.tracker.retired, 1);
        assert!(s.ready_published >= 1);
    }
}
