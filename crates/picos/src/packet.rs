//! The 48-packet task descriptor encoding of Figure 3.
//!
//! Every task submitted to Picos is described by exactly 48 32-bit packets:
//!
//! ```text
//!   packet  0 : task-ID (high 32 bits)        \
//!   packet  1 : task-ID (low 32 bits)          |  3-packet header
//!   packet  2 : #deps                          /
//!   packet  3 : dep 0 address (high)          \
//!   packet  4 : dep 0 address (low)            |  3 packets per dependence slot,
//!   packet  5 : dep 0 directionality           |  15 slots
//!   ...                                        /
//!   packet 47 : dep 14 directionality
//! ```
//!
//! A task with `N ≤ 15` dependences only has `3 + 3·N` non-zero packets; the remaining
//! `(15 − N)·3` packets are zero. In the paper's system the runtime only transmits the non-zero
//! prefix and Picos Manager's *Zero Padder* appends the rest, which is what makes the
//! Submit-Three-Packets instruction profitable.

use tis_taskmodel::{Dependence, Direction};

/// One 32-bit submission packet.
pub type SubmissionPacket = u32;

/// Total packets per descriptor (3-packet header + 15 dependence slots × 3 packets).
pub const PACKETS_PER_DESCRIPTOR: usize = 48;

/// Packets per dependence slot.
pub const PACKETS_PER_DEP: usize = 3;

/// Maximum dependences encodable in one descriptor.
pub const MAX_DEPS: usize = (PACKETS_PER_DESCRIPTOR - 3) / PACKETS_PER_DEP;

/// A task as understood by Picos after decoding its descriptor: the software identifier chosen
/// by the runtime plus the dependence annotations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubmittedTask {
    /// The 64-bit software task identifier (the "SW ID" returned by `Fetch SW ID`).
    pub sw_id: u64,
    /// Dependence annotations in submission order.
    pub deps: Vec<Dependence>,
}

impl SubmittedTask {
    /// Creates a submitted-task record.
    pub fn new(sw_id: u64, deps: Vec<Dependence>) -> Self {
        SubmittedTask { sw_id, deps }
    }

    /// Number of non-zero packets in this task's descriptor.
    pub fn nonzero_packets(&self) -> usize {
        3 + PACKETS_PER_DEP * self.deps.len()
    }
}

/// Errors produced when decoding a 48-packet descriptor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PacketDecodeError {
    /// The descriptor did not contain exactly [`PACKETS_PER_DESCRIPTOR`] packets.
    WrongLength(usize),
    /// The `#deps` header field exceeds the 15-dependence limit.
    TooManyDeps(u32),
    /// A dependence slot within the declared count carries the reserved directionality `0b00`.
    InvalidDirectionality {
        /// Index of the offending dependence slot.
        slot: usize,
    },
    /// A dependence slot beyond the declared count carries non-zero data.
    NonZeroPadding {
        /// Index of the first offending packet.
        packet: usize,
    },
}

impl core::fmt::Display for PacketDecodeError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            PacketDecodeError::WrongLength(n) => {
                write!(f, "descriptor has {n} packets, expected {PACKETS_PER_DESCRIPTOR}")
            }
            PacketDecodeError::TooManyDeps(n) => {
                write!(f, "descriptor declares {n} dependences, more than {MAX_DEPS}")
            }
            PacketDecodeError::InvalidDirectionality { slot } => {
                write!(f, "dependence slot {slot} carries the reserved directionality encoding")
            }
            PacketDecodeError::NonZeroPadding { packet } => {
                write!(f, "packet {packet} should be zero padding but is not")
            }
        }
    }
}

impl std::error::Error for PacketDecodeError {}

/// Encodes the non-zero prefix of a descriptor — header plus one 3-packet slot per dependence —
/// into a reused buffer (cleared first). This is the allocation-free core of the codec: the
/// runtime models call it with a scratch buffer on every submission attempt, so steady-state
/// encoding touches no allocator.
///
/// # Panics
///
/// Panics if more than 15 dependences are given; the `tis-taskmodel` validation layer is
/// supposed to reject such tasks long before they reach the packet codec.
pub fn encode_prefix_into(sw_id: u64, deps: &[Dependence], out: &mut Vec<SubmissionPacket>) {
    assert!(deps.len() <= MAX_DEPS, "at most {MAX_DEPS} dependences per descriptor");
    out.clear();
    out.reserve(PACKETS_PER_DESCRIPTOR);
    out.push((sw_id >> 32) as u32);
    out.push(sw_id as u32);
    out.push(deps.len() as u32);
    for d in deps {
        out.push((d.addr >> 32) as u32);
        out.push(d.addr as u32);
        out.push(d.dir.encode());
    }
}

/// Encodes a task into its full 48-packet descriptor (including zero padding) in a reused
/// buffer (cleared first).
///
/// # Panics
///
/// Panics if the task declares more than 15 dependences (see [`encode_prefix_into`]).
pub fn encode_descriptor_into(task: &SubmittedTask, out: &mut Vec<SubmissionPacket>) {
    encode_prefix_into(task.sw_id, &task.deps, out);
    out.resize(PACKETS_PER_DESCRIPTOR, 0);
}

/// Encodes a task into its full 48-packet descriptor (including zero padding).
///
/// Allocating convenience wrapper around [`encode_descriptor_into`].
///
/// # Panics
///
/// Panics if the task declares more than 15 dependences (see [`encode_prefix_into`]).
pub fn encode_descriptor(task: &SubmittedTask) -> Vec<SubmissionPacket> {
    let mut packets = Vec::with_capacity(PACKETS_PER_DESCRIPTOR);
    encode_descriptor_into(task, &mut packets);
    packets
}

/// Encodes only the non-zero prefix of the descriptor — what the runtime actually transmits
/// through the Submit Packet / Submit Three Packets instructions before the Zero Padder takes
/// over.
///
/// Allocating convenience wrapper around [`encode_prefix_into`].
pub fn encode_nonzero_prefix(task: &SubmittedTask) -> Vec<SubmissionPacket> {
    let mut packets = Vec::with_capacity(task.nonzero_packets());
    encode_prefix_into(task.sw_id, &task.deps, &mut packets);
    packets
}

/// Decodes a full 48-packet descriptor into a reused [`SubmittedTask`], overwriting its fields
/// (the dependence `Vec`'s capacity is reused, so steady-state decoding never allocates).
///
/// # Errors
///
/// Returns a [`PacketDecodeError`] if the descriptor is malformed (wrong length, too many
/// dependences, reserved directionality, or non-zero padding); `out` is left with the fields
/// decoded before the error was found and must not be interpreted.
pub fn decode_descriptor_into(
    packets: &[SubmissionPacket],
    out: &mut SubmittedTask,
) -> Result<(), PacketDecodeError> {
    if packets.len() != PACKETS_PER_DESCRIPTOR {
        return Err(PacketDecodeError::WrongLength(packets.len()));
    }
    out.sw_id = ((packets[0] as u64) << 32) | packets[1] as u64;
    let ndeps = packets[2];
    if ndeps as usize > MAX_DEPS {
        return Err(PacketDecodeError::TooManyDeps(ndeps));
    }
    out.deps.clear();
    out.deps.reserve(ndeps as usize);
    for slot in 0..MAX_DEPS {
        let base = 3 + slot * PACKETS_PER_DEP;
        let (hi, lo, dir_bits) = (packets[base], packets[base + 1], packets[base + 2]);
        if slot < ndeps as usize {
            let dir = Direction::decode(dir_bits)
                .ok_or(PacketDecodeError::InvalidDirectionality { slot })?;
            let addr = ((hi as u64) << 32) | lo as u64;
            out.deps.push(Dependence::new(addr, dir));
        } else if hi != 0 || lo != 0 || dir_bits != 0 {
            return Err(PacketDecodeError::NonZeroPadding { packet: base });
        }
    }
    Ok(())
}

/// Decodes a full 48-packet descriptor back into a task.
///
/// Allocating convenience wrapper around [`decode_descriptor_into`].
///
/// # Errors
///
/// Returns a [`PacketDecodeError`] if the descriptor is malformed (wrong length, too many
/// dependences, reserved directionality, or non-zero padding).
pub fn decode_descriptor(packets: &[SubmissionPacket]) -> Result<SubmittedTask, PacketDecodeError> {
    let mut task = SubmittedTask::new(0, Vec::new());
    decode_descriptor_into(packets, &mut task)?;
    Ok(task)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tis_taskmodel::Direction;

    fn sample_task(ndeps: usize) -> SubmittedTask {
        let deps = (0..ndeps)
            .map(|i| {
                let dir = Direction::ALL[i % 3];
                Dependence::new(0xDEAD_0000_1000 + (i as u64) * 64, dir)
            })
            .collect();
        SubmittedTask::new(0x1234_5678_9ABC_DEF0, deps)
    }

    #[test]
    fn descriptor_is_always_48_packets() {
        for n in 0..=15 {
            let t = sample_task(n);
            let p = encode_descriptor(&t);
            assert_eq!(p.len(), PACKETS_PER_DESCRIPTOR);
            assert_eq!(encode_nonzero_prefix(&t).len(), 3 + 3 * n);
        }
    }

    #[test]
    fn roundtrip_all_dep_counts() {
        for n in 0..=15 {
            let t = sample_task(n);
            let decoded = decode_descriptor(&encode_descriptor(&t)).unwrap();
            assert_eq!(decoded, t);
        }
    }

    #[test]
    fn header_layout_matches_figure_3() {
        let t = sample_task(1);
        let p = encode_descriptor(&t);
        assert_eq!(p[0], 0x1234_5678, "task-ID high");
        assert_eq!(p[1], 0x9ABC_DEF0, "task-ID low");
        assert_eq!(p[2], 1, "#deps");
        assert_eq!(p[3], 0x0000_DEAD, "address high");
        assert_eq!(p[4], 0x0000_1000, "address low");
        assert_eq!(p[5], Direction::In.encode(), "directionality");
        assert!(p[6..].iter().all(|&x| x == 0), "zero padding");
    }

    #[test]
    fn wrong_length_rejected() {
        assert_eq!(decode_descriptor(&[0; 47]), Err(PacketDecodeError::WrongLength(47)));
        assert_eq!(decode_descriptor(&[0; 49]), Err(PacketDecodeError::WrongLength(49)));
    }

    #[test]
    fn too_many_deps_rejected() {
        let mut p = encode_descriptor(&sample_task(0));
        p[2] = 16;
        assert_eq!(decode_descriptor(&p), Err(PacketDecodeError::TooManyDeps(16)));
    }

    #[test]
    fn reserved_directionality_rejected() {
        let mut p = encode_descriptor(&sample_task(2));
        p[3 + PACKETS_PER_DEP + 2] = 0; // second slot directionality -> reserved 0b00
        assert_eq!(
            decode_descriptor(&p),
            Err(PacketDecodeError::InvalidDirectionality { slot: 1 })
        );
    }

    #[test]
    fn nonzero_padding_rejected() {
        let mut p = encode_descriptor(&sample_task(1));
        p[10] = 7; // inside the padding region
        match decode_descriptor(&p) {
            Err(PacketDecodeError::NonZeroPadding { packet }) => assert!(packet <= 10),
            other => panic!("expected NonZeroPadding, got {other:?}"),
        }
    }

    #[test]
    fn reused_buffers_match_allocating_wrappers() {
        let mut packets = Vec::new();
        let mut decoded = SubmittedTask::new(0, Vec::new());
        for n in [0, 1, 4, 15] {
            let t = sample_task(n);
            encode_descriptor_into(&t, &mut packets);
            assert_eq!(packets, encode_descriptor(&t), "reused encode agrees ({n} deps)");
            let cap_before = decoded.deps.capacity();
            decode_descriptor_into(&packets, &mut decoded).unwrap();
            assert_eq!(decoded, t, "reused decode agrees ({n} deps)");
            if n > 0 {
                assert!(decoded.deps.capacity() >= cap_before, "capacity is reused, not shrunk");
            }
            encode_prefix_into(t.sw_id, &t.deps, &mut packets);
            assert_eq!(packets, encode_nonzero_prefix(&t), "reused prefix agrees ({n} deps)");
        }
    }

    #[test]
    fn error_display_is_informative() {
        let e = PacketDecodeError::TooManyDeps(99).to_string();
        assert!(e.contains("99") && e.contains("15"));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use tis_taskmodel::Direction;

    fn arb_task() -> impl Strategy<Value = SubmittedTask> {
        (
            any::<u64>(),
            proptest::collection::vec((any::<u64>(), 0usize..3), 0..=15),
        )
            .prop_map(|(sw_id, deps)| {
                let deps = deps
                    .into_iter()
                    .map(|(addr, d)| Dependence::new(addr, Direction::ALL[d]))
                    .collect();
                SubmittedTask::new(sw_id, deps)
            })
    }

    proptest! {
        /// Encode/decode is a lossless roundtrip for every representable task.
        #[test]
        fn roundtrip(task in arb_task()) {
            let packets = encode_descriptor(&task);
            prop_assert_eq!(packets.len(), PACKETS_PER_DESCRIPTOR);
            let decoded = decode_descriptor(&packets).unwrap();
            prop_assert_eq!(decoded, task);
        }

        /// The non-zero prefix plus zero padding equals the full descriptor.
        #[test]
        fn prefix_plus_padding_equals_full(task in arb_task()) {
            let full = encode_descriptor(&task);
            let mut prefix = encode_nonzero_prefix(&task);
            prefix.resize(PACKETS_PER_DESCRIPTOR, 0);
            prop_assert_eq!(prefix, full);
        }
    }
}
