//! Functional core of Picos: the task memory and the dependence-matching logic.
//!
//! The hardware keeps a bounded *task memory* (one entry per in-flight task, identified by a
//! **Picos ID**) and a bounded *address table* that maps dependence addresses to the producers
//! and consumers currently in flight. [`DependenceTracker`] reproduces that structure and the
//! RAW/WAW/WAR matching rules; its capacity limits are what eventually make the hardware refuse
//! new submissions, triggering the non-blocking failure paths of the RoCC instructions.
//!
//! # Host-side performance
//!
//! The tracker sits on the simulator's hottest path: every simulated task goes through one
//! `insert` and one `retire`, so its *host* cost bounds how large an experiment the harness can
//! run (the *simulated* cost is charged separately, by `PicosTiming`). The implementation is
//! therefore written allocation-free in steady state:
//!
//! * the address table is an [`FxHashMap`] (deterministic, seedless, a few ALU ops per probe);
//! * per-address reader lists, per-task dependence and successor lists use [`InlineVec`] — no
//!   heap traffic for the common ≤4-entry case;
//! * predecessor de-duplication uses epoch-stamped marks (`O(1)` per check) instead of a linear
//!   scan of the predecessors found so far;
//! * the per-insert working sets live in scratch arenas owned by the tracker and reused across
//!   calls.
//!
//! None of this affects simulated cycle counts: `micro_components` measures the host-side gain
//! against a reference implementation, and the figure benches pin the cycle counts themselves.

use tis_sim::{FxHashMap, InlineVec};
use tis_taskmodel::Direction;

use crate::packet::SubmittedTask;

/// Inline capacity of the per-task and per-address lists: dependence lists, successor lists and
/// reader lists stay heap-free while they hold at most this many entries (the overwhelmingly
/// common case in the paper's workloads).
const INLINE_LEN: usize = 4;

/// Index of a task inside Picos' task memory — the "Picos ID" returned by `Fetch Picos ID` and
/// passed back through `Retire Task`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PicosId(pub u32);

impl core::fmt::Display for PicosId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// Capacity parameters of the tracker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrackerConfig {
    /// Number of task-memory entries (maximum in-flight tasks).
    pub task_memory_entries: usize,
    /// Number of address-table entries (maximum distinct live dependence addresses).
    pub address_table_entries: usize,
}

impl TrackerConfig {
    /// Creates a capacity configuration. The two capacities are first-class experiment axes
    /// (the `tis-exp` sweeps explore them the way the HTS design-space studies do), so a
    /// dedicated constructor keeps sweep definitions terse.
    pub const fn new(task_memory_entries: usize, address_table_entries: usize) -> Self {
        TrackerConfig { task_memory_entries, address_table_entries }
    }

    /// Stable short label for experiment rows, e.g. `tm256-at2048`.
    pub fn label(&self) -> String {
        format!("tm{}-at{}", self.task_memory_entries, self.address_table_entries)
    }

    /// Task-memory entries available to each of `tenants` co-scheduled clients under hard
    /// partitioning: an even split of the task memory, never below one entry. The Picos
    /// descriptor encoding has no spare bits for a tenant tag, so partitioning is enforced at
    /// admission (`tis_taskmodel::TenantTrackerPolicy::Partitioned`) — capping every tenant's
    /// in-flight tasks at this share reserves the remaining entries for the other tenants
    /// exactly as a physically partitioned task memory would.
    pub const fn per_tenant_entries(&self, tenants: usize) -> usize {
        let n = if tenants == 0 { 1 } else { tenants };
        let share = self.task_memory_entries / n;
        if share == 0 {
            1
        } else {
            share
        }
    }

    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics if either capacity is zero (a tracker that can hold no task or no address could
    /// never accept a submission).
    pub fn validate(&self) {
        assert!(self.task_memory_entries > 0, "task memory must have entries");
        assert!(self.address_table_entries > 0, "address table must have entries");
    }
}

impl Default for TrackerConfig {
    fn default() -> Self {
        // The Picos VHDL prototype tracks a few hundred in-flight tasks; 256 task-memory entries
        // and a 2048-entry address table keep the same order of magnitude.
        TrackerConfig { task_memory_entries: 256, address_table_entries: 2048 }
    }
}

/// Errors returned by the tracker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrackerError {
    /// All task-memory entries are occupied by in-flight tasks.
    TaskMemoryFull,
    /// The address table cannot hold the new task's addresses.
    AddressTableFull,
    /// The Picos ID does not name an in-flight task (double retire or corruption).
    UnknownTask(PicosId),
}

impl core::fmt::Display for TrackerError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            TrackerError::TaskMemoryFull => write!(f, "picos task memory is full"),
            TrackerError::AddressTableFull => write!(f, "picos address table is full"),
            TrackerError::UnknownTask(id) => write!(f, "picos id {id} does not name an in-flight task"),
        }
    }
}

impl std::error::Error for TrackerError {}

#[derive(Debug, Clone, Default)]
struct AddrEntry {
    /// Last in-flight writer of this address, tagged with its serial number.
    last_writer: Option<(PicosId, u64)>,
    /// In-flight readers that arrived after the last writer.
    readers: InlineVec<(PicosId, u64), INLINE_LEN>,
}

/// Aggregate statistics of the tracker.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TrackerStats {
    /// Tasks ever inserted.
    pub inserted: u64,
    /// Tasks ever retired.
    pub retired: u64,
    /// Dependence edges created.
    pub edges: u64,
    /// Maximum number of simultaneously in-flight tasks.
    pub max_in_flight: usize,
    /// Maximum number of live address-table entries.
    pub max_addresses: usize,
    /// Insertions rejected because the task memory was full.
    pub rejected_task_memory: u64,
    /// Insertions rejected because the address table was full.
    pub rejected_address_table: u64,
}

/// The task memory plus dependence-matching engine.
///
/// The task memory is stored struct-of-arrays: one parallel array per field, indexed by the
/// Picos ID's slot. Inserting a task writes each field in place and retiring clears the slot's
/// lists for reuse, so no multi-hundred-byte entry struct is ever constructed, moved or
/// dropped on the hot path — and lookups that need a single field (`sw_id`, the serial-tag
/// aliveness check) touch a single dense array.
#[derive(Debug, Clone)]
pub struct DependenceTracker {
    config: TrackerConfig,
    /// Serial number per slot; `0` marks a vacant slot (live serials start at 1).
    serials: Vec<u64>,
    /// Software ID per occupied slot.
    sw_ids: Vec<u64>,
    /// Unresolved-predecessor count per occupied slot.
    unresolved: Vec<u32>,
    /// In-flight successors per occupied slot, in edge creation order.
    successors: Vec<InlineVec<PicosId, INLINE_LEN>>,
    /// Annotated addresses per occupied slot, already collapsed to one entry per distinct
    /// address (see [`DependenceTracker::insert`]); consulted at retirement to scrub the
    /// address table.
    deps: Vec<InlineVec<(u64, Direction), INLINE_LEN>>,
    free_list: Vec<u32>,
    addr_table: FxHashMap<u64, AddrEntry>,
    next_serial: u64,
    in_flight: usize,
    stats: TrackerStats,
    /// Scratch arena: the current insert's deduplicated `(address, merged direction)` list.
    /// Reused across inserts so the hot path never allocates; never observable between calls.
    scratch_deps: Vec<(u64, Direction)>,
    /// Scratch arena: distinct predecessors discovered by the current insert, in first-match
    /// order (the order successor edges — and therefore wake-ups — are created in).
    scratch_preds: Vec<PicosId>,
    /// Epoch-stamped membership marks, one per task-memory slot: `pred_mark[s] == mark_epoch`
    /// iff slot `s` is already in `scratch_preds` for the insert in progress. Turns predecessor
    /// de-duplication into one array compare instead of a scan of `scratch_preds`.
    pred_mark: Vec<u64>,
    mark_epoch: u64,
}

impl DependenceTracker {
    /// Creates an empty tracker.
    ///
    /// # Panics
    ///
    /// Panics if either capacity is zero.
    pub fn new(config: TrackerConfig) -> Self {
        config.validate();
        let n = config.task_memory_entries;
        DependenceTracker {
            config,
            serials: vec![0; n],
            sw_ids: vec![0; n],
            unresolved: vec![0; n],
            successors: vec![InlineVec::new(); n],
            deps: vec![InlineVec::new(); n],
            free_list: (0..n as u32).rev().collect(),
            addr_table: FxHashMap::default(),
            next_serial: 1, // 0 is the vacant-slot sentinel
            in_flight: 0,
            stats: TrackerStats::default(),
            scratch_deps: Vec::new(),
            scratch_preds: Vec::new(),
            pred_mark: vec![0; n],
            mark_epoch: 0,
        }
    }

    /// Capacity parameters.
    pub fn config(&self) -> TrackerConfig {
        self.config
    }

    /// Number of in-flight (inserted, not yet retired) tasks.
    pub fn in_flight(&self) -> usize {
        self.in_flight
    }

    /// Whether the task memory has no free entry.
    pub fn is_full(&self) -> bool {
        self.in_flight >= self.config.task_memory_entries
    }

    /// Lifetime statistics.
    pub fn stats(&self) -> &TrackerStats {
        &self.stats
    }

    /// Software ID of an in-flight task.
    pub fn sw_id(&self, id: PicosId) -> Option<u64> {
        let slot = id.0 as usize;
        match self.serials.get(slot) {
            Some(&s) if s != 0 => Some(self.sw_ids[slot]),
            _ => None,
        }
    }

    /// Number of in-flight successors currently linked to a task.
    pub fn successor_count(&self, id: PicosId) -> usize {
        let slot = id.0 as usize;
        match self.serials.get(slot) {
            Some(&s) if s != 0 => self.successors[slot].len(),
            _ => 0,
        }
    }

    /// Diagnostic view of one address-table entry: whether it records an in-flight last writer,
    /// and how many reader entries it holds. Returns `None` if the address is not in the table.
    ///
    /// Exposed so tests can pin the table's accounting (e.g. that duplicate same-address
    /// annotations within one task collapse to a single reader entry); not part of the modelled
    /// hardware interface.
    pub fn address_occupancy(&self, addr: u64) -> Option<(bool, usize)> {
        self.addr_table.get(&addr).map(|e| (e.last_writer.is_some(), e.readers.len()))
    }

    fn prune_addr_entry(serials: &[u64], entry: &mut AddrEntry) {
        // A live serial is never 0, so the vacant-slot sentinel can never match.
        let alive = |id: PicosId, serial: u64| {
            serials.get(id.0 as usize).map(|&s| s == serial).unwrap_or(false)
        };
        if let Some((id, serial)) = entry.last_writer {
            if !alive(id, serial) {
                entry.last_writer = None;
            }
        }
        entry.readers.retain(|&(id, serial)| alive(id, serial));
    }

    /// Whether every `(id, serial)` reference in an address entry names a task that is still in
    /// flight. This is an *invariant*, not a condition the hot path must re-establish:
    /// references are only ever added by the owning task's `insert`, and that task's
    /// `retire` scrubs them (or a superseding writer drops them) before the slot can be
    /// recycled, so nothing stale can survive in the table. `insert` checks it under
    /// `debug_assert!` instead of paying per-dependence aliveness loads in release builds.
    fn addr_entry_refs_alive(serials: &[u64], entry: &AddrEntry) -> bool {
        let alive = |id: PicosId, serial: u64| {
            serials.get(id.0 as usize).map(|&s| s == serial).unwrap_or(false)
        };
        entry.last_writer.is_none_or(|(id, s)| alive(id, s))
            && entry.readers.iter().all(|&(id, s)| alive(id, s))
            && (entry.last_writer.is_some() || !entry.readers.is_empty())
    }

    /// Drops address-table entries that no longer reference any in-flight task.
    pub fn gc_address_table(&mut self) {
        let serials = &self.serials;
        self.addr_table.retain(|_, e| {
            Self::prune_addr_entry(serials, e);
            e.last_writer.is_some() || !e.readers.is_empty()
        });
    }

    /// Number of live address-table entries (after a GC pass).
    pub fn live_addresses(&mut self) -> usize {
        self.gc_address_table();
        self.addr_table.len()
    }

    /// Inserts a new task, returning its Picos ID and whether it is immediately ready (carries
    /// no unresolved dependence).
    ///
    /// Duplicate same-address annotations within the task are collapsed to a single entry whose
    /// direction is the union of the duplicates' ([`Direction::merge`]): `[read(a), write(a)]`
    /// matches and occupies the address table exactly like `[inout(a)]`. The runtime layers
    /// normally collapse duplicates before submission, but descriptors built by hand (or by a
    /// buggy runtime) must not inflate the table's accounting.
    ///
    /// # Errors
    ///
    /// Returns [`TrackerError::TaskMemoryFull`] or [`TrackerError::AddressTableFull`] without
    /// modifying any *semantic* state, so a rejected submission can simply be retried later —
    /// the hardware behaviour the non-blocking instructions rely on. ("Semantic" scopes the
    /// guarantee precisely: a rejected insert never changes which dependences any later
    /// submission observes, but the `AddressTableFull` check may garbage-collect address-table
    /// entries whose tasks have all retired, and the rejection counters in [`TrackerStats`] do
    /// advance. A property test pins the reject-then-retry-equals-first-try behaviour.)
    pub fn insert(&mut self, task: &SubmittedTask) -> Result<(PicosId, bool), TrackerError> {
        if self.is_full() {
            self.stats.rejected_task_memory += 1;
            return Err(TrackerError::TaskMemoryFull);
        }
        // Collapse duplicate same-address annotations, merging directions. The descriptor holds
        // at most 15 dependences, so the quadratic scan is a bounded handful of compares on a
        // reused arena — cheaper than any hashing for these sizes.
        self.scratch_deps.clear();
        'deps: for d in &task.deps {
            for s in self.scratch_deps.iter_mut() {
                if s.0 == d.addr {
                    s.1 = s.1.merge(d.dir);
                    continue 'deps;
                }
            }
            self.scratch_deps.push((d.addr, d.dir));
        }
        // Check address-table capacity before touching the table. Fast path: when the table
        // could absorb every annotated address as a new entry, skip the per-address probes
        // entirely — only near saturation is the precise new-address count worth computing.
        if self.addr_table.len() + self.scratch_deps.len() > self.config.address_table_entries {
            let mut new_addresses = 0usize;
            for &(addr, _) in &self.scratch_deps {
                if !self.addr_table.contains_key(&addr) {
                    new_addresses += 1;
                }
            }
            if self.addr_table.len() + new_addresses > self.config.address_table_entries {
                self.gc_address_table();
                if self.addr_table.len() + new_addresses > self.config.address_table_entries {
                    self.stats.rejected_address_table += 1;
                    return Err(TrackerError::AddressTableFull);
                }
            }
        }

        let slot = self.free_list.pop().expect("free list consistent with in_flight counter");
        let id = PicosId(slot);
        let serial = self.next_serial;
        self.next_serial += 1;

        // Start a fresh mark epoch: a slot is a known predecessor iff its mark equals the new
        // epoch, so "have I seen this predecessor?" is one load instead of a list scan.
        self.mark_epoch += 1;
        let epoch = self.mark_epoch;
        self.scratch_preds.clear();
        for &(addr, dir) in &self.scratch_deps {
            let serials = &self.serials;
            let entry = self.addr_table.entry(addr).or_default();
            // Every (id, serial) reference in the entry names a task that is still in flight —
            // see `addr_entry_refs_alive` — so the matching below needs no aliveness checks.
            debug_assert!(
                entry.last_writer.is_none() && entry.readers.is_empty()
                    || Self::addr_entry_refs_alive(serials, entry),
                "address-table entry for {addr:#x} holds a stale task reference"
            );
            if dir.reads() {
                // RAW: the new task reads after the last in-flight writer.
                if let Some((w, _)) = entry.last_writer {
                    if w != id && self.pred_mark[w.0 as usize] != epoch {
                        self.pred_mark[w.0 as usize] = epoch;
                        self.scratch_preds.push(w);
                    }
                }
            }
            if dir.writes() {
                // WAW: the new task writes after the last in-flight writer.
                if let Some((w, _)) = entry.last_writer {
                    if w != id && self.pred_mark[w.0 as usize] != epoch {
                        self.pred_mark[w.0 as usize] = epoch;
                        self.scratch_preds.push(w);
                    }
                }
                // WAR: the new task writes after every in-flight reader.
                for &(r, _) in entry.readers.iter() {
                    if r != id && self.pred_mark[r.0 as usize] != epoch {
                        self.pred_mark[r.0 as usize] = epoch;
                        self.scratch_preds.push(r);
                    }
                }
            }
            // Update the address entry to reflect this task as the newest accessor.
            if dir.writes() {
                entry.last_writer = Some((id, serial));
                entry.readers.clear();
                if dir.reads() {
                    entry.readers.push((id, serial));
                }
            } else {
                entry.readers.push((id, serial));
            }
        }

        let unresolved = self.scratch_preds.len();
        for &pred in &self.scratch_preds {
            debug_assert_ne!(
                self.serials[pred.0 as usize], 0,
                "predecessor recorded in the address table must be in flight"
            );
            self.successors[pred.0 as usize].push(id);
            self.stats.edges += 1;
        }

        // Fill the slot's parallel arrays in place; the list storage was cleared at the slot's
        // last retirement (or is pristine), so this writes only what the task actually uses.
        let slot = slot as usize;
        self.serials[slot] = serial;
        self.sw_ids[slot] = task.sw_id;
        self.unresolved[slot] = unresolved as u32;
        debug_assert!(self.successors[slot].is_empty() && self.deps[slot].is_empty());
        let deps = &mut self.deps[slot];
        for &d in &self.scratch_deps {
            deps.push(d);
        }
        self.in_flight += 1;
        self.stats.inserted += 1;
        self.stats.max_in_flight = self.stats.max_in_flight.max(self.in_flight);
        self.stats.max_addresses = self.stats.max_addresses.max(self.addr_table.len());
        Ok((id, unresolved == 0))
    }

    /// Retires an in-flight task, freeing its task-memory entry and returning the Picos IDs of
    /// tasks that became ready as a consequence.
    ///
    /// This is the allocating convenience wrapper around [`retire_into`](Self::retire_into);
    /// steady-state callers (the Picos device pipeline) hand in a reused buffer instead.
    ///
    /// # Errors
    ///
    /// Returns [`TrackerError::UnknownTask`] if the ID does not name an in-flight task.
    pub fn retire(&mut self, id: PicosId) -> Result<Vec<PicosId>, TrackerError> {
        let mut newly_ready = Vec::new();
        self.retire_into(id, &mut newly_ready)?;
        Ok(newly_ready)
    }

    /// Retires an in-flight task, freeing its task-memory entry. `newly_ready` is cleared and
    /// then filled with the Picos IDs of tasks that became ready as a consequence, in edge
    /// creation order (the order their submissions discovered this task as a predecessor).
    ///
    /// # Errors
    ///
    /// Returns [`TrackerError::UnknownTask`] if the ID does not name an in-flight task; the
    /// buffer is left cleared in that case.
    pub fn retire_into(
        &mut self,
        id: PicosId,
        newly_ready: &mut Vec<PicosId>,
    ) -> Result<(), TrackerError> {
        newly_ready.clear();
        let slot = id.0 as usize;
        let serial = match self.serials.get(slot) {
            Some(&s) if s != 0 => s,
            _ => return Err(TrackerError::UnknownTask(id)),
        };
        self.serials[slot] = 0;
        self.in_flight -= 1;
        self.stats.retired += 1;
        self.free_list.push(id.0);

        // Remove this task from the address table so future tasks do not link to it.
        let deps = &self.deps[slot];
        for &(addr, _) in deps.iter() {
            if let Some(a) = self.addr_table.get_mut(&addr) {
                if matches!(a.last_writer, Some((w, s)) if w == id && s == serial) {
                    a.last_writer = None;
                }
                a.readers.retain(|&(r, s)| !(r == id && s == serial));
                if a.last_writer.is_none() && a.readers.is_empty() {
                    self.addr_table.remove(&addr);
                }
            }
        }

        let successors = &self.successors[slot];
        for &succ in successors.iter() {
            if self.serials[succ.0 as usize] != 0 {
                let u = &mut self.unresolved[succ.0 as usize];
                debug_assert!(*u > 0, "successor must have counted this edge");
                *u -= 1;
                if *u == 0 {
                    newly_ready.push(succ);
                }
            }
        }
        // Clear the slot's list storage so the next occupant starts empty (and inline).
        self.successors[slot].clear();
        self.deps[slot].clear();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tis_taskmodel::Dependence;

    fn task(sw_id: u64, deps: Vec<Dependence>) -> SubmittedTask {
        SubmittedTask::new(sw_id, deps)
    }

    #[test]
    fn tracker_config_helpers() {
        let c = TrackerConfig::new(64, 512);
        assert_eq!(c, TrackerConfig { task_memory_entries: 64, address_table_entries: 512 });
        assert_eq!(c.label(), "tm64-at512");
        c.validate();
        assert_eq!(TrackerConfig::default().label(), "tm256-at2048");
    }

    #[test]
    fn per_tenant_partitioning_splits_the_task_memory_evenly() {
        let c = TrackerConfig::new(64, 512);
        assert_eq!(c.per_tenant_entries(1), 64);
        assert_eq!(c.per_tenant_entries(2), 32);
        assert_eq!(c.per_tenant_entries(8), 8);
        // Never starves a tenant completely, even in degenerate splits.
        assert_eq!(c.per_tenant_entries(128), 1);
        assert_eq!(c.per_tenant_entries(0), 64);
    }

    #[test]
    #[should_panic(expected = "task memory must have entries")]
    fn zero_task_memory_is_rejected() {
        TrackerConfig::new(0, 16).validate();
    }

    #[test]
    fn independent_task_is_immediately_ready() {
        let mut t = DependenceTracker::new(TrackerConfig::default());
        let (id, ready) = t.insert(&task(1, vec![Dependence::write(0x100)])).unwrap();
        assert!(ready);
        assert_eq!(t.sw_id(id), Some(1));
        assert_eq!(t.in_flight(), 1);
    }

    #[test]
    fn raw_chain_orders_tasks() {
        let mut t = DependenceTracker::new(TrackerConfig::default());
        let (a, ra) = t.insert(&task(1, vec![Dependence::write(0x100)])).unwrap();
        let (b, rb) = t.insert(&task(2, vec![Dependence::read(0x100)])).unwrap();
        let (c, rc) = t.insert(&task(3, vec![Dependence::read_write(0x100)])).unwrap();
        assert!(ra && !rb && !rc);
        assert_eq!(t.successor_count(a), 2, "b reads after a, c writes after a");
        let woke = t.retire(a).unwrap();
        assert_eq!(woke, vec![b], "b becomes ready; c still waits for b (WAR)");
        let woke = t.retire(b).unwrap();
        assert_eq!(woke, vec![c]);
        assert_eq!(t.retire(c).unwrap(), vec![]);
        assert_eq!(t.in_flight(), 0);
    }

    #[test]
    fn war_and_waw_dependences_are_tracked() {
        let mut t = DependenceTracker::new(TrackerConfig::default());
        let (r1, _) = t.insert(&task(1, vec![Dependence::read(0x200)])).unwrap();
        let (r2, _) = t.insert(&task(2, vec![Dependence::read(0x200)])).unwrap();
        let (w, ready) = t.insert(&task(3, vec![Dependence::write(0x200)])).unwrap();
        assert!(!ready, "WAR: the writer waits for both readers");
        assert!(t.retire(r1).unwrap().is_empty());
        assert_eq!(t.retire(r2).unwrap(), vec![w]);
        // A second writer after the first: WAW.
        let (w2, ready2) = t.insert(&task(4, vec![Dependence::write(0x200)])).unwrap();
        assert!(!ready2);
        assert_eq!(t.retire(w).unwrap(), vec![w2]);
        t.retire(w2).unwrap();
    }

    #[test]
    fn readers_do_not_depend_on_each_other() {
        let mut t = DependenceTracker::new(TrackerConfig::default());
        let (_w, _) = t.insert(&task(1, vec![Dependence::write(0x300)])).unwrap();
        let (_r1, ready1) = t.insert(&task(2, vec![Dependence::read(0x300)])).unwrap();
        let (_r2, ready2) = t.insert(&task(3, vec![Dependence::read(0x300)])).unwrap();
        assert!(!ready1 && !ready2);
        let woke = t.retire(_w).unwrap();
        assert_eq!(woke.len(), 2, "both readers wake together");
    }

    #[test]
    fn retired_producers_do_not_create_dependences() {
        let mut t = DependenceTracker::new(TrackerConfig::default());
        let (w, _) = t.insert(&task(1, vec![Dependence::write(0x400)])).unwrap();
        t.retire(w).unwrap();
        let (_, ready) = t.insert(&task(2, vec![Dependence::read(0x400)])).unwrap();
        assert!(ready, "the producer already retired, so the reader starts ready");
    }

    #[test]
    fn task_memory_full_is_reported_and_recoverable() {
        let cfg = TrackerConfig { task_memory_entries: 2, address_table_entries: 64 };
        let mut t = DependenceTracker::new(cfg);
        let (a, _) = t.insert(&task(1, vec![])).unwrap();
        let (_b, _) = t.insert(&task(2, vec![])).unwrap();
        assert!(t.is_full());
        assert_eq!(t.insert(&task(3, vec![])), Err(TrackerError::TaskMemoryFull));
        assert_eq!(t.stats().rejected_task_memory, 1);
        t.retire(a).unwrap();
        assert!(t.insert(&task(3, vec![])).is_ok(), "space frees up after retirement");
    }

    #[test]
    fn address_table_full_is_reported() {
        let cfg = TrackerConfig { task_memory_entries: 16, address_table_entries: 2 };
        let mut t = DependenceTracker::new(cfg);
        t.insert(&task(1, vec![Dependence::write(0x1), Dependence::write(0x2)])).unwrap();
        let err = t.insert(&task(2, vec![Dependence::write(0x3)])).unwrap_err();
        assert_eq!(err, TrackerError::AddressTableFull);
        assert_eq!(t.stats().rejected_address_table, 1);
    }

    #[test]
    fn double_retire_is_an_error() {
        let mut t = DependenceTracker::new(TrackerConfig::default());
        let (a, _) = t.insert(&task(1, vec![])).unwrap();
        t.retire(a).unwrap();
        assert_eq!(t.retire(a), Err(TrackerError::UnknownTask(a)));
    }

    #[test]
    fn picos_id_reuse_does_not_resurrect_old_edges() {
        let cfg = TrackerConfig { task_memory_entries: 1, address_table_entries: 16 };
        let mut t = DependenceTracker::new(cfg);
        let (a, _) = t.insert(&task(1, vec![Dependence::write(0x10)])).unwrap();
        t.retire(a).unwrap();
        // The same Picos ID will be reused; the new task must not inherit stale address links.
        let (b, ready) = t.insert(&task(2, vec![Dependence::read(0x10)])).unwrap();
        assert_eq!(a, b, "single-entry task memory must reuse the slot");
        assert!(ready);
    }

    #[test]
    fn duplicate_read_annotations_collapse_to_one_reader_entry() {
        let mut t = DependenceTracker::new(TrackerConfig::default());
        let (r, ready) =
            t.insert(&task(1, vec![Dependence::read(0xA0), Dependence::read(0xA0)])).unwrap();
        assert!(ready);
        assert_eq!(
            t.address_occupancy(0xA0),
            Some((false, 1)),
            "duplicate reads must occupy a single reader entry"
        );
        // A subsequent writer carries exactly one WAR edge, and the WAR scan sees one reader.
        let (w, wready) = t.insert(&task(2, vec![Dependence::write(0xA0)])).unwrap();
        assert!(!wready);
        assert_eq!(t.successor_count(r), 1);
        assert_eq!(t.stats().edges, 1);
        assert_eq!(t.retire(r).unwrap(), vec![w]);
        t.retire(w).unwrap();
    }

    #[test]
    fn mixed_direction_duplicates_merge_like_inout() {
        // [write(a), read(a)] must be indistinguishable from [inout(a)].
        let mut dup = DependenceTracker::new(TrackerConfig::default());
        let mut inout = DependenceTracker::new(TrackerConfig::default());
        let (xd, rd) =
            dup.insert(&task(1, vec![Dependence::write(0xB0), Dependence::read(0xB0)])).unwrap();
        let (xi, ri) = inout.insert(&task(1, vec![Dependence::read_write(0xB0)])).unwrap();
        assert_eq!((xd, rd), (xi, ri));
        assert_eq!(dup.address_occupancy(0xB0), inout.address_occupancy(0xB0));
        assert_eq!(dup.address_occupancy(0xB0), Some((true, 1)));
        for t in [&mut dup, &mut inout] {
            let (r, ready) = t.insert(&task(2, vec![Dependence::read(0xB0)])).unwrap();
            assert!(!ready, "RAW on the merged inout access");
            assert_eq!(t.successor_count(xd), 1);
            assert_eq!(t.retire(xd).unwrap(), vec![r]);
            t.retire(r).unwrap();
        }
        assert_eq!(dup.stats(), inout.stats());
    }

    #[test]
    fn id_reuse_at_saturation_never_links_to_recycled_ids() {
        // Drive the tracker at task-memory saturation for many rounds so every slot is recycled
        // over and over while the address table keeps live entries for the same addresses. The
        // serial-tag aliveness check must never link a new task to a predecessor that only
        // shares a recycled Picos ID with the true (already retired) producer.
        let n = 4usize;
        let cfg = TrackerConfig { task_memory_entries: n, address_table_entries: 16 };
        let mut t = DependenceTracker::new(cfg);
        let addr = |i: usize| 0x4000u64 + (i as u64) * 64;
        let mut sw = 0u64;
        let rounds = 32usize;
        for round in 0..rounds {
            // Fill the task memory with one writer per address.
            let writers: Vec<PicosId> = (0..n)
                .map(|i| {
                    sw += 1;
                    let (id, ready) = t.insert(&task(sw, vec![Dependence::write(addr(i))])).unwrap();
                    assert!(ready, "round {round}: address {i}'s previous owners all retired");
                    id
                })
                .collect();
            assert!(t.is_full());
            // Retire all writers except one rotating survivor; its address-table entry stays
            // live while the peers' slots are recycled underneath it.
            let survivor = writers[round % n];
            let survivor_addr = addr(round % n);
            for &w in &writers {
                if w != survivor {
                    t.retire(w).unwrap();
                }
            }
            // Recycle the freed slots with readers: one of the survivor's address (must block on
            // the survivor and nothing else) and two of retired addresses (must start ready — a
            // resurrected recycled ID would block them).
            sw += 1;
            let (blocked, blocked_ready) =
                t.insert(&task(sw, vec![Dependence::read(survivor_addr)])).unwrap();
            assert!(!blocked_ready, "round {round}: the survivor's reader must wait");
            let mut free_readers = Vec::new();
            for i in (0..n).filter(|&i| addr(i) != survivor_addr).take(2) {
                sw += 1;
                let (id, ready) = t.insert(&task(sw, vec![Dependence::read(addr(i))])).unwrap();
                assert!(ready, "round {round}: reader of a retired writer must start ready");
                free_readers.push(id);
            }
            assert!(t.is_full());
            assert_eq!(t.successor_count(survivor), 1, "round {round}: exactly one RAW edge");
            assert_eq!(t.retire(survivor).unwrap(), vec![blocked]);
            t.retire(blocked).unwrap();
            for r in free_readers {
                t.retire(r).unwrap();
            }
            assert_eq!(t.in_flight(), 0);
        }
        assert_eq!(t.live_addresses(), 0, "retirement scrubs every address entry");
        assert_eq!(
            t.stats().edges,
            rounds as u64,
            "one survivor edge per round and not a single edge to a recycled ID"
        );
    }

    #[test]
    fn stats_track_extremes() {
        let mut t = DependenceTracker::new(TrackerConfig::default());
        let ids: Vec<_> = (0..10)
            .map(|i| t.insert(&task(i, vec![Dependence::write(0x1000 + i * 64)])).unwrap().0)
            .collect();
        assert_eq!(t.stats().max_in_flight, 10);
        assert!(t.stats().max_addresses >= 10);
        for id in ids {
            t.retire(id).unwrap();
        }
        assert_eq!(t.stats().retired, 10);
        assert_eq!(t.live_addresses(), 0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use tis_taskmodel::{Dependence, Direction, Payload, ProgramBuilder, TaskId};

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        /// Rejected inserts leave no semantic trace: at tiny capacities, a tracker hammered with
        /// doomed duplicate attempts before every eventual success behaves identically — same
        /// IDs, same readiness, same wake-ups, same dependence edges — to one that saw each
        /// submission exactly once. (Raw `SubmittedTask`s, so duplicate same-address
        /// annotations within a task are exercised too.)
        #[test]
        fn reject_then_retry_equals_first_try(
            tasks in proptest::collection::vec(
                proptest::collection::vec((0u64..6, 0u8..3), 0..5),
                1..30,
            )
        ) {
            let cfg = TrackerConfig { task_memory_entries: 3, address_table_entries: 4 };
            let mut once = DependenceTracker::new(cfg);
            let mut hammered = DependenceTracker::new(cfg);
            // Ready-but-not-yet-retired tasks, identical for both trackers by construction.
            let mut ready: Vec<PicosId> = Vec::new();
            for (sw, deps) in tasks.iter().enumerate() {
                let st = SubmittedTask::new(sw as u64, deps
                    .iter()
                    .map(|&(a, d)| Dependence::new(0x1000 + a * 64, Direction::ALL[d as usize]))
                    .collect());
                loop {
                    let r_once = once.insert(&st);
                    match r_once {
                        Ok((id, is_ready)) => {
                            // The hammered tracker suffers extra doomed attempts elsewhere, but
                            // this particular submission must succeed identically.
                            prop_assert_eq!(hammered.insert(&st), Ok((id, is_ready)));
                            if is_ready {
                                ready.push(id);
                            }
                            break;
                        }
                        Err(e) => {
                            // Hammer the failing submission: every repeat must fail the same
                            // way and change nothing observable.
                            for _ in 0..3 {
                                prop_assert_eq!(hammered.insert(&st), Err(e));
                            }
                            // Make progress by retiring one ready task on both trackers.
                            prop_assert!(!ready.is_empty(), "an acyclic in-flight set always has a ready task");
                            let victim = ready.swap_remove(0);
                            let woke_once = once.retire(victim).unwrap();
                            let woke_hammered = hammered.retire(victim).unwrap();
                            prop_assert_eq!(&woke_once, &woke_hammered);
                            ready.extend(woke_once);
                        }
                    }
                }
            }
            // Drain both trackers, comparing wake-ups step by step.
            while let Some(victim) = ready.pop() {
                let woke_once = once.retire(victim).unwrap();
                let woke_hammered = hammered.retire(victim).unwrap();
                prop_assert_eq!(&woke_once, &woke_hammered);
                ready.extend(woke_once);
            }
            prop_assert_eq!(once.in_flight(), 0, "every submitted task eventually retires");
            // Semantic statistics agree; only the rejection counters may differ.
            let (a, b) = (once.stats(), hammered.stats());
            prop_assert_eq!(a.inserted, b.inserted);
            prop_assert_eq!(a.retired, b.retired);
            prop_assert_eq!(a.edges, b.edges);
            prop_assert_eq!(a.max_in_flight, b.max_in_flight);
            prop_assert!(b.rejected_task_memory >= a.rejected_task_memory);
            prop_assert!(b.rejected_address_table >= a.rejected_address_table);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(3))]
        /// Long-churn soak: 120k tasks stream through a 64-entry task memory, so every slot is
        /// recycled ~2000 times and every serial tag, address-table scrub and wake-up list is
        /// exercised deep into the ID-reuse regime a streamed million-task run lives in.
        ///
        /// The oracle is an independent mirror of the matching rules keyed by *software* IDs —
        /// which are never reused — so any defect where the tracker confuses a recycled Picos
        /// ID for its retired predecessor (stale address-table reference, serial-tag mismatch,
        /// lost or spurious wake-up) shows up as a divergence between the two.
        #[test]
        fn long_churn_through_a_tiny_task_memory_matches_a_sw_id_oracle(
            seed in 1u64..1_000_000u64
        ) {
            use tis_sim::SimRng;

            #[derive(Default)]
            struct MirrorAddr {
                last_writer: Option<u64>,
                readers: Vec<u64>,
            }

            let total: u64 = 120_000;
            let cfg = TrackerConfig { task_memory_entries: 64, address_table_entries: 256 };
            let mut t = DependenceTracker::new(cfg);
            let mut rng = SimRng::new(seed);
            let addr_of = |i: u64| 0x7000_0000 + i * 64;

            // The sw-id oracle: per-address frontier, per-task unresolved counts, successor
            // lists and collapsed dependence lists (for the retire-time scrub).
            let mut mirror: FxHashMap<u64, MirrorAddr> = FxHashMap::default();
            let mut unresolved: FxHashMap<u64, usize> = FxHashMap::default();
            let mut succs: FxHashMap<u64, Vec<u64>> = FxHashMap::default();
            let mut mirror_deps: FxHashMap<u64, Vec<(u64, Direction)>> = FxHashMap::default();
            let mut mirror_edges = 0u64;

            let mut ready: Vec<(PicosId, u64)> = Vec::new();
            let mut next_sw = 0u64;
            let mut retired = 0u64;
            while retired < total {
                let can_insert = next_sw < total && !t.is_full();
                if can_insert && (ready.is_empty() || rng.chance(0.6)) {
                    // 0..=3 annotations over a 96-address pool: small enough for constant
                    // conflict churn, occasional within-task duplicates included.
                    let n_deps = rng.below(4) as usize;
                    let deps: Vec<Dependence> = (0..n_deps)
                        .map(|_| Dependence::new(addr_of(rng.below(96)), Direction::ALL[rng.below(3) as usize]))
                        .collect();
                    let sw = next_sw;
                    next_sw += 1;

                    // Oracle: collapse duplicates, gather predecessors, update the frontier.
                    let mut collapsed: Vec<(u64, Direction)> = Vec::new();
                    'dd: for d in &deps {
                        for c in collapsed.iter_mut() {
                            if c.0 == d.addr {
                                c.1 = c.1.merge(d.dir);
                                continue 'dd;
                            }
                        }
                        collapsed.push((d.addr, d.dir));
                    }
                    let mut preds: Vec<u64> = Vec::new();
                    for &(addr, dir) in &collapsed {
                        let e = mirror.entry(addr).or_default();
                        if dir.reads() {
                            if let Some(w) = e.last_writer {
                                if !preds.contains(&w) {
                                    preds.push(w);
                                }
                            }
                        }
                        if dir.writes() {
                            if let Some(w) = e.last_writer {
                                if !preds.contains(&w) {
                                    preds.push(w);
                                }
                            }
                            for &r in &e.readers {
                                if !preds.contains(&r) {
                                    preds.push(r);
                                }
                            }
                            e.last_writer = Some(sw);
                            e.readers.clear();
                            if dir.reads() {
                                e.readers.push(sw);
                            }
                        } else {
                            e.readers.push(sw);
                        }
                    }
                    for &p in &preds {
                        succs.entry(p).or_default().push(sw);
                        mirror_edges += 1;
                    }
                    unresolved.insert(sw, preds.len());
                    mirror_deps.insert(sw, collapsed);

                    let (pid, is_ready) = t.insert(&SubmittedTask::new(sw, deps)).unwrap();
                    prop_assert_eq!(t.sw_id(pid), Some(sw));
                    prop_assert_eq!(
                        is_ready, preds.is_empty(),
                        "T{} readiness diverges from the oracle (preds {:?})", sw, preds
                    );
                    if is_ready {
                        ready.push((pid, sw));
                    }
                } else {
                    // Lost-wakeup detector: an acyclic in-flight set always has a ready task.
                    prop_assert!(!ready.is_empty(), "tracker stalled with {} in flight", t.in_flight());
                    let idx = rng.below(ready.len() as u64) as usize;
                    let (pid, sw) = ready.swap_remove(idx);

                    // Oracle: scrub the frontier and wake successors.
                    for (addr, _) in mirror_deps.remove(&sw).unwrap() {
                        if let Some(e) = mirror.get_mut(&addr) {
                            if e.last_writer == Some(sw) {
                                e.last_writer = None;
                            }
                            e.readers.retain(|&r| r != sw);
                            if e.last_writer.is_none() && e.readers.is_empty() {
                                mirror.remove(&addr);
                            }
                        }
                    }
                    let mut expected_woke: Vec<u64> = Vec::new();
                    for s in succs.remove(&sw).unwrap_or_default() {
                        if let Some(u) = unresolved.get_mut(&s) {
                            *u -= 1;
                            if *u == 0 {
                                expected_woke.push(s);
                            }
                        }
                    }
                    unresolved.remove(&sw);

                    let woke = t.retire(pid).unwrap();
                    let woke_sw: Vec<u64> =
                        woke.iter().map(|&w| t.sw_id(w).expect("woken task is in flight")).collect();
                    prop_assert_eq!(
                        &woke_sw, &expected_woke,
                        "T{}'s wake-ups diverge from the oracle", sw
                    );
                    ready.extend(woke.into_iter().zip(expected_woke));
                    retired += 1;
                }
            }
            prop_assert_eq!(t.in_flight(), 0);
            prop_assert_eq!(t.live_addresses(), 0, "retirement must scrub every address entry");
            prop_assert_eq!(t.stats().inserted, total);
            prop_assert_eq!(t.stats().retired, total);
            prop_assert_eq!(t.stats().edges, mirror_edges);
            prop_assert!(t.stats().max_in_flight <= 64);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        /// Driving the tracker with an arbitrary program and greedily retiring ready tasks
        /// produces an execution order that the reference dependence graph accepts, and every
        /// task eventually retires (no lost wakeups, no spurious deadlock).
        #[test]
        fn tracker_agrees_with_reference_graph(
            tasks in proptest::collection::vec(
                (proptest::collection::vec((0u64..8, 0u8..3), 0..4), 1u64..4),
                1..40,
            )
        ) {
            let mut builder = ProgramBuilder::new("prop");
            for (deps, _w) in &tasks {
                let mut seen = std::collections::HashSet::new();
                let deps: Vec<Dependence> = deps
                    .iter()
                    .filter(|(a, _)| seen.insert(*a))
                    .map(|&(a, d)| Dependence::new(0x1000 + a * 64, Direction::ALL[d as usize]))
                    .collect();
                builder.spawn(Payload::compute(1), deps);
            }
            let program = builder.build();
            let graph = program.reference_graph();

            let mut tracker = DependenceTracker::new(TrackerConfig::default());
            let mut ready: Vec<(PicosId, u64)> = Vec::new();
            let mut id_map = std::collections::HashMap::new();
            for spec in program.tasks() {
                let st = SubmittedTask::new(spec.id.raw(), spec.deps.clone());
                let (pid, is_ready) = tracker.insert(&st).unwrap();
                id_map.insert(pid, spec.id.raw());
                if is_ready {
                    ready.push((pid, spec.id.raw()));
                }
            }
            // Greedily retire ready tasks (lowest sw_id first for determinism) and record order.
            let mut finished_order = Vec::new();
            let mut finished = std::collections::HashSet::new();
            while let Some(pos) = ready.iter().enumerate().min_by_key(|(_, (_, sw))| *sw).map(|(i, _)| i) {
                let (pid, sw) = ready.swap_remove(pos);
                finished_order.push(sw);
                finished.insert(sw);
                let woke = tracker.retire(pid).unwrap();
                for w in woke {
                    let sw = tracker.sw_id(w).unwrap();
                    ready.push((w, sw));
                }
            }
            prop_assert_eq!(finished_order.len(), program.task_count(), "every task must retire");
            // Check that the observed retirement order never violates a reference edge.
            let position: std::collections::HashMap<u64, usize> =
                finished_order.iter().enumerate().map(|(i, &sw)| (sw, i)).collect();
            for i in 0..graph.task_count() {
                for s in graph.successors(TaskId(i as u64)) {
                    prop_assert!(
                        position[&(i as u64)] < position[&s.raw()],
                        "edge {} -> {} violated", i, s.raw()
                    );
                }
            }
        }
    }
}
