//! Functional core of Picos: the task memory and the dependence-matching logic.
//!
//! The hardware keeps a bounded *task memory* (one entry per in-flight task, identified by a
//! **Picos ID**) and a bounded *address table* that maps dependence addresses to the producers
//! and consumers currently in flight. [`DependenceTracker`] reproduces that structure and the
//! RAW/WAW/WAR matching rules; its capacity limits are what eventually make the hardware refuse
//! new submissions, triggering the non-blocking failure paths of the RoCC instructions.

use std::collections::HashMap;

use tis_taskmodel::Direction;

use crate::packet::SubmittedTask;

/// Index of a task inside Picos' task memory — the "Picos ID" returned by `Fetch Picos ID` and
/// passed back through `Retire Task`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PicosId(pub u32);

impl core::fmt::Display for PicosId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// Capacity parameters of the tracker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrackerConfig {
    /// Number of task-memory entries (maximum in-flight tasks).
    pub task_memory_entries: usize,
    /// Number of address-table entries (maximum distinct live dependence addresses).
    pub address_table_entries: usize,
}

impl Default for TrackerConfig {
    fn default() -> Self {
        // The Picos VHDL prototype tracks a few hundred in-flight tasks; 256 task-memory entries
        // and a 2048-entry address table keep the same order of magnitude.
        TrackerConfig { task_memory_entries: 256, address_table_entries: 2048 }
    }
}

/// Errors returned by the tracker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrackerError {
    /// All task-memory entries are occupied by in-flight tasks.
    TaskMemoryFull,
    /// The address table cannot hold the new task's addresses.
    AddressTableFull,
    /// The Picos ID does not name an in-flight task (double retire or corruption).
    UnknownTask(PicosId),
}

impl core::fmt::Display for TrackerError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            TrackerError::TaskMemoryFull => write!(f, "picos task memory is full"),
            TrackerError::AddressTableFull => write!(f, "picos address table is full"),
            TrackerError::UnknownTask(id) => write!(f, "picos id {id} does not name an in-flight task"),
        }
    }
}

impl std::error::Error for TrackerError {}

#[derive(Debug, Clone)]
struct TaskEntry {
    sw_id: u64,
    serial: u64,
    unresolved: usize,
    successors: Vec<PicosId>,
    deps: Vec<(u64, Direction)>,
}

#[derive(Debug, Clone, Default)]
struct AddrEntry {
    /// Last in-flight writer of this address, tagged with its serial number.
    last_writer: Option<(PicosId, u64)>,
    /// In-flight readers that arrived after the last writer.
    readers: Vec<(PicosId, u64)>,
}

/// Aggregate statistics of the tracker.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TrackerStats {
    /// Tasks ever inserted.
    pub inserted: u64,
    /// Tasks ever retired.
    pub retired: u64,
    /// Dependence edges created.
    pub edges: u64,
    /// Maximum number of simultaneously in-flight tasks.
    pub max_in_flight: usize,
    /// Maximum number of live address-table entries.
    pub max_addresses: usize,
    /// Insertions rejected because the task memory was full.
    pub rejected_task_memory: u64,
    /// Insertions rejected because the address table was full.
    pub rejected_address_table: u64,
}

/// The task memory plus dependence-matching engine.
#[derive(Debug, Clone)]
pub struct DependenceTracker {
    config: TrackerConfig,
    entries: Vec<Option<TaskEntry>>,
    free_list: Vec<u32>,
    addr_table: HashMap<u64, AddrEntry>,
    next_serial: u64,
    in_flight: usize,
    stats: TrackerStats,
}

impl DependenceTracker {
    /// Creates an empty tracker.
    ///
    /// # Panics
    ///
    /// Panics if either capacity is zero.
    pub fn new(config: TrackerConfig) -> Self {
        assert!(config.task_memory_entries > 0, "task memory must have entries");
        assert!(config.address_table_entries > 0, "address table must have entries");
        DependenceTracker {
            config,
            entries: vec![None; config.task_memory_entries],
            free_list: (0..config.task_memory_entries as u32).rev().collect(),
            addr_table: HashMap::new(),
            next_serial: 0,
            in_flight: 0,
            stats: TrackerStats::default(),
        }
    }

    /// Capacity parameters.
    pub fn config(&self) -> TrackerConfig {
        self.config
    }

    /// Number of in-flight (inserted, not yet retired) tasks.
    pub fn in_flight(&self) -> usize {
        self.in_flight
    }

    /// Whether the task memory has no free entry.
    pub fn is_full(&self) -> bool {
        self.in_flight >= self.config.task_memory_entries
    }

    /// Lifetime statistics.
    pub fn stats(&self) -> &TrackerStats {
        &self.stats
    }

    /// Software ID of an in-flight task.
    pub fn sw_id(&self, id: PicosId) -> Option<u64> {
        self.entries.get(id.0 as usize).and_then(|e| e.as_ref()).map(|e| e.sw_id)
    }

    /// Number of in-flight successors currently linked to a task.
    pub fn successor_count(&self, id: PicosId) -> usize {
        self.entries
            .get(id.0 as usize)
            .and_then(|e| e.as_ref())
            .map(|e| e.successors.len())
            .unwrap_or(0)
    }

    fn prune_addr_entry(entries: &[Option<TaskEntry>], entry: &mut AddrEntry) {
        let alive = |id: PicosId, serial: u64| {
            entries
                .get(id.0 as usize)
                .and_then(|e| e.as_ref())
                .map(|e| e.serial == serial)
                .unwrap_or(false)
        };
        if let Some((id, serial)) = entry.last_writer {
            if !alive(id, serial) {
                entry.last_writer = None;
            }
        }
        entry.readers.retain(|&(id, serial)| alive(id, serial));
    }

    /// Drops address-table entries that no longer reference any in-flight task.
    pub fn gc_address_table(&mut self) {
        let entries = &self.entries;
        self.addr_table.retain(|_, e| {
            Self::prune_addr_entry(entries, e);
            e.last_writer.is_some() || !e.readers.is_empty()
        });
    }

    /// Number of live address-table entries (after a GC pass).
    pub fn live_addresses(&mut self) -> usize {
        self.gc_address_table();
        self.addr_table.len()
    }

    /// Inserts a new task, returning its Picos ID and whether it is immediately ready (carries
    /// no unresolved dependence).
    ///
    /// # Errors
    ///
    /// Returns [`TrackerError::TaskMemoryFull`] or [`TrackerError::AddressTableFull`] without
    /// modifying any state, so a rejected submission can simply be retried later — the hardware
    /// behaviour the non-blocking instructions rely on.
    pub fn insert(&mut self, task: &SubmittedTask) -> Result<(PicosId, bool), TrackerError> {
        if self.is_full() {
            self.stats.rejected_task_memory += 1;
            return Err(TrackerError::TaskMemoryFull);
        }
        // Check address-table capacity before mutating anything, deduplicating addresses that
        // appear multiple times within the same task.
        let mut seen = Vec::new();
        let mut new_addresses = 0usize;
        for d in &task.deps {
            if !self.addr_table.contains_key(&d.addr) && !seen.contains(&d.addr) {
                seen.push(d.addr);
                new_addresses += 1;
            }
        }
        if self.addr_table.len() + new_addresses > self.config.address_table_entries {
            self.gc_address_table();
            if self.addr_table.len() + new_addresses > self.config.address_table_entries {
                self.stats.rejected_address_table += 1;
                return Err(TrackerError::AddressTableFull);
            }
        }

        let slot = self.free_list.pop().expect("free list consistent with in_flight counter");
        let id = PicosId(slot);
        let serial = self.next_serial;
        self.next_serial += 1;

        let mut unresolved_from: Vec<PicosId> = Vec::new();
        for d in &task.deps {
            let entries = &self.entries;
            let entry = self.addr_table.entry(d.addr).or_default();
            Self::prune_addr_entry(entries, entry);
            if d.dir.reads() {
                if let Some((w, wserial)) = entry.last_writer {
                    if entries
                        .get(w.0 as usize)
                        .and_then(|e| e.as_ref())
                        .map(|e| e.serial == wserial)
                        .unwrap_or(false)
                        && !unresolved_from.contains(&w)
                    {
                        unresolved_from.push(w);
                    }
                }
            }
            if d.dir.writes() {
                if let Some((w, _)) = entry.last_writer {
                    if !unresolved_from.contains(&w) {
                        unresolved_from.push(w);
                    }
                }
                for &(r, _) in &entry.readers {
                    if r != id && !unresolved_from.contains(&r) {
                        unresolved_from.push(r);
                    }
                }
            }
            // Update the address entry to reflect this task as the newest accessor.
            if d.dir.writes() {
                entry.last_writer = Some((id, serial));
                entry.readers.clear();
                if d.dir.reads() {
                    entry.readers.push((id, serial));
                }
            } else {
                entry.readers.push((id, serial));
            }
        }

        let unresolved = unresolved_from.len();
        for pred in &unresolved_from {
            let pred_entry = self.entries[pred.0 as usize]
                .as_mut()
                .expect("predecessor recorded in the address table must be in flight");
            pred_entry.successors.push(id);
            self.stats.edges += 1;
        }

        self.entries[slot as usize] = Some(TaskEntry {
            sw_id: task.sw_id,
            serial,
            unresolved,
            successors: Vec::new(),
            deps: task.deps.iter().map(|d| (d.addr, d.dir)).collect(),
        });
        self.in_flight += 1;
        self.stats.inserted += 1;
        self.stats.max_in_flight = self.stats.max_in_flight.max(self.in_flight);
        self.stats.max_addresses = self.stats.max_addresses.max(self.addr_table.len());
        Ok((id, unresolved == 0))
    }

    /// Retires an in-flight task, freeing its task-memory entry and returning the Picos IDs of
    /// tasks that became ready as a consequence.
    ///
    /// # Errors
    ///
    /// Returns [`TrackerError::UnknownTask`] if the ID does not name an in-flight task.
    pub fn retire(&mut self, id: PicosId) -> Result<Vec<PicosId>, TrackerError> {
        let slot = id.0 as usize;
        let entry = self
            .entries
            .get_mut(slot)
            .and_then(|e| e.take())
            .ok_or(TrackerError::UnknownTask(id))?;
        self.in_flight -= 1;
        self.stats.retired += 1;
        self.free_list.push(id.0);

        // Remove this task from the address table so future tasks do not link to it.
        for (addr, _) in &entry.deps {
            if let Some(a) = self.addr_table.get_mut(addr) {
                if matches!(a.last_writer, Some((w, s)) if w == id && s == entry.serial) {
                    a.last_writer = None;
                }
                a.readers.retain(|&(r, s)| !(r == id && s == entry.serial));
                if a.last_writer.is_none() && a.readers.is_empty() {
                    self.addr_table.remove(addr);
                }
            }
        }

        let mut newly_ready = Vec::new();
        for succ in entry.successors {
            if let Some(s) = self.entries[succ.0 as usize].as_mut() {
                debug_assert!(s.unresolved > 0, "successor must have counted this edge");
                s.unresolved -= 1;
                if s.unresolved == 0 {
                    newly_ready.push(succ);
                }
            }
        }
        Ok(newly_ready)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tis_taskmodel::Dependence;

    fn task(sw_id: u64, deps: Vec<Dependence>) -> SubmittedTask {
        SubmittedTask::new(sw_id, deps)
    }

    #[test]
    fn independent_task_is_immediately_ready() {
        let mut t = DependenceTracker::new(TrackerConfig::default());
        let (id, ready) = t.insert(&task(1, vec![Dependence::write(0x100)])).unwrap();
        assert!(ready);
        assert_eq!(t.sw_id(id), Some(1));
        assert_eq!(t.in_flight(), 1);
    }

    #[test]
    fn raw_chain_orders_tasks() {
        let mut t = DependenceTracker::new(TrackerConfig::default());
        let (a, ra) = t.insert(&task(1, vec![Dependence::write(0x100)])).unwrap();
        let (b, rb) = t.insert(&task(2, vec![Dependence::read(0x100)])).unwrap();
        let (c, rc) = t.insert(&task(3, vec![Dependence::read_write(0x100)])).unwrap();
        assert!(ra && !rb && !rc);
        assert_eq!(t.successor_count(a), 2, "b reads after a, c writes after a");
        let woke = t.retire(a).unwrap();
        assert_eq!(woke, vec![b], "b becomes ready; c still waits for b (WAR)");
        let woke = t.retire(b).unwrap();
        assert_eq!(woke, vec![c]);
        assert_eq!(t.retire(c).unwrap(), vec![]);
        assert_eq!(t.in_flight(), 0);
    }

    #[test]
    fn war_and_waw_dependences_are_tracked() {
        let mut t = DependenceTracker::new(TrackerConfig::default());
        let (r1, _) = t.insert(&task(1, vec![Dependence::read(0x200)])).unwrap();
        let (r2, _) = t.insert(&task(2, vec![Dependence::read(0x200)])).unwrap();
        let (w, ready) = t.insert(&task(3, vec![Dependence::write(0x200)])).unwrap();
        assert!(!ready, "WAR: the writer waits for both readers");
        assert!(t.retire(r1).unwrap().is_empty());
        assert_eq!(t.retire(r2).unwrap(), vec![w]);
        // A second writer after the first: WAW.
        let (w2, ready2) = t.insert(&task(4, vec![Dependence::write(0x200)])).unwrap();
        assert!(!ready2);
        assert_eq!(t.retire(w).unwrap(), vec![w2]);
        t.retire(w2).unwrap();
    }

    #[test]
    fn readers_do_not_depend_on_each_other() {
        let mut t = DependenceTracker::new(TrackerConfig::default());
        let (_w, _) = t.insert(&task(1, vec![Dependence::write(0x300)])).unwrap();
        let (_r1, ready1) = t.insert(&task(2, vec![Dependence::read(0x300)])).unwrap();
        let (_r2, ready2) = t.insert(&task(3, vec![Dependence::read(0x300)])).unwrap();
        assert!(!ready1 && !ready2);
        let woke = t.retire(_w).unwrap();
        assert_eq!(woke.len(), 2, "both readers wake together");
    }

    #[test]
    fn retired_producers_do_not_create_dependences() {
        let mut t = DependenceTracker::new(TrackerConfig::default());
        let (w, _) = t.insert(&task(1, vec![Dependence::write(0x400)])).unwrap();
        t.retire(w).unwrap();
        let (_, ready) = t.insert(&task(2, vec![Dependence::read(0x400)])).unwrap();
        assert!(ready, "the producer already retired, so the reader starts ready");
    }

    #[test]
    fn task_memory_full_is_reported_and_recoverable() {
        let cfg = TrackerConfig { task_memory_entries: 2, address_table_entries: 64 };
        let mut t = DependenceTracker::new(cfg);
        let (a, _) = t.insert(&task(1, vec![])).unwrap();
        let (_b, _) = t.insert(&task(2, vec![])).unwrap();
        assert!(t.is_full());
        assert_eq!(t.insert(&task(3, vec![])), Err(TrackerError::TaskMemoryFull));
        assert_eq!(t.stats().rejected_task_memory, 1);
        t.retire(a).unwrap();
        assert!(t.insert(&task(3, vec![])).is_ok(), "space frees up after retirement");
    }

    #[test]
    fn address_table_full_is_reported() {
        let cfg = TrackerConfig { task_memory_entries: 16, address_table_entries: 2 };
        let mut t = DependenceTracker::new(cfg);
        t.insert(&task(1, vec![Dependence::write(0x1), Dependence::write(0x2)])).unwrap();
        let err = t.insert(&task(2, vec![Dependence::write(0x3)])).unwrap_err();
        assert_eq!(err, TrackerError::AddressTableFull);
        assert_eq!(t.stats().rejected_address_table, 1);
    }

    #[test]
    fn double_retire_is_an_error() {
        let mut t = DependenceTracker::new(TrackerConfig::default());
        let (a, _) = t.insert(&task(1, vec![])).unwrap();
        t.retire(a).unwrap();
        assert_eq!(t.retire(a), Err(TrackerError::UnknownTask(a)));
    }

    #[test]
    fn picos_id_reuse_does_not_resurrect_old_edges() {
        let cfg = TrackerConfig { task_memory_entries: 1, address_table_entries: 16 };
        let mut t = DependenceTracker::new(cfg);
        let (a, _) = t.insert(&task(1, vec![Dependence::write(0x10)])).unwrap();
        t.retire(a).unwrap();
        // The same Picos ID will be reused; the new task must not inherit stale address links.
        let (b, ready) = t.insert(&task(2, vec![Dependence::read(0x10)])).unwrap();
        assert_eq!(a, b, "single-entry task memory must reuse the slot");
        assert!(ready);
    }

    #[test]
    fn stats_track_extremes() {
        let mut t = DependenceTracker::new(TrackerConfig::default());
        let ids: Vec<_> = (0..10)
            .map(|i| t.insert(&task(i, vec![Dependence::write(0x1000 + i * 64)])).unwrap().0)
            .collect();
        assert_eq!(t.stats().max_in_flight, 10);
        assert!(t.stats().max_addresses >= 10);
        for id in ids {
            t.retire(id).unwrap();
        }
        assert_eq!(t.stats().retired, 10);
        assert_eq!(t.live_addresses(), 0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use tis_taskmodel::{Dependence, Direction, Payload, ProgramBuilder, TaskId};

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        /// Driving the tracker with an arbitrary program and greedily retiring ready tasks
        /// produces an execution order that the reference dependence graph accepts, and every
        /// task eventually retires (no lost wakeups, no spurious deadlock).
        #[test]
        fn tracker_agrees_with_reference_graph(
            tasks in proptest::collection::vec(
                (proptest::collection::vec((0u64..8, 0u8..3), 0..4), 1u64..4),
                1..40,
            )
        ) {
            let mut builder = ProgramBuilder::new("prop");
            for (deps, _w) in &tasks {
                let mut seen = std::collections::HashSet::new();
                let deps: Vec<Dependence> = deps
                    .iter()
                    .filter(|(a, _)| seen.insert(*a))
                    .map(|&(a, d)| Dependence::new(0x1000 + a * 64, Direction::ALL[d as usize]))
                    .collect();
                builder.spawn(Payload::compute(1), deps);
            }
            let program = builder.build();
            let graph = program.reference_graph();

            let mut tracker = DependenceTracker::new(TrackerConfig::default());
            let mut ready: Vec<(PicosId, u64)> = Vec::new();
            let mut id_map = std::collections::HashMap::new();
            for spec in program.tasks() {
                let st = SubmittedTask::new(spec.id.raw(), spec.deps.clone());
                let (pid, is_ready) = tracker.insert(&st).unwrap();
                id_map.insert(pid, spec.id.raw());
                if is_ready {
                    ready.push((pid, spec.id.raw()));
                }
            }
            // Greedily retire ready tasks (lowest sw_id first for determinism) and record order.
            let mut finished_order = Vec::new();
            let mut finished = std::collections::HashSet::new();
            while let Some(pos) = ready.iter().enumerate().min_by_key(|(_, (_, sw))| *sw).map(|(i, _)| i) {
                let (pid, sw) = ready.swap_remove(pos);
                finished_order.push(sw);
                finished.insert(sw);
                let woke = tracker.retire(pid).unwrap();
                for w in woke {
                    let sw = tracker.sw_id(w).unwrap();
                    ready.push((w, sw));
                }
            }
            prop_assert_eq!(finished_order.len(), program.task_count(), "every task must retire");
            // Check that the observed retirement order never violates a reference edge.
            let position: std::collections::HashMap<u64, usize> =
                finished_order.iter().enumerate().map(|(i, &sw)| (sw, i)).collect();
            for i in 0..graph.task_count() {
                for s in graph.successors(TaskId(i as u64)) {
                    prop_assert!(
                        position[&(i as u64)] < position[&s.raw()],
                        "edge {} -> {} violated", i, s.raw()
                    );
                }
            }
        }
    }
}
