//! Functional and timing model of the **Picos** hardware task-dependence manager.
//!
//! Picos (Yazdanpanah et al., Tan et al.) is the accelerator the paper integrates into Rocket
//! Chip. Its outside interface is three queues of 32-bit packets (Section IV-D):
//!
//! * a **submission queue** receiving 48-packet task descriptors (Figure 3);
//! * a **ready queue** producing descriptors of tasks whose dependences are satisfied;
//! * a **retirement queue** receiving the Picos IDs of finished tasks.
//!
//! Internally it keeps a task graph in a bounded *task memory* and matches dependence addresses
//! in a bounded *address table* (the hardware uses CAM-like structures). This crate models both
//! the **function** (exactly the RAW/WAW/WAR semantics of the task-parallel paradigm, validated
//! against the reference graph of `tis-taskmodel`) and the **timing** (per-packet acceptance,
//! pipelined task insertion, ready-descriptor generation and retirement processing), so the
//! RoCC-integrated system built on top of it in `tis-core` exhibits the end-to-end latencies the
//! paper reports.
//!
//! Capacity limits matter: when the task memory or the internal queues fill up, Picos stops
//! accepting submissions — which is precisely why the paper's custom instructions are
//! non-blocking and why the deadlock-avoidance discussion of Section IV-C exists.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod device;
pub mod packet;
pub mod timing;
pub mod tracker;

pub use device::{Picos, PicosConfig, PicosStats, ReadyTask};
pub use packet::{
    decode_descriptor, decode_descriptor_into, encode_descriptor, encode_descriptor_into,
    encode_nonzero_prefix, encode_prefix_into, PacketDecodeError, SubmissionPacket, SubmittedTask,
    PACKETS_PER_DEP, PACKETS_PER_DESCRIPTOR,
};
pub use timing::PicosTiming;
pub use tracker::{DependenceTracker, PicosId, TrackerConfig, TrackerError, TrackerStats};
pub use tis_fault::FaultConfig;
