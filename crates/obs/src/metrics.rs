//! The metrics registry: counters, histograms, and the cycle-bucketed gauge timeline.
//!
//! The registry is owned by the run's [`Recorder`](crate::Recorder) and exported as one
//! hand-rolled JSON document (`METRICS_*.json`) in the same style as the `BENCH_*.json`
//! artifacts — the same [`tis_sim::json`] writer, two-space pretty-printing, no dependencies.

use crate::events::{MemAccessKind, MemEvent, MetricsSample};
use tis_sim::json::Json;
use tis_sim::stats::Histogram;
use tis_sim::Cycle;

/// Counters, histograms and the sampled gauge timeline of one observed run.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    samples: Vec<MetricsSample>,
    // Named counters fed by the memory-event stream (all zero when it is disarmed).
    coherence_reads: u64,
    coherence_writes: u64,
    coherence_atomics: u64,
    l1_misses: u64,
    remote_dirty_hits: u64,
    noc_legs: u64,
    noc_wait_cycles: u64,
    access_latency: Histogram,
    noc_leg_wait: Histogram,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Ingests one memory event into the counter/histogram set.
    pub fn record_mem(&mut self, event: &MemEvent) {
        match *event {
            MemEvent::Coherence { kind, latency, l1_hit, remote_dirty, .. } => {
                match kind {
                    MemAccessKind::Read => self.coherence_reads += 1,
                    MemAccessKind::Write => self.coherence_writes += 1,
                    MemAccessKind::Atomic => self.coherence_atomics += 1,
                }
                if !l1_hit {
                    self.l1_misses += 1;
                }
                if remote_dirty {
                    self.remote_dirty_hits += 1;
                }
                self.access_latency.record(latency);
            }
            MemEvent::NocLeg { flits: _, wait_cycles, .. } => {
                self.noc_legs += 1;
                self.noc_wait_cycles += wait_cycles;
                self.noc_leg_wait.record(wait_cycles);
            }
        }
    }

    /// Appends one gauge snapshot to the timeline.
    pub fn push_sample(&mut self, sample: &MetricsSample) {
        self.samples.push(sample.clone());
    }

    /// The sampled timeline, oldest first.
    pub fn samples(&self) -> &[MetricsSample] {
        &self.samples
    }

    /// Number of coherence transactions seen on the event stream.
    pub fn coherence_transactions(&self) -> u64 {
        self.coherence_reads + self.coherence_writes + self.coherence_atomics
    }

    /// Number of NoC legs seen on the event stream.
    pub fn noc_legs(&self) -> u64 {
        self.noc_legs
    }

    /// Renders the registry as the `METRICS_*.json` document.
    ///
    /// Shape: a `counters` object, a `histograms` object (count/mean/quantiles per histogram),
    /// and a `timeline` object of parallel arrays keyed by gauge name — the cycle-bucketed
    /// time series. Cumulative series are monotone; consumers difference adjacent entries for
    /// per-bucket rates.
    pub fn to_json(&self, label: &str, makespan: Cycle) -> Json {
        let counters = Json::obj([
            ("coherence_reads", Json::UInt(self.coherence_reads)),
            ("coherence_writes", Json::UInt(self.coherence_writes)),
            ("coherence_atomics", Json::UInt(self.coherence_atomics)),
            ("l1_misses", Json::UInt(self.l1_misses)),
            ("remote_dirty_hits", Json::UInt(self.remote_dirty_hits)),
            ("noc_legs", Json::UInt(self.noc_legs)),
            ("noc_wait_cycles", Json::UInt(self.noc_wait_cycles)),
        ]);
        let histograms = Json::obj([
            ("access_latency", histogram_json(&self.access_latency)),
            ("noc_leg_wait", histogram_json(&self.noc_leg_wait)),
        ]);
        let series = |f: &dyn Fn(&MetricsSample) -> u64| {
            Json::Arr(self.samples.iter().map(|s| Json::UInt(f(s))).collect())
        };
        let per_core = |f: &dyn Fn(&MetricsSample) -> &Vec<u64>| {
            Json::Arr(
                self.samples
                    .iter()
                    .map(|s| Json::Arr(f(s).iter().map(|&v| Json::UInt(v)).collect()))
                    .collect(),
            )
        };
        let timeline = Json::obj([
            ("cycle", series(&|s| s.cycle)),
            ("tracker_in_flight", series(&|s| s.tracker_in_flight)),
            ("ready_queue_len", series(&|s| s.ready_queue_len)),
            ("core_busy_cycles", per_core(&|s| &s.core_busy_cycles)),
            ("core_idle_cycles", per_core(&|s| &s.core_idle_cycles)),
            ("mem_accesses", series(&|s| s.mem_accesses)),
            ("mem_stall_cycles", series(&|s| s.mem_stall_cycles)),
            ("dram_fetches", series(&|s| s.dram_fetches)),
            ("dram_writebacks", series(&|s| s.dram_writebacks)),
            ("invalidations", series(&|s| s.invalidations)),
            ("dirty_bounces", series(&|s| s.dirty_bounces)),
            ("noc_messages", series(&|s| s.noc_messages)),
            ("noc_flits", series(&|s| s.noc_flits)),
            ("noc_link_wait_cycles", series(&|s| s.noc_link_wait_cycles)),
            ("max_link_occupancy", series(&|s| s.max_link_occupancy)),
        ]);
        Json::obj([
            ("schema", Json::Str("tis-metrics-v1".to_string())),
            ("label", Json::Str(label.to_string())),
            ("makespan_cycles", Json::UInt(makespan)),
            ("sample_count", Json::UInt(self.samples.len() as u64)),
            ("counters", counters),
            ("histograms", histograms),
            ("timeline", timeline),
        ])
    }
}

fn histogram_json(h: &Histogram) -> Json {
    let q = |p: f64| match h.quantile(p) {
        Some(v) => Json::UInt(v),
        None => Json::Null,
    };
    Json::obj([
        ("count", Json::UInt(h.count())),
        ("mean", Json::Num(h.mean())),
        ("p50", q(0.50)),
        ("p90", q(0.90)),
        ("p99", q(0.99)),
        ("max", match h.max() {
            Some(m) => Json::Num(m),
            None => Json::Null,
        }),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_events_feed_the_counters_and_histograms() {
        let mut m = MetricsRegistry::new();
        m.record_mem(&MemEvent::Coherence {
            cycle: 10,
            core: 0,
            kind: MemAccessKind::Read,
            latency: 40,
            l1_hit: false,
            remote_dirty: true,
        });
        m.record_mem(&MemEvent::Coherence {
            cycle: 12,
            core: 1,
            kind: MemAccessKind::Write,
            latency: 1,
            l1_hit: true,
            remote_dirty: false,
        });
        m.record_mem(&MemEvent::NocLeg { cycle: 15, from: 0, to: 3, flits: 4, wait_cycles: 9 });
        assert_eq!(m.coherence_transactions(), 2);
        assert_eq!(m.noc_legs(), 1);
        let doc = m.to_json("unit", 100);
        assert_eq!(doc.get("counters").unwrap().get("l1_misses"), Some(&Json::UInt(1)));
        assert_eq!(doc.get("counters").unwrap().get("noc_wait_cycles"), Some(&Json::UInt(9)));
        let lat = doc.get("histograms").unwrap().get("access_latency").unwrap();
        assert_eq!(lat.get("count"), Some(&Json::UInt(2)));
    }

    #[test]
    fn timeline_arrays_stay_parallel() {
        let mut m = MetricsRegistry::new();
        for cycle in [0u64, 1024, 2048] {
            m.push_sample(&MetricsSample {
                cycle,
                tracker_in_flight: cycle / 100,
                core_busy_cycles: vec![cycle, cycle / 2],
                core_idle_cycles: vec![0, cycle / 2],
                ..MetricsSample::default()
            });
        }
        let doc = m.to_json("unit", 2048);
        let t = doc.get("timeline").unwrap();
        for key in ["cycle", "tracker_in_flight", "core_busy_cycles", "noc_flits"] {
            match t.get(key) {
                Some(Json::Arr(a)) => assert_eq!(a.len(), 3, "series {key}"),
                other => panic!("series {key} missing or not an array: {other:?}"),
            }
        }
        // Round-trips through the parser (the document is valid JSON).
        let rendered = doc.render();
        assert_eq!(Json::parse(&rendered).unwrap(), doc);
    }
}
