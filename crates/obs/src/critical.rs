//! The critical-path profiler: attributes every makespan cycle to a cause.
//!
//! Walks the *executed* happens-before graph backwards from the last retirement: at each hop
//! the profiler cuts the remaining window into segments — task body, payload memory stall,
//! dispatch wait, scheduler overhead — then jumps to the latest-retiring predecessor (the edge
//! that actually gated the task) and repeats. The dependence edges are the same
//! happens-before edges `tis-analyze` derives for its vector-clock race detector
//! (`GraphSpec::from_program(...).edges`); callers pass them in so this crate stays below the
//! analysis layer.
//!
//! The decomposition is machine-checked: segments are constructed as a gap-free partition of
//! `[0, makespan)`, so their sum equals the makespan *exactly* — [`critical_path`] asserts it
//! and [`CriticalPath::total`] lets tests re-assert it.

use crate::span::TaskSpan;
use tis_sim::{Cycle, FxHashMap};

/// What a stretch of the critical path was spent on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PathCategory {
    /// Private computation inside a task body.
    TaskBody,
    /// DRAM-bandwidth share of a task body (the payload's memory transfer time).
    MemoryStall,
    /// A ready task waiting to be fetched by a core (ready-queue residence + the NoC/fabric
    /// round trips of the work-fetch path).
    DispatchWait,
    /// Everything the scheduler adds: submission, dependence resolution and ready
    /// publication, fetch-to-body overhead, retirement notification, and end-of-run
    /// wind-down.
    Scheduler,
}

impl PathCategory {
    /// Short stable label used in JSON and tables.
    pub fn label(self) -> &'static str {
        match self {
            PathCategory::TaskBody => "task-body",
            PathCategory::MemoryStall => "memory-stall",
            PathCategory::DispatchWait => "dispatch-wait",
            PathCategory::Scheduler => "scheduler",
        }
    }
}

/// One contiguous stretch of the critical path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PathSegment {
    /// Start cycle (inclusive).
    pub start: Cycle,
    /// End cycle (exclusive); `end - start` is the segment's weight.
    pub end: Cycle,
    /// Attribution.
    pub category: PathCategory,
    /// The task this segment belongs to, when one does (`None` for the pre-first-task prefix
    /// and the post-last-retire tail).
    pub task: Option<u64>,
}

impl PathSegment {
    /// Segment weight in cycles.
    pub fn cycles(&self) -> Cycle {
        self.end - self.start
    }
}

/// The machine-checked decomposition of a run's makespan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CriticalPath {
    /// The makespan that was decomposed.
    pub makespan: Cycle,
    /// Segments in increasing time order, partitioning `[0, makespan)` without gaps.
    pub segments: Vec<PathSegment>,
    /// Cycles attributed to task bodies (private compute).
    pub task_body: Cycle,
    /// Cycles attributed to payload DRAM transfers.
    pub memory_stall: Cycle,
    /// Cycles attributed to ready tasks waiting for a core.
    pub dispatch_wait: Cycle,
    /// Cycles attributed to scheduler overhead.
    pub scheduler: Cycle,
}

impl CriticalPath {
    /// Sum of all four category totals — always exactly the makespan.
    pub fn total(&self) -> Cycle {
        self.task_body + self.memory_stall + self.dispatch_wait + self.scheduler
    }

    /// Fraction of the makespan attributed to the given category (0 for an empty run).
    pub fn fraction(&self, category: PathCategory) -> f64 {
        if self.makespan == 0 {
            return 0.0;
        }
        let cycles = match category {
            PathCategory::TaskBody => self.task_body,
            PathCategory::MemoryStall => self.memory_stall,
            PathCategory::DispatchWait => self.dispatch_wait,
            PathCategory::Scheduler => self.scheduler,
        };
        cycles as f64 / self.makespan as f64
    }

    /// The tasks on the critical path, in execution order.
    pub fn tasks(&self) -> Vec<u64> {
        let mut out = Vec::new();
        for seg in &self.segments {
            if let Some(t) = seg.task {
                if out.last() != Some(&t) {
                    out.push(t);
                }
            }
        }
        out.dedup();
        out
    }

    /// Renders a small human-readable table of the decomposition.
    pub fn render_table(&self) -> String {
        use PathCategory::*;
        let mut s = String::from("critical path (cycles, % of makespan)\n");
        for (cat, cycles) in [
            (TaskBody, self.task_body),
            (MemoryStall, self.memory_stall),
            (DispatchWait, self.dispatch_wait),
            (Scheduler, self.scheduler),
        ] {
            s.push_str(&format!(
                "  {:<14} {:>12}  {:>6.2}%\n",
                cat.label(),
                cycles,
                100.0 * self.fraction(cat)
            ));
        }
        s.push_str(&format!("  {:<14} {:>12}  100.00%\n", "makespan", self.makespan));
        s
    }
}

/// Why a run cannot be critical-path profiled.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CriticalPathError {
    /// The run retired tasks but the trace holds no complete span for any of them. This is
    /// the signature of a *streamed* run profiled without task tracing (records off, no
    /// observer): the walk would have nothing to anchor on and would silently attribute the
    /// entire makespan to [`PathCategory::Scheduler`] — a decomposition that type-checks but
    /// means nothing. Re-run with an observer attached to profile a streamed cell.
    NoObservedSpans {
        /// How many tasks the unprofileable run retired.
        tasks_retired: u64,
    },
}

impl std::fmt::Display for CriticalPathError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CriticalPathError::NoObservedSpans { tasks_retired } => write!(
                f,
                "run retired {tasks_retired} tasks but the trace observed none of them \
                 (streamed records-off run?) — a critical-path decomposition would be \
                 all-scheduler noise; attach an observer to profile this run"
            ),
        }
    }
}

impl std::error::Error for CriticalPathError {}

/// The checked front door to [`critical_path`] for whole-run profiling: `tasks_retired`
/// comes from the run's `ExecutionReport`, and a run that retired tasks the trace never saw
/// — a streamed records-off run — is rejected with a typed error instead of decomposed into
/// meaningless all-scheduler segments.
///
/// # Errors
///
/// [`CriticalPathError::NoObservedSpans`] when `tasks_retired > 0` but no span is complete
/// (executed and retired).
pub fn critical_path_for_run(
    spans: &[TaskSpan],
    edges: &[(usize, usize)],
    makespan: Cycle,
    tasks_retired: u64,
) -> Result<CriticalPath, CriticalPathError> {
    let complete = spans.iter().any(|s| s.retire.is_some() && s.exec_start.is_some());
    if tasks_retired > 0 && !complete {
        return Err(CriticalPathError::NoObservedSpans { tasks_retired });
    }
    Ok(critical_path(spans, edges, makespan))
}

/// Per-tenant critical-path decomposition of a multi-tenant run.
///
/// A co-scheduled run merges N independent task graphs into one span stream under *global*
/// task ids; profiling the merged stream as one program attributes every tenant's gating to a
/// single fictitious critical chain. This splits the spans by the run's tenant `assignment`
/// (global id → tenant, as recovered from the multi-tenant source after the run), remaps each
/// tenant's global ids back to its local id space — global ids are handed out densely in
/// release order, and release order preserves each tenant's own spawn order, so tenant `t`'s
/// `k`-th smallest global id is its local task `k` — and decomposes each tenant over its *own*
/// makespan (the retire cycle of its last observed task) against its *own* dependence edges.
///
/// `tenant_edges[t]` are the `(from, to)` local-id dependence pairs of tenant `t` (empty for
/// tenants whose graphs are not materialized); the returned vector has one decomposition per
/// entry of `tenant_edges`, in tenant order.
pub fn critical_path_per_tenant(
    spans: &[TaskSpan],
    assignment: &[u32],
    tenant_edges: &[Vec<(usize, usize)>],
) -> Vec<CriticalPath> {
    let tenants = tenant_edges.len();
    // Global → local id maps, derived from the dense release-order assignment.
    let mut locals: Vec<FxHashMap<u64, u64>> = vec![FxHashMap::default(); tenants];
    let mut counters = vec![0u64; tenants];
    for (global, &t) in assignment.iter().enumerate() {
        let t = t as usize;
        if t < tenants {
            locals[t].insert(global as u64, counters[t]);
            counters[t] += 1;
        }
    }
    let mut per_tenant: Vec<Vec<TaskSpan>> = vec![Vec::new(); tenants];
    for s in spans {
        let Some(&t) = assignment.get(s.task as usize) else { continue };
        let t = t as usize;
        if t >= tenants {
            continue;
        }
        let mut local = *s;
        local.task = locals[t][&s.task];
        per_tenant[t].push(local);
    }
    per_tenant
        .iter()
        .zip(tenant_edges)
        .map(|(spans, edges)| {
            let makespan = spans.iter().filter_map(|s| s.retire).max().unwrap_or(0);
            critical_path(spans, edges, makespan)
        })
        .collect()
}

/// Decomposes `makespan` over the executed happens-before graph.
///
/// `spans` are the observed task lifecycles; `edges` are `(from, to)` dependence pairs over
/// task ids (`to` may not dispatch before `from` retires). Tasks never observed executing are
/// ignored; time before the critical chain's first observable stage and any window the chain
/// cannot explain are attributed to [`PathCategory::Scheduler`] (the scheduler owns the
/// machine whenever no traced task does).
///
/// # Panics
///
/// Panics if the constructed segments fail to partition `[0, makespan)` exactly — the
/// machine-check this profiler exists to provide.
pub fn critical_path(spans: &[TaskSpan], edges: &[(usize, usize)], makespan: Cycle) -> CriticalPath {
    let by_task: FxHashMap<u64, &TaskSpan> = spans.iter().map(|s| (s.task, s)).collect();
    // Predecessor lists over tasks that actually executed.
    let mut preds: FxHashMap<u64, Vec<u64>> = FxHashMap::default();
    for &(from, to) in edges {
        preds.entry(to as u64).or_default().push(from as u64);
    }

    let mut segments: Vec<PathSegment> = Vec::new();
    let mut cursor = makespan;
    // Cut `[max(at, …), cursor)` off the remaining window. Clamping keeps the partition exact
    // even if a span stamp lands outside the remaining window (e.g. a deferred retirement
    // applied after a lagging core's submission).
    let mut cut = |cursor: &mut Cycle, at: Cycle, category: PathCategory, task: Option<u64>| {
        let start = at.min(*cursor);
        if start < *cursor {
            segments.push(PathSegment { start, end: *cursor, category, task });
            *cursor = start;
        }
    };

    let complete = |s: &&TaskSpan| -> bool { s.retire.is_some() && s.exec_start.is_some() };
    // Deterministic choice: latest retirement, ties broken by task id.
    let mut current = spans
        .iter()
        .filter(complete)
        .max_by_key(|s| (s.retire, s.task))
        .map(|s| s.task);

    while let Some(task) = current {
        let span = by_task[&task];
        let t = Some(task);
        if let Some(retire) = span.retire {
            cut(&mut cursor, retire, PathCategory::Scheduler, None);
        }
        let (start, end) = (span.exec_start.unwrap_or(cursor), span.exec_end.unwrap_or(cursor));
        cut(&mut cursor, end, PathCategory::Scheduler, t);
        let mem = span.payload_mem_cycles.min(end.saturating_sub(start));
        cut(&mut cursor, end.saturating_sub(mem).max(start), PathCategory::MemoryStall, t);
        cut(&mut cursor, start, PathCategory::TaskBody, t);
        if let Some(dispatch) = span.dispatch {
            cut(&mut cursor, dispatch, PathCategory::Scheduler, t);
        }
        if let Some(ready) = span.ready {
            cut(&mut cursor, ready, PathCategory::DispatchWait, t);
        }
        // Hop to the predecessor whose retirement gated this task's readiness.
        current = preds
            .get(&task)
            .into_iter()
            .flatten()
            .filter_map(|p| by_task.get(p).copied())
            .filter(complete)
            .max_by_key(|s| (s.retire, s.task))
            .map(|s| s.task);
        if current.is_some() {
            // The gap between the predecessor's retirement and this task's readiness is the
            // tracker's wake/publish pipeline.
            continue;
        }
        if let Some(submit) = span.submit {
            cut(&mut cursor, submit, PathCategory::Scheduler, t);
        }
    }
    // Whatever precedes the chain's first stamp: submission loop, program setup.
    cut(&mut cursor, 0, PathCategory::Scheduler, None);
    segments.reverse();

    let mut totals = [0u64; 4];
    for seg in &segments {
        let i = match seg.category {
            PathCategory::TaskBody => 0,
            PathCategory::MemoryStall => 1,
            PathCategory::DispatchWait => 2,
            PathCategory::Scheduler => 3,
        };
        totals[i] += seg.cycles();
    }
    let path = CriticalPath {
        makespan,
        segments,
        task_body: totals[0],
        memory_stall: totals[1],
        dispatch_wait: totals[2],
        scheduler: totals[3],
    };
    assert_eq!(
        path.total(),
        makespan,
        "critical-path segments must partition the makespan exactly"
    );
    let mut expected_start = 0;
    for seg in &path.segments {
        assert_eq!(seg.start, expected_start, "segments must be gap-free");
        expected_start = seg.end;
    }
    assert_eq!(expected_start, makespan, "segments must end at the makespan");
    path
}

#[cfg(test)]
mod tests {
    use super::*;

    #[allow(clippy::too_many_arguments)]
    fn span(task: u64, submit: u64, ready: u64, dispatch: u64, start: u64, end: u64, retire: u64, mem: u64) -> TaskSpan {
        TaskSpan {
            task,
            core: Some(0),
            submit: Some(submit),
            ready: Some(ready),
            dispatch: Some(dispatch),
            exec_start: Some(start),
            exec_end: Some(end),
            retire: Some(retire),
            payload_mem_cycles: mem,
        }
    }

    #[test]
    fn a_two_task_chain_decomposes_exactly() {
        // task 0: submit 0, ready 10, dispatch 15, body 20..120 (30 mem), retire 125
        // task 1: ready 135 (woken by 0), dispatch 140, body 145..245, retire 250
        let spans = [
            span(0, 0, 10, 15, 20, 120, 125, 30),
            span(1, 2, 135, 140, 145, 245, 250, 0),
        ];
        let cp = critical_path(&spans, &[(0, 1)], 260);
        assert_eq!(cp.total(), 260);
        assert_eq!(cp.task_body, (120 - 20 - 30) + (245 - 145));
        assert_eq!(cp.memory_stall, 30);
        // task 0 waited 15-10, task 1 waited 140-135.
        assert_eq!(cp.dispatch_wait, 10);
        assert_eq!(cp.tasks(), vec![0, 1]);
        // Scheduler picks up everything else, including the 250..260 tail and 125..135 wake.
        assert_eq!(cp.scheduler, 260 - cp.task_body - cp.memory_stall - cp.dispatch_wait);
    }

    #[test]
    fn independent_tasks_follow_only_the_last_retiree() {
        let spans = [
            span(0, 0, 5, 6, 10, 50, 55, 0),
            span(1, 1, 5, 7, 12, 90, 95, 0),
        ];
        let cp = critical_path(&spans, &[], 100);
        assert_eq!(cp.total(), 100);
        assert_eq!(cp.tasks(), vec![1]);
        assert_eq!(cp.task_body, 90 - 12);
    }

    #[test]
    fn empty_run_is_pure_scheduler() {
        let cp = critical_path(&[], &[], 42);
        assert_eq!(cp.total(), 42);
        assert_eq!(cp.scheduler, 42);
        assert_eq!(cp.segments.len(), 1);
        assert!(cp.tasks().is_empty());
    }

    #[test]
    fn clamping_survives_overlapping_stamps() {
        // Predecessor retires *after* the successor's ready stamp (deferred retirement applied
        // late): the walk must still produce an exact partition.
        let spans = [
            span(0, 0, 5, 6, 10, 300, 310, 0),
            span(1, 1, 200, 205, 210, 400, 405, 50),
        ];
        let cp = critical_path(&spans, &[(0, 1)], 410);
        assert_eq!(cp.total(), 410);
    }

    #[test]
    fn streamed_records_off_runs_are_rejected_with_a_typed_error() {
        // 1M retired tasks, zero observed spans: the profiler must refuse, not hand back a
        // 100%-scheduler decomposition.
        let err = critical_path_for_run(&[], &[], 5_000, 1_000_000).unwrap_err();
        assert_eq!(err, CriticalPathError::NoObservedSpans { tasks_retired: 1_000_000 });
        assert!(err.to_string().contains("streamed"), "error must name the cause: {err}");

        // A genuinely empty run (nothing retired) still profiles: all scheduler.
        let cp = critical_path_for_run(&[], &[], 42, 0).unwrap();
        assert_eq!(cp.scheduler, 42);

        // And a traced run goes through unchanged.
        let spans = [span(0, 0, 5, 6, 10, 50, 55, 0)];
        let cp = critical_path_for_run(&spans, &[], 60, 1).unwrap();
        assert_eq!(cp.total(), 60);
        assert_eq!(cp, critical_path(&spans, &[], 60));
    }

    #[test]
    fn per_tenant_decomposition_splits_and_remaps_the_merged_run() {
        // Two round-robin tenants: globals 0,2 belong to tenant 0 (a local chain 0→1),
        // globals 1,3 to tenant 1 (independent local tasks).
        let assignment = [0u32, 1, 0, 1];
        let spans = [
            span(0, 0, 5, 6, 10, 100, 105, 0),
            span(1, 1, 5, 7, 12, 60, 65, 0),
            span(2, 3, 110, 112, 115, 215, 220, 40),
            span(3, 4, 70, 72, 75, 300, 305, 0),
        ];
        let edges = vec![vec![(0usize, 1usize)], Vec::new()];
        let cps = critical_path_per_tenant(&spans, &assignment, &edges);
        assert_eq!(cps.len(), 2);
        // Tenant 0: own makespan is its last retire (220), its chain is local 0 → local 1.
        assert_eq!(cps[0].makespan, 220);
        assert_eq!(cps[0].total(), 220);
        assert_eq!(cps[0].tasks(), vec![0, 1], "global ids 0 and 2 remap to local 0 and 1");
        assert_eq!(cps[0].memory_stall, 40);
        // Tenant 1: independent tasks, the walk follows only its last retiree (global 3 = local 1).
        assert_eq!(cps[1].makespan, 305);
        assert_eq!(cps[1].total(), 305);
        assert_eq!(cps[1].tasks(), vec![1]);
        // A tenant with no observed spans decomposes its zero makespan to nothing.
        let cps = critical_path_per_tenant(&[], &assignment, &edges);
        assert!(cps.iter().all(|c| c.makespan == 0 && c.total() == 0));
    }

    #[test]
    fn render_table_shows_all_categories() {
        let cp = critical_path(&[span(0, 0, 5, 6, 10, 50, 55, 20)], &[], 60);
        let table = cp.render_table();
        for label in ["task-body", "memory-stall", "dispatch-wait", "scheduler", "makespan"] {
            assert!(table.contains(label), "missing {label} in:\n{table}");
        }
    }
}
