//! Task spans: the lifecycle of every task assembled from its events.

use crate::events::{TaskEvent, TaskStage};
use tis_sim::{Cycle, FxHashMap};

/// The assembled lifecycle of one task: submit → deps-ready → dispatch → execute → retire.
///
/// Stages are `Option` because a span is built incrementally from events and a run can end (or
/// an observer attach) mid-lifecycle; [`TaskSpan::is_complete`] distinguishes fully-observed
/// spans. Within a complete span the stage timestamps are monotonically non-decreasing
/// ([`TaskSpan::is_well_formed`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TaskSpan {
    /// Software task id.
    pub task: u64,
    /// Core that executed the task, once known.
    pub core: Option<usize>,
    /// Cycle the runtime began submitting the descriptor.
    pub submit: Option<Cycle>,
    /// Cycle the scheduler published the task as ready (all dependences satisfied).
    pub ready: Option<Cycle>,
    /// Cycle a core fetched the task.
    pub dispatch: Option<Cycle>,
    /// Cycle the task body started.
    pub exec_start: Option<Cycle>,
    /// Cycle the task body ended.
    pub exec_end: Option<Cycle>,
    /// Cycle the retirement was issued to the scheduler.
    pub retire: Option<Cycle>,
    /// DRAM-stall share of the task body, in cycles (the rest is private compute).
    pub payload_mem_cycles: u64,
}

impl TaskSpan {
    /// Whether every lifecycle stage was observed.
    pub fn is_complete(&self) -> bool {
        self.submit.is_some()
            && self.ready.is_some()
            && self.dispatch.is_some()
            && self.exec_start.is_some()
            && self.exec_end.is_some()
            && self.retire.is_some()
    }

    /// Whether the observed stages are monotonically non-decreasing in time and the memory
    /// share fits inside the body.
    pub fn is_well_formed(&self) -> bool {
        let stamps = [self.submit, self.ready, self.dispatch, self.exec_start, self.exec_end, self.retire];
        let mut last: Option<Cycle> = None;
        for t in stamps.into_iter().flatten() {
            if let Some(prev) = last {
                if t < prev {
                    return false;
                }
            }
            last = Some(t);
        }
        match (self.exec_start, self.exec_end) {
            (Some(s), Some(e)) => self.payload_mem_cycles <= e - s,
            _ => true,
        }
    }

    /// Body duration (exec start → exec end), if executed.
    pub fn body_cycles(&self) -> Option<Cycle> {
        Some(self.exec_end? - self.exec_start?)
    }

    /// Full lifetime (submit → retire), if complete.
    pub fn lifetime_cycles(&self) -> Option<Cycle> {
        Some(self.retire? - self.submit?)
    }
}

/// Builds [`TaskSpan`]s from the task-event stream, in first-submission order.
///
/// Events may arrive out of global time order (the engine steps whichever core lags furthest),
/// and a stage can fire twice for one task under fault injection (a lost submission is
/// resubmitted); the collector keys by task id and keeps the *earliest* stamp per stage, which
/// is the one the paper's lifetime decomposition measures from.
#[derive(Debug, Clone, Default)]
pub struct SpanCollector {
    spans: Vec<TaskSpan>,
    index: FxHashMap<u64, usize>,
}

impl SpanCollector {
    /// Creates an empty collector.
    pub fn new() -> Self {
        SpanCollector::default()
    }

    /// Applies one task event.
    pub fn apply(&mut self, event: &TaskEvent) {
        let slot = *self.index.entry(event.task).or_insert_with(|| {
            self.spans.push(TaskSpan { task: event.task, ..TaskSpan::default() });
            self.spans.len() - 1
        });
        let span = &mut self.spans[slot];
        if span.core.is_none() && event.stage >= TaskStage::Dispatched {
            span.core = event.core;
        }
        let stamp = match event.stage {
            TaskStage::Submitted => &mut span.submit,
            TaskStage::Ready => &mut span.ready,
            TaskStage::Dispatched => &mut span.dispatch,
            TaskStage::ExecStart => &mut span.exec_start,
            TaskStage::ExecEnd => {
                span.payload_mem_cycles = event.arg;
                &mut span.exec_end
            }
            TaskStage::Retired => &mut span.retire,
        };
        if stamp.is_none() {
            *stamp = Some(event.cycle);
        }
    }

    /// The spans assembled so far, in first-submission order.
    pub fn spans(&self) -> &[TaskSpan] {
        &self.spans
    }

    /// The span of a specific task, if any of its events were seen.
    pub fn get(&self, task: u64) -> Option<&TaskSpan> {
        self.index.get(&task).map(|&i| &self.spans[i])
    }

    /// Number of tasks with at least one observed event.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// Whether no events were observed.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(task: u64, stage: TaskStage, cycle: Cycle) -> TaskEvent {
        TaskEvent { cycle, task, core: Some(1), stage, arg: 0 }
    }

    #[test]
    fn spans_assemble_from_out_of_order_streams() {
        let mut c = SpanCollector::new();
        c.apply(&ev(7, TaskStage::Dispatched, 50));
        c.apply(&ev(3, TaskStage::Submitted, 10));
        c.apply(&ev(7, TaskStage::Submitted, 5));
        c.apply(&ev(7, TaskStage::Ready, 20));
        c.apply(&ev(7, TaskStage::ExecStart, 60));
        c.apply(&TaskEvent { cycle: 90, task: 7, core: Some(1), stage: TaskStage::ExecEnd, arg: 12 });
        c.apply(&ev(7, TaskStage::Retired, 95));
        let span = c.get(7).unwrap();
        assert!(span.is_complete());
        assert!(span.is_well_formed());
        assert_eq!(span.core, Some(1));
        assert_eq!(span.body_cycles(), Some(30));
        assert_eq!(span.lifetime_cycles(), Some(90));
        assert_eq!(span.payload_mem_cycles, 12);
        assert!(!c.get(3).unwrap().is_complete());
        // First-submission order, not task-id order.
        assert_eq!(c.spans()[0].task, 7);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn resubmission_keeps_the_earliest_stamp() {
        let mut c = SpanCollector::new();
        c.apply(&ev(0, TaskStage::Submitted, 10));
        c.apply(&ev(0, TaskStage::Submitted, 500));
        assert_eq!(c.get(0).unwrap().submit, Some(10));
    }

    #[test]
    fn non_monotone_span_is_rejected() {
        let span = TaskSpan {
            task: 0,
            ready: Some(10),
            dispatch: Some(5),
            ..TaskSpan::default()
        };
        assert!(!span.is_well_formed());
    }
}
