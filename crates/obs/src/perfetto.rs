//! Chrome trace-event / Perfetto export.
//!
//! Renders an observed run as a JSON document in the [Chrome trace-event format] — the
//! `TRACE_*.json` artifacts load directly in `ui.perfetto.dev` (or `chrome://tracing`). Task
//! spans become three slices per task on the executing core's track (dispatch overhead, task
//! body, retire overhead), and the sampled gauges become counter tracks (tracker occupancy,
//! ready-queue depth, NoC activity). Timestamps are simulated cycles reported in the format's
//! microsecond field: read "1 µs" as "1 cycle".
//!
//! [Chrome trace-event format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use crate::events::MetricsSample;
use crate::span::TaskSpan;
use tis_sim::json::Json;

/// Process id used for all tracks (one simulated machine = one Perfetto process).
const PID: u64 = 0;

/// Renders task spans plus the gauge timeline as a Chrome trace-event document.
///
/// `label` names the process in the UI (typically the sweep cell or workload label);
/// `cores` sizes the per-core thread tracks (cores with no executed task still get a named
/// track, making idle cores visible).
pub fn trace_json(label: &str, cores: usize, spans: &[TaskSpan], samples: &[MetricsSample]) -> Json {
    let mut events: Vec<Json> = Vec::new();
    events.push(meta_event("process_name", PID, None, label));
    for core in 0..cores {
        events.push(meta_event("thread_name", PID, Some(core as u64), &format!("core {core}")));
        events.push(Json::obj([
            ("name", Json::Str("thread_sort_index".to_string())),
            ("ph", Json::Str("M".to_string())),
            ("pid", Json::UInt(PID)),
            ("tid", Json::UInt(core as u64)),
            ("args", Json::obj([("sort_index", Json::UInt(core as u64))])),
        ]));
    }
    for span in spans {
        let (Some(core), Some(dispatch), Some(start), Some(end), Some(retire)) =
            (span.core, span.dispatch, span.exec_start, span.exec_end, span.retire)
        else {
            continue; // incomplete span: nothing executed, nothing to draw
        };
        let tid = core as u64;
        // Fetch/meta-read overhead between the work fetch and the body.
        events.push(slice("fetch", "sched", tid, dispatch, start - dispatch, span.task));
        // The task body, with the full lifecycle in args for the selection panel.
        events.push(Json::obj([
            ("name", Json::Str(format!("task {}", span.task))),
            ("cat", Json::Str("task".to_string())),
            ("ph", Json::Str("X".to_string())),
            ("ts", Json::UInt(start)),
            ("dur", Json::UInt(end - start)),
            ("pid", Json::UInt(PID)),
            ("tid", Json::UInt(tid)),
            ("args", Json::obj([
                ("task", Json::UInt(span.task)),
                ("submit", opt_cycle(span.submit)),
                ("ready", opt_cycle(span.ready)),
                ("dispatch", Json::UInt(dispatch)),
                ("retire", Json::UInt(retire)),
                ("payload_mem_cycles", Json::UInt(span.payload_mem_cycles)),
            ])),
        ]));
        // Retirement notification overhead after the body.
        events.push(slice("retire", "sched", tid, end, retire - end, span.task));
    }
    for s in samples {
        events.push(counter("tracker in-flight", s.cycle, "tasks", s.tracker_in_flight));
        events.push(counter("ready queue", s.cycle, "tasks", s.ready_queue_len));
        events.push(counter("noc flits (cum)", s.cycle, "flits", s.noc_flits));
        events.push(counter("noc link wait (cum)", s.cycle, "cycles", s.noc_link_wait_cycles));
        events.push(counter("mem stall (cum)", s.cycle, "cycles", s.mem_stall_cycles));
    }
    Json::obj([
        ("traceEvents", Json::Arr(events)),
        ("displayTimeUnit", Json::Str("ns".to_string())),
        ("otherData", Json::obj([("timeUnit", Json::Str("simulated cycles".to_string()))])),
    ])
}

/// [`trace_json`] with a tenant dimension: each tenant of a co-scheduled run becomes its own
/// Perfetto *process* (track group), so the UI collapses and filters per tenant.
///
/// `names[t]` labels tenant `t`'s track group; `assignment` maps global task id → tenant (as
/// recovered from the multi-tenant source after the run). Task slices are drawn on thread
/// `core` of the owning tenant's process; tasks outside `assignment` are skipped. The sampled
/// machine-wide gauges land in a separate `machine` process (pid `names.len()`) since
/// tracker/NoC occupancy is shared hardware, not any one tenant's.
pub fn trace_json_tenants(
    label: &str,
    cores: usize,
    spans: &[TaskSpan],
    samples: &[MetricsSample],
    names: &[String],
    assignment: &[u32],
) -> Json {
    let machine_pid = names.len() as u64;
    let mut events: Vec<Json> = Vec::new();
    for (t, name) in names.iter().enumerate() {
        let pid = t as u64;
        events.push(meta_event("process_name", pid, None, &format!("{label} / tenant {t}: {name}")));
        events.push(Json::obj([
            ("name", Json::Str("process_sort_index".to_string())),
            ("ph", Json::Str("M".to_string())),
            ("pid", Json::UInt(pid)),
            ("args", Json::obj([("sort_index", Json::UInt(pid))])),
        ]));
        for core in 0..cores {
            events.push(meta_event("thread_name", pid, Some(core as u64), &format!("core {core}")));
        }
    }
    events.push(meta_event("process_name", machine_pid, None, &format!("{label} / machine")));
    for span in spans {
        let (Some(core), Some(dispatch), Some(start), Some(end), Some(retire)) =
            (span.core, span.dispatch, span.exec_start, span.exec_end, span.retire)
        else {
            continue;
        };
        let Some(&tenant) = assignment.get(span.task as usize) else {
            continue; // task not in the tenant assignment: nothing to attribute it to
        };
        let pid = tenant as u64;
        let tid = core as u64;
        events.push(slice_on(pid, "fetch", "sched", tid, dispatch, start - dispatch, span.task));
        events.push(Json::obj([
            ("name", Json::Str(format!("task {}", span.task))),
            ("cat", Json::Str("task".to_string())),
            ("ph", Json::Str("X".to_string())),
            ("ts", Json::UInt(start)),
            ("dur", Json::UInt(end - start)),
            ("pid", Json::UInt(pid)),
            ("tid", Json::UInt(tid)),
            ("args", Json::obj([
                ("task", Json::UInt(span.task)),
                ("tenant", Json::UInt(pid)),
                ("submit", opt_cycle(span.submit)),
                ("ready", opt_cycle(span.ready)),
                ("dispatch", Json::UInt(dispatch)),
                ("retire", Json::UInt(retire)),
                ("payload_mem_cycles", Json::UInt(span.payload_mem_cycles)),
            ])),
        ]));
        events.push(slice_on(pid, "retire", "sched", tid, end, retire - end, span.task));
    }
    for s in samples {
        events.push(counter_on(machine_pid, "tracker in-flight", s.cycle, "tasks", s.tracker_in_flight));
        events.push(counter_on(machine_pid, "ready queue", s.cycle, "tasks", s.ready_queue_len));
        events.push(counter_on(machine_pid, "noc flits (cum)", s.cycle, "flits", s.noc_flits));
        events.push(counter_on(machine_pid, "noc link wait (cum)", s.cycle, "cycles", s.noc_link_wait_cycles));
        events.push(counter_on(machine_pid, "mem stall (cum)", s.cycle, "cycles", s.mem_stall_cycles));
    }
    Json::obj([
        ("traceEvents", Json::Arr(events)),
        ("displayTimeUnit", Json::Str("ns".to_string())),
        ("otherData", Json::obj([("timeUnit", Json::Str("simulated cycles".to_string()))])),
    ])
}

fn meta_event(name: &str, pid: u64, tid: Option<u64>, value: &str) -> Json {
    let mut pairs = vec![
        ("name".to_string(), Json::Str(name.to_string())),
        ("ph".to_string(), Json::Str("M".to_string())),
        ("pid".to_string(), Json::UInt(pid)),
    ];
    if let Some(t) = tid {
        pairs.push(("tid".to_string(), Json::UInt(t)));
    }
    pairs.push(("args".to_string(), Json::obj([("name", Json::Str(value.to_string()))])));
    Json::Obj(pairs)
}

fn opt_cycle(c: Option<u64>) -> Json {
    match c {
        Some(v) => Json::UInt(v),
        None => Json::Null,
    }
}

fn slice(name: &str, cat: &str, tid: u64, ts: u64, dur: u64, task: u64) -> Json {
    slice_on(PID, name, cat, tid, ts, dur, task)
}

fn slice_on(pid: u64, name: &str, cat: &str, tid: u64, ts: u64, dur: u64, task: u64) -> Json {
    Json::obj([
        ("name", Json::Str(format!("{name} {task}"))),
        ("cat", Json::Str(cat.to_string())),
        ("ph", Json::Str("X".to_string())),
        ("ts", Json::UInt(ts)),
        ("dur", Json::UInt(dur)),
        ("pid", Json::UInt(pid)),
        ("tid", Json::UInt(tid)),
        ("args", Json::obj([("task", Json::UInt(task))])),
    ])
}

fn counter(name: &str, ts: u64, series: &str, value: u64) -> Json {
    counter_on(PID, name, ts, series, value)
}

fn counter_on(pid: u64, name: &str, ts: u64, series: &str, value: u64) -> Json {
    Json::obj([
        ("name", Json::Str(name.to_string())),
        ("ph", Json::Str("C".to_string())),
        ("ts", Json::UInt(ts)),
        ("pid", Json::UInt(pid)),
        ("args", Json::Obj(vec![(series.to_string(), Json::UInt(value))])),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::MetricsSample;

    fn complete_span(task: u64, core: usize, base: u64) -> TaskSpan {
        TaskSpan {
            task,
            core: Some(core),
            submit: Some(base),
            ready: Some(base + 10),
            dispatch: Some(base + 20),
            exec_start: Some(base + 25),
            exec_end: Some(base + 125),
            retire: Some(base + 130),
            payload_mem_cycles: 40,
        }
    }

    #[test]
    fn every_event_satisfies_the_trace_event_schema() {
        let spans = [complete_span(0, 0, 0), complete_span(1, 1, 50)];
        let samples =
            [MetricsSample { cycle: 0, ..Default::default() }, MetricsSample { cycle: 1024, ..Default::default() }];
        let doc = trace_json("unit", 2, &spans, &samples);
        let Some(Json::Arr(events)) = doc.get("traceEvents") else {
            panic!("traceEvents must be an array");
        };
        assert!(!events.is_empty());
        for e in events {
            let ph = e.get("ph").and_then(|p| p.as_str()).expect("every event has a phase");
            assert!(matches!(ph, "M" | "X" | "C"), "unexpected phase {ph}");
            assert!(e.get("name").is_some());
            assert!(e.get("pid").is_some());
            if ph == "X" {
                assert!(e.get("ts").is_some() && e.get("dur").is_some() && e.get("tid").is_some());
            }
            if ph == "C" {
                assert!(e.get("ts").is_some() && e.get("args").is_some());
            }
        }
        // Three slices per complete span.
        let slices = events.iter().filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("X"));
        assert_eq!(slices.count(), 6);
        // The document parses back (valid JSON).
        assert_eq!(Json::parse(&doc.render()).unwrap(), doc);
    }

    #[test]
    fn tenant_export_groups_tasks_into_per_tenant_processes() {
        // Round-robin assignment: globals 0,2 → tenant 0; globals 1,3 → tenant 1.
        let spans = [
            complete_span(0, 0, 0),
            complete_span(1, 1, 50),
            complete_span(2, 0, 200),
            complete_span(3, 1, 250),
        ];
        let names = vec!["alpha".to_string(), "beta".to_string()];
        let assignment = [0u32, 1, 0, 1];
        let samples = [MetricsSample { cycle: 1024, ..Default::default() }];
        let doc = trace_json_tenants("mt", 2, &spans, &samples, &names, &assignment);
        let Some(Json::Arr(events)) = doc.get("traceEvents") else { panic!("traceEvents") };
        // Every task slice lives on its tenant's pid.
        for e in events {
            if e.get("cat").and_then(|c| c.as_str()) == Some("task") {
                let task = e.get("args").and_then(|a| a.get("task")).and_then(|t| t.as_f64()).unwrap();
                let pid = e.get("pid").and_then(|p| p.as_f64()).unwrap();
                assert_eq!(pid, f64::from(assignment[task as usize]));
            }
        }
        // Counters land on the separate machine process, pid = tenant count.
        for e in events {
            if e.get("ph").and_then(|p| p.as_str()) == Some("C") {
                assert_eq!(e.get("pid").and_then(|p| p.as_f64()), Some(2.0));
            }
        }
        // Both tenant track groups are named after their tenant.
        let process_names: Vec<String> = events
            .iter()
            .filter(|e| e.get("name").and_then(|n| n.as_str()) == Some("process_name"))
            .filter_map(|e| e.get("args").and_then(|a| a.get("name")).and_then(|n| n.as_str()).map(String::from))
            .collect();
        assert!(process_names.iter().any(|n| n.contains("tenant 0: alpha")));
        assert!(process_names.iter().any(|n| n.contains("tenant 1: beta")));
        assert!(process_names.iter().any(|n| n.contains("machine")));
        // The document still parses back.
        assert_eq!(Json::parse(&doc.render()).unwrap(), doc);
    }

    #[test]
    fn incomplete_spans_draw_nothing_but_tracks_remain() {
        let spans = [TaskSpan { task: 9, submit: Some(3), ..TaskSpan::default() }];
        let doc = trace_json("unit", 4, &spans, &[]);
        let Some(Json::Arr(events)) = doc.get("traceEvents") else { unreachable!() };
        assert!(events.iter().all(|e| e.get("ph").and_then(|p| p.as_str()) != Some("X")));
        // 1 process_name + 4 × (thread_name + thread_sort_index).
        assert_eq!(events.len(), 9);
    }
}
