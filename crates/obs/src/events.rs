//! The typed event vocabulary flowing through the [`Observer`](crate::Observer) chokepoint.
//!
//! These replace ad-hoc trace strings: each event is a plain-old-data struct whose fields are
//! exactly what the analysis passes (span building, metrics, Perfetto export, critical path)
//! consume, so recording one allocates nothing.

use tis_sim::Cycle;

/// A stage of the task lifecycle, in the order the paper's Figure 7 decomposes it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TaskStage {
    /// The runtime began submitting the task descriptor to the scheduler.
    Submitted,
    /// The scheduler resolved the task's dependences and published its ready descriptor.
    Ready,
    /// A core fetched the task for execution (successful work fetch).
    Dispatched,
    /// The core entered the task body.
    ExecStart,
    /// The core left the task body.
    ExecEnd,
    /// The core notified the scheduler that the task retired.
    Retired,
}

/// One task-lifecycle event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TaskEvent {
    /// Simulated cycle of the transition.
    pub cycle: Cycle,
    /// Software task id (the task's index in its program).
    pub task: u64,
    /// Core on which the transition happened; `None` for device-side transitions
    /// (dependence resolution happens inside the scheduler, not on a core).
    pub core: Option<usize>,
    /// Which lifecycle stage was crossed.
    pub stage: TaskStage,
    /// Stage-specific argument: for [`TaskStage::ExecEnd`] the DRAM-stall share of the payload
    /// in cycles; `0` for every other stage.
    pub arg: u64,
}

/// The kind of a coherence transaction, mirroring the memory system's access kinds without
/// depending on it (this crate sits below `tis-mem` in the workspace layering).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemAccessKind {
    /// A cache-coherent load.
    Read,
    /// A cache-coherent store.
    Write,
    /// An atomic read-modify-write.
    Atomic,
}

/// A memory-system event: one coherence transaction or one NoC message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemEvent {
    /// A coherence transaction completed (MESI state machine walked end to end).
    Coherence {
        /// Cycle the access was issued.
        cycle: Cycle,
        /// Issuing core.
        core: usize,
        /// Access kind.
        kind: MemAccessKind,
        /// Total latency charged to the core.
        latency: Cycle,
        /// Whether every touched line hit in the local L1.
        l1_hit: bool,
        /// Whether a remote dirty copy had to be bounced through memory.
        remote_dirty: bool,
    },
    /// One message traversed the mesh NoC.
    NocLeg {
        /// Cycle the message was injected.
        cycle: Cycle,
        /// Source tile.
        from: usize,
        /// Destination tile.
        to: usize,
        /// Flit count of the message.
        flits: u64,
        /// Cycles spent waiting for link bandwidth / buffer space (0 on an ideal NoC).
        wait_cycles: Cycle,
    },
}

/// A cycle-bucketed snapshot of every gauge the run exposes.
///
/// Counters are cumulative since cycle 0 — consumers difference adjacent samples to get
/// per-bucket rates. The per-core vectors are indexed by core id.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MetricsSample {
    /// Simulated cycle of the snapshot (a multiple of the sampling interval, plus one final
    /// sample at the makespan).
    pub cycle: Cycle,
    /// Tasks currently in flight inside the scheduler's dependence tracker.
    pub tracker_in_flight: u64,
    /// Depth of the scheduler's ready queue (published + staged descriptors).
    pub ready_queue_len: u64,
    /// Cumulative busy cycles (payload + runtime) per core.
    pub core_busy_cycles: Vec<u64>,
    /// Cumulative idle cycles per core.
    pub core_idle_cycles: Vec<u64>,
    /// Cumulative coherent memory accesses.
    pub mem_accesses: u64,
    /// Cumulative cycles cores stalled on the memory system.
    pub mem_stall_cycles: u64,
    /// Cumulative DRAM line fetches (MESI misses that left the chip).
    pub dram_fetches: u64,
    /// Cumulative dirty-line writebacks.
    pub dram_writebacks: u64,
    /// Cumulative invalidation messages.
    pub invalidations: u64,
    /// Cumulative dirty-line bounces through memory.
    pub dirty_bounces: u64,
    /// Cumulative NoC messages (0 on the snooping bus).
    pub noc_messages: u64,
    /// Cumulative NoC flits (0 unless link contention is modelled).
    pub noc_flits: u64,
    /// Cumulative cycles messages waited on saturated links / full buffers.
    pub noc_link_wait_cycles: u64,
    /// High-water flit occupancy across all links so far.
    pub max_link_occupancy: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn task_stages_order_like_the_lifecycle() {
        use TaskStage::*;
        let order = [Submitted, Ready, Dispatched, ExecStart, ExecEnd, Retired];
        for w in order.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn samples_default_to_cycle_zero() {
        let s = MetricsSample::default();
        assert_eq!(s.cycle, 0);
        assert!(s.core_busy_cycles.is_empty());
    }
}
