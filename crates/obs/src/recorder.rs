//! The one-stop observer: spans + metrics + exporters behind a single config.

use crate::critical::{critical_path, CriticalPath};
use crate::events::{MemEvent, MetricsSample, TaskEvent};
use crate::metrics::MetricsRegistry;
use crate::perfetto;
use crate::span::{SpanCollector, TaskSpan};
use crate::Observer;
use tis_sim::json::Json;
use tis_sim::Cycle;

/// What a [`Recorder`] collects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObsConfig {
    /// Gauge-sampling bucket width in cycles; `0` disables the timeline.
    pub sample_interval: Cycle,
    /// Whether to stream per-transaction memory events (the highest-volume stream; off by
    /// default so observing a long run stays cheap).
    pub mem_events: bool,
}

impl Default for ObsConfig {
    fn default() -> Self {
        ObsConfig { sample_interval: 4096, mem_events: false }
    }
}

impl ObsConfig {
    /// Everything on: fine sampling and the full memory-event stream.
    pub fn full() -> Self {
        ObsConfig { sample_interval: 1024, mem_events: true }
    }
}

/// Collects everything an observed run produces: task spans, the metrics registry, and the
/// gauge timeline — ready to export as Perfetto/metrics JSON or a critical-path table.
#[derive(Debug, Clone, Default)]
pub struct Recorder {
    config: ObsConfig,
    spans: SpanCollector,
    metrics: MetricsRegistry,
    task_events: u64,
}

impl Recorder {
    /// Creates a recorder with the given config.
    pub fn new(config: ObsConfig) -> Self {
        Recorder { config, ..Recorder::default() }
    }

    /// The assembled task spans, in first-submission order.
    pub fn spans(&self) -> &[TaskSpan] {
        self.spans.spans()
    }

    /// The metrics registry (counters, histograms, timeline).
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Total task events observed.
    pub fn task_events(&self) -> u64 {
        self.task_events
    }

    /// Renders the Chrome trace-event / Perfetto document for this run.
    pub fn perfetto_json(&self, label: &str, cores: usize) -> Json {
        perfetto::trace_json(label, cores, self.spans.spans(), self.metrics.samples())
    }

    /// Renders the metrics document for this run.
    pub fn metrics_json(&self, label: &str, makespan: Cycle) -> Json {
        self.metrics.to_json(label, makespan)
    }

    /// Decomposes the makespan over the executed happens-before graph (see
    /// [`critical_path`]); `edges` are the program's dependence edges, e.g.
    /// `GraphSpec::from_program(&program).edges` from `tis-analyze`.
    pub fn critical_path(&self, edges: &[(usize, usize)], makespan: Cycle) -> CriticalPath {
        critical_path(self.spans.spans(), edges, makespan)
    }
}

impl Observer for Recorder {
    fn on_task(&mut self, event: &TaskEvent) {
        self.task_events += 1;
        self.spans.apply(event);
    }

    fn on_mem(&mut self, event: &MemEvent) {
        self.metrics.record_mem(event);
    }

    fn on_sample(&mut self, sample: &MetricsSample) {
        self.metrics.push_sample(sample);
    }

    fn wants_mem_events(&self) -> bool {
        self.config.mem_events
    }

    fn sample_interval(&self) -> Option<Cycle> {
        (self.config.sample_interval > 0).then_some(self.config.sample_interval)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::TaskStage;

    #[test]
    fn recorder_routes_streams_to_the_right_collectors() {
        let mut r = Recorder::new(ObsConfig::full());
        assert!(r.wants_mem_events());
        assert_eq!(r.sample_interval(), Some(1024));
        r.on_task(&TaskEvent { cycle: 5, task: 0, core: None, stage: TaskStage::Submitted, arg: 0 });
        r.on_sample(&MetricsSample { cycle: 0, ..Default::default() });
        assert_eq!(r.task_events(), 1);
        assert_eq!(r.spans().len(), 1);
        assert_eq!(r.metrics().samples().len(), 1);
    }

    #[test]
    fn zero_interval_disables_sampling() {
        let r = Recorder::new(ObsConfig { sample_interval: 0, mem_events: false });
        assert_eq!(r.sample_interval(), None);
    }
}
