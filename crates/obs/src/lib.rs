//! Zero-cost-when-off observability for the simulated machine.
//!
//! The paper argues for Picos by *measuring* it — per-phase task-lifetime overheads (Fig. 7)
//! and end-to-end speedups (Fig. 9) — and this crate gives the reproduction the same
//! introspective power: every layer of the simulation (engine, memory system, Picos tracker,
//! scheduler fabrics, sweep runner) can stream typed events into an [`Observer`] without
//! moving a single simulated cycle.
//!
//! The crate is organised around four pieces:
//!
//! * [`events`] — the typed event vocabulary: [`TaskEvent`] (the task-lifecycle stages
//!   submit → deps-ready → dispatch → execute → retire), [`MemEvent`] (coherence transactions
//!   and NoC legs) and [`MetricsSample`] (a cycle-bucketed gauge snapshot), all flowing
//!   through the single [`Observer`] trait chokepoint;
//! * [`metrics`] — a registry of counters, gauges and histograms with cycle-bucketed
//!   time-series sampling, exported as a hand-rolled JSON document ([`tis_sim::json`] — no new
//!   dependencies);
//! * [`perfetto`] — a Chrome trace-event exporter: task spans become per-core tracks and
//!   tracker/NoC activity become counter tracks, loadable in `ui.perfetto.dev`;
//! * [`critical`] — a critical-path profiler that walks the executed happens-before graph and
//!   attributes the makespan to task-body vs memory-stall vs dispatch-wait vs
//!   scheduler-overhead cycles, machine-checked to sum exactly to the makespan.
//!
//! # The chokepoint contract
//!
//! Observer methods are invoked from exactly two places outside this crate: the engine's step
//! loop and the core-context emission helpers (`tis-machine`). Everything else — fabrics, the
//! Picos device, the memory system — buffers plain data behind an `observing` flag and is
//! drained *by* the engine. `tis-lint` enforces this statically, and the figure pins plus the
//! five `bench-baselines/` artifacts prove the [`NullObserver`] path byte-identical to a build
//! without observability at all.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod critical;
pub mod events;
pub mod metrics;
pub mod perfetto;
pub mod recorder;
pub mod span;

pub use critical::{
    critical_path, critical_path_for_run, critical_path_per_tenant, CriticalPath,
    CriticalPathError, PathCategory, PathSegment,
};
pub use perfetto::{trace_json, trace_json_tenants};
pub use events::{MemAccessKind, MemEvent, MetricsSample, TaskEvent, TaskStage};
pub use metrics::MetricsRegistry;
pub use recorder::{ObsConfig, Recorder};
pub use span::{SpanCollector, TaskSpan};

/// The single chokepoint through which every simulation layer reports what happened.
///
/// All methods have no-op defaults, so an observer implements only what it cares about. The
/// engine consults [`Observer::wants_mem_events`] and [`Observer::sample_interval`] once per
/// run to decide which producers to arm — a disarmed producer buffers nothing and the
/// simulation's cycle arithmetic never changes either way.
pub trait Observer {
    /// A task crossed a lifecycle stage (submit, deps-ready, dispatch, execute, retire).
    fn on_task(&mut self, _event: &TaskEvent) {}

    /// A coherence transaction completed or a NoC message traversed its route.
    fn on_mem(&mut self, _event: &MemEvent) {}

    /// A cycle-bucket boundary was crossed: a snapshot of every gauge at that instant.
    fn on_sample(&mut self, _sample: &MetricsSample) {}

    /// Whether per-transaction memory events should be produced (they are the highest-volume
    /// stream; gauges and task events flow regardless).
    fn wants_mem_events(&self) -> bool {
        false
    }

    /// Bucket width for gauge sampling, or `None` to disable the timeline.
    fn sample_interval(&self) -> Option<tis_sim::Cycle> {
        None
    }
}

/// The do-nothing observer: proves the obs-off path is free.
///
/// Running a simulation with a `NullObserver` attached produces bit-identical
/// [`ExecutionReport`]s (and therefore artifacts) to running with no observer at all — the
/// figure-pin tests assert this.
///
/// [`ExecutionReport`]: https://docs.rs/tis-machine
#[derive(Debug, Clone, Copy, Default)]
pub struct NullObserver;

impl Observer for NullObserver {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_observer_accepts_everything_and_requests_nothing() {
        let mut o = NullObserver;
        assert!(!o.wants_mem_events());
        assert_eq!(o.sample_interval(), None);
        o.on_task(&TaskEvent {
            cycle: 1,
            task: 0,
            core: Some(0),
            stage: TaskStage::Submitted,
            arg: 0,
        });
        o.on_mem(&MemEvent::NocLeg { cycle: 1, from: 0, to: 1, flits: 1, wait_cycles: 0 });
    }
}
