//! A fast, deterministic, non-cryptographic hasher for host-side lookup tables.
//!
//! The simulator's hot paths (most prominently the Picos address table in `tis-picos`) key hash
//! maps by small integers — dependence addresses, software task IDs. The standard library's
//! default SipHash is DoS-resistant but costs tens of cycles per probe, which is pure waste for
//! a single-threaded simulator hashing its own trusted data. [`FxHasher`] reimplements the
//! well-known `rustc-hash`/Firefox "Fx" multiply-and-rotate mix (no external dependency: the
//! whole algorithm is a dozen lines), and [`FxHashMap`] / [`FxHashSet`] are the drop-in map/set
//! aliases built on it.
//!
//! Determinism matters as much as speed here: `FxHasher` has **no per-process random seed**, so
//! iteration orders — while still unspecified — are identical across runs of the same binary.
//! Nothing in the simulator is allowed to depend on map iteration order anyway (the cycle-count
//! invariant is enforced by the figure benches), but a seedless hasher removes one source of
//! run-to-run noise when debugging.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// The 64-bit Fx multiplier: `2^64 / phi`, the same constant `rustc-hash` uses.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
/// Rotation applied before each multiply; spreads low-entropy low bits across the word.
const ROTATE: u32 = 5;

/// A non-cryptographic multiply-and-rotate hasher in the style of `rustc-hash`'s `FxHasher`.
///
/// Each ingested word is folded into the state with `state = (state.rotate_left(5) ^ word) *
/// SEED`. That is 3–4 ALU ops per 8 bytes — roughly an order of magnitude cheaper than SipHash
/// for the 8-byte keys the simulator uses.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    state: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.state = (self.state.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Fold 8 bytes at a time, then the (rare) tail. All simulator keys are fixed-width
        // integers, so this loop body almost always runs exactly once with no tail.
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let tail = chunks.remainder();
        if !tail.is_empty() {
            let mut word = [0u8; 8];
            word[..tail.len()].copy_from_slice(tail);
            self.add_to_hash(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

/// [`BuildHasher`](std::hash::BuildHasher) producing [`FxHasher`]s; seedless, hence fully
/// deterministic across runs.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A [`HashMap`] using [`FxHasher`] — the simulator's standard map for hot-path integer keys.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A [`HashSet`] using [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::BuildHasher;

    fn hash_one(v: impl std::hash::Hash) -> u64 {
        FxBuildHasher::default().hash_one(v)
    }

    #[test]
    fn deterministic_across_hasher_instances() {
        assert_eq!(hash_one(0xDEAD_BEEFu64), hash_one(0xDEAD_BEEFu64));
        assert_eq!(hash_one("address"), hash_one("address"));
    }

    #[test]
    fn distinct_keys_hash_apart() {
        // Not a statistical test — just a guard against a degenerate implementation that maps
        // everything to the same bucket (e.g. forgetting the multiply).
        let hashes: std::collections::HashSet<u64> =
            (0u64..1024).map(|i| hash_one(0xC000_0000 + i * 64)).collect();
        assert!(hashes.len() > 1000, "cache-line-strided keys must not collide en masse");
    }

    #[test]
    fn byte_stream_matches_word_writes_for_whole_words() {
        // `write` on an 8-byte LE buffer must agree with `write_u64`, so `#[derive(Hash)]`
        // structs of u64 fields hash consistently regardless of how std feeds the bytes in.
        let mut a = FxHasher::default();
        a.write(&0x0123_4567_89AB_CDEFu64.to_le_bytes());
        let mut b = FxHasher::default();
        b.write_u64(0x0123_4567_89AB_CDEF);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn tail_bytes_participate() {
        let mut a = FxHasher::default();
        a.write(&[1, 2, 3]);
        let mut b = FxHasher::default();
        b.write(&[1, 2, 4]);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn map_and_set_aliases_work() {
        let mut m: FxHashMap<u64, &str> = FxHashMap::default();
        m.insert(0x1000, "a");
        m.insert(0x2000, "b");
        assert_eq!(m.get(&0x1000), Some(&"a"));
        let s: FxHashSet<u64> = [1, 2, 2, 3].into_iter().collect();
        assert_eq!(s.len(), 3);
    }
}
