//! Deterministic pseudo-random number generation.
//!
//! The simulator only needs modest statistical quality (arbitration jitter, workload value
//! initialisation) but it absolutely needs reproducibility: an experiment must produce identical
//! cycle counts on every run. [`SimRng`] implements the SplitMix64 generator, which is tiny,
//! fast, passes BigCrush when used as a 64-bit generator, and — unlike `rand`'s `StdRng` — is
//! guaranteed never to change behaviour underneath us.

/// A deterministic 64-bit pseudo-random number generator (SplitMix64).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimRng {
    state: u64,
}

impl SimRng {
    /// Creates a generator from a seed. Two generators created from the same seed produce the
    /// same sequence forever.
    pub fn new(seed: u64) -> Self {
        SimRng { state: seed }
    }

    /// Returns the next 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Returns the next 32-bit value.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Returns a uniformly distributed value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be non-zero");
        // Lemire's multiply-shift rejection-free mapping is fine for simulation purposes.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Returns a uniformly distributed value in the inclusive range `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "range lo must not exceed hi");
        lo + self.below(hi - lo + 1)
    }

    /// Returns a uniformly distributed `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p.clamp(0.0, 1.0)
    }

    /// Derives an independent generator for a named sub-component.
    ///
    /// Mixing the label keeps component streams statistically decoupled even though they share
    /// a root seed, so adding a new consumer never perturbs existing ones.
    pub fn fork(&mut self, label: &str) -> SimRng {
        let h = fnv1a(label);
        SimRng::new(self.next_u64() ^ h)
    }

    /// Derives the generator for element `index` of a named stream family **without** advancing
    /// `self`.
    ///
    /// Unlike [`fork`](Self::fork), which consumes state (so the stream a consumer receives
    /// depends on how many forks happened before it), `stream` is a pure function of
    /// `(current state, label, index)`. This is what the `tis-exp` sweep runner uses to give
    /// every grid cell its own RNG: any worker thread can re-derive cell `i`'s stream in any
    /// order and always obtain the same generator, which keeps parallel sweeps bit-identical to
    /// sequential ones.
    pub fn stream(&self, label: &str, index: u64) -> SimRng {
        let h = fnv1a(label);
        // Two SplitMix64 output rounds over (state ⊕ label-hash, +index-offset) decorrelate
        // adjacent indices and labels; a plain XOR would leave neighbouring cells on nearly
        // identical trajectories.
        let mut mix = SimRng::new(self.state ^ h);
        let base = mix.next_u64();
        let mut cell = SimRng::new(base.wrapping_add(index.wrapping_mul(0x9E37_79B9_7F4A_7C15)));
        SimRng::new(cell.next_u64())
    }
}

/// FNV-1a over a label, used to decouple named RNG streams.
fn fnv1a(label: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in label.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

impl Default for SimRng {
    fn default() -> Self {
        SimRng::new(0x5EED_5EED_5EED_5EED)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "streams from different seeds should diverge");
    }

    #[test]
    fn below_respects_bound() {
        let mut r = SimRng::new(7);
        for bound in [1u64, 2, 3, 10, 1000] {
            for _ in 0..200 {
                assert!(r.below(bound) < bound);
            }
        }
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn below_zero_panics() {
        SimRng::new(1).below(0);
    }

    #[test]
    fn range_is_inclusive() {
        let mut r = SimRng::new(3);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..2000 {
            let v = r.range(5, 8);
            assert!((5..=8).contains(&v));
            seen_lo |= v == 5;
            seen_hi |= v == 8;
        }
        assert!(seen_lo && seen_hi, "both endpoints should be reachable");
    }

    #[test]
    fn f64_in_unit_interval_and_roughly_uniform() {
        let mut r = SimRng::new(11);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} too far from 0.5");
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::new(5);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        // Out-of-range probabilities are clamped rather than panicking.
        assert!(r.chance(2.0));
        assert!(!r.chance(-1.0));
    }

    #[test]
    fn stream_is_pure_and_order_independent() {
        let root = SimRng::new(1234);
        // Deriving the same (label, index) twice — or in any order — yields the same generator,
        // and the root is never advanced.
        let mut a = root.stream("cell", 7);
        let mut c = root.stream("cell", 3);
        let mut b = root.stream("cell", 7);
        assert_eq!(a.next_u64(), b.next_u64());
        assert_eq!(root, SimRng::new(1234), "stream() must not mutate the parent");
        // Different indices and labels diverge.
        assert_ne!(a.next_u64(), c.next_u64());
        let mut d = root.stream("other", 7);
        let mut e = root.stream("cell", 7);
        e.next_u64();
        assert_ne!(d.next_u64(), e.next_u64());
    }

    #[test]
    fn stream_indices_are_statistically_decoupled() {
        // Adjacent indices must not produce correlated first draws.
        let root = SimRng::new(42);
        let mut values: Vec<u64> = (0..64).map(|i| root.stream("axis", i).next_u64()).collect();
        values.sort_unstable();
        values.dedup();
        assert_eq!(values.len(), 64, "adjacent stream indices collided");
    }

    #[test]
    fn fork_streams_are_decoupled_but_deterministic() {
        let mut root1 = SimRng::new(99);
        let mut root2 = SimRng::new(99);
        let mut a1 = root1.fork("picos");
        let mut a2 = root2.fork("picos");
        let mut b = SimRng::new(99).fork("memory");
        assert_eq!(a1.next_u64(), a2.next_u64());
        assert_ne!(a1.next_u64(), b.next_u64());
    }
}
