//! Bounded event tracing for simulator debugging.
//!
//! A [`TraceBuffer`] is a ring buffer of timestamped [`TraceEvent`]s. It is disabled (zero
//! capacity) by default so production experiments pay nothing; tests and the examples enable it
//! to explain *why* a schedule looks the way it does (who submitted which task, which core
//! fetched it, when it retired).

use crate::clock::Cycle;
use std::collections::VecDeque;

/// Severity / verbosity classification of a trace event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TraceLevel {
    /// Major lifecycle events: task submitted, task retired, simulation finished.
    Info,
    /// Detailed events: individual RoCC instructions, queue pushes, cache upgrades.
    Detail,
    /// Very fine-grained events, normally only useful when debugging the simulator itself.
    Debug,
}

/// One timestamped trace record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Simulated cycle at which the event occurred.
    pub cycle: Cycle,
    /// Verbosity class of the event.
    pub level: TraceLevel,
    /// Component that emitted the event (e.g. `"picos"`, `"core3"`, `"phentos"`).
    pub source: String,
    /// Human-readable description.
    pub message: String,
}

impl core::fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "[{:>10}] {:<8} {}", self.cycle, self.source, self.message)
    }
}

/// A bounded ring buffer of trace events.
#[derive(Debug, Clone, Default)]
pub struct TraceBuffer {
    events: VecDeque<TraceEvent>,
    capacity: usize,
    max_level: Option<TraceLevel>,
    dropped: u64,
}

impl TraceBuffer {
    /// Creates a disabled trace buffer that ignores all events.
    pub fn disabled() -> Self {
        TraceBuffer { events: VecDeque::new(), capacity: 0, max_level: None, dropped: 0 }
    }

    /// Creates a trace buffer retaining at most `capacity` most-recent events at or below the
    /// given verbosity.
    pub fn new(capacity: usize, max_level: TraceLevel) -> Self {
        TraceBuffer {
            events: VecDeque::with_capacity(capacity.min(4096)),
            capacity,
            max_level: Some(max_level),
            dropped: 0,
        }
    }

    /// Whether the buffer records anything at all.
    pub fn is_enabled(&self) -> bool {
        self.capacity > 0 && self.max_level.is_some()
    }

    /// Whether an event of the given level would be recorded.
    pub fn accepts(&self, level: TraceLevel) -> bool {
        match self.max_level {
            Some(max) if self.capacity > 0 => level <= max,
            _ => false,
        }
    }

    /// Records an event, evicting the oldest one if the buffer is full.
    pub fn record(
        &mut self,
        cycle: Cycle,
        level: TraceLevel,
        source: impl Into<String>,
        message: impl Into<String>,
    ) {
        if !self.accepts(level) {
            return;
        }
        if self.events.len() >= self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(TraceEvent {
            cycle,
            level,
            source: source.into(),
            message: message.into(),
        });
    }

    /// Number of events currently retained.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events are retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of events evicted because the buffer was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Iterates over retained events from oldest to newest.
    pub fn iter(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Renders all retained events, one per line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            out.push_str(&e.to_string());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_buffer_records_nothing() {
        let mut t = TraceBuffer::disabled();
        assert!(!t.is_enabled());
        t.record(1, TraceLevel::Info, "x", "y");
        assert!(t.is_empty());
    }

    #[test]
    fn level_filtering() {
        let mut t = TraceBuffer::new(16, TraceLevel::Info);
        assert!(t.accepts(TraceLevel::Info));
        assert!(!t.accepts(TraceLevel::Detail));
        t.record(1, TraceLevel::Detail, "picos", "ignored");
        t.record(2, TraceLevel::Info, "picos", "kept");
        assert_eq!(t.len(), 1);
        assert_eq!(t.iter().next().unwrap().message, "kept");
    }

    #[test]
    fn ring_buffer_evicts_oldest() {
        let mut t = TraceBuffer::new(3, TraceLevel::Debug);
        for i in 0..5u64 {
            t.record(i, TraceLevel::Info, "core0", format!("e{i}"));
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.dropped(), 2);
        let msgs: Vec<_> = t.iter().map(|e| e.message.clone()).collect();
        assert_eq!(msgs, vec!["e2", "e3", "e4"]);
    }

    #[test]
    fn render_contains_cycle_and_source() {
        let mut t = TraceBuffer::new(4, TraceLevel::Debug);
        t.record(123, TraceLevel::Info, "phentos", "task 7 retired");
        let s = t.render();
        assert!(s.contains("123"));
        assert!(s.contains("phentos"));
        assert!(s.contains("task 7 retired"));
    }
}
