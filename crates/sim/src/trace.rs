//! Bounded event tracing for simulator debugging.
//!
//! A [`TraceBuffer`] is a ring buffer of timestamped [`TraceEvent`]s. It is disabled (zero
//! capacity) by default so production experiments pay nothing; tests and the examples enable it
//! to explain *why* a schedule looks the way it does (who submitted which task, which core
//! fetched it, when it retired).
//!
//! Events are typed: the `source` is a `&'static str` and the payload a [`TracePayload`], so
//! recording a task-lifecycle event allocates nothing even with tracing enabled. The freeform
//! string path ([`TraceBuffer::record`]) is kept for ad-hoc debugging but is deprecated in
//! favour of [`TraceBuffer::record_event`] here and the structured `tis-obs` observer layer for
//! anything analysis-grade.

use crate::clock::Cycle;
use std::collections::VecDeque;

/// Severity / verbosity classification of a trace event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TraceLevel {
    /// Major lifecycle events: task submitted, task retired, simulation finished.
    Info,
    /// Detailed events: individual RoCC instructions, queue pushes, cache upgrades.
    Detail,
    /// Very fine-grained events, normally only useful when debugging the simulator itself.
    Debug,
}

/// Typed content of a trace record.
///
/// The structured variants cover the task-lifecycle vocabulary shared with `tis-obs` and cost
/// no allocation to record; [`TracePayload::Message`] is the legacy freeform escape hatch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TracePayload {
    /// Freeform text (allocates; prefer a structured variant on any hot path).
    Message(String),
    /// A task descriptor was accepted by the scheduler.
    TaskSubmitted {
        /// Software task id.
        task: u64,
    },
    /// A task's dependences were satisfied and its descriptor published as ready.
    TaskReady {
        /// Software task id.
        task: u64,
    },
    /// A core fetched the task for execution.
    TaskDispatched {
        /// Software task id.
        task: u64,
        /// Core that fetched it.
        core: usize,
    },
    /// A core retired the task.
    TaskRetired {
        /// Software task id.
        task: u64,
        /// Core that retired it.
        core: usize,
    },
}

impl core::fmt::Display for TracePayload {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            TracePayload::Message(m) => f.write_str(m),
            TracePayload::TaskSubmitted { task } => write!(f, "task {task} submitted"),
            TracePayload::TaskReady { task } => write!(f, "task {task} ready"),
            TracePayload::TaskDispatched { task, core } => {
                write!(f, "task {task} dispatched on core {core}")
            }
            TracePayload::TaskRetired { task, core } => {
                write!(f, "task {task} retired on core {core}")
            }
        }
    }
}

/// One timestamped trace record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Simulated cycle at which the event occurred.
    pub cycle: Cycle,
    /// Verbosity class of the event.
    pub level: TraceLevel,
    /// Component that emitted the event (e.g. `"picos"`, `"core3"`, `"phentos"`).
    pub source: &'static str,
    /// What happened.
    pub payload: TracePayload,
}

impl TraceEvent {
    /// The payload rendered as text (the historical `message` field).
    pub fn message(&self) -> String {
        self.payload.to_string()
    }
}

impl core::fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "[{:>10}] {:<8} {}", self.cycle, self.source, self.payload)
    }
}

/// A bounded ring buffer of trace events.
#[derive(Debug, Clone, Default)]
pub struct TraceBuffer {
    events: VecDeque<TraceEvent>,
    capacity: usize,
    max_level: Option<TraceLevel>,
    dropped: u64,
}

impl TraceBuffer {
    /// Creates a disabled trace buffer that ignores all events.
    pub fn disabled() -> Self {
        TraceBuffer { events: VecDeque::new(), capacity: 0, max_level: None, dropped: 0 }
    }

    /// Creates a trace buffer retaining at most `capacity` most-recent events at or below the
    /// given verbosity.
    pub fn new(capacity: usize, max_level: TraceLevel) -> Self {
        TraceBuffer {
            events: VecDeque::with_capacity(capacity.min(4096)),
            capacity,
            max_level: Some(max_level),
            dropped: 0,
        }
    }

    /// Whether the buffer records anything at all.
    pub fn is_enabled(&self) -> bool {
        self.capacity > 0 && self.max_level.is_some()
    }

    /// Whether an event of the given level would be recorded.
    pub fn accepts(&self, level: TraceLevel) -> bool {
        match self.max_level {
            Some(max) if self.capacity > 0 => level <= max,
            _ => false,
        }
    }

    /// Records a typed event, evicting the oldest one if the buffer is full. Structured
    /// payloads allocate nothing.
    pub fn record_event(
        &mut self,
        cycle: Cycle,
        level: TraceLevel,
        source: &'static str,
        payload: TracePayload,
    ) {
        if !self.accepts(level) {
            return;
        }
        if self.events.len() >= self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(TraceEvent { cycle, level, source, payload });
    }

    /// Records a freeform text event (the legacy string path).
    ///
    /// Deprecated in spirit: this allocates per event, so structured call sites should use
    /// [`TraceBuffer::record_event`], and anything feeding analysis should emit `tis-obs`
    /// events instead. The method stays for ad-hoc printf-style debugging only. Note that the
    /// message is only materialised after the level check, so a disabled buffer still pays
    /// nothing when callers pass `format!` results lazily via `&str`.
    pub fn record(
        &mut self,
        cycle: Cycle,
        level: TraceLevel,
        source: &'static str,
        message: impl Into<String>,
    ) {
        if !self.accepts(level) {
            return;
        }
        self.record_event(cycle, level, source, TracePayload::Message(message.into()));
    }

    /// Number of events currently retained.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events are retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of events evicted because the buffer was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Iterates over retained events from oldest to newest.
    pub fn iter(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Renders all retained events, one per line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            out.push_str(&e.to_string());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_buffer_records_nothing() {
        let mut t = TraceBuffer::disabled();
        assert!(!t.is_enabled());
        t.record(1, TraceLevel::Info, "x", "y");
        t.record_event(2, TraceLevel::Info, "x", TracePayload::TaskReady { task: 1 });
        assert!(t.is_empty());
    }

    #[test]
    fn level_filtering() {
        let mut t = TraceBuffer::new(16, TraceLevel::Info);
        assert!(t.accepts(TraceLevel::Info));
        assert!(!t.accepts(TraceLevel::Detail));
        t.record(1, TraceLevel::Detail, "picos", "ignored");
        t.record(2, TraceLevel::Info, "picos", "kept");
        assert_eq!(t.len(), 1);
        assert_eq!(t.iter().next().unwrap().message(), "kept");
    }

    #[test]
    fn ring_buffer_evicts_oldest() {
        let mut t = TraceBuffer::new(3, TraceLevel::Debug);
        for i in 0..5u64 {
            t.record_event(i, TraceLevel::Info, "core0", TracePayload::TaskReady { task: i });
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.dropped(), 2);
        let tasks: Vec<_> = t
            .iter()
            .map(|e| match e.payload {
                TracePayload::TaskReady { task } => task,
                _ => panic!("only ready events were recorded"),
            })
            .collect();
        assert_eq!(tasks, vec![2, 3, 4]);
    }

    #[test]
    fn typed_events_render_like_the_string_path() {
        let mut t = TraceBuffer::new(4, TraceLevel::Debug);
        t.record_event(
            123,
            TraceLevel::Info,
            "phentos",
            TracePayload::TaskRetired { task: 7, core: 2 },
        );
        let s = t.render();
        assert!(s.contains("123"));
        assert!(s.contains("phentos"));
        assert!(s.contains("task 7 retired on core 2"));
    }
}
