//! Deterministic cycle-level simulation substrate.
//!
//! This crate provides the low-level building blocks shared by every other crate in the
//! workspace:
//!
//! * [`clock`] — the [`Cycle`] time base, clock-domain conversion helpers and a
//!   monotone [`CycleClock`];
//! * [`stats`] — counters, running statistics, log-scale histograms and geometric means used by
//!   the experiment harnesses;
//! * [`rng`] — a small, fully deterministic pseudo-random number generator so that simulations
//!   are reproducible without pulling the `rand` crate into every component;
//! * [`hwqueue`] — bounded FIFO queues with occupancy accounting, modelling the Chisel `Queue`
//!   instances used throughout Picos Manager and Picos itself, plus the time-ordered
//!   [`TimedQueue`] backing the pipeline-completion models;
//! * [`fxhash`] — a deterministic, seedless, non-cryptographic hasher for host-side lookup
//!   tables on the simulator's hot paths;
//! * [`inline`] — [`InlineVec`], a small vector with inline storage for the short lists the
//!   Picos task memory and address table are made of;
//! * [`trace`] — a lightweight bounded event trace for debugging simulations;
//! * [`json`] — the dependency-free JSON value tree shared by the benchmark artifacts and the
//!   observability exports (`tis-bench` re-exports it for backward compatibility).
//!
//! The whole simulator is single-threaded and deterministic: given the same configuration and the
//! same seeds, every run produces bit-identical results. This mirrors the methodology of the
//! paper, which reports cycle counts measured on a deterministic FPGA prototype.
//!
//! # Example
//!
//! ```
//! use tis_sim::clock::CycleClock;
//! use tis_sim::stats::RunningStats;
//!
//! let mut clock = CycleClock::new();
//! clock.advance(125);
//! let mut stats = RunningStats::new();
//! stats.record(clock.now() as f64);
//! assert_eq!(stats.count(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
pub mod fxhash;
pub mod hwqueue;
pub mod inline;
pub mod json;
pub mod rng;
pub mod stats;
pub mod trace;

pub use clock::{Cycle, CycleClock, Frequency};
pub use fxhash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use hwqueue::{BoundedQueue, TimedQueue};
pub use inline::InlineVec;
pub use json::{Json, JsonParseError};
pub use rng::SimRng;
pub use stats::{geomean, Counter, Histogram, RunningStats};
pub use trace::{TraceBuffer, TraceEvent, TraceLevel, TracePayload};
