//! Statistics collection used by the simulator and the experiment harnesses.
//!
//! Three small tools cover every need of the workspace:
//!
//! * [`Counter`] — a named monotonically increasing event counter;
//! * [`RunningStats`] — streaming mean / min / max / variance without storing samples;
//! * [`Histogram`] — a power-of-two bucketed latency histogram, useful for inspecting the
//!   distribution of memory or scheduling latencies;
//! * [`geomean`] — the geometric mean used by the paper for its headline speedup numbers.

/// A named monotonically increasing counter.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Counter {
    value: u64,
}

impl Counter {
    /// Creates a counter starting at zero.
    pub fn new() -> Self {
        Counter { value: 0 }
    }

    /// Increments the counter by one.
    pub fn incr(&mut self) {
        self.value += 1;
    }

    /// Adds `delta` to the counter.
    pub fn add(&mut self, delta: u64) {
        self.value += delta;
    }

    /// Returns the current value.
    pub fn get(&self) -> u64 {
        self.value
    }
}

/// Streaming statistics (count, mean, min, max, population variance) over `f64` samples.
///
/// Uses Welford's online algorithm so long simulations do not accumulate floating-point error or
/// memory.
#[derive(Debug, Clone, Default)]
pub struct RunningStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
    sum: f64,
}

impl RunningStats {
    /// Creates an empty statistics accumulator.
    pub fn new() -> Self {
        RunningStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            sum: 0.0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        self.sum += x;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        if x < self.min {
            self.min = x;
        }
        if x > self.max {
            self.max = x;
        }
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean of recorded samples, or `0.0` when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sum of all recorded samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Minimum sample, or `None` when empty.
    pub fn min(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.min)
        }
    }

    /// Maximum sample, or `None` when empty.
    pub fn max(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.max)
        }
    }

    /// Population variance, or `0.0` with fewer than two samples.
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Merges another accumulator into this one (parallel Welford merge).
    pub fn merge(&mut self, other: &RunningStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.count as f64 / total as f64;
        let m2 = self.m2
            + other.m2
            + delta * delta * (self.count as f64 * other.count as f64) / total as f64;
        self.mean = mean;
        self.m2 = m2;
        self.count = total;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// A histogram with power-of-two bucket boundaries: bucket `i` counts samples in
/// `[2^i, 2^(i+1))`, with bucket 0 also containing zero.
///
/// Log-scale buckets are a natural fit for latency distributions that span several orders of
/// magnitude (an L1 hit is ~1 cycle, a contended futex is thousands).
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: Vec<u64>,
    stats: RunningStats,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// Number of buckets: enough for any `u64` sample.
    pub const BUCKETS: usize = 65;

    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: vec![0; Self::BUCKETS],
            stats: RunningStats::new(),
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        let idx = if value == 0 {
            0
        } else {
            (63 - value.leading_zeros()) as usize + 1
        };
        let idx = idx.min(Self::BUCKETS - 1);
        self.buckets[idx] += 1;
        self.stats.record(value as f64);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.stats.count()
    }

    /// Mean of recorded samples.
    pub fn mean(&self) -> f64 {
        self.stats.mean()
    }

    /// Maximum recorded sample, or `None` when empty.
    pub fn max(&self) -> Option<f64> {
        self.stats.max()
    }

    /// Returns the count stored in bucket `i` (samples in `[2^(i-1), 2^i)` for `i > 0`).
    pub fn bucket(&self, i: usize) -> u64 {
        self.buckets.get(i).copied().unwrap_or(0)
    }

    /// Returns an approximate p-quantile (0.0 ..= 1.0) using bucket lower bounds.
    ///
    /// The result is exact to within a factor of two, which is sufficient for the latency
    /// sanity checks in the test suite.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        let total = self.count();
        if total == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let target = (q * total as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Some(if i == 0 { 0 } else { 1u64 << (i - 1) });
            }
        }
        Some(1u64 << 62)
    }

    /// Iterates over `(bucket_lower_bound, count)` pairs for non-empty buckets.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets.iter().enumerate().filter(|(_, &c)| c > 0).map(|(i, &c)| {
            let lower = if i == 0 { 0 } else { 1u64 << (i - 1) };
            (lower, c)
        })
    }
}

/// Geometric mean of a sequence of strictly positive values.
///
/// Returns `None` if the input is empty or contains a non-positive value. The paper's headline
/// numbers (2.13×, 13.19×, 6.20×) are geometric means over 37 workload speedup ratios, so the
/// experiment harnesses use this exact helper.
pub fn geomean<I>(values: I) -> Option<f64>
where
    I: IntoIterator<Item = f64>,
{
    let mut log_sum = 0.0f64;
    let mut n = 0usize;
    for v in values {
        if v <= 0.0 || !v.is_finite() {
            return None;
        }
        log_sum += v.ln();
        n += 1;
    }
    if n == 0 {
        None
    } else {
        Some((log_sum / n as f64).exp())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_basics() {
        let mut c = Counter::new();
        c.incr();
        c.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn running_stats_mean_min_max() {
        let mut s = RunningStats::new();
        for x in [2.0, 4.0, 6.0, 8.0] {
            s.record(x);
        }
        assert_eq!(s.count(), 4);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(8.0));
        assert!((s.variance() - 5.0).abs() < 1e-12);
        assert!((s.sum() - 20.0).abs() < 1e-12);
    }

    #[test]
    fn running_stats_empty() {
        let s = RunningStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
        assert_eq!(s.variance(), 0.0);
    }

    #[test]
    fn running_stats_merge_matches_sequential() {
        let samples: Vec<f64> = (1..=100).map(|x| x as f64 * 0.37).collect();
        let mut all = RunningStats::new();
        for &x in &samples {
            all.record(x);
        }
        let mut a = RunningStats::new();
        let mut b = RunningStats::new();
        for (i, &x) in samples.iter().enumerate() {
            if i % 3 == 0 {
                a.record(x);
            } else {
                b.record(x);
            }
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-9);
        assert!((a.variance() - all.variance()).abs() < 1e-9);
        assert_eq!(a.min(), all.min());
        assert_eq!(a.max(), all.max());
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let mut h = Histogram::new();
        for v in [0u64, 1, 1, 2, 3, 4, 8, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 8);
        assert_eq!(h.bucket(0), 1); // the single zero
        assert_eq!(h.bucket(1), 2); // the two ones
        assert_eq!(h.bucket(2), 2); // 2 and 3
        assert_eq!(h.bucket(3), 1); // 4
        assert_eq!(h.bucket(4), 1); // 8
        assert_eq!(h.quantile(0.0), Some(0));
        assert!(h.quantile(1.0).unwrap() >= 512);
        assert_eq!(h.max(), Some(1000.0));
        let nonempty: Vec<_> = h.iter().collect();
        assert_eq!(nonempty.iter().map(|&(_, c)| c).sum::<u64>(), 8);
    }

    #[test]
    fn histogram_empty_quantile_is_none() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.5), None);
    }

    #[test]
    fn geomean_matches_hand_computation() {
        let g = geomean([1.0, 4.0, 16.0]).unwrap();
        assert!((g - 4.0).abs() < 1e-12);
        assert_eq!(geomean(std::iter::empty()), None);
        assert_eq!(geomean([1.0, 0.0]), None);
        assert_eq!(geomean([1.0, -2.0]), None);
    }

    #[test]
    fn geomean_paper_headline_sanity() {
        // The paper reports 2.13x as a geomean over 37 ratios; check our helper is scale
        // invariant the way a geomean must be.
        let ratios: Vec<f64> = (1..=37).map(|i| 1.0 + (i as f64) * 0.1).collect();
        let g1 = geomean(ratios.iter().copied()).unwrap();
        let g2 = geomean(ratios.iter().map(|r| r * 2.0)).unwrap();
        assert!((g2 / g1 - 2.0).abs() < 1e-9);
    }
}
