//! Bounded FIFO queues modelling the Chisel `Queue` hardware primitives.
//!
//! Picos and Picos Manager are built almost entirely out of fixed-capacity FIFOs: the submission
//! queue, the per-core ready queues, the retirement queue, the routing queue inside the
//! work-fetch arbiter, and so on. [`BoundedQueue`] reproduces their behaviour:
//!
//! * pushes fail (return the rejected element) when the queue is full — this is what makes the
//!   non-blocking RoCC instructions of the paper return failure flags;
//! * occupancy statistics (high-water mark, total accepted/rejected) are recorded so experiments
//!   can report queue pressure.
//!
//! The distinction the paper draws between *fallthrough* Chisel queues and *non-fallthrough*
//! Picos queues (Section IV-F2, "protocol crossing modules") is about combinational timing in
//! RTL; at the cycle-count abstraction of this simulator both behave identically, and the
//! protocol-crossing latency is charged by the Picos Manager model instead.

use std::collections::VecDeque;

/// A bounded FIFO with occupancy accounting.
#[derive(Debug, Clone)]
pub struct BoundedQueue<T> {
    items: VecDeque<T>,
    capacity: usize,
    accepted: u64,
    rejected: u64,
    high_water: usize,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue with the given capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero: a zero-entry hardware queue cannot exist.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be non-zero");
        BoundedQueue {
            items: VecDeque::with_capacity(capacity),
            capacity,
            accepted: 0,
            rejected: 0,
            high_water: 0,
        }
    }

    /// Maximum number of elements the queue can hold.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of queued elements.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the queue currently holds no elements.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Whether the queue is at capacity (a push would be rejected).
    pub fn is_full(&self) -> bool {
        self.items.len() >= self.capacity
    }

    /// Remaining free slots.
    pub fn free_slots(&self) -> usize {
        self.capacity - self.items.len()
    }

    /// Attempts to enqueue `item`.
    ///
    /// Returns `Ok(())` on success and `Err(item)` (handing the element back to the producer,
    /// exactly like a de-asserted `ready` signal) if the queue is full.
    pub fn push(&mut self, item: T) -> Result<(), T> {
        if self.is_full() {
            self.rejected += 1;
            return Err(item);
        }
        self.items.push_back(item);
        self.accepted += 1;
        if self.items.len() > self.high_water {
            self.high_water = self.items.len();
        }
        Ok(())
    }

    /// Dequeues the oldest element, if any.
    pub fn pop(&mut self) -> Option<T> {
        self.items.pop_front()
    }

    /// Returns a reference to the oldest element without dequeuing it.
    pub fn front(&self) -> Option<&T> {
        self.items.front()
    }

    /// Total number of successfully enqueued elements over the queue's lifetime.
    pub fn total_accepted(&self) -> u64 {
        self.accepted
    }

    /// Total number of rejected pushes over the queue's lifetime.
    pub fn total_rejected(&self) -> u64 {
        self.rejected
    }

    /// Highest occupancy ever observed.
    pub fn high_water_mark(&self) -> usize {
        self.high_water
    }

    /// Removes all elements, keeping the lifetime statistics.
    pub fn clear(&mut self) {
        self.items.clear();
    }

    /// Iterates over queued elements from oldest to newest.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.items.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_preserved() {
        let mut q = BoundedQueue::new(4);
        for i in 0..4 {
            q.push(i).unwrap();
        }
        assert_eq!(q.pop(), Some(0));
        assert_eq!(q.pop(), Some(1));
        q.push(9).unwrap();
        assert_eq!(q.iter().copied().collect::<Vec<_>>(), vec![2, 3, 9]);
    }

    #[test]
    fn push_to_full_queue_returns_item() {
        let mut q = BoundedQueue::new(2);
        q.push("a").unwrap();
        q.push("b").unwrap();
        assert!(q.is_full());
        assert_eq!(q.push("c"), Err("c"));
        assert_eq!(q.total_rejected(), 1);
        assert_eq!(q.total_accepted(), 2);
    }

    #[test]
    fn occupancy_accounting() {
        let mut q = BoundedQueue::new(8);
        for i in 0..5 {
            q.push(i).unwrap();
        }
        for _ in 0..3 {
            q.pop();
        }
        q.push(10).unwrap();
        assert_eq!(q.len(), 3);
        assert_eq!(q.free_slots(), 5);
        assert_eq!(q.high_water_mark(), 5);
        assert_eq!(q.front(), Some(&3));
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.total_accepted(), 6, "clear keeps lifetime stats");
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_capacity_rejected() {
        let _: BoundedQueue<u8> = BoundedQueue::new(0);
    }

    #[test]
    fn pop_empty_is_none() {
        let mut q: BoundedQueue<u32> = BoundedQueue::new(1);
        assert_eq!(q.pop(), None);
        assert_eq!(q.front(), None);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// The queue behaves exactly like an unbounded VecDeque filtered by a capacity check:
        /// same contents, same pop order, and never exceeds capacity.
        #[test]
        fn matches_reference_model(capacity in 1usize..16, ops in proptest::collection::vec(any::<Option<u8>>(), 0..200)) {
            let mut q = BoundedQueue::new(capacity);
            let mut model: VecDeque<u8> = VecDeque::new();
            for op in ops {
                match op {
                    Some(v) => {
                        let r = q.push(v);
                        if model.len() < capacity {
                            prop_assert!(r.is_ok());
                            model.push_back(v);
                        } else {
                            prop_assert_eq!(r, Err(v));
                        }
                    }
                    None => {
                        prop_assert_eq!(q.pop(), model.pop_front());
                    }
                }
                prop_assert!(q.len() <= capacity);
                prop_assert_eq!(q.len(), model.len());
                prop_assert_eq!(q.front().copied(), model.front().copied());
            }
        }
    }
}
