//! Bounded FIFO queues modelling the Chisel `Queue` hardware primitives.
//!
//! Picos and Picos Manager are built almost entirely out of fixed-capacity FIFOs: the submission
//! queue, the per-core ready queues, the retirement queue, the routing queue inside the
//! work-fetch arbiter, and so on. [`BoundedQueue`] reproduces their behaviour:
//!
//! * pushes fail (return the rejected element) when the queue is full — this is what makes the
//!   non-blocking RoCC instructions of the paper return failure flags;
//! * occupancy statistics (high-water mark, total accepted/rejected) are recorded so experiments
//!   can report queue pressure.
//!
//! The distinction the paper draws between *fallthrough* Chisel queues and *non-fallthrough*
//! Picos queues (Section IV-F2, "protocol crossing modules") is about combinational timing in
//! RTL; at the cycle-count abstraction of this simulator both behave identically, and the
//! protocol-crossing latency is charged by the Picos Manager model instead.

use std::collections::VecDeque;

use crate::clock::Cycle;

/// A bounded FIFO with occupancy accounting.
#[derive(Debug, Clone)]
pub struct BoundedQueue<T> {
    items: VecDeque<T>,
    capacity: usize,
    accepted: u64,
    rejected: u64,
    high_water: usize,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue with the given capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero: a zero-entry hardware queue cannot exist.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be non-zero");
        BoundedQueue {
            items: VecDeque::with_capacity(capacity),
            capacity,
            accepted: 0,
            rejected: 0,
            high_water: 0,
        }
    }

    /// Maximum number of elements the queue can hold.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of queued elements.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the queue currently holds no elements.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Whether the queue is at capacity (a push would be rejected).
    pub fn is_full(&self) -> bool {
        self.items.len() >= self.capacity
    }

    /// Remaining free slots.
    pub fn free_slots(&self) -> usize {
        self.capacity - self.items.len()
    }

    /// Attempts to enqueue `item`.
    ///
    /// Returns `Ok(())` on success and `Err(item)` (handing the element back to the producer,
    /// exactly like a de-asserted `ready` signal) if the queue is full.
    pub fn push(&mut self, item: T) -> Result<(), T> {
        if self.is_full() {
            self.rejected += 1;
            return Err(item);
        }
        self.items.push_back(item);
        self.accepted += 1;
        if self.items.len() > self.high_water {
            self.high_water = self.items.len();
        }
        Ok(())
    }

    /// Dequeues the oldest element, if any.
    pub fn pop(&mut self) -> Option<T> {
        self.items.pop_front()
    }

    /// Returns a reference to the oldest element without dequeuing it.
    pub fn front(&self) -> Option<&T> {
        self.items.front()
    }

    /// Total number of successfully enqueued elements over the queue's lifetime.
    pub fn total_accepted(&self) -> u64 {
        self.accepted
    }

    /// Total number of rejected pushes over the queue's lifetime.
    pub fn total_rejected(&self) -> u64 {
        self.rejected
    }

    /// Highest occupancy ever observed.
    pub fn high_water_mark(&self) -> usize {
        self.high_water
    }

    /// Removes all elements, keeping the lifetime statistics.
    pub fn clear(&mut self) {
        self.items.clear();
    }

    /// Iterates over queued elements from oldest to newest.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.items.iter()
    }
}

/// An unbounded queue of `(due-cycle, payload)` events kept permanently sorted by due time,
/// breaking ties by insertion order.
///
/// Picos' pipeline model defers retirements and ready publications to their simulated completion
/// cycles. The obvious representation — a `Vec` re-sorted on every drain with `remove(0)` pops —
/// is quadratic in the backlog and was one of the measured hot spots of the simulator
/// (`micro_components`). `TimedQueue` keeps the backlog ordered at all times: insertion is a
/// binary search plus a ring-buffer insert (`O(log n + n)` worst case but `O(log n)` when events
/// are scheduled in roughly increasing time order, which pipeline completions are), and popping
/// the next due event is `O(1)` with no re-sort.
///
/// The ordering contract is exactly what the previous stable-sort code provided — events with
/// equal due times drain in the order they were scheduled — so replacing one with the other
/// cannot change any simulated cycle count.
#[derive(Debug, Clone, Default)]
pub struct TimedQueue<T> {
    items: VecDeque<(Cycle, T)>,
}

impl<T> TimedQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        TimedQueue { items: VecDeque::new() }
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether no events are scheduled.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Schedules `item` to become due at cycle `at`, after any already-scheduled event with the
    /// same due time (stable order).
    pub fn schedule(&mut self, at: Cycle, item: T) {
        let idx = self.items.partition_point(|&(t, _)| t <= at);
        if idx == self.items.len() {
            self.items.push_back((at, item));
        } else {
            self.items.insert(idx, (at, item));
        }
    }

    /// Due time of the earliest event, if any.
    pub fn next_due(&self) -> Option<Cycle> {
        self.items.front().map(|&(t, _)| t)
    }

    /// Pops the earliest event if it is due at or before `now`.
    pub fn pop_due(&mut self, now: Cycle) -> Option<(Cycle, T)> {
        match self.items.front() {
            Some(&(t, _)) if t <= now => self.items.pop_front(),
            _ => None,
        }
    }

    /// Iterates over scheduled events, earliest first.
    pub fn iter(&self) -> impl Iterator<Item = &(Cycle, T)> {
        self.items.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_preserved() {
        let mut q = BoundedQueue::new(4);
        for i in 0..4 {
            q.push(i).unwrap();
        }
        assert_eq!(q.pop(), Some(0));
        assert_eq!(q.pop(), Some(1));
        q.push(9).unwrap();
        assert_eq!(q.iter().copied().collect::<Vec<_>>(), vec![2, 3, 9]);
    }

    #[test]
    fn push_to_full_queue_returns_item() {
        let mut q = BoundedQueue::new(2);
        q.push("a").unwrap();
        q.push("b").unwrap();
        assert!(q.is_full());
        assert_eq!(q.push("c"), Err("c"));
        assert_eq!(q.total_rejected(), 1);
        assert_eq!(q.total_accepted(), 2);
    }

    #[test]
    fn occupancy_accounting() {
        let mut q = BoundedQueue::new(8);
        for i in 0..5 {
            q.push(i).unwrap();
        }
        for _ in 0..3 {
            q.pop();
        }
        q.push(10).unwrap();
        assert_eq!(q.len(), 3);
        assert_eq!(q.free_slots(), 5);
        assert_eq!(q.high_water_mark(), 5);
        assert_eq!(q.front(), Some(&3));
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.total_accepted(), 6, "clear keeps lifetime stats");
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_capacity_rejected() {
        let _: BoundedQueue<u8> = BoundedQueue::new(0);
    }

    #[test]
    fn pop_empty_is_none() {
        let mut q: BoundedQueue<u32> = BoundedQueue::new(1);
        assert_eq!(q.pop(), None);
        assert_eq!(q.front(), None);
    }
}

#[cfg(test)]
mod timed_tests {
    use super::*;

    #[test]
    fn drains_in_time_order() {
        let mut q = TimedQueue::new();
        q.schedule(30, "c");
        q.schedule(10, "a");
        q.schedule(20, "b");
        assert_eq!(q.len(), 3);
        assert_eq!(q.next_due(), Some(10));
        assert_eq!(q.pop_due(25), Some((10, "a")));
        assert_eq!(q.pop_due(25), Some((20, "b")));
        assert_eq!(q.pop_due(25), None, "c is not due yet");
        assert_eq!(q.pop_due(30), Some((30, "c")));
        assert!(q.is_empty());
    }

    #[test]
    fn equal_due_times_keep_schedule_order() {
        let mut q = TimedQueue::new();
        q.schedule(5, 'x');
        q.schedule(9, 'z');
        q.schedule(5, 'y');
        let order: Vec<char> = std::iter::from_fn(|| q.pop_due(100).map(|(_, v)| v)).collect();
        assert_eq!(order, vec!['x', 'y', 'z']);
    }

    #[test]
    fn matches_stable_sort_reference() {
        // The ordering contract that makes TimedQueue a drop-in replacement for the old
        // "stable-sort then remove(0)" pattern: interleave schedules and drains, compare.
        let mut q = TimedQueue::new();
        let mut model: Vec<(Cycle, u32)> = Vec::new();
        let times = [7u64, 3, 7, 7, 1, 9, 3, 3, 12, 0, 7, 5];
        for (i, &t) in times.iter().enumerate() {
            q.schedule(t, i as u32);
            model.push((t, i as u32));
            if i % 3 == 2 {
                model.sort_by_key(|&(t, _)| t); // stable
                let gate = t;
                while !model.is_empty() && model[0].0 <= gate {
                    assert_eq!(q.pop_due(gate), Some(model.remove(0)));
                }
                assert_eq!(q.pop_due(gate), None);
            }
        }
        model.sort_by_key(|&(t, _)| t);
        while !model.is_empty() {
            assert_eq!(q.pop_due(u64::MAX), Some(model.remove(0)));
        }
        assert!(q.is_empty());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// `TimedQueue` drains identically to the stable-sort + `remove(0)` pattern it replaced,
        /// for arbitrary interleavings of schedules and gated drains.
        #[test]
        fn timed_queue_matches_stable_sort_model(
            ops in proptest::collection::vec((0u64..32, any::<bool>()), 0..120)
        ) {
            let mut q = TimedQueue::new();
            let mut model: Vec<(Cycle, usize)> = Vec::new();
            for (i, (t, drain)) in ops.into_iter().enumerate() {
                if drain {
                    model.sort_by_key(|&(t, _)| t);
                    while !model.is_empty() && model[0].0 <= t {
                        prop_assert_eq!(q.pop_due(t), Some(model.remove(0)));
                    }
                    prop_assert_eq!(q.pop_due(t), None);
                } else {
                    q.schedule(t, i);
                    model.push((t, i));
                }
                prop_assert_eq!(q.len(), model.len());
            }
        }
    }
}

#[cfg(test)]
mod bounded_proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// The queue behaves exactly like an unbounded VecDeque filtered by a capacity check:
        /// same contents, same pop order, and never exceeds capacity.
        #[test]
        fn matches_reference_model(capacity in 1usize..16, ops in proptest::collection::vec(any::<Option<u8>>(), 0..200)) {
            let mut q = BoundedQueue::new(capacity);
            let mut model: VecDeque<u8> = VecDeque::new();
            for op in ops {
                match op {
                    Some(v) => {
                        let r = q.push(v);
                        if model.len() < capacity {
                            prop_assert!(r.is_ok());
                            model.push_back(v);
                        } else {
                            prop_assert_eq!(r, Err(v));
                        }
                    }
                    None => {
                        prop_assert_eq!(q.pop(), model.pop_front());
                    }
                }
                prop_assert!(q.len() <= capacity);
                prop_assert_eq!(q.len(), model.len());
                prop_assert_eq!(q.front().copied(), model.front().copied());
            }
        }
    }
}
