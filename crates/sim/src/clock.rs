//! Time base for the simulator.
//!
//! Everything in the workspace measures time in **core clock cycles** of the simulated Rocket
//! Chip (the paper's prototype runs at 80 MHz). [`Cycle`] is a plain `u64` so that arithmetic
//! stays ergonomic in hot simulation loops; [`Frequency`] and [`ClockDomain`] provide the
//! conversions needed when reasoning about the 667 MHz memory clock or wall-clock time.

/// A point in (or duration of) simulated time, measured in core clock cycles.
pub type Cycle = u64;

/// A clock frequency in hertz.
///
/// The prototype evaluated in the paper runs its Rocket cores at 80 MHz while the memory
/// controller runs at 667 MHz; both are captured as `Frequency` values so latencies can be
/// converted between domains.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Frequency(u64);

impl Frequency {
    /// Rocket Chip core clock used by the paper's FPGA prototype.
    pub const ROCKET_FPGA: Frequency = Frequency::from_mhz(80);
    /// DDR memory clock of the ZCU102 board used by the paper.
    pub const ZCU102_DDR: Frequency = Frequency::from_mhz(667);

    /// Creates a frequency from a value in hertz.
    ///
    /// # Panics
    ///
    /// Panics if `hz` is zero.
    pub const fn from_hz(hz: u64) -> Self {
        assert!(hz > 0, "frequency must be non-zero");
        Frequency(hz)
    }

    /// Creates a frequency from a value in megahertz.
    pub const fn from_mhz(mhz: u64) -> Self {
        Frequency::from_hz(mhz * 1_000_000)
    }

    /// Returns the frequency in hertz.
    pub const fn hz(self) -> u64 {
        self.0
    }

    /// Returns the frequency in megahertz (integer division).
    pub const fn mhz(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Converts a number of cycles of this clock into seconds.
    pub fn cycles_to_seconds(self, cycles: Cycle) -> f64 {
        cycles as f64 / self.0 as f64
    }

    /// Converts a duration in seconds into a (rounded) number of cycles of this clock.
    pub fn seconds_to_cycles(self, seconds: f64) -> Cycle {
        (seconds * self.0 as f64).round() as Cycle
    }
}

impl Default for Frequency {
    fn default() -> Self {
        Frequency::ROCKET_FPGA
    }
}

impl core::fmt::Display for Frequency {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        if self.0.is_multiple_of(1_000_000) {
            write!(f, "{} MHz", self.mhz())
        } else {
            write!(f, "{} Hz", self.0)
        }
    }
}

/// Relationship between two clock domains.
///
/// Latencies published for one domain (e.g. DRAM cycles at 667 MHz) are converted into core
/// cycles by [`ClockDomain::to_core_cycles`]. The paper exploits exactly this ratio: because the
/// memory clock is much faster than the 80 MHz core clock, L1 misses are comparatively cheap on
/// the prototype.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClockDomain {
    /// Frequency of the core clock in which simulation time is expressed.
    pub core: Frequency,
    /// Frequency of the foreign clock whose latencies we want to convert.
    pub foreign: Frequency,
}

impl ClockDomain {
    /// Creates a clock-domain description.
    pub const fn new(core: Frequency, foreign: Frequency) -> Self {
        ClockDomain { core, foreign }
    }

    /// Converts `foreign_cycles` of the foreign clock into core cycles, rounding up.
    ///
    /// Rounding up is the conservative choice for latencies: hardware cannot finish in a
    /// fraction of a core cycle.
    pub fn to_core_cycles(&self, foreign_cycles: Cycle) -> Cycle {
        let num = foreign_cycles as u128 * self.core.hz() as u128;
        let den = self.foreign.hz() as u128;
        num.div_ceil(den) as Cycle
    }

    /// Converts core cycles into cycles of the foreign clock, rounding up.
    pub fn to_foreign_cycles(&self, core_cycles: Cycle) -> Cycle {
        let num = core_cycles as u128 * self.foreign.hz() as u128;
        let den = self.core.hz() as u128;
        num.div_ceil(den) as Cycle
    }
}

impl Default for ClockDomain {
    fn default() -> Self {
        ClockDomain::new(Frequency::ROCKET_FPGA, Frequency::ZCU102_DDR)
    }
}

/// A monotone simulated clock.
///
/// `CycleClock` never moves backwards; attempting to do so is a programming error in the
/// simulator and triggers a panic in debug builds via `debug_assert!`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CycleClock {
    now: Cycle,
}

impl CycleClock {
    /// Creates a clock starting at cycle zero.
    pub fn new() -> Self {
        CycleClock { now: 0 }
    }

    /// Creates a clock starting at an arbitrary cycle.
    pub fn starting_at(now: Cycle) -> Self {
        CycleClock { now }
    }

    /// Returns the current cycle.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Advances the clock by `delta` cycles and returns the new time.
    pub fn advance(&mut self, delta: Cycle) -> Cycle {
        self.now = self.now.saturating_add(delta);
        self.now
    }

    /// Moves the clock forward to `target` if `target` is in the future; otherwise leaves it
    /// unchanged. Returns the (possibly unchanged) current time.
    pub fn advance_to(&mut self, target: Cycle) -> Cycle {
        if target > self.now {
            self.now = target;
        }
        self.now
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frequency_constructors_and_accessors() {
        let f = Frequency::from_mhz(80);
        assert_eq!(f.hz(), 80_000_000);
        assert_eq!(f.mhz(), 80);
        assert_eq!(format!("{f}"), "80 MHz");
        let odd = Frequency::from_hz(1234);
        assert_eq!(format!("{odd}"), "1234 Hz");
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_frequency_panics() {
        let _ = Frequency::from_hz(0);
    }

    #[test]
    fn cycles_seconds_roundtrip() {
        let f = Frequency::from_mhz(80);
        let s = f.cycles_to_seconds(80_000_000);
        assert!((s - 1.0).abs() < 1e-12);
        assert_eq!(f.seconds_to_cycles(0.5), 40_000_000);
    }

    #[test]
    fn domain_conversion_is_ceiling() {
        // 1 DDR cycle at 667 MHz is a fraction of a core cycle at 80 MHz -> rounds up to 1.
        let d = ClockDomain::default();
        assert_eq!(d.to_core_cycles(1), 1);
        // 667 DDR cycles are exactly 80 core cycles worth of time? 667/667*80 = 80.
        assert_eq!(d.to_core_cycles(667_000_000), 80_000_000);
        // And the reverse direction expands.
        assert_eq!(d.to_foreign_cycles(80), 667);
    }

    #[test]
    fn domain_roundtrip_never_shrinks() {
        let d = ClockDomain::new(Frequency::from_mhz(80), Frequency::from_mhz(667));
        for cycles in [1u64, 7, 80, 1000, 123_456] {
            let rt = d.to_core_cycles(d.to_foreign_cycles(cycles));
            assert!(rt >= cycles, "roundtrip shrank {cycles} to {rt}");
        }
    }

    #[test]
    fn clock_is_monotone() {
        let mut c = CycleClock::new();
        assert_eq!(c.now(), 0);
        assert_eq!(c.advance(10), 10);
        assert_eq!(c.advance_to(5), 10, "advance_to must not move backwards");
        assert_eq!(c.advance_to(25), 25);
        let mut c2 = CycleClock::starting_at(100);
        assert_eq!(c2.advance(1), 101);
    }

    #[test]
    fn clock_saturates_instead_of_overflowing() {
        let mut c = CycleClock::starting_at(Cycle::MAX - 1);
        assert_eq!(c.advance(10), Cycle::MAX);
    }
}
