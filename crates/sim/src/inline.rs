//! A small vector with inline storage for the common short case.
//!
//! The Picos task memory holds, per in-flight task, its dependence list and its successor list;
//! the address table holds, per address, its reader list. In the paper's workloads these lists
//! are almost always tiny (a task rarely has more than a few dependences, an address rarely more
//! than a few concurrent readers), yet `Vec` pays a heap allocation for each. [`InlineVec`]
//! stores up to `N` elements inline inside the owning structure and only falls back to the heap
//! when a list genuinely grows past `N` — so the common case allocates nothing at all.
//!
//! The implementation stays within the crate's `#![forbid(unsafe_code)]` policy by requiring
//! `T: Copy + Default` (all simulator element types are small `Copy` tuples): the inline buffer
//! is a plain `[T; N]` initialised with defaults, and "moving" elements is a copy.

/// A vector storing up to `N` elements inline, spilling to the heap beyond that.
///
/// Once a value spills it stays heap-backed until [`clear`](InlineVec::clear) — lists that
/// briefly exceed `N` are rare enough that migrating back inline is not worth the copies.
#[derive(Debug, Clone)]
pub struct InlineVec<T: Copy + Default, const N: usize> {
    inline: [T; N],
    /// Number of live inline elements; meaningful only while `!spilled`.
    len: usize,
    /// Heap storage, used exclusively once `spilled` is set.
    spill: Vec<T>,
    spilled: bool,
}

impl<T: Copy + Default, const N: usize> InlineVec<T, N> {
    /// Creates an empty vector (no heap allocation).
    pub fn new() -> Self {
        InlineVec { inline: [T::default(); N], len: 0, spill: Vec::new(), spilled: false }
    }

    /// Number of live elements.
    pub fn len(&self) -> usize {
        if self.spilled {
            self.spill.len()
        } else {
            self.len
        }
    }

    /// Whether the vector holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether the vector has spilled to the heap.
    pub fn is_spilled(&self) -> bool {
        self.spilled
    }

    /// Appends an element, spilling to the heap if the inline buffer is full.
    pub fn push(&mut self, value: T) {
        if self.spilled {
            self.spill.push(value);
        } else if self.len < N {
            self.inline[self.len] = value;
            self.len += 1;
        } else {
            self.spill.reserve(N + 1);
            self.spill.extend_from_slice(&self.inline[..self.len]);
            self.spill.push(value);
            self.spilled = true;
            self.len = 0;
        }
    }

    /// Removes all elements. Keeps any heap capacity for reuse, but returns to inline mode so
    /// subsequent short lists stay allocation-free in steady state.
    pub fn clear(&mut self) {
        self.spill.clear();
        self.spilled = false;
        self.len = 0;
    }

    /// The elements as a contiguous slice.
    pub fn as_slice(&self) -> &[T] {
        if self.spilled {
            &self.spill
        } else {
            &self.inline[..self.len]
        }
    }

    /// Iterates over the elements in insertion order.
    pub fn iter(&self) -> core::slice::Iter<'_, T> {
        self.as_slice().iter()
    }

    /// Keeps only the elements for which `pred` returns `true`, preserving order.
    pub fn retain(&mut self, mut pred: impl FnMut(&T) -> bool) {
        if self.spilled {
            self.spill.retain(|v| pred(v));
        } else {
            let mut kept = 0;
            for i in 0..self.len {
                if pred(&self.inline[i]) {
                    self.inline[kept] = self.inline[i];
                    kept += 1;
                }
            }
            self.len = kept;
        }
    }
}

impl<T: Copy + Default, const N: usize> Default for InlineVec<T, N> {
    fn default() -> Self {
        InlineVec::new()
    }
}

impl<T: Copy + Default, const N: usize> Extend<T> for InlineVec<T, N> {
    fn extend<I: IntoIterator<Item = T>>(&mut self, iter: I) {
        for v in iter {
            self.push(v);
        }
    }
}

impl<T: Copy + Default, const N: usize> FromIterator<T> for InlineVec<T, N> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let mut v = InlineVec::new();
        v.extend(iter);
        v
    }
}

impl<'a, T: Copy + Default, const N: usize> IntoIterator for &'a InlineVec<T, N> {
    type Item = &'a T;
    type IntoIter = core::slice::Iter<'a, T>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stays_inline_up_to_capacity() {
        let mut v: InlineVec<u32, 4> = InlineVec::new();
        for i in 0..4 {
            v.push(i);
        }
        assert!(!v.is_spilled());
        assert_eq!(v.as_slice(), &[0, 1, 2, 3]);
    }

    #[test]
    fn spills_past_capacity_and_preserves_order() {
        let mut v: InlineVec<u32, 4> = (0..10).collect();
        assert!(v.is_spilled());
        assert_eq!(v.len(), 10);
        assert_eq!(v.iter().copied().collect::<Vec<_>>(), (0..10).collect::<Vec<_>>());
        v.push(10);
        assert_eq!(v.as_slice().last(), Some(&10));
    }

    #[test]
    fn clear_returns_to_inline_mode() {
        let mut v: InlineVec<u32, 2> = (0..5).collect();
        assert!(v.is_spilled());
        v.clear();
        assert!(v.is_empty() && !v.is_spilled());
        v.push(42);
        assert!(!v.is_spilled(), "short lists after clear stay inline");
        assert_eq!(v.as_slice(), &[42]);
    }

    #[test]
    fn retain_inline_and_spilled() {
        let mut inline: InlineVec<u32, 8> = (0..6).collect();
        inline.retain(|&x| x % 2 == 0);
        assert_eq!(inline.as_slice(), &[0, 2, 4]);

        let mut spilled: InlineVec<u32, 2> = (0..6).collect();
        spilled.retain(|&x| x % 2 == 1);
        assert_eq!(spilled.as_slice(), &[1, 3, 5]);
    }

    #[test]
    fn retain_to_empty_then_reuse() {
        let mut v: InlineVec<u32, 2> = (0..4).collect();
        v.retain(|_| false);
        assert!(v.is_empty());
        v.push(7);
        assert_eq!(v.as_slice(), &[7], "a spilled-then-emptied vector still accepts pushes");
    }

    #[test]
    fn matches_vec_reference_model() {
        // Mixed push/retain/clear sequence against a plain Vec oracle.
        let mut v: InlineVec<u64, 4> = InlineVec::new();
        let mut model: Vec<u64> = Vec::new();
        for round in 0u64..50 {
            match round % 7 {
                6 => {
                    v.clear();
                    model.clear();
                }
                3 => {
                    v.retain(|&x| x % 3 != 0);
                    model.retain(|&x| x % 3 != 0);
                }
                _ => {
                    v.push(round);
                    model.push(round);
                }
            }
            assert_eq!(v.as_slice(), model.as_slice(), "diverged at round {round}");
        }
    }
}
