//! A minimal, dependency-free JSON writer for machine-readable benchmark output.
//!
//! The workspace vendors no serialisation crate (the build environment has no registry
//! access), and the benchmark output is a small, fixed shape — so a hand-rolled value tree
//! with a compliant renderer is all that is needed. The renderer escapes strings per RFC 8259,
//! emits non-finite numbers as `null` (JSON has no NaN/Infinity), and pretty-prints with
//! two-space indentation so the artifacts diff cleanly between CI runs.

/// A JSON value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (serialised without a decimal point).
    Int(i64),
    /// An unsigned integer (cycle counts exceed `i64` range in long simulations).
    UInt(u64),
    /// A floating-point number; non-finite values render as `null`.
    Num(f64),
    /// A string (escaped on render).
    Str(String),
    /// An ordered array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for an object from `(key, value)` pairs.
    pub fn obj<I: IntoIterator<Item = (&'static str, Json)>>(pairs: I) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Looks up a key in an object. Returns `None` for missing keys and non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric view of the value, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::UInt(u) => Some(*u as f64),
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// String view of the value, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Parses a JSON document (RFC 8259 subset sufficient for the `BENCH_*.json` artifacts:
    /// all value kinds, string escapes including `\uXXXX`, no comments).
    ///
    /// Integers without fraction/exponent parse as [`Json::UInt`]/[`Json::Int`]; everything
    /// else numeric parses as [`Json::Num`]. This keeps `parse(render(v))` lossless for the
    /// values the bench writers emit.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonParseError`] with a byte offset and message on malformed input.
    pub fn parse(input: &str) -> Result<Json, JsonParseError> {
        let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after the JSON document"));
        }
        Ok(v)
    }

    /// Renders the value as pretty-printed JSON with two-space indentation.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out.push('\n');
        out
    }

    fn render_into(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => out.push_str(&i.to_string()),
            Json::UInt(u) => out.push_str(&u.to_string()),
            Json::Num(n) => {
                if n.is_finite() {
                    // `{:?}` keeps full round-trip precision and always marks the value as
                    // non-integer where relevant (e.g. "1.0"), which keeps column types stable
                    // for downstream tooling.
                    out.push_str(&format!("{n:?}"));
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => escape_into(s, out),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.render_into(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    escape_into(key, out);
                    out.push_str(": ");
                    value.render_into(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

/// Error produced by [`Json::parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonParseError {
    /// Byte offset into the input at which parsing failed.
    pub offset: usize,
    /// Human-readable description of the failure.
    pub message: String,
}

impl core::fmt::Display for JsonParseError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonParseError {}

/// Recursive-descent parser over the input bytes.
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonParseError {
        JsonParseError { offset: self.pos, message: message.to_string() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonParseError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            pairs.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let code = self.hex4()?;
                            // The bench writers only escape control characters, so lone
                            // surrogates are rejected rather than paired.
                            match char::from_u32(code) {
                                Some(c) => out.push(c),
                                None => return Err(self.err("unpaired surrogate escape")),
                            }
                            continue;
                        }
                        _ => return Err(self.err("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input came from &str, so boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = core::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().expect("peeked non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonParseError> {
        let mut code = 0u32;
        for _ in 0..4 {
            let d = match self.peek() {
                Some(c @ b'0'..=b'9') => (c - b'0') as u32,
                Some(c @ b'a'..=b'f') => (c - b'a' + 10) as u32,
                Some(c @ b'A'..=b'F') => (c - b'A' + 10) as u32,
                _ => return Err(self.err("expected four hex digits after \\u")),
            };
            code = code * 16 + d;
            self.pos += 1;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, JsonParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut integral = true;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    integral = false;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = core::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number");
        if integral {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Json::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Json::Int(i));
            }
        }
        match text.parse::<f64>() {
            Ok(n) if n.is_finite() => Ok(Json::Num(n)),
            _ => {
                self.pos = start;
                Err(self.err("malformed number"))
            }
        }
    }
}

fn push_indent(out: &mut String, levels: usize) {
    for _ in 0..levels {
        out.push_str("  ");
    }
}

/// Escapes a string per RFC 8259 and appends it, quotes included.
fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(Json::Null.render(), "null\n");
        assert_eq!(Json::Bool(true).render(), "true\n");
        assert_eq!(Json::Int(-3).render(), "-3\n");
        assert_eq!(Json::UInt(u64::MAX).render(), format!("{}\n", u64::MAX));
        assert_eq!(Json::Num(2.13).render(), "2.13\n");
        assert_eq!(Json::Num(f64::NAN).render(), "null\n", "JSON has no NaN");
        assert_eq!(Json::Num(f64::INFINITY).render(), "null\n");
    }

    #[test]
    fn strings_escape() {
        assert_eq!(Json::Str("a\"b\\c\nd".into()).render(), "\"a\\\"b\\\\c\\nd\"\n");
        assert_eq!(Json::Str("\u{1}".into()).render(), "\"\\u0001\"\n");
        assert_eq!(Json::Str("plain ascii-64x64".into()).render(), "\"plain ascii-64x64\"\n");
    }

    #[test]
    fn empty_containers_are_compact() {
        assert_eq!(Json::Arr(vec![]).render(), "[]\n");
        assert_eq!(Json::Obj(vec![]).render(), "{}\n");
    }

    #[test]
    fn nested_structure_pretty_prints() {
        let v = Json::obj([
            ("name", Json::Str("fig09".into())),
            ("speedups", Json::Arr(vec![Json::Num(1.5), Json::Num(4.25)])),
        ]);
        let expected = "{\n  \"name\": \"fig09\",\n  \"speedups\": [\n    1.5,\n    4.25\n  ]\n}\n";
        assert_eq!(v.render(), expected);
    }

    #[test]
    fn parse_round_trips_the_writer() {
        let v = Json::obj([
            ("figure", Json::Str("fig09".into())),
            ("quote", Json::Str("a\"b\\c\n\u{1}".into())),
            ("flag", Json::Bool(false)),
            ("nothing", Json::Null),
            ("big", Json::UInt(u64::MAX)),
            ("neg", Json::Int(-42)),
            ("ratio", Json::Num(2.13)),
            ("empty_arr", Json::Arr(vec![])),
            ("arr", Json::Arr(vec![Json::Num(1.0), Json::UInt(7)])),
            ("nested", Json::obj([("k", Json::Str("v".into()))])),
        ]);
        let parsed = Json::parse(&v.render()).unwrap();
        assert_eq!(parsed, v);
        // Accessors used by the diff tool.
        assert_eq!(parsed.get("figure").and_then(Json::as_str), Some("fig09"));
        assert_eq!(parsed.get("ratio").and_then(Json::as_f64), Some(2.13));
        assert_eq!(parsed.get("neg").and_then(Json::as_f64), Some(-42.0));
        assert_eq!(parsed.get("missing"), None);
        assert_eq!(Json::Null.get("k"), None);
    }

    #[test]
    fn parse_accepts_plain_json_variants() {
        assert_eq!(Json::parse(" [1, 2.5e1, -3] ").unwrap(), Json::Arr(vec![
            Json::UInt(1),
            Json::Num(25.0),
            Json::Int(-3),
        ]));
        assert_eq!(Json::parse("{}").unwrap(), Json::Obj(vec![]));
        assert_eq!(Json::parse("\"\\u0041\"").unwrap(), Json::Str("A".into()));
        assert_eq!(Json::parse("true").unwrap(), Json::Bool(true));
    }

    #[test]
    fn parse_rejects_malformed_input() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "nul", "1 2", "\"unterminated", "\"\\q\"", "--1"] {
            let e = Json::parse(bad).unwrap_err();
            assert!(!e.to_string().is_empty(), "{bad:?} must fail with a message");
        }
        let e = Json::parse("[1, x]").unwrap_err();
        assert_eq!(e.offset, 4, "error points at the offending byte");
    }

    #[test]
    fn numbers_keep_roundtrip_precision() {
        let v = Json::Num(13.190000000000001);
        let rendered = v.render();
        let parsed: f64 = rendered.trim().parse().unwrap();
        assert_eq!(parsed, 13.190000000000001);
        assert_eq!(Json::Num(1.0).render(), "1.0\n", "floats keep a decimal point");
    }
}
