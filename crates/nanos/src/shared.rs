//! The shared-memory structures of the Nanos runtime and a deterministic contention model.
//!
//! The paper's critique of Nanos (Section V-A) is structural: every scheduling interaction goes
//! through shared data — the Scheduler singleton's ready queue, its mutex, condition variables
//! and the taskwait counters — so cores constantly invalidate each other's cache lines and, when
//! they collide, fall into the kernel via futexes. This module models those structures explicitly
//! so that the cost of centralisation *emerges* from the MESI model plus a simple deterministic
//! contention rule, rather than being a single hand-tuned constant.

use std::collections::VecDeque;

use tis_machine::CoreCtx;
use tis_sim::Cycle;

/// Simulated addresses of the Nanos shared structures (each on its own cache line).
pub mod addrs {
    /// The Scheduler singleton's mutex.
    pub const SCHED_LOCK: u64 = 0xA000_0000;
    /// Head/tail/size words of the central ready queue.
    pub const READY_QUEUE_HEADER: u64 = 0xA000_0040;
    /// Start of the central ready queue's entry storage.
    pub const READY_QUEUE_ENTRIES: u64 = 0xA000_0080;
    /// The DependenciesDomain lock (Nanos-SW only).
    pub const DEP_DOMAIN_LOCK: u64 = 0xA100_0000;
    /// Start of the software dependence hash map (Nanos-SW only).
    pub const DEP_MAP: u64 = 0xA200_0000;
    /// The taskwait / retirement counter.
    pub const TASKWAIT_COUNTER: u64 = 0xA000_00C0;
    /// The "team is shutting down" flag checked by idle workers.
    pub const SHUTDOWN_FLAG: u64 = 0xA000_0100;
}

/// A mutex protecting a shared Nanos structure.
///
/// The simulator executes one agent step at a time, so a lock can always be acquired *logically*;
/// what matters for timing is whether the acquisition was contended. The deterministic rule is
/// the one the paper's narrative implies: if a different core used the lock within the last
/// `contention_window` cycles, the acquirer pays the futex path (kernel round trip), otherwise it
/// pays only the atomic + fences. Either way the lock word bounces between caches through the
/// MESI model.
#[derive(Debug, Clone)]
pub struct NanosLock {
    addr: u64,
    contention_window: Cycle,
    last_user: Option<usize>,
    last_release: Cycle,
    /// Number of acquisitions that went through the futex path.
    pub contended_acquisitions: u64,
    /// Total acquisitions.
    pub acquisitions: u64,
}

impl NanosLock {
    /// Creates a lock living at `addr`.
    pub fn new(addr: u64, contention_window: Cycle) -> Self {
        NanosLock {
            addr,
            contention_window,
            last_user: None,
            last_release: 0,
            contended_acquisitions: 0,
            acquisitions: 0,
        }
    }

    /// Acquires the lock from the context's core, charging the appropriate cycles.
    pub fn acquire(&mut self, ctx: &mut CoreCtx<'_>) {
        self.acquisitions += 1;
        ctx.atomic(self.addr);
        let contended = match self.last_user {
            Some(u) if u != ctx.core() => {
                ctx.now().saturating_sub(self.last_release) < self.contention_window
            }
            _ => false,
        };
        if contended {
            self.contended_acquisitions += 1;
            let wait = ctx.costs().futex_wait;
            ctx.syscall(wait.saturating_sub(ctx.costs().syscall_base));
        } else {
            ctx.spend(ctx.costs().mutex_uncontended);
        }
    }

    /// Releases the lock, charging the unlock store and (if anyone was recently spinning) the
    /// futex wake.
    pub fn release(&mut self, ctx: &mut CoreCtx<'_>) {
        ctx.write(self.addr, 8);
        if self.contended_acquisitions > 0 && self.acquisitions.is_multiple_of(2) {
            // Roughly every other release after contention has a sleeper to wake.
            let wake = ctx.costs().futex_wake;
            ctx.syscall(wake.saturating_sub(ctx.costs().syscall_base));
        }
        self.last_user = Some(ctx.core());
        self.last_release = ctx.now();
    }

    /// Fraction of acquisitions that hit the contended (futex) path.
    pub fn contention_rate(&self) -> f64 {
        if self.acquisitions == 0 {
            0.0
        } else {
            self.contended_acquisitions as f64 / self.acquisitions as f64
        }
    }
}

/// The Scheduler singleton's central ready queue.
///
/// Every ready task — whether identified by the software dependence domain or fetched from the
/// hardware — is pushed here and popped from here, under [`NanosLock`]. The entries themselves
/// live in simulated memory so pushes and pops move cache lines between cores.
#[derive(Debug, Clone, Default)]
pub struct CentralReadyQueue {
    entries: VecDeque<CentralEntry>,
    /// Highest occupancy observed.
    pub high_water: usize,
    /// Total pushes.
    pub pushes: u64,
    /// Total pops.
    pub pops: u64,
}

/// One entry of the central ready queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CentralEntry {
    /// Software task identifier.
    pub sw_id: u64,
    /// Hardware Picos ID when the task came from the fabric (`None` under Nanos-SW).
    pub picos_id: Option<u32>,
    /// Simulated cycle from which the entry is visible to consumers. Cores are stepped in a
    /// relaxed time order, so entries pushed by a core whose clock runs ahead must not be popped
    /// by a core whose clock is still behind that instant.
    pub available_at: Cycle,
}

impl CentralReadyQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        CentralReadyQueue::default()
    }

    /// Current length.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Pushes an entry, charging the header update and the entry store.
    pub fn push(&mut self, ctx: &mut CoreCtx<'_>, entry: CentralEntry) {
        ctx.read(addrs::READY_QUEUE_HEADER, 8);
        ctx.write(addrs::READY_QUEUE_HEADER, 8);
        let slot = self.pushes % 64;
        ctx.write(addrs::READY_QUEUE_ENTRIES + slot * 16, 16);
        self.entries.push_back(entry);
        self.pushes += 1;
        self.high_water = self.high_water.max(self.entries.len());
    }

    /// Pops the oldest entry that is visible at the caller's current cycle, charging the header
    /// update and the entry load.
    pub fn pop(&mut self, ctx: &mut CoreCtx<'_>) -> Option<CentralEntry> {
        ctx.read(addrs::READY_QUEUE_HEADER, 8);
        let now = ctx.now();
        let pos = self.entries.iter().position(|e| e.available_at <= now);
        let e = pos.and_then(|p| self.entries.remove(p));
        if e.is_some() {
            ctx.write(addrs::READY_QUEUE_HEADER, 8);
            let slot = self.pops % 64;
            ctx.read(addrs::READY_QUEUE_ENTRIES + slot * 16, 16);
            self.pops += 1;
        }
        e
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tis_machine::{CoreStats, CostModel};
    use tis_mem::{BandwidthModel, CacheConfig, MemLatencies, MemorySystem};

    fn harness(cores: usize) -> (MemorySystem, BandwidthModel, CostModel, Vec<CoreStats>) {
        (
            MemorySystem::new(cores, CacheConfig::rocket_l1d(), MemLatencies::default()),
            BandwidthModel::new(16.0),
            CostModel::default(),
            vec![CoreStats::default(); cores],
        )
    }

    #[test]
    fn uncontended_lock_is_cheap_contended_is_a_syscall() {
        let (mut mem, mut dram, costs, mut stats) = harness(2);
        let mut lock = NanosLock::new(addrs::SCHED_LOCK, 400);
        // Core 0 acquires and releases at t=0.
        let (s0, rest) = stats.split_at_mut(1);
        let mut ctx0 = CoreCtx::new(0, 0, &mut mem, &mut dram, &costs, &mut s0[0]);
        lock.acquire(&mut ctx0);
        lock.release(&mut ctx0);
        let t0 = ctx0.finish();
        assert!(t0 < 500, "uncontended acquisition stays in user space, took {t0}");
        // Core 1 acquires immediately afterwards: contended, pays the futex path.
        let mut ctx1 = CoreCtx::new(1, t0 + 10, &mut mem, &mut dram, &costs, &mut rest[0]);
        lock.acquire(&mut ctx1);
        lock.release(&mut ctx1);
        let t1 = ctx1.finish() - (t0 + 10);
        assert!(t1 > costs.futex_wait / 2, "contended acquisition must pay the kernel, took {t1}");
        assert_eq!(lock.contended_acquisitions, 1);
        assert!(lock.contention_rate() > 0.0);
    }

    #[test]
    fn central_queue_fifo_and_stats() {
        let (mut mem, mut dram, costs, mut stats) = harness(1);
        let mut q = CentralReadyQueue::new();
        let mut ctx = CoreCtx::new(0, 0, &mut mem, &mut dram, &costs, &mut stats[0]);
        assert!(q.pop(&mut ctx).is_none());
        q.push(&mut ctx, CentralEntry { sw_id: 1, picos_id: None, available_at: 0 });
        q.push(&mut ctx, CentralEntry { sw_id: 2, picos_id: Some(9), available_at: 0 });
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(&mut ctx).unwrap().sw_id, 1);
        assert_eq!(q.pop(&mut ctx).unwrap().picos_id, Some(9));
        assert!(q.is_empty());
        assert_eq!(q.pushes, 2);
        assert_eq!(q.pops, 2);
        assert_eq!(q.high_water, 2);
    }

    #[test]
    fn queue_traffic_bounces_lines_between_cores() {
        // Pushing from one core and popping from another forces the queue header line to move
        // through memory every time — the centralisation cost the paper calls out.
        let (mut mem, mut dram, costs, mut stats) = harness(2);
        let mut q = CentralReadyQueue::new();
        let mut total_cross = 0;
        for i in 0..10u64 {
            let (s0, rest) = stats.split_at_mut(1);
            let mut producer = CoreCtx::new(0, i * 1_000, &mut mem, &mut dram, &costs, &mut s0[0]);
            q.push(&mut producer, CentralEntry { sw_id: i, picos_id: None, available_at: i * 1_000 });
            producer.finish();
            let mut consumer = CoreCtx::new(1, i * 1_000 + 500, &mut mem, &mut dram, &costs, &mut rest[0]);
            let before = consumer.now();
            q.pop(&mut consumer).unwrap();
            total_cross += consumer.finish() - before;
        }
        let per_pop = total_cross / 10;
        assert!(per_pop > MemLatencies::default().dram_fetch, "cross-core pops must miss, got {per_pop}");
    }
}
