//! Calibrated path lengths of the Nanos code base.
//!
//! Nanos is a large, general C++ runtime; even with dependence inference offloaded to hardware,
//! every task passes through WorkDescriptor construction, the plugin (virtual-dispatch) layers,
//! the Scheduler singleton and the instrumentation hooks. The constants below are the modelled
//! *instruction path lengths* of those phases on an in-order Rocket core (one instruction ≈ one
//! cycle at IPC ≈ 1, plus the cache misses charged separately by the memory model). They were
//! calibrated so that the composed per-task lifetime overheads land in the ranges the paper
//! reports for Nanos-RV (≈12–13 k cycles) and Nanos-SW (≈25–99 k cycles, growing with the
//! dependence count); EXPERIMENTS.md records the comparison.

use tis_sim::Cycle;

/// Path-length constants of the Nanos runtime model, in cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NanosTuning {
    /// WorkDescriptor construction, argument marshalling and submission-side plugin hooks
    /// (excluding dependence handling and the actual submit to the scheduler/hardware).
    pub submit_bookkeeping: Cycle,
    /// Scheduler-singleton work on the fetch path: policy code, team bookkeeping, descriptor
    /// handoff between queues.
    pub fetch_bookkeeping: Cycle,
    /// Retirement-side bookkeeping: instrumentation, WorkDescriptor teardown hooks, taskwait
    /// accounting.
    pub retire_bookkeeping: Cycle,
    /// Number of virtual (plugin) calls charged per scheduling interaction.
    pub virtual_calls_per_phase: u32,
    /// Software dependence handling, fixed part per task (Nanos-SW only): DependenciesDomain
    /// entry, region lookup setup, readiness bookkeeping. Together with
    /// [`sw_dep_per_dep`](Self::sw_dep_per_dep) this is fitted so the composed Nanos-SW
    /// Task-Free overheads land on Figure 7's published 25 208 (1 dep) and 99 008 (15 deps)
    /// cycles/task.
    pub sw_dep_base: Cycle,
    /// Software dependence handling, per declared dependence (Nanos-SW only): region-map probe,
    /// dependency-object allocation, version-list maintenance — both at submission and at
    /// release time.
    pub sw_dep_per_dep: Cycle,
    /// How long an idle Nanos worker sleeps (condition-variable wait quantum) before the
    /// scheduler re-polls it.
    pub idle_sleep_quantum: Cycle,
    /// Window after a lock release during which another core's acquisition is considered
    /// contended (and pays the futex path).
    pub lock_contention_window: Cycle,
}

impl Default for NanosTuning {
    fn default() -> Self {
        NanosTuning {
            submit_bookkeeping: 4_600,
            fetch_bookkeeping: 3_800,
            retire_bookkeeping: 2_300,
            virtual_calls_per_phase: 6,
            sw_dep_base: 8_266,
            sw_dep_per_dep: 4_993,
            idle_sleep_quantum: 4_000,
            lock_contention_window: 400,
        }
    }
}

impl NanosTuning {
    /// Total software dependence-handling cost for a task with `deps` dependences (Nanos-SW).
    pub fn sw_dependence_cycles(&self, deps: usize) -> Cycle {
        self.sw_dep_base + self.sw_dep_per_dep * deps as Cycle
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn software_dependences_dominate_and_scale_with_count() {
        let t = NanosTuning::default();
        let one = t.sw_dependence_cycles(1);
        let fifteen = t.sw_dependence_cycles(15);
        assert!(one > 10_000, "software dependence handling costs >10k cycles even for one dep");
        assert!(fifteen > 80_000, "fifteen dependences cost the better part of 100k cycles");
        assert_eq!(fifteen - one, 14 * t.sw_dep_per_dep);
    }

    #[test]
    fn bookkeeping_totals_are_an_order_of_magnitude_above_phentos() {
        let t = NanosTuning::default();
        let per_task = t.submit_bookkeeping + t.fetch_bookkeeping + t.retire_bookkeeping;
        assert!(per_task > 5_000 && per_task < 20_000);
    }
}
