//! Behavioural models of the **Nanos** runtime family (Section V-A and the baselines of
//! Section VI).
//!
//! Nanos is the Barcelona Supercomputing Center's OmpSs runtime. The paper uses three flavours:
//!
//! * **Nanos-SW** — stock Nanos with its `plain` dependence plugin: dependence inference is done
//!   in software, under locks, with heap-allocated dependence objects;
//! * **Nanos-RV** — the authors' port: the `picos` plugin offloads dependence inference to the
//!   tightly-integrated hardware through the RoCC instructions, but the rest of Nanos (plugin
//!   virtual dispatch, WorkDescriptor allocation, the central Scheduler singleton and its
//!   mutexes/condition variables) is unchanged;
//! * **Nanos-AXI** — the previous state of the art (Tan et al.'s Picos++ system): the same Nanos
//!   structure, but the accelerator sits on the other side of an AXI/MMIO/DMA driver.
//!
//! This crate models all three on top of the workspace substrates:
//!
//! * [`tuning`] — the calibrated per-operation path lengths of the Nanos code base;
//! * [`shared`] — the shared-memory structures Nanos hammers (the scheduler lock, the central
//!   ready queue, the taskwait counter) and a deterministic lock/futex contention model;
//! * [`axi`] — [`AxiFabric`]: the same Picos Manager as `tis-core`, reached
//!   through MMIO/DMA latencies instead of 2-cycle instructions;
//! * [`runtime`] — [`Nanos`], a [`RuntimeSystem`](tis_machine::RuntimeSystem)
//!   implementation parameterised by [`NanosVariant`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod axi;
pub mod runtime;
pub mod shared;
pub mod tuning;

pub use axi::{AxiConfig, AxiFabric};
pub use runtime::{Nanos, NanosVariant};
pub use tuning::NanosTuning;
