//! The Nanos runtime model: one implementation, three variants.
//!
//! [`Nanos`] reproduces the structure the paper describes in Section V-A: WorkDescriptors are
//! heap-allocated, every phase goes through plugin (virtual) dispatch, all ready tasks funnel
//! through the Scheduler singleton's central queue under a mutex, idle workers and `taskwait`
//! park on condition variables, and — crucially for Nanos-RV — even tasks identified as ready by
//! the hardware are first pushed into that central queue and popped back out of it instead of
//! being run directly by the fetching core.
//!
//! The three [`NanosVariant`]s differ only in who tracks dependences and how the hardware is
//! reached:
//!
//! * [`NanosVariant::Software`] (Nanos-SW) — a lock-protected software dependence domain (the
//!   functional tracker is shared with the Picos model, so semantics are identical; only the
//!   cost differs);
//! * [`NanosVariant::PicosRocc`] (Nanos-RV) — dependences tracked by the hardware through the
//!   RoCC fabric of `tis-core`;
//! * [`NanosVariant::PicosAxi`] (Nanos-AXI) — the same, but the caller supplies an
//!   [`AxiFabric`](crate::axi::AxiFabric), reproducing the Picos++ baseline.

use tis_machine::fabric::{FabricOutcome, SchedulerFabric};
use tis_machine::{CoreCtx, CoreStatus, RuntimeSystem};
use tis_obs::TaskStage;
use tis_picos::{encode_prefix_into, DependenceTracker, PicosId, SubmittedTask, TrackerConfig};
use tis_sim::{FxHashMap, TimedQueue};
use tis_taskmodel::{ExecRecord, MaterializedSource, ProgramOp, SourcePoll, TaskProgram, TaskSource, TaskSpec};

use crate::shared::{addrs, CentralEntry, CentralReadyQueue, NanosLock};
use crate::tuning::NanosTuning;

/// Base address of the simulated WorkDescriptor heap.
const WD_BASE: u64 = 0xB000_0000;
/// Size of one WorkDescriptor (two cache lines).
const WD_BYTES: u64 = 128;

/// Which Nanos flavour is being modelled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NanosVariant {
    /// Nanos-SW: software dependence inference, no scheduling hardware.
    Software,
    /// Nanos-RV: dependence inference offloaded through the RoCC fabric.
    PicosRocc,
    /// Nanos-AXI: dependence inference offloaded through the AXI/MMIO fabric (Picos++ baseline).
    PicosAxi,
}

impl NanosVariant {
    /// Whether the variant drives scheduling hardware through the fabric.
    pub fn uses_hardware(self) -> bool {
        !matches!(self, NanosVariant::Software)
    }

    /// Runtime name used in reports ("nanos-sw", "nanos-rv", "nanos-axi").
    pub fn name(self) -> &'static str {
        match self {
            NanosVariant::Software => "nanos-sw",
            NanosVariant::PicosRocc => "nanos-rv",
            NanosVariant::PicosAxi => "nanos-axi",
        }
    }
}

#[derive(Debug, Clone, Default)]
struct NanosWorker {
    outstanding_requests: u32,
    finished: bool,
}

/// The Nanos runtime plugged into the machine engine.
#[derive(Debug)]
pub struct Nanos {
    variant: NanosVariant,
    tuning: NanosTuning,
    source: Box<dyn TaskSource>,
    /// Op pulled from the source but not yet acted on (a refused hardware submission or an
    /// unsatisfied `taskwait` keeps the main thread on the same op across steps).
    pending: Option<ProgramOp>,
    source_done: bool,
    submitted: u64,
    /// Simulated cycle of every retirement *not yet folded into `retired_base`*, in the order
    /// they were performed. Kept as a log so that a `taskwait` polling at simulated time `t`
    /// only observes retirements that had completed by `t` (cores are stepped in relaxed time
    /// order).
    retire_log: Vec<u64>,
    /// Retirements whose completion time is at or before the current step's start — visible to
    /// every core from now on, so their individual timestamps no longer matter. Folding them
    /// out of `retire_log` keeps the `taskwait` poll O(in-flight) instead of O(total tasks).
    retired_base: u64,
    /// Software-variant retirements accepted but not yet applied to the dependence domain,
    /// keyed by completion cycle — applied once simulated time catches up, mirroring the
    /// deferral inside the Picos device.
    sw_pending: TimedQueue<PicosId>,
    done: bool,
    main_in_taskwait: bool,
    sched_lock: NanosLock,
    dep_lock: NanosLock,
    ready_queue: CentralReadyQueue,
    sw_tracker: DependenceTracker,
    sw_ids: FxHashMap<u64, PicosId>,
    workers: Vec<NanosWorker>,
    records: Vec<ExecRecord>,
    /// Whether per-task [`ExecRecord`]s are collected. On by default; streamed million-task
    /// runs switch this off so record storage stays O(1) instead of O(tasks).
    collect_records: bool,
    /// Scratch buffer for descriptor packets, reused across hardware submissions.
    packet_scratch: Vec<u32>,
    /// Scratch buffer for the software tracker's wake-up lists, reused across retirements.
    sw_woken_scratch: Vec<PicosId>,
    /// Scratch task handed to the software tracker at submission, reused across submissions.
    sw_submit_scratch: SubmittedTask,
}

impl Nanos {
    /// Instantiates a Nanos variant for a program on a machine with `cores` cores.
    ///
    /// # Panics
    ///
    /// Panics if the program fails validation.
    pub fn new(program: &TaskProgram, cores: usize, variant: NanosVariant, tuning: NanosTuning) -> Self {
        program.validate().expect("program must satisfy the descriptor constraints");
        Nanos::from_source(Box::new(MaterializedSource::new(program)), cores, variant, tuning)
    }

    /// Instantiates a Nanos variant over a streaming [`TaskSource`].
    ///
    /// The source is trusted to uphold the [`TaskSource`] contract (dense sequential SW IDs,
    /// backward-only dependences); streamed workloads validate themselves incrementally as they
    /// generate, since an unbounded stream cannot be scanned up front.
    pub fn from_source(source: Box<dyn TaskSource>, cores: usize, variant: NanosVariant, tuning: NanosTuning) -> Self {
        Nanos {
            variant,
            tuning,
            source,
            pending: None,
            source_done: false,
            submitted: 0,
            retire_log: Vec::new(),
            retired_base: 0,
            sw_pending: TimedQueue::new(),
            done: false,
            main_in_taskwait: false,
            sched_lock: NanosLock::new(addrs::SCHED_LOCK, tuning.lock_contention_window),
            dep_lock: NanosLock::new(addrs::DEP_DOMAIN_LOCK, tuning.lock_contention_window),
            ready_queue: CentralReadyQueue::new(),
            sw_tracker: DependenceTracker::new(TrackerConfig {
                task_memory_entries: 1 << 16,
                address_table_entries: 1 << 16,
            }),
            sw_ids: FxHashMap::default(),
            workers: vec![NanosWorker::default(); cores],
            records: Vec::new(),
            collect_records: true,
            packet_scratch: Vec::new(),
            sw_woken_scratch: Vec::new(),
            sw_submit_scratch: SubmittedTask::new(0, Vec::new()),
        }
    }

    /// Convenience constructor with default tuning.
    pub fn with_defaults(program: &TaskProgram, cores: usize, variant: NanosVariant) -> Self {
        Nanos::new(program, cores, variant, NanosTuning::default())
    }

    /// The variant being modelled.
    pub fn variant(&self) -> NanosVariant {
        self.variant
    }

    /// Switches per-task [`ExecRecord`] collection on or off (on by default).
    pub fn set_collect_records(&mut self, on: bool) {
        self.collect_records = on;
    }

    fn wd_addr(sw_id: u64) -> u64 {
        WD_BASE + (sw_id % 4096) * WD_BYTES
    }

    /// Number of retirements visible at simulated cycle `now`.
    ///
    /// Callers query with `now >= ctx.step_start()`, so everything folded into `retired_base`
    /// (completion time at or before some earlier step's start) is always visible.
    fn retired_at(&self, now: u64) -> u64 {
        self.retired_base + self.retire_log.iter().filter(|&&t| t <= now).count() as u64
    }

    /// Folds retirements that completed at or before `horizon` into `retired_base`.
    ///
    /// The step-start time is monotone across steps, so once a retirement's completion time is
    /// at or before it, every later query observes it regardless of its exact timestamp. Without
    /// this, the `taskwait` poll rescans an ever-growing log — O(tasks²) over a million-task
    /// run.
    fn compact_retirements(&mut self, horizon: u64) {
        let before = self.retire_log.len();
        self.retire_log.retain(|&t| t > horizon);
        self.retired_base += (before - self.retire_log.len()) as u64;
    }

    /// Applies software-variant retirements whose completion time has been reached, waking their
    /// successors into the central ready queue.
    fn process_sw_pending(&mut self, ctx: &mut CoreCtx<'_>) {
        if self.variant.uses_hardware() || self.sw_pending.is_empty() {
            return;
        }
        // Gate on the step's start time: no later step can begin before it, so a retirement due
        // by then is visible to everyone without violating causality.
        let now = ctx.step_start();
        let mut woken_entries = Vec::new();
        while let Some((t, pid)) = self.sw_pending.pop_due(now) {
            self.sw_tracker
                .retire_into(pid, &mut self.sw_woken_scratch)
                .expect("pending software retirement refers to an in-flight task");
            for &w in &self.sw_woken_scratch {
                let sw = self.sw_tracker.sw_id(w).expect("woken task is in flight");
                woken_entries.push(CentralEntry { sw_id: sw, picos_id: None, available_at: t });
            }
        }
        if !woken_entries.is_empty() {
            self.sched_lock.acquire(ctx);
            for e in woken_entries {
                // Software-tracked dependence resolution: the wake was decided at the
                // retirement's completion time, not on this core at this instant.
                ctx.observe_task_at(e.available_at, TaskStage::Ready, e.sw_id);
                self.ready_queue.push(ctx, e);
            }
            self.sched_lock.release(ctx);
        }
    }

    /// Plugin-layer virtual dispatch charged on every scheduling phase.
    fn charge_plugin_calls(&self, ctx: &mut CoreCtx<'_>) {
        for _ in 0..self.tuning.virtual_calls_per_phase {
            ctx.virtual_call();
        }
    }

    /// Software dependence inference at submission (Nanos-SW): hash probes and dependency-object
    /// maintenance under the domain lock. Returns whether the task starts ready.
    fn sw_submit(&mut self, ctx: &mut CoreCtx<'_>, spec: &TaskSpec) -> bool {
        self.process_sw_pending(ctx);
        self.dep_lock.acquire(ctx);
        ctx.spend(self.tuning.sw_dependence_cycles(spec.dep_count()));
        for d in &spec.deps {
            ctx.spend(ctx.costs().hash_probe);
            let bucket = addrs::DEP_MAP + (d.addr % 1024) * 64;
            ctx.read(bucket, 64);
            ctx.write(bucket, 16);
            ctx.spend(ctx.costs().heap_alloc); // dependency object
        }
        self.sw_submit_scratch.sw_id = spec.id.raw();
        self.sw_submit_scratch.deps.clear();
        self.sw_submit_scratch.deps.extend_from_slice(&spec.deps);
        let (pid, ready) = self
            .sw_tracker
            .insert(&self.sw_submit_scratch)
            .expect("software dependence domain has effectively unbounded capacity");
        self.sw_ids.insert(spec.id.raw(), pid);
        self.dep_lock.release(ctx);
        ready
    }

    /// Hardware submission through the fabric (Nanos-RV / Nanos-AXI). Returns `false` when the
    /// hardware refused the submission and it must be retried.
    fn hw_submit(&mut self, ctx: &mut CoreCtx<'_>, fabric: &mut dyn SchedulerFabric, spec: &TaskSpec) -> bool {
        encode_prefix_into(spec.id.raw(), &spec.deps, &mut self.packet_scratch);
        let (lat, out) = fabric.submission_request(ctx.core(), self.packet_scratch.len() as u32, ctx.now());
        ctx.spend(lat);
        if !out.is_success() {
            return false;
        }
        for chunk in self.packet_scratch.chunks(3) {
            let (lat, out) = fabric.submit_packets(ctx.core(), chunk, ctx.now());
            ctx.spend(lat);
            debug_assert!(out.is_success());
        }
        true
    }

    /// Pops one entry from the Scheduler singleton, refilling it from the hardware if necessary.
    fn acquire_work(&mut self, ctx: &mut CoreCtx<'_>, fabric: &mut dyn SchedulerFabric) -> Option<CentralEntry> {
        self.process_sw_pending(ctx);
        // First look at the central queue.
        self.sched_lock.acquire(ctx);
        let entry = self.ready_queue.pop(ctx);
        self.sched_lock.release(ctx);
        if entry.is_some() {
            return entry;
        }
        if !self.variant.uses_hardware() {
            return None;
        }
        // Poll the hardware for a ready descriptor...
        let core = ctx.core();
        if self.workers[core].outstanding_requests == 0 {
            let (lat, out) = fabric.ready_task_request(core, ctx.now());
            ctx.spend(lat);
            if out.is_success() {
                self.workers[core].outstanding_requests += 1;
            }
        }
        // The plugin polls the ready queue a few times before giving up: with the RoCC path the
        // instructions are so fast that a descriptor routed a handful of cycles ago may not be
        // visible yet on the very first try.
        let mut sw = None;
        for attempt in 0..4 {
            let (lat, out) = fabric.fetch_sw_id(core, ctx.now());
            ctx.spend(lat);
            if let FabricOutcome::Success(id) = out {
                sw = Some(id);
                break;
            }
            if attempt + 1 < 4 {
                ctx.spend(ctx.costs().spin_backoff);
            }
        }
        let sw_id = sw?;
        let (lat, out) = fabric.fetch_picos_id(core, ctx.now());
        ctx.spend(lat);
        let FabricOutcome::Success(picos_id) = out else { return None };
        self.workers[core].outstanding_requests = self.workers[core].outstanding_requests.saturating_sub(1);
        // ...and, as Nanos does, route it through the Scheduler singleton instead of running it
        // directly: push under the lock, then pop it back out (Section V-A).
        self.charge_plugin_calls(ctx);
        self.sched_lock.acquire(ctx);
        self.ready_queue.push(ctx, CentralEntry { sw_id, picos_id: Some(picos_id), available_at: ctx.now() });
        self.sched_lock.release(ctx);
        self.sched_lock.acquire(ctx);
        let entry = self.ready_queue.pop(ctx);
        self.sched_lock.release(ctx);
        entry
    }

    /// Executes one ready task if any can be acquired. Returns `true` if a task ran.
    fn try_execute_one(&mut self, ctx: &mut CoreCtx<'_>, fabric: &mut dyn SchedulerFabric) -> bool {
        let Some(entry) = self.acquire_work(ctx, fabric) else { return false };
        let core = ctx.core();
        ctx.observe_task(TaskStage::Dispatched, entry.sw_id);
        // Scheduler policy code + WorkDescriptor load.
        ctx.spend(self.tuning.fetch_bookkeeping);
        self.charge_plugin_calls(ctx);
        ctx.read(Self::wd_addr(entry.sw_id), WD_BYTES);

        let spec = self.source.spec(entry.sw_id).clone();
        let start = ctx.now();
        ctx.execute_task_payload(entry.sw_id, spec.payload);
        let end = ctx.now();
        if self.collect_records {
            self.records.push(ExecRecord { task: spec.id, core, start, end });
        }

        // Retirement.
        ctx.spend(self.tuning.retire_bookkeeping);
        self.charge_plugin_calls(ctx);
        match entry.picos_id {
            Some(pid) => {
                let lat = fabric.retire_task(core, pid, ctx.now());
                ctx.spend(lat);
            }
            None => {
                // Software release: walk the dependence domain under its lock. The actual
                // removal from the tracker is deferred to `process_sw_pending` so that a core
                // whose clock still lags this instant keeps seeing the task as in flight.
                self.dep_lock.acquire(ctx);
                ctx.spend(ctx.costs().hash_probe * spec.dep_count().max(1) as u64);
                self.dep_lock.release(ctx);
                // The mapping is dead once the retirement is scheduled: prune it, or a
                // million-task stream grows the map without bound.
                let pid = self
                    .sw_ids
                    .remove(&entry.sw_id)
                    .expect("software-tracked task has a registered Picos ID");
                self.sw_pending.schedule(ctx.now(), pid);
                self.process_sw_pending(ctx);
            }
        }
        ctx.spend(ctx.costs().heap_free);
        ctx.atomic(addrs::TASKWAIT_COUNTER);
        self.retire_log.push(ctx.now());
        ctx.observe_task(TaskStage::Retired, entry.sw_id);
        self.source.retire_at(entry.sw_id, ctx.now());
        if self.main_in_taskwait && core != 0 {
            // Signal the condition variable the taskwait is parked on (the waiter itself does
            // not need to wake anyone).
            let wake = ctx.costs().futex_wake;
            ctx.syscall(wake.saturating_sub(ctx.costs().syscall_base));
        }
        true
    }

    fn step_main(&mut self, ctx: &mut CoreCtx<'_>, fabric: &mut dyn SchedulerFabric) -> CoreStatus {
        if self.done {
            return CoreStatus::Finished;
        }
        if self.pending.is_none() && !self.source_done {
            // Time-aware sources (the multi-tenant merger) gate spawn release on the polling
            // core's clock; plain sources ignore this (default no-op).
            self.source.advance_to(ctx.now());
            match self.source.poll() {
                SourcePoll::Op(op) => self.pending = Some(op),
                SourcePoll::Blocked => {
                    // The source's in-flight window is full: drain resident work instead of
                    // spawning, exactly as on a refused hardware submission.
                    if !self.try_execute_one(ctx, fabric) {
                        ctx.spend(ctx.costs().mutex_uncontended);
                    }
                    return CoreStatus::Progressed;
                }
                SourcePoll::Done => self.source_done = true,
            }
        }
        match self.pending.clone() {
            Some(ProgramOp::Spawn(spec)) => {
                self.main_in_taskwait = false;
                ctx.observe_task(TaskStage::Submitted, spec.id.raw());
                // WorkDescriptor construction and plugin hooks.
                ctx.spend(self.tuning.submit_bookkeeping);
                self.charge_plugin_calls(ctx);
                ctx.spend(ctx.costs().heap_alloc);
                ctx.write(Self::wd_addr(spec.id.raw()), WD_BYTES);
                let submitted = if self.variant.uses_hardware() {
                    self.hw_submit(ctx, fabric, &spec)
                } else {
                    let ready = self.sw_submit(ctx, &spec);
                    if ready {
                        ctx.observe_task_at(ctx.now(), TaskStage::Ready, spec.id.raw());
                        self.sched_lock.acquire(ctx);
                        self.ready_queue.push(
                            ctx,
                            CentralEntry { sw_id: spec.id.raw(), picos_id: None, available_at: ctx.now() },
                        );
                        self.sched_lock.release(ctx);
                    }
                    true
                };
                if submitted {
                    self.submitted += 1;
                    self.pending = None;
                } else if !self.try_execute_one(ctx, fabric) {
                    ctx.spend(ctx.costs().mutex_uncontended);
                }
                CoreStatus::Progressed
            }
            Some(ProgramOp::TaskWait) | None => {
                // `pending` can only be `None` here once the source has answered `Done`, so a
                // missing op is the implicit final barrier.
                let final_barrier = self.pending.is_none();
                let target = self.submitted;
                self.process_sw_pending(ctx);
                self.compact_retirements(ctx.step_start());
                ctx.read(addrs::TASKWAIT_COUNTER, 8);
                if self.retired_at(ctx.now()) >= target {
                    self.main_in_taskwait = false;
                    if final_barrier {
                        ctx.write(addrs::SHUTDOWN_FLAG, 8);
                        self.done = true;
                        self.workers[ctx.core()].finished = true;
                    } else {
                        self.pending = None;
                    }
                    return CoreStatus::Progressed;
                }
                self.main_in_taskwait = true;
                if self.try_execute_one(ctx, fabric) {
                    return CoreStatus::Progressed;
                }
                // Park on the taskwait condition variable.
                let wait = ctx.costs().futex_wait;
                ctx.syscall(wait.saturating_sub(ctx.costs().syscall_base));
                CoreStatus::Waiting { until: ctx.now() + self.tuning.idle_sleep_quantum }
            }
        }
    }

    fn step_worker(&mut self, ctx: &mut CoreCtx<'_>, fabric: &mut dyn SchedulerFabric) -> CoreStatus {
        let core = ctx.core();
        if self.workers[core].finished {
            return CoreStatus::Finished;
        }
        if self.try_execute_one(ctx, fabric) {
            return CoreStatus::Progressed;
        }
        if self.done {
            ctx.read(addrs::SHUTDOWN_FLAG, 8);
            self.workers[core].finished = true;
            return CoreStatus::Finished;
        }
        // Idle worker: park on the team condition variable.
        let wait = ctx.costs().futex_wait;
        ctx.syscall(wait.saturating_sub(ctx.costs().syscall_base));
        CoreStatus::Waiting { until: ctx.now() + self.tuning.idle_sleep_quantum }
    }
}

impl RuntimeSystem for Nanos {
    fn name(&self) -> &'static str {
        self.variant.name()
    }

    fn step_core(&mut self, ctx: &mut CoreCtx<'_>, fabric: &mut dyn SchedulerFabric) -> CoreStatus {
        if ctx.core() == 0 {
            self.step_main(ctx, fabric)
        } else {
            self.step_worker(ctx, fabric)
        }
    }

    fn is_finished(&self) -> bool {
        self.done
    }

    fn exec_records(&self) -> Vec<ExecRecord> {
        self.records.clone()
    }

    fn tasks_retired(&self) -> u64 {
        self.retired_base + self.retire_log.len() as u64
    }

    fn peak_resident_tasks(&self) -> u64 {
        self.source.peak_resident() as u64
    }

    fn tenant_reports(&self) -> Vec<tis_taskmodel::TenantReport> {
        self.source.tenant_reports()
    }
}

impl Nanos {
    /// Mutable access to the task source, for post-run recovery of source-side state (the
    /// multi-tenant harness downcasts it to take the tenant assignment).
    pub fn source_mut(&mut self) -> &mut dyn TaskSource {
        self.source.as_mut()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::axi::AxiFabric;
    use tis_core::TisFabric;
    use tis_machine::{run_machine, ExecutionReport, MachineConfig, NullFabric};
    use tis_taskmodel::{Dependence, Payload, ProgramBuilder};

    fn chain_program(n: u64, cycles: u64) -> TaskProgram {
        let mut b = ProgramBuilder::new("chain");
        for _ in 0..n {
            b.spawn(Payload::compute(cycles), vec![Dependence::read_write(0x4_0000)]);
        }
        b.taskwait();
        b.build()
    }

    fn independent_program(n: u64, cycles: u64) -> TaskProgram {
        let mut b = ProgramBuilder::new("indep");
        for i in 0..n {
            b.spawn(Payload::compute(cycles), vec![Dependence::write(0x5_0000 + i * 64)]);
        }
        b.taskwait();
        b.build()
    }

    fn run_variant(program: &TaskProgram, cores: usize, variant: NanosVariant) -> ExecutionReport {
        let cfg = MachineConfig::rocket_with_cores(cores);
        let mut runtime = Nanos::with_defaults(program, cores, variant);
        match variant {
            NanosVariant::Software => {
                run_machine(&cfg, &mut runtime, &mut NullFabric::new()).expect("nanos-sw run")
            }
            NanosVariant::PicosRocc => {
                run_machine(&cfg, &mut runtime, &mut TisFabric::with_cores(cores)).expect("nanos-rv run")
            }
            NanosVariant::PicosAxi => {
                run_machine(&cfg, &mut runtime, &mut AxiFabric::with_cores(cores)).expect("nanos-axi run")
            }
        }
    }

    #[test]
    fn all_variants_execute_and_validate_a_chain() {
        let p = chain_program(12, 2_000);
        for variant in [NanosVariant::Software, NanosVariant::PicosRocc, NanosVariant::PicosAxi] {
            let report = run_variant(&p, 2, variant);
            assert_eq!(report.tasks_retired, 12, "{variant:?}");
            report.validate_against(&p).unwrap_or_else(|e| panic!("{variant:?}: {e}"));
        }
    }

    #[test]
    fn all_variants_execute_and_validate_independent_tasks() {
        let p = independent_program(24, 30_000);
        for variant in [NanosVariant::Software, NanosVariant::PicosRocc, NanosVariant::PicosAxi] {
            let report = run_variant(&p, 4, variant);
            assert_eq!(report.tasks_retired, 24, "{variant:?}");
            report.validate_against(&p).unwrap_or_else(|e| panic!("{variant:?}: {e}"));
        }
    }

    #[test]
    fn nanos_rv_overhead_sits_between_phentos_and_nanos_sw() {
        // Single-core, empty-payload runs measure lifetime scheduling overhead (Figure 7).
        let p = independent_program(60, 0);
        let sw = run_variant(&p, 1, NanosVariant::Software).mean_cycles_per_task();
        let rv = run_variant(&p, 1, NanosVariant::PicosRocc).mean_cycles_per_task();
        let axi = run_variant(&p, 1, NanosVariant::PicosAxi).mean_cycles_per_task();
        assert!(rv < sw, "hardware dependence tracking must beat software: rv={rv:.0} sw={sw:.0}");
        assert!(rv < axi, "tight integration must beat the AXI path: rv={rv:.0} axi={axi:.0}");
        assert!(rv > 5_000.0 && rv < 25_000.0, "nanos-rv overhead in the paper's range, got {rv:.0}");
        assert!(sw > 15_000.0, "nanos-sw overhead is tens of thousands of cycles, got {sw:.0}");
    }

    #[test]
    fn software_dependence_cost_grows_with_dependence_count() {
        let mut few = ProgramBuilder::new("few");
        let mut many = ProgramBuilder::new("many");
        for i in 0..30u64 {
            few.spawn(Payload::empty(), vec![Dependence::write(0x9_0000 + i * 64)]);
            let deps: Vec<_> = (0..15u64)
                .map(|d| Dependence::write(0x10_0000 + (i * 15 + d) * 64))
                .collect();
            many.spawn(Payload::empty(), deps);
        }
        few.taskwait();
        many.taskwait();
        let few_cost = run_variant(&few.build(), 1, NanosVariant::Software).mean_cycles_per_task();
        let many_cost = run_variant(&many.build(), 1, NanosVariant::Software).mean_cycles_per_task();
        assert!(
            many_cost > 2.0 * few_cost,
            "15-dependence tasks must cost far more than 1-dependence tasks in software ({many_cost:.0} vs {few_cost:.0})"
        );
    }

    #[test]
    fn coarse_tasks_still_scale_under_nanos() {
        // With sufficiently coarse tasks even Nanos-SW delivers parallel speedup — the paper's
        // hypothesis 3 (the gap closes as granularity grows).
        let p = independent_program(32, 400_000);
        let serial = p.serial_cycles(16.0, 8);
        let report = run_variant(&p, 4, NanosVariant::Software);
        let speedup = report.speedup_over(serial);
        assert!(speedup > 2.0, "coarse tasks should scale even in software, got {speedup:.2}");
        assert!(
            report.core_stats.iter().filter(|s| s.tasks_executed > 0).count() >= 3,
            "work must actually be distributed across cores"
        );
    }

    #[test]
    fn variant_names_match_paper_labels() {
        assert_eq!(NanosVariant::Software.name(), "nanos-sw");
        assert_eq!(NanosVariant::PicosRocc.name(), "nanos-rv");
        assert_eq!(NanosVariant::PicosAxi.name(), "nanos-axi");
        assert!(!NanosVariant::Software.uses_hardware());
        assert!(NanosVariant::PicosRocc.uses_hardware());
    }
}
