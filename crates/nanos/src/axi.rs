//! The AXI/MMIO scheduler fabric — the previous state of the art (Picos++ of Tan et al.).
//!
//! Functionally this is the *same* Picos Manager and Picos device as the tightly-integrated
//! system (`tis-core`), which is exactly the comparison the paper sets up: the accelerator is
//! identical, only the CPU↔accelerator path differs. Here every Table-I operation crosses the
//! processor–FPGA boundary through the Linux driver and the AXI interconnect:
//!
//! * a submission pays one DMA/driver setup plus a per-word transfer cost for its packets;
//! * work fetches and ready-queue peeks are uncached MMIO reads through the driver;
//! * retirements are MMIO writes.
//!
//! Those per-operation costs (hundreds to thousands of cycles at the prototype's 80 MHz) are the
//! ones the RoCC integration eliminates, and they reproduce the Nanos-AXI column of Figure 7.

use tis_core::manager::{ManagerConfig, PicosManager};
use tis_machine::fabric::{CoreId, FabricOutcome, FabricStats, SchedulerFabric};
use tis_machine::CostModel;
use tis_picos::PicosConfig;
use tis_sim::Cycle;

/// Latency parameters of the AXI/MMIO path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AxiConfig {
    /// Driver/ioctl entry cost paid once per scheduler interaction.
    pub driver_call: Cycle,
    /// DMA descriptor setup paid once per task submission.
    pub dma_setup: Cycle,
    /// Per-32-bit-word cost of streaming submission packets over AXI by DMA.
    pub dma_per_word: Cycle,
    /// One uncached MMIO read (round trip over the AXI bridge).
    pub mmio_read: Cycle,
    /// One uncached MMIO write.
    pub mmio_write: Cycle,
    /// Manager sizing (same structure as the tightly-integrated system).
    pub manager: ManagerConfig,
    /// Picos device configuration.
    pub picos: PicosConfig,
}

impl Default for AxiConfig {
    fn default() -> Self {
        let costs = CostModel::default();
        AxiConfig {
            driver_call: costs.axi_driver_call,
            dma_setup: costs.axi_dma_setup,
            dma_per_word: 30,
            mmio_read: costs.axi_mmio_read,
            mmio_write: costs.axi_mmio_write,
            manager: ManagerConfig::default(),
            picos: PicosConfig::default(),
        }
    }
}

/// The Picos accelerator reached over AXI/MMIO, as in the Picos++ full-system baseline.
#[derive(Debug, Clone)]
pub struct AxiFabric {
    config: AxiConfig,
    manager: PicosManager,
    stats: FabricStats,
}

impl AxiFabric {
    /// Builds the fabric for `cores` cores.
    pub fn new(cores: usize, config: AxiConfig) -> Self {
        AxiFabric {
            config,
            manager: PicosManager::new(cores, config.manager, config.picos),
            stats: FabricStats::default(),
        }
    }

    /// Builds the fabric with default configuration.
    pub fn with_cores(cores: usize) -> Self {
        AxiFabric::new(cores, AxiConfig::default())
    }

    /// Configuration in use.
    pub fn config(&self) -> AxiConfig {
        self.config
    }

    /// Number of tasks currently in flight inside the accelerator.
    pub fn tasks_in_flight(&self) -> usize {
        self.manager.tasks_in_flight()
    }
}

impl SchedulerFabric for AxiFabric {
    fn name(&self) -> &'static str {
        "axi-picos"
    }

    fn set_time_horizon(&mut self, safe_now: Cycle) {
        self.manager.set_time_horizon(safe_now);
    }

    fn submission_request(&mut self, core: CoreId, packet_count: u32, now: Cycle) -> (Cycle, FabricOutcome<()>) {
        self.stats.operations += 1;
        let ok = self.manager.submission_request(core, packet_count, now);
        let latency = self.config.driver_call + self.config.dma_setup;
        if !ok {
            self.stats.submission_failures += 1;
        }
        (latency, if ok { FabricOutcome::Success(()) } else { FabricOutcome::Failure })
    }

    fn submit_packets(&mut self, core: CoreId, packets: &[u32], now: Cycle) -> (Cycle, FabricOutcome<()>) {
        self.stats.operations += 1;
        let ok = self.manager.push_packets(core, packets, now);
        let latency = self.config.dma_per_word * packets.len() as Cycle;
        if ok && self.manager.stats().descriptors_forwarded > self.stats.tasks_submitted {
            self.stats.tasks_submitted = self.manager.stats().descriptors_forwarded;
        }
        (latency, if ok { FabricOutcome::Success(()) } else { FabricOutcome::Failure })
    }

    fn ready_task_request(&mut self, core: CoreId, now: Cycle) -> (Cycle, FabricOutcome<()>) {
        self.stats.operations += 1;
        let ok = self.manager.ready_task_request(core, now);
        (self.config.mmio_write, if ok { FabricOutcome::Success(()) } else { FabricOutcome::Failure })
    }

    fn fetch_sw_id(&mut self, core: CoreId, now: Cycle) -> (Cycle, FabricOutcome<u64>) {
        self.stats.operations += 1;
        let latency = self.config.driver_call + self.config.mmio_read;
        match self.manager.front_ready(core, now) {
            Some(e) => (latency, FabricOutcome::Success(e.sw_id)),
            None => {
                self.stats.fetch_failures += 1;
                (latency, FabricOutcome::Failure)
            }
        }
    }

    fn fetch_picos_id(&mut self, core: CoreId, now: Cycle) -> (Cycle, FabricOutcome<u32>) {
        self.stats.operations += 1;
        match self.manager.pop_ready(core, now) {
            Some(e) => {
                self.stats.tasks_dispatched += 1;
                (self.config.mmio_read, FabricOutcome::Success(e.picos_id))
            }
            None => {
                self.stats.fetch_failures += 1;
                (self.config.mmio_read, FabricOutcome::Failure)
            }
        }
    }

    fn retire_task(&mut self, core: CoreId, picos_id: u32, now: Cycle) -> Cycle {
        self.stats.operations += 1;
        self.stats.tasks_retired += 1;
        let manager_latency = self.manager.retire(core, picos_id, now);
        self.config.driver_call + self.config.mmio_write + manager_latency
    }

    fn stats(&self) -> FabricStats {
        let picos = self.manager.picos().stats();
        FabricStats {
            tracker_losses: picos.tracker_losses,
            tracker_resubmits: picos.tracker_resubmits,
            tracker_recovery_cycles: picos.tracker_recovery_cycles,
            ..self.stats.clone()
        }
    }

    fn set_observing(&mut self, on: bool) {
        self.manager.set_observing(on);
    }

    fn drain_ready_log(&mut self, sink: &mut dyn FnMut(Cycle, u64)) {
        self.manager.drain_ready_log(sink);
    }

    fn occupancy(&self) -> (usize, usize) {
        self.manager.occupancy()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tis_core::{TisConfig, TisFabric};
    use tis_picos::{encode_nonzero_prefix, SubmittedTask};

    fn submit(fabric: &mut dyn SchedulerFabric, core: usize, sw_id: u64, now: u64) -> Cycle {
        let pkts = encode_nonzero_prefix(&SubmittedTask::new(sw_id, vec![]));
        let (l1, out) = fabric.submission_request(core, pkts.len() as u32, now);
        assert!(out.is_success());
        let mut total = l1;
        for chunk in pkts.chunks(3) {
            let (l, out) = fabric.submit_packets(core, chunk, now + total);
            assert!(out.is_success());
            total += l;
        }
        total
    }

    #[test]
    fn axi_submission_is_orders_of_magnitude_slower_than_rocc() {
        let mut axi = AxiFabric::with_cores(2);
        let mut rocc = TisFabric::new(2, TisConfig::default());
        let axi_cycles = submit(&mut axi, 0, 1, 0);
        let rocc_cycles = submit(&mut rocc, 0, 1, 0);
        assert!(
            axi_cycles > 20 * rocc_cycles,
            "AXI path ({axi_cycles}) must dwarf the RoCC path ({rocc_cycles})"
        );
    }

    #[test]
    fn axi_lifecycle_still_works_end_to_end() {
        let mut f = AxiFabric::with_cores(2);
        submit(&mut f, 0, 42, 0);
        let (_, out) = f.ready_task_request(1, 100);
        assert!(out.is_success());
        let mut now = 100;
        let sw = loop {
            now += 20;
            if let FabricOutcome::Success(sw) = f.fetch_sw_id(1, now).1 {
                break sw;
            }
            assert!(now < 100_000);
        };
        assert_eq!(sw, 42);
        let pid = f.fetch_picos_id(1, now).1.success().unwrap();
        let lat = f.retire_task(1, pid, now + 10);
        assert!(lat > CostModel::default().axi_driver_call);
        assert_eq!(f.tasks_in_flight(), 0);
    }

    #[test]
    fn fetch_failure_still_pays_the_driver_round_trip() {
        // The expensive part of polling an empty accelerator over MMIO is that even failure
        // costs a full driver round trip — one reason the paper's fine-grained workloads sink.
        let mut f = AxiFabric::with_cores(1);
        let (lat, out) = f.fetch_sw_id(0, 0);
        assert!(!out.is_success());
        assert!(lat >= AxiConfig::default().driver_call);
    }
}
