//! Memory hierarchy substrate: per-core MESI L1 caches, a snooping interconnect without a shared
//! L2, and a DRAM latency/bandwidth model.
//!
//! The paper's prototype (Section VI-A1) is an eight-core Rocket Chip with eight-way 32 KB
//! core-private L1 caches kept coherent with the MESI protocol and **no shared L2**: dirty lines
//! can only move between cores through main memory. The cores run at 80 MHz while DRAM runs at
//! 667 MHz, so misses are comparatively cheap — but coherence *bouncing* of shared runtime data
//! structures (Nanos' central scheduler queue, naive shared retirement counters) is still the
//! dominant overhead the Phentos design works to avoid (Section V-B). This crate models exactly
//! those mechanisms:
//!
//! * [`addr`] — addresses, cache-line geometry;
//! * [`mesi`] — the MESI state machine as a pure transition table (unit- and property-tested);
//! * [`cache`] — a set-associative L1 with LRU replacement and per-line MESI state;
//! * [`system`] — the multi-core [`MemorySystem`]: snooping, writebacks
//!   through memory, per-access latency accounting;
//! * [`bandwidth`] — the shared DRAM channel used to charge task *payload* traffic, so that
//!   memory-bound workloads stop scaling before compute-bound ones.
//!
//! Beyond the prototype's single snoop domain, a second, selectable interconnect model keeps
//! large-core-count results honest (choose per [`MemorySystem::with_model`] / [`MemoryModel`]):
//!
//! * [`directory`] — a directory-based coherence protocol as a pure transition table: per-line
//!   sharer bitsets, home-tile bookkeeping, invalidation fan-out;
//! * [`noc`] — the 2D-mesh NoC the directory's messages travel over: hop counts from a
//!   row-major core→tile mapping with per-hop + injection latency, and a selectable
//!   link-contention tier ([`NocContention`]) that adds per-link bandwidth, flit-sized
//!   messages, XY routing and finite router buffers with upstream back-pressure.
//!
//! # Example
//!
//! ```
//! use tis_mem::{MemorySystem, MemLatencies, CacheConfig, AccessKind};
//!
//! let mut mem = MemorySystem::new(2, CacheConfig::rocket_l1d(), MemLatencies::default());
//! // Core 0 writes a line, core 1 then reads it: the dirty line travels through memory.
//! let w = mem.access(0, 0x1000, AccessKind::Write, 8, 0);
//! let r = mem.access(1, 0x1000, AccessKind::Read, 8, w.latency);
//! assert!(r.remote_dirty && r.latency > w.latency);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod addr;
pub mod bandwidth;
pub mod cache;
pub mod directory;
pub mod mesi;
pub mod noc;
pub mod system;

pub use addr::{line_of, Addr, LINE_SIZE};
pub use bandwidth::BandwidthModel;
pub use cache::{CacheConfig, CacheStats, L1Cache};
pub use directory::{DirState, SharerSet};
pub use mesi::{AccessKind, MesiState};
pub use noc::{LinkContention, Mesh, NocConfig, NocContention, NocTraffic};
pub use system::{
    MemLatencies, MemoryAccessOutcome, MemoryModel, MemoryStats, MemorySystem, NocLegRecord,
};
pub use tis_fault::{DegradedOutcome, FaultConfig, FaultDiagnosis, FaultStats};
