//! Shared DRAM bandwidth model for task payload traffic.
//!
//! Runtime metadata (task descriptors, scheduler queues, counters) is simulated at cache-line
//! granularity by [`crate::MemorySystem`]; the *payload* traffic of task bodies — megabytes of
//! array data in the stream benchmarks — would be far too expensive to simulate per access.
//! Instead each task declares how many bytes it moves and the machine charges that against a
//! single shared DRAM channel. The channel is a simple FIFO server: concurrent tasks queue
//! behind each other, so eight memory-bound tasks see roughly one eighth of the peak bandwidth
//! each, which is what caps the stream benchmarks' speedup below the core count in the paper.

use tis_sim::Cycle;

/// A shared, FIFO-served DRAM channel.
#[derive(Debug, Clone)]
pub struct BandwidthModel {
    bytes_per_cycle: f64,
    free_at: Cycle,
    total_bytes: u64,
    total_wait_cycles: u64,
    requests: u64,
}

impl BandwidthModel {
    /// Default effective DRAM bandwidth, in bytes per *core* cycle.
    ///
    /// The ZCU102's DDR4 runs at 667 MHz while the Rocket cores run at 80 MHz, so even a modest
    /// effective DRAM throughput is plentiful per core cycle; 16 B/cycle (≈1.3 GB/s at 80 MHz)
    /// reflects the single in-order memory port of the prototype rather than raw DDR4 peak.
    pub const DEFAULT_BYTES_PER_CYCLE: f64 = 16.0;

    /// Creates a channel with the given peak bandwidth in bytes per core cycle.
    ///
    /// # Panics
    ///
    /// Panics if `bytes_per_cycle` is not strictly positive.
    pub fn new(bytes_per_cycle: f64) -> Self {
        assert!(bytes_per_cycle > 0.0, "bandwidth must be positive");
        BandwidthModel {
            bytes_per_cycle,
            free_at: 0,
            total_bytes: 0,
            total_wait_cycles: 0,
            requests: 0,
        }
    }

    /// Peak bandwidth in bytes per core cycle.
    pub fn peak_bytes_per_cycle(&self) -> f64 {
        self.bytes_per_cycle
    }

    /// Requests a transfer of `bytes` starting at cycle `now`; returns the number of cycles the
    /// requesting core is stalled (queueing delay plus service time).
    pub fn transfer(&mut self, now: Cycle, bytes: u64) -> Cycle {
        if bytes == 0 {
            return 0;
        }
        self.requests += 1;
        self.total_bytes += bytes;
        let service = (bytes as f64 / self.bytes_per_cycle).ceil() as Cycle;
        let start = self.free_at.max(now);
        let wait = start - now;
        self.total_wait_cycles += wait;
        self.free_at = start + service;
        wait + service
    }

    /// Total bytes transferred so far.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Total cycles requests spent queueing (not being served).
    pub fn total_wait_cycles(&self) -> u64 {
        self.total_wait_cycles
    }

    /// Number of transfer requests served.
    pub fn requests(&self) -> u64 {
        self.requests
    }

    /// Cycle at which the channel becomes idle.
    pub fn free_at(&self) -> Cycle {
        self.free_at
    }
}

impl Default for BandwidthModel {
    fn default() -> Self {
        BandwidthModel::new(Self::DEFAULT_BYTES_PER_CYCLE)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_bytes_is_free() {
        let mut b = BandwidthModel::default();
        assert_eq!(b.transfer(100, 0), 0);
        assert_eq!(b.requests(), 0);
    }

    #[test]
    fn uncontended_transfer_is_service_time_only() {
        let mut b = BandwidthModel::new(16.0);
        assert_eq!(b.transfer(0, 160), 10);
        assert_eq!(b.total_bytes(), 160);
        assert_eq!(b.total_wait_cycles(), 0);
    }

    #[test]
    fn concurrent_transfers_queue() {
        let mut b = BandwidthModel::new(16.0);
        // Two cores request 160 bytes at the same cycle: the second waits for the first.
        let l1 = b.transfer(0, 160);
        let l2 = b.transfer(0, 160);
        assert_eq!(l1, 10);
        assert_eq!(l2, 20);
        assert_eq!(b.total_wait_cycles(), 10);
        // A later request after the channel drained sees no wait.
        let l3 = b.transfer(100, 16);
        assert_eq!(l3, 1);
    }

    #[test]
    fn service_time_rounds_up() {
        let mut b = BandwidthModel::new(16.0);
        assert_eq!(b.transfer(0, 1), 1);
        assert_eq!(b.transfer(1000, 17), 2);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn non_positive_bandwidth_panics() {
        BandwidthModel::new(0.0);
    }

    #[test]
    fn eight_way_sharing_divides_bandwidth() {
        // Eight cores each moving the same number of bytes at the same time finish in about
        // eight times the single-core time — the effect that caps stream's speedup in the paper.
        let mut b = BandwidthModel::new(16.0);
        let solo = {
            let mut solo_b = BandwidthModel::new(16.0);
            solo_b.transfer(0, 1600)
        };
        let mut last = 0;
        for _ in 0..8 {
            last = b.transfer(0, 1600);
        }
        assert_eq!(solo, 100);
        assert_eq!(last, 800);
    }
}
