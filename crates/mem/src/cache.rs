//! Set-associative L1 cache with per-line MESI state and LRU replacement.
//!
//! The structure matches the paper's prototype: each Rocket core has an eight-way, 32 KB,
//! 64-byte-line data cache ([`CacheConfig::rocket_l1d`]). The cache tracks *which* lines are
//! present and in what coherence state; data values are never simulated because only timing and
//! traffic matter for the reproduction.

use crate::addr::{line_of, Addr, LINE_SIZE};
use crate::mesi::MesiState;

/// Geometry of an L1 cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub capacity_bytes: u64,
    /// Associativity (ways per set).
    pub ways: usize,
}

impl CacheConfig {
    /// The eight-way 32 KB Rocket Chip L1 data cache used by the paper's prototype.
    pub fn rocket_l1d() -> Self {
        CacheConfig { capacity_bytes: 32 * 1024, ways: 8 }
    }

    /// A tiny cache useful in tests that want to exercise evictions quickly.
    pub fn tiny() -> Self {
        CacheConfig { capacity_bytes: 4 * LINE_SIZE, ways: 2 }
    }

    /// Number of sets implied by the geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (zero ways, capacity not a multiple of
    /// `ways * LINE_SIZE`, or a non-power-of-two set count).
    pub fn sets(&self) -> usize {
        assert!(self.ways > 0, "cache must have at least one way");
        let per_way = self.capacity_bytes / self.ways as u64;
        assert!(
            per_way.is_multiple_of(LINE_SIZE),
            "capacity must be a whole number of lines per way"
        );
        let sets = (per_way / LINE_SIZE) as usize;
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        sets
    }

    /// Total number of lines the cache can hold.
    pub fn total_lines(&self) -> usize {
        self.sets() * self.ways
    }
}

/// Lifetime statistics of one L1 cache.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Accesses that hit in a usable state.
    pub hits: u64,
    /// Accesses that required a line fill from memory.
    pub misses: u64,
    /// Write accesses that hit a Shared line and required an upgrade (invalidation of peers).
    pub upgrades: u64,
    /// Lines evicted to make room for a fill.
    pub evictions: u64,
    /// Evicted or snooped-out lines that were dirty and had to be written back.
    pub writebacks: u64,
    /// Lines invalidated by remote cores' ownership requests.
    pub snoop_invalidations: u64,
}

impl CacheStats {
    /// Total number of processor accesses observed.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses + self.upgrades
    }

    /// Hit rate over all accesses, or 1.0 when idle.
    pub fn hit_rate(&self) -> f64 {
        let a = self.accesses();
        if a == 0 {
            1.0
        } else {
            self.hits as f64 / a as f64
        }
    }
}

#[derive(Debug, Clone)]
struct LineEntry {
    line: u64,
    state: MesiState,
    last_use: u64,
}

/// A single core's L1 cache directory.
#[derive(Debug, Clone)]
pub struct L1Cache {
    config: CacheConfig,
    sets: Vec<Vec<LineEntry>>,
    use_clock: u64,
    stats: CacheStats,
    /// Fast lookup from line number to set index cache (lines map to sets by modulo).
    set_mask: u64,
}

/// The result of installing a line: which victim (line number, dirty?) was evicted, if any.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Eviction {
    /// Line number of the evicted victim.
    pub line: u64,
    /// Whether the victim was dirty and requires a writeback to memory.
    pub dirty: bool,
}

impl L1Cache {
    /// Creates an empty cache with the given geometry.
    pub fn new(config: CacheConfig) -> Self {
        let sets = config.sets();
        L1Cache {
            config,
            sets: vec![Vec::new(); sets],
            use_clock: 0,
            stats: CacheStats::default(),
            set_mask: sets as u64 - 1,
        }
    }

    /// Cache geometry.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// Lifetime statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    fn set_index(&self, line: u64) -> usize {
        (line & self.set_mask) as usize
    }

    /// Current MESI state of the line containing `addr`.
    pub fn state_of(&self, addr: Addr) -> MesiState {
        let line = line_of(addr);
        let set = &self.sets[self.set_index(line)];
        set.iter()
            .find(|e| e.line == line)
            .map(|e| e.state)
            .unwrap_or(MesiState::Invalid)
    }

    /// Records a processor access outcome for statistics purposes.
    pub(crate) fn note_hit(&mut self) {
        self.stats.hits += 1;
    }

    /// Records a miss for statistics purposes.
    pub(crate) fn note_miss(&mut self) {
        self.stats.misses += 1;
    }

    /// Records an upgrade (S->M ownership acquisition) for statistics purposes.
    pub(crate) fn note_upgrade(&mut self) {
        self.stats.upgrades += 1;
    }

    /// Marks the line as recently used and sets its state (used on hits and upgrades).
    ///
    /// # Panics
    ///
    /// Panics if the line is not present; callers must only touch resident lines.
    pub fn touch(&mut self, addr: Addr, state: MesiState) {
        self.use_clock += 1;
        let line = line_of(addr);
        let idx = self.set_index(line);
        let clock = self.use_clock;
        let entry = self.sets[idx]
            .iter_mut()
            .find(|e| e.line == line)
            .expect("touch() requires the line to be resident");
        entry.state = state;
        entry.last_use = clock;
    }

    /// Installs (fills) the line containing `addr` in the given state, evicting the LRU way of
    /// its set if the set is full. Returns the eviction, if one happened.
    pub fn install(&mut self, addr: Addr, state: MesiState) -> Option<Eviction> {
        self.use_clock += 1;
        let line = line_of(addr);
        let idx = self.set_index(line);
        let clock = self.use_clock;
        if let Some(entry) = self.sets[idx].iter_mut().find(|e| e.line == line) {
            entry.state = state;
            entry.last_use = clock;
            return None;
        }
        let mut eviction = None;
        if self.sets[idx].len() >= self.config.ways {
            let lru_pos = self.sets[idx]
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.last_use)
                .map(|(i, _)| i)
                .expect("set is non-empty");
            let victim = self.sets[idx].swap_remove(lru_pos);
            self.stats.evictions += 1;
            let dirty = victim.state.is_dirty();
            if dirty {
                self.stats.writebacks += 1;
            }
            eviction = Some(Eviction { line: victim.line, dirty });
        }
        self.sets[idx].push(LineEntry { line, state, last_use: clock });
        eviction
    }

    /// Applies a snoop result: sets the line's state (possibly Invalid), recording writeback and
    /// invalidation statistics. Does nothing if the line is not resident.
    pub fn apply_snoop(&mut self, addr: Addr, new_state: MesiState, wrote_back: bool) {
        let line = line_of(addr);
        let idx = self.set_index(line);
        if let Some(pos) = self.sets[idx].iter().position(|e| e.line == line) {
            if wrote_back {
                self.stats.writebacks += 1;
            }
            if new_state == MesiState::Invalid {
                self.sets[idx].swap_remove(pos);
                self.stats.snoop_invalidations += 1;
            } else {
                self.sets[idx][pos].state = new_state;
            }
        }
    }

    /// Number of currently resident lines.
    pub fn resident_lines(&self) -> usize {
        self.sets.iter().map(|s| s.len()).sum()
    }

    /// Iterates over `(line, state)` of resident lines (test helper).
    pub fn resident(&self) -> impl Iterator<Item = (u64, MesiState)> + '_ {
        self.sets.iter().flatten().map(|e| (e.line, e.state))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rocket_geometry() {
        let c = CacheConfig::rocket_l1d();
        assert_eq!(c.sets(), 64);
        assert_eq!(c.total_lines(), 512);
        assert_eq!(CacheConfig::tiny().sets(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one way")]
    fn zero_ways_panics() {
        CacheConfig { capacity_bytes: 1024, ways: 0 }.sets();
    }

    #[test]
    fn install_and_state() {
        let mut c = L1Cache::new(CacheConfig::rocket_l1d());
        assert_eq!(c.state_of(0x1000), MesiState::Invalid);
        assert_eq!(c.install(0x1000, MesiState::Exclusive), None);
        assert_eq!(c.state_of(0x1000), MesiState::Exclusive);
        assert_eq!(c.state_of(0x1004), MesiState::Exclusive, "same line");
        assert_eq!(c.state_of(0x1040), MesiState::Invalid, "next line");
        assert_eq!(c.resident_lines(), 1);
    }

    #[test]
    fn lru_eviction_of_dirty_line_reports_writeback() {
        let mut c = L1Cache::new(CacheConfig::tiny()); // 2 sets x 2 ways
        // Three lines mapping to set 0: lines 0, 2, 4 (stride of 2 lines = 128 bytes).
        assert!(c.install(0, MesiState::Modified).is_none());
        assert!(c.install(128, MesiState::Exclusive).is_none());
        // Touch line 0 so line 2 (addr 128) becomes LRU.
        c.touch(0, MesiState::Modified);
        let ev = c.install(256, MesiState::Shared).expect("set is full, someone must go");
        assert_eq!(ev.line, 2);
        assert!(!ev.dirty);
        // Now evict the dirty line 0 by filling another conflicting line.
        let ev = c.install(384, MesiState::Shared).expect("eviction");
        assert_eq!(ev.line, 0);
        assert!(ev.dirty);
        assert_eq!(c.stats().writebacks, 1);
        assert_eq!(c.stats().evictions, 2);
    }

    #[test]
    fn snoop_invalidation_removes_line() {
        let mut c = L1Cache::new(CacheConfig::rocket_l1d());
        c.install(0x2000, MesiState::Modified);
        c.apply_snoop(0x2000, MesiState::Invalid, true);
        assert_eq!(c.state_of(0x2000), MesiState::Invalid);
        assert_eq!(c.stats().snoop_invalidations, 1);
        assert_eq!(c.stats().writebacks, 1);
        // Snooping an absent line is a no-op.
        c.apply_snoop(0x9999, MesiState::Invalid, false);
        assert_eq!(c.stats().snoop_invalidations, 1);
    }

    #[test]
    fn snoop_downgrade_keeps_line_shared() {
        let mut c = L1Cache::new(CacheConfig::rocket_l1d());
        c.install(0x3000, MesiState::Modified);
        c.apply_snoop(0x3000, MesiState::Shared, true);
        assert_eq!(c.state_of(0x3000), MesiState::Shared);
        assert_eq!(c.resident_lines(), 1);
    }

    #[test]
    fn stats_hit_rate() {
        let mut s = CacheStats::default();
        assert_eq!(s.hit_rate(), 1.0);
        s.hits = 3;
        s.misses = 1;
        assert_eq!(s.accesses(), 4);
        assert!((s.hit_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn reinstall_same_line_updates_state_without_eviction() {
        let mut c = L1Cache::new(CacheConfig::tiny());
        c.install(0, MesiState::Shared);
        assert!(c.install(0, MesiState::Modified).is_none());
        assert_eq!(c.state_of(0), MesiState::Modified);
        assert_eq!(c.resident_lines(), 1);
    }

    #[test]
    #[should_panic(expected = "resident")]
    fn touch_missing_line_panics() {
        let mut c = L1Cache::new(CacheConfig::tiny());
        c.touch(0x500, MesiState::Shared);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// The cache never holds more lines than its capacity allows, and every set respects its
        /// associativity, under arbitrary interleavings of installs and snoops.
        #[test]
        fn capacity_never_exceeded(ops in proptest::collection::vec((0u64..64, 0u8..3), 1..300)) {
            let cfg = CacheConfig::tiny();
            let mut c = L1Cache::new(cfg);
            for (line, op) in ops {
                let addr = line * LINE_SIZE;
                match op {
                    0 => { c.install(addr, MesiState::Shared); }
                    1 => { c.install(addr, MesiState::Modified); }
                    _ => { c.apply_snoop(addr, MesiState::Invalid, false); }
                }
                prop_assert!(c.resident_lines() <= cfg.total_lines());
                for set in &c.sets {
                    prop_assert!(set.len() <= cfg.ways);
                }
            }
        }
    }
}
