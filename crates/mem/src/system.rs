//! The multi-core coherent memory system.
//!
//! [`MemorySystem`] glues the per-core [`L1Cache`]s together with a coherence interconnect and
//! a DRAM backend. Two interconnect models are selectable via [`MemoryModel`]:
//!
//! * [`MemoryModel::SnoopBus`] — the paper's prototype (Section V-B): a snooping bus with
//!   **no shared L2**, so a line that is dirty in one core's cache can only reach another core
//!   by being written back to main memory and re-fetched — this is why cache-line bouncing on
//!   shared runtime data is so expensive on the prototype. The memory clock (667 MHz) is much
//!   faster than the 80 MHz core clock, so plain DRAM misses are comparatively cheap, and
//!   upgrades (a core writing a Shared line) cost a bus transaction that invalidates every
//!   other copy. Faithful at 8 cores, *optimistic* beyond one snoop domain.
//! * [`MemoryModel::DirectoryMesh`] — a directory protocol ([`crate::directory`]) over a 2D
//!   mesh NoC ([`crate::noc`]): misses travel to the line's home tile, the directory's sharer
//!   bitset routes downgrades/recalls/invalidations point-to-point, and every message pays
//!   per-hop latency. Functionally MESI-equivalent (same states, same hit/miss/bounce
//!   outcomes — pinned by the differential suite in `tests/mem_model_equivalence.rs`), but
//!   with latencies that grow with the mesh diameter, which is what makes 64-core results
//!   defensible.
//!
//! Every runtime in the workspace performs its metadata accesses through this model, so the
//! difference between, say, Phentos' per-core metadata layout and Nanos' centralised queues shows
//! up as genuine simulated coherence traffic rather than as a hand-tuned constant.

use std::collections::HashMap;

use tis_fault::{FaultConfig, FaultDiagnosis, FaultStats, LinkFaults};
use tis_sim::Cycle;

use crate::addr::{line_of, lines_touched, Addr, LINE_SIZE};
use crate::cache::{CacheConfig, CacheStats, L1Cache};
use crate::directory::{dir_transition, DirAction, DirOp, DirState};
use crate::mesi::{local_transition, snoop_transition, AccessKind, BusOp, LocalAction, MesiState, SnoopAction};
use crate::noc::{Mesh, NocConfig, NocContention, NocTraffic, CTRL_MSG_BYTES, DATA_MSG_BYTES};

/// Which coherence interconnect the [`MemorySystem`] simulates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[derive(Default)]
pub enum MemoryModel {
    /// The paper's single snoop domain: MESI over a broadcast bus, no shared L2. The default,
    /// and the model every figure reproduction is pinned to.
    #[default]
    SnoopBus,
    /// Directory-based MESI over a 2D-mesh NoC with the given latency parameters. Selectable
    /// per [`crate::noc::NocConfig`]; functionally equivalent to [`MemoryModel::SnoopBus`] but
    /// with distance-dependent latencies.
    DirectoryMesh(NocConfig),
}


impl MemoryModel {
    /// The directory/NoC model with default mesh latencies and the ideal (contention-free)
    /// link model.
    pub fn directory_mesh() -> Self {
        MemoryModel::DirectoryMesh(NocConfig::default())
    }

    /// The directory/NoC model with the default contended link parameters (finite link
    /// bandwidth and router buffers — see [`crate::noc::LinkContention`]).
    pub fn directory_mesh_contended() -> Self {
        MemoryModel::DirectoryMesh(NocConfig::contended())
    }

    /// Stable lower-case key used in machine-readable output and sweep-row labels. The
    /// contended mesh gets its own key so sweep rows and `bench-diff` cell identities never
    /// conflate the two link models.
    pub fn key(self) -> &'static str {
        match self {
            MemoryModel::SnoopBus => "snoop-bus",
            MemoryModel::DirectoryMesh(noc) => match noc.contention {
                NocContention::Ideal => "dir-mesh",
                NocContention::Contended(_) => "dir-mesh-c",
            },
        }
    }

    /// Human-readable label (same as [`MemoryModel::key`]).
    pub fn label(self) -> &'static str {
        self.key()
    }

    /// Key of the NoC-contention coordinate for machine-readable output: `none` for the
    /// snooping bus (no NoC at all), `ideal` for the contention-free mesh, or the
    /// parameter-bearing [`crate::noc::LinkContention::key_string`] for a contended mesh.
    pub fn noc_key(self) -> String {
        match self {
            MemoryModel::SnoopBus => "none".to_string(),
            MemoryModel::DirectoryMesh(noc) => noc.contention.key_string(),
        }
    }
}

/// Latency parameters of the memory system, in core cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemLatencies {
    /// An access that hits in the local L1.
    pub l1_hit: Cycle,
    /// Fetching a line from DRAM (includes the miss handling overhead of the in-order core).
    pub dram_fetch: Cycle,
    /// Writing a dirty line back to DRAM.
    pub writeback: Cycle,
    /// An ownership upgrade (invalidating remote copies) that does not need a data fetch.
    pub upgrade: Cycle,
    /// Occupancy of the snoop bus per transaction; concurrent misses queue behind each other.
    pub bus_occupancy: Cycle,
    /// Extra serialization cycles of an atomic read-modify-write beyond the plain store cost.
    pub atomic_extra: Cycle,
}

impl Default for MemLatencies {
    fn default() -> Self {
        // Calibrated for the 80 MHz Rocket / 667 MHz DDR prototype: a DRAM round trip of a few
        // hundred nanoseconds is only a couple dozen 12.5 ns core cycles.
        MemLatencies {
            l1_hit: 1,
            dram_fetch: 24,
            writeback: 12,
            upgrade: 8,
            bus_occupancy: 4,
            atomic_extra: 6,
        }
    }
}

/// Outcome of one memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryAccessOutcome {
    /// Total stall cycles charged to the requesting core.
    pub latency: Cycle,
    /// Whether every touched line hit in the local L1 in a sufficient state.
    pub l1_hit: bool,
    /// Whether a remote cache held one of the lines in Modified state (dirty bounce).
    pub remote_dirty: bool,
    /// Number of cache lines the access touched.
    pub lines: usize,
}

/// Aggregate statistics of the memory system.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MemoryStats {
    /// Per-core L1 statistics.
    pub per_core: Vec<CacheStats>,
    /// Number of lines fetched from DRAM.
    pub dram_fetches: u64,
    /// Number of dirty lines written back to DRAM.
    pub dram_writebacks: u64,
    /// Number of snoop-bus transactions (always zero under [`MemoryModel::DirectoryMesh`]).
    pub bus_transactions: u64,
    /// Number of accesses that found the line dirty in a remote cache.
    pub dirty_bounces: u64,
    /// Number of processor accesses observed ([`MemorySystem::access`] calls).
    pub accesses: u64,
    /// Total stall cycles charged to cores across all accesses — the memory-latency metric the
    /// `sweep_memory_scaling` experiment compares across models.
    pub stall_cycles: u64,
    /// Number of NoC messages sent (always zero under [`MemoryModel::SnoopBus`]).
    pub noc_messages: u64,
    /// Total hops traversed by NoC messages.
    pub noc_hop_total: u64,
    /// Number of point-to-point invalidations fanned out by directory homes.
    pub invalidations: u64,
    /// Total cycles NoC messages spent queueing for busy links. Non-zero only under a
    /// [`MemoryModel::DirectoryMesh`] with [`NocContention::Contended`] links — the headline
    /// contention metric of the `sweep_noc_contention` experiment.
    pub noc_link_wait_cycles: u64,
    /// Maximum observed occupancy of any one directed link, in flits: queued work ahead of an
    /// arriving message plus that message's own flits (zero under the bus or the ideal mesh).
    pub max_link_occupancy: u64,
    /// Total flits carried by NoC messages under the contended link model (zero otherwise).
    pub noc_flits: u64,
    /// Injected-fault counters (all zero unless a [`FaultConfig`] engages the fault layer).
    pub fault: FaultStats,
}

impl MemoryStats {
    /// Mean stall cycles per processor access, or zero when idle.
    pub fn mean_access_latency(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.stall_cycles as f64 / self.accesses as f64
        }
    }
}

/// The coherent multi-core memory system.
#[derive(Debug, Clone)]
pub struct MemorySystem {
    caches: Vec<L1Cache>,
    latencies: MemLatencies,
    model: MemoryModel,
    mesh: Mesh,
    /// Per-line directory state, keyed by line number; only populated under
    /// [`MemoryModel::DirectoryMesh`]. Entries are removed when a line returns to `Uncached`,
    /// so the map tracks exactly the lines some cache holds.
    directory: HashMap<u64, DirState>,
    /// Per-link occupancy state; populated only under a [`MemoryModel::DirectoryMesh`] whose
    /// [`NocConfig::contention`] is [`NocContention::Contended`]. `None` means messages are
    /// priced by the closed-form ideal formula, bit-identical to the bandwidth-free model.
    noc: Option<NocTraffic>,
    /// Deterministic message-fault state; present only when a [`FaultConfig`] engages the
    /// fault layer **and** the model has a mesh to fault (drop/delay/dead-link faults are
    /// defined on directed mesh links — the snooping bus has none). `None` means
    /// [`MemorySystem::noc_send`] is exactly the fault-free path.
    faults: Option<LinkFaults>,
    bus_free_at: Cycle,
    dram_fetches: u64,
    dram_writebacks: u64,
    bus_transactions: u64,
    dirty_bounces: u64,
    accesses: u64,
    stall_cycles: u64,
    noc_messages: u64,
    noc_hop_total: u64,
    invalidations: u64,
    /// Observability: while `true`, every [`MemorySystem::noc_send`] appends a
    /// [`NocLegRecord`] for the engine to drain. Plain data — this crate has no observer
    /// dependency — and nothing is buffered while disarmed (the default).
    observing: bool,
    noc_leg_log: Vec<NocLegRecord>,
}

/// One NoC protocol leg, recorded while observability logging is armed
/// (see [`MemorySystem::set_observing`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NocLegRecord {
    /// Cycle at which the message was injected.
    pub at: Cycle,
    /// Source tile.
    pub from: usize,
    /// Destination tile.
    pub to: usize,
    /// Flits carried (zero under the ideal, bandwidth-free link model).
    pub flits: u64,
    /// Cycles the message queued behind concurrent traffic (zero under the ideal model).
    pub wait_cycles: u64,
}

impl MemorySystem {
    /// Creates a memory system with `cores` private L1 caches on the default snooping bus.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is zero.
    pub fn new(cores: usize, cache: CacheConfig, latencies: MemLatencies) -> Self {
        Self::with_model(cores, cache, latencies, MemoryModel::SnoopBus)
    }

    /// Creates a memory system with the given coherence interconnect model.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is zero.
    pub fn with_model(
        cores: usize,
        cache: CacheConfig,
        latencies: MemLatencies,
        model: MemoryModel,
    ) -> Self {
        Self::with_model_and_faults(cores, cache, latencies, model, FaultConfig::none())
    }

    /// Creates a memory system with the given interconnect model and fault schedule.
    ///
    /// Message faults (drop/delay/dead-link) are defined on the mesh's directed links, so an
    /// engaging `fault` only constructs fault state under [`MemoryModel::DirectoryMesh`]; the
    /// snooping bus is never message-faulted. A non-engaging config
    /// ([`FaultConfig::none`]) makes this identical to [`MemorySystem::with_model`].
    ///
    /// # Panics
    ///
    /// Panics if `cores` is zero or the fault configuration is invalid.
    pub fn with_model_and_faults(
        cores: usize,
        cache: CacheConfig,
        latencies: MemLatencies,
        model: MemoryModel,
        fault: FaultConfig,
    ) -> Self {
        assert!(cores > 0, "a machine needs at least one core");
        let mesh = Mesh::new(cores);
        let noc = match model {
            MemoryModel::DirectoryMesh(NocConfig { contention: NocContention::Contended(params), .. }) => {
                Some(NocTraffic::new(&mesh, params))
            }
            _ => None,
        };
        let faults = (fault.engages() && matches!(model, MemoryModel::DirectoryMesh(_)))
            .then(|| LinkFaults::new(fault, mesh.link_slots()));
        MemorySystem {
            caches: (0..cores).map(|_| L1Cache::new(cache)).collect(),
            latencies,
            model,
            mesh,
            directory: HashMap::new(),
            noc,
            faults,
            bus_free_at: 0,
            dram_fetches: 0,
            dram_writebacks: 0,
            bus_transactions: 0,
            dirty_bounces: 0,
            accesses: 0,
            stall_cycles: 0,
            noc_messages: 0,
            noc_hop_total: 0,
            invalidations: 0,
            observing: false,
            noc_leg_log: Vec::new(),
        }
    }

    /// Arms (or disarms) NoC-leg logging. While armed, every protocol leg sent through the
    /// interconnect is buffered as a [`NocLegRecord`] until drained; while disarmed — the
    /// default — nothing is buffered and the send path is untouched.
    pub fn set_observing(&mut self, on: bool) {
        self.observing = on;
        if !on {
            self.noc_leg_log.clear();
        }
    }

    /// Drains buffered NoC-leg records, oldest first, into `sink`. Called by the engine after
    /// every agent step on observed runs.
    pub fn drain_noc_legs(&mut self, sink: &mut dyn FnMut(&NocLegRecord)) {
        for leg in self.noc_leg_log.drain(..) {
            sink(&leg);
        }
    }

    /// Number of cores / caches.
    pub fn cores(&self) -> usize {
        self.caches.len()
    }

    /// The latency parameters in use.
    pub fn latencies(&self) -> MemLatencies {
        self.latencies
    }

    /// The coherence interconnect model in use.
    pub fn model(&self) -> MemoryModel {
        self.model
    }

    /// Immutable view of one core's cache (for tests and statistics).
    pub fn cache(&self, core: usize) -> &L1Cache {
        &self.caches[core]
    }

    /// Performs a memory access of `bytes` bytes at `addr` from `core` at time `now`, returning
    /// the latency to charge to that core.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn access(
        &mut self,
        core: usize,
        addr: Addr,
        kind: AccessKind,
        bytes: u64,
        now: Cycle,
    ) -> MemoryAccessOutcome {
        assert!(core < self.caches.len(), "core index out of range");
        let lines = lines_touched(addr, bytes.max(1));
        let mut latency = 0;
        let mut all_hit = true;
        let mut any_remote_dirty = false;
        for (i, line) in lines.iter().enumerate() {
            let line_addr = line * LINE_SIZE;
            let (l, hit, dirty) = self.access_line(core, line_addr, kind, now + latency);
            // The first line's latency is fully exposed; subsequent lines of a multi-line access
            // overlap with the consumption of the previous one, so only their miss portion adds.
            if i == 0 {
                latency += l;
            } else {
                latency += l.saturating_sub(self.latencies.l1_hit);
            }
            all_hit &= hit;
            any_remote_dirty |= dirty;
        }
        if kind == AccessKind::Atomic {
            latency += self.latencies.atomic_extra;
        }
        self.accesses += 1;
        self.stall_cycles += latency;
        MemoryAccessOutcome {
            latency,
            l1_hit: all_hit,
            remote_dirty: any_remote_dirty,
            lines: lines.len(),
        }
    }

    /// Access of a single line; returns (latency, was_hit, remote_was_dirty).
    fn access_line(
        &mut self,
        core: usize,
        line_addr: Addr,
        kind: AccessKind,
        now: Cycle,
    ) -> (Cycle, bool, bool) {
        match self.model {
            MemoryModel::SnoopBus => self.access_line_snoop(core, line_addr, kind, now),
            MemoryModel::DirectoryMesh(noc) => {
                self.access_line_directory(core, line_addr, kind, noc, now)
            }
        }
    }

    /// Snoop-bus access of a single line (the paper's prototype path).
    fn access_line_snoop(
        &mut self,
        core: usize,
        line_addr: Addr,
        kind: AccessKind,
        now: Cycle,
    ) -> (Cycle, bool, bool) {
        let state = self.caches[core].state_of(line_addr);
        let (action, new_state) = local_transition(state, kind);
        match action {
            LocalAction::Hit => {
                self.caches[core].note_hit();
                self.caches[core].touch(line_addr, new_state);
                (self.latencies.l1_hit, true, false)
            }
            LocalAction::IssueBusRead => {
                let (lat, dirty, sharers) = self.bus_transaction(core, line_addr, BusOp::BusRead, now);
                self.caches[core].note_miss();
                // If no other cache holds the line we may install it Exclusive (the E state).
                let install_state = if sharers == 0 { MesiState::Exclusive } else { MesiState::Shared };
                let final_state = if new_state == MesiState::Shared { install_state } else { new_state };
                self.install_with_eviction(core, line_addr, final_state, now);
                (lat, false, dirty)
            }
            LocalAction::IssueBusReadExclusive => {
                let had_line = state == MesiState::Shared;
                let (mut lat, dirty, _) =
                    self.bus_transaction(core, line_addr, BusOp::BusReadExclusive, now);
                if had_line {
                    // Upgrade: the data is already local, only the invalidation round trip
                    // counts — so the data-less transaction performs no DRAM fetch. The bus
                    // charged one unconditionally (its latency is min'd away just below);
                    // correct the counter so both memory models report identical DRAM traffic
                    // on identical traces.
                    self.dram_fetches -= 1;
                    self.caches[core].note_upgrade();
                    lat = lat.min(self.latencies.upgrade + self.wait_for_bus(now));
                    self.caches[core].touch(line_addr, MesiState::Modified);
                } else {
                    self.caches[core].note_miss();
                    self.install_with_eviction(core, line_addr, MesiState::Modified, now);
                }
                (lat, false, dirty)
            }
        }
    }

    /// Directory/NoC access of a single line. Functionally identical to the snoop path — same
    /// local MESI transitions, same install states, same dirty-bounce semantics — but every
    /// coherence action is routed through the line's home tile and priced in mesh hops.
    fn access_line_directory(
        &mut self,
        core: usize,
        line_addr: Addr,
        kind: AccessKind,
        noc: NocConfig,
        now: Cycle,
    ) -> (Cycle, bool, bool) {
        let state = self.caches[core].state_of(line_addr);
        let (action, new_state) = local_transition(state, kind);
        match action {
            LocalAction::Hit => {
                self.caches[core].note_hit();
                self.caches[core].touch(line_addr, new_state);
                (self.latencies.l1_hit, true, false)
            }
            LocalAction::IssueBusRead => {
                let (lat, dirty, was_uncached) =
                    self.directory_transaction(core, line_addr, DirOp::GetS(core), noc, now);
                self.caches[core].note_miss();
                // Same rule as the snoop model's zero-sharer answer: a cold line installs
                // Exclusive, a line someone else holds installs Shared.
                let install_state =
                    if was_uncached { MesiState::Exclusive } else { MesiState::Shared };
                let final_state = if new_state == MesiState::Shared { install_state } else { new_state };
                // The eviction (and its Put notification) happens when the fill arrives, one
                // transaction latency after the access started.
                self.install_with_eviction(core, line_addr, final_state, now + lat);
                (lat, false, dirty)
            }
            LocalAction::IssueBusReadExclusive => {
                let had_line = state == MesiState::Shared;
                let (lat, dirty, _) =
                    self.directory_transaction(core, line_addr, DirOp::GetM(core), noc, now);
                if had_line {
                    self.caches[core].note_upgrade();
                    self.caches[core].touch(line_addr, MesiState::Modified);
                } else {
                    self.caches[core].note_miss();
                    self.install_with_eviction(core, line_addr, MesiState::Modified, now + lat);
                }
                (lat, false, dirty)
            }
        }
    }

    /// Sends one protocol message over the NoC and returns its latency. Under the ideal link
    /// model this is the closed-form [`NocConfig::message_latency`] — bit-identical to the
    /// bandwidth-free model, regardless of `bytes` or `now`. Under
    /// [`NocContention::Contended`] the message walks its XY route through the per-link FIFO
    /// state, paying serialisation proportional to `bytes` and queueing behind concurrent
    /// traffic. Traffic statistics are recorded either way.
    ///
    /// When a fault layer is engaged it adds — on top of whichever base cost applies — the
    /// drop/delay recovery penalty of the leg, or, if the XY route crosses a dead link, the
    /// full retry-exhaustion detection cost (recording a [`FaultDiagnosis`] for the engine to
    /// surface). Recoverable faults are therefore pure added latency: the protocol's state
    /// effects are untouched, which is what keeps faulted runs functionally identical.
    fn noc_send(&mut self, from: usize, to: usize, bytes: u64, noc: &NocConfig, now: Cycle) -> Cycle {
        let hops = self.mesh.hops(from, to);
        self.note_noc(1, hops);
        let snapshot = self
            .observing
            .then(|| self.noc.as_ref().map_or((0, 0), |t| (t.flits(), t.link_wait_cycles())));
        let base = match &mut self.noc {
            Some(traffic) => traffic.send(&self.mesh, noc, from, to, bytes, now),
            None => noc.message_latency(hops),
        };
        if let Some((flits0, wait0)) = snapshot {
            let (flits1, wait1) =
                self.noc.as_ref().map_or((0, 0), |t| (t.flits(), t.link_wait_cycles()));
            self.noc_leg_log.push(NocLegRecord {
                at: now,
                from,
                to,
                flits: flits1 - flits0,
                wait_cycles: wait1 - wait0,
            });
        }
        let Some(faults) = &mut self.faults else { return base };
        match faults.dead_route_check(self.mesh.xy_route(from, to), from, to, now) {
            Some(detect) => base + detect,
            None => base + faults.leg_penalty(),
        }
    }

    /// Sends a request to the line's home tile and orchestrates the resulting directory
    /// action: owner downgrade/recall (through memory, as the no-L2 hierarchy demands),
    /// invalidation fan-out, memory fetch. Returns (latency, remote_dirty, line_was_uncached).
    ///
    /// Every protocol leg is an explicit [`MemorySystem::noc_send`] with its true payload
    /// size — control-sized requests/acks/invalidations, data-sized fill responses and dirty
    /// writebacks — so under [`NocContention::Contended`] each leg loads the links it crosses.
    /// Under the ideal model the per-leg sum telescopes to exactly the closed-form pricing of
    /// the bandwidth-free model (pinned by `tests/figure_pins.rs`).
    fn directory_transaction(
        &mut self,
        requester: usize,
        line_addr: Addr,
        op: DirOp,
        noc: NocConfig,
        now: Cycle,
    ) -> (Cycle, bool, bool) {
        let line = line_of(line_addr);
        let home = self.mesh.home_of(line);
        let dir_state = self.directory.get(&line).copied().unwrap_or(DirState::Uncached);
        let was_uncached = dir_state == DirState::Uncached;
        let (action, next) = dir_transition(dir_state, op);

        // Request to the home tile (control-sized), directory lookup; the response travels
        // back to the requester at the end of the transaction, data-sized when a line fill
        // rides along.
        let mut latency = self.noc_send(requester, home, CTRL_MSG_BYTES, &noc, now);
        latency += noc.directory_lookup;
        let mut remote_dirty = false;
        let mut data_response = false;

        match action {
            DirAction::FetchFromMemory => {
                latency += self.latencies.dram_fetch;
                self.dram_fetches += 1;
                data_response = true;
            }
            DirAction::DowngradeOwner(owner) | DirAction::RecallOwner(owner) => {
                // Forward to the owner; its reply carries the dirty line when a writeback is
                // due, so the bounce costs proportionally to the payload on contended links.
                latency += self.noc_send(home, owner, CTRL_MSG_BYTES, &noc, now + latency);
                let owner_state = self.caches[owner].state_of(line_addr);
                let dirty = owner_state.is_dirty();
                let reply = if dirty { DATA_MSG_BYTES } else { CTRL_MSG_BYTES };
                latency += self.noc_send(owner, home, reply, &noc, now + latency);
                if dirty {
                    // No shared L2: the dirty line goes through DRAM before the refetch.
                    remote_dirty = true;
                    self.dram_writebacks += 1;
                    latency += self.latencies.writeback;
                }
                let owner_next = if matches!(action, DirAction::DowngradeOwner(_)) {
                    MesiState::Shared
                } else {
                    MesiState::Invalid
                };
                self.caches[owner].apply_snoop(line_addr, owner_next, dirty);
                latency += self.latencies.dram_fetch;
                self.dram_fetches += 1;
                data_response = true;
            }
            DirAction::InvalidateForUpgrade(sharers) | DirAction::InvalidateAndFetch(sharers) => {
                let count = sharers.count() as u64;
                self.invalidations += count;
                // Invalidations serialise at the home's NI (the k-th leaves k×per_invalidation
                // after the first), travel in parallel, and the home waits for the farthest
                // acknowledgement round trip. Each invalidation and each ack is a
                // control-sized message on its own XY route; the ack only enters the mesh
                // once the invalidation has reached the sharer.
                let mut max_round_trip = 0;
                for (k, s) in sharers.iter().enumerate() {
                    self.caches[s].apply_snoop(line_addr, MesiState::Invalid, false);
                    let issue = now + latency + k as u64 * noc.per_invalidation;
                    let inv = self.noc_send(home, s, CTRL_MSG_BYTES, &noc, issue);
                    let ack = self.noc_send(s, home, CTRL_MSG_BYTES, &noc, issue + inv);
                    max_round_trip = max_round_trip.max(inv + ack);
                }
                if count > 0 {
                    latency += noc.per_invalidation * count + max_round_trip;
                }
                if matches!(action, DirAction::InvalidateAndFetch(_)) {
                    latency += self.latencies.dram_fetch;
                    self.dram_fetches += 1;
                    data_response = true;
                }
            }
            DirAction::None => {}
        }
        let response = if data_response { DATA_MSG_BYTES } else { CTRL_MSG_BYTES };
        latency += self.noc_send(home, requester, response, &noc, now + latency);
        if remote_dirty {
            self.dirty_bounces += 1;
        }
        self.set_directory(line, next);
        (latency, remote_dirty, was_uncached)
    }

    /// Records NoC traffic statistics.
    fn note_noc(&mut self, messages: u64, hops: u64) {
        self.noc_messages += messages;
        self.noc_hop_total += hops;
    }

    /// Writes a line's directory state back, dropping `Uncached` entries.
    fn set_directory(&mut self, line: u64, state: DirState) {
        if state == DirState::Uncached {
            self.directory.remove(&line);
        } else {
            self.directory.insert(line, state);
        }
    }

    fn wait_for_bus(&mut self, now: Cycle) -> Cycle {
        // Cores are stepped in a relaxed time order (a core executing a long task payload can
        // reserve the bus far in the future before a slower core issues an earlier access), so
        // queueing delay is capped at a small number of back-to-back transactions. This keeps
        // the model meaningful — bursts of misses still queue — without letting out-of-order
        // stepping manufacture absurd waits.
        let max_queue = self.latencies.bus_occupancy * 4;
        let wait = self.bus_free_at.saturating_sub(now).min(max_queue);
        self.bus_free_at = now.max(self.bus_free_at.min(now + max_queue)) + self.latencies.bus_occupancy;
        self.bus_transactions += 1;
        wait
    }

    /// Performs the bus side of a miss/upgrade: snoops every remote cache, forces writebacks of
    /// dirty copies through memory, fetches the line from DRAM. Returns (latency, remote_dirty,
    /// remaining_sharers).
    fn bus_transaction(
        &mut self,
        requester: usize,
        line_addr: Addr,
        op: BusOp,
        now: Cycle,
    ) -> (Cycle, bool, usize) {
        let mut latency = self.wait_for_bus(now);
        let mut remote_dirty = false;
        let mut sharers = 0usize;
        for other in 0..self.caches.len() {
            if other == requester {
                continue;
            }
            let remote_state = self.caches[other].state_of(line_addr);
            if remote_state == MesiState::Invalid {
                continue;
            }
            let (action, next) = snoop_transition(remote_state, op);
            let wrote_back = matches!(action, SnoopAction::WritebackAndShare | SnoopAction::WritebackAndInvalidate)
                && remote_state.is_dirty();
            if wrote_back {
                remote_dirty = true;
                self.dram_writebacks += 1;
                // Without an L2, the dirty data goes to DRAM before the requester can fetch it.
                latency += self.latencies.writeback;
            }
            self.caches[other].apply_snoop(line_addr, next, wrote_back);
            if next != MesiState::Invalid {
                sharers += 1;
            }
        }
        // Data always comes from DRAM in this no-L2 hierarchy (clean sharers do not forward).
        if op == BusOp::BusRead || op == BusOp::BusReadExclusive {
            latency += self.latencies.dram_fetch;
            self.dram_fetches += 1;
        }
        if remote_dirty {
            self.dirty_bounces += 1;
        }
        (latency, remote_dirty, sharers)
    }

    fn install_with_eviction(&mut self, core: usize, line_addr: Addr, state: MesiState, now: Cycle) {
        if let Some(ev) = self.caches[core].install(line_addr, state) {
            if ev.dirty {
                self.dram_writebacks += 1;
            }
            if let MemoryModel::DirectoryMesh(noc) = self.model {
                // Every eviction (clean or dirty) notifies the home, keeping the directory
                // precise. Put messages are fire-and-forget: no latency is charged to the
                // evicting core, same as the snoop model's silent evictions — but on a
                // contended mesh the notification still occupies links (data-sized when it
                // carries a dirty line), so heavy eviction traffic slows everyone else. The
                // message is counted under both link tiers, so noc_messages/noc_hop_total
                // stay comparable across the ideal-vs-contended axis.
                let home = self.mesh.home_of(ev.line);
                let bytes = if ev.dirty { DATA_MSG_BYTES } else { CTRL_MSG_BYTES };
                self.noc_send(core, home, bytes, &noc, now);
                let dir_state = self.directory.get(&ev.line).copied().unwrap_or(DirState::Uncached);
                let (_, next) = dir_transition(dir_state, DirOp::Evict(core));
                self.set_directory(ev.line, next);
            }
        }
    }

    /// Snapshot of the aggregate statistics.
    pub fn stats(&self) -> MemoryStats {
        MemoryStats {
            per_core: self.caches.iter().map(|c| c.stats().clone()).collect(),
            dram_fetches: self.dram_fetches,
            dram_writebacks: self.dram_writebacks,
            bus_transactions: self.bus_transactions,
            dirty_bounces: self.dirty_bounces,
            accesses: self.accesses,
            stall_cycles: self.stall_cycles,
            noc_messages: self.noc_messages,
            noc_hop_total: self.noc_hop_total,
            invalidations: self.invalidations,
            noc_link_wait_cycles: self.noc.as_ref().map_or(0, NocTraffic::link_wait_cycles),
            max_link_occupancy: self.noc.as_ref().map_or(0, NocTraffic::max_link_occupancy),
            noc_flits: self.noc.as_ref().map_or(0, NocTraffic::flits),
            fault: self.fault_stats(),
        }
    }

    /// Counters of injected message faults, all-zero when no fault layer is engaged.
    pub fn fault_stats(&self) -> FaultStats {
        self.faults.as_ref().map_or_else(FaultStats::default, LinkFaults::stats)
    }

    /// The diagnosis of the first *unrecoverable* fault (a message whose XY route crosses a
    /// dead link, with the retry budget exhausted), if one has occurred. The execution engine
    /// polls this every iteration and aborts the run with a precise error instead of letting a
    /// lost wakeup hang the machine.
    pub fn fault_diagnosis(&self) -> Option<FaultDiagnosis> {
        self.faults.as_ref().and_then(LinkFaults::diagnosis)
    }

    /// Checks the fundamental MESI coherence invariants across all caches — and, under
    /// [`MemoryModel::DirectoryMesh`], that the directory is *precise* (its sharer sets and
    /// owners match the caches' actual resident states exactly). Returns an error message
    /// describing the first violation found, if any. Used by property tests.
    pub fn check_coherence_invariants(&self) -> Result<(), String> {
        let mut owners: HashMap<u64, Vec<(usize, MesiState)>> = HashMap::new();
        for (i, c) in self.caches.iter().enumerate() {
            for (line, state) in c.resident() {
                owners.entry(line).or_default().push((i, state));
            }
        }
        for (&line, holders) in &owners {
            let exclusive_like = holders
                .iter()
                .filter(|(_, s)| matches!(s, MesiState::Modified | MesiState::Exclusive))
                .count();
            if exclusive_like > 1 {
                return Err(format!("line {line:#x} is owned exclusively by {exclusive_like} caches"));
            }
            if exclusive_like == 1 && holders.len() > 1 {
                return Err(format!(
                    "line {line:#x} is both exclusively owned and shared ({} holders)",
                    holders.len()
                ));
            }
        }
        if matches!(self.model, MemoryModel::DirectoryMesh(_)) {
            self.check_directory_precision(&owners)?;
        }
        Ok(())
    }

    /// Directory-model extension of the invariant check: every resident line is recorded at
    /// its home with exactly the right holders, and the directory records no ghost lines.
    fn check_directory_precision(
        &self,
        owners: &HashMap<u64, Vec<(usize, MesiState)>>,
    ) -> Result<(), String> {
        for (&line, holders) in owners {
            match self.directory.get(&line) {
                None => {
                    return Err(format!(
                        "line {line:#x} is resident in {} cache(s) but Uncached in the directory",
                        holders.len()
                    ));
                }
                Some(DirState::Owned(owner)) => {
                    let [(holder, state)] = holders.as_slice() else {
                        return Err(format!(
                            "line {line:#x} is directory-Owned but held by {} caches",
                            holders.len()
                        ));
                    };
                    if holder != owner || !matches!(state, MesiState::Modified | MesiState::Exclusive) {
                        return Err(format!(
                            "line {line:#x}: directory says core {owner} owns it, cache says core {holder} holds it {state:?}"
                        ));
                    }
                }
                Some(DirState::Shared(sharers)) => {
                    if holders.len() != sharers.count()
                        || holders.iter().any(|(c, s)| *s != MesiState::Shared || !sharers.contains(*c))
                    {
                        return Err(format!(
                            "line {line:#x}: directory sharer set {:?} disagrees with cache holders {holders:?}",
                            sharers.iter().collect::<Vec<_>>()
                        ));
                    }
                }
                Some(DirState::Uncached) => {
                    return Err(format!("line {line:#x} has an explicit Uncached directory entry"));
                }
            }
        }
        for &line in self.directory.keys() {
            if !owners.contains_key(&line) {
                return Err(format!("directory records ghost line {line:#x} no cache holds"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sys(cores: usize) -> MemorySystem {
        MemorySystem::new(cores, CacheConfig::rocket_l1d(), MemLatencies::default())
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut m = sys(2);
        let lat = MemLatencies::default();
        let first = m.access(0, 0x1000, AccessKind::Read, 8, 0);
        assert!(!first.l1_hit);
        assert!(first.latency >= lat.dram_fetch);
        let second = m.access(0, 0x1000, AccessKind::Read, 8, first.latency);
        assert!(second.l1_hit);
        assert_eq!(second.latency, lat.l1_hit);
        // Reading an uncached line when no one else has it installs Exclusive, so a subsequent
        // local write is a silent hit.
        let w = m.access(0, 0x1000, AccessKind::Write, 8, 100);
        assert!(w.l1_hit);
    }

    #[test]
    fn dirty_line_bounces_through_memory() {
        let mut m = sys(2);
        let lat = MemLatencies::default();
        m.access(0, 0x2000, AccessKind::Write, 8, 0);
        let r = m.access(1, 0x2000, AccessKind::Read, 8, 50);
        assert!(r.remote_dirty, "core 1 must observe the dirty copy in core 0");
        assert!(
            r.latency >= lat.writeback + lat.dram_fetch,
            "no-L2 MESI forces writeback + refetch, got {}",
            r.latency
        );
        let stats = m.stats();
        assert_eq!(stats.dirty_bounces, 1);
        assert!(stats.dram_writebacks >= 1);
    }

    #[test]
    fn write_to_shared_line_is_an_upgrade() {
        let mut m = sys(2);
        // Both cores read the line -> Shared everywhere.
        m.access(0, 0x3000, AccessKind::Read, 8, 0);
        m.access(1, 0x3000, AccessKind::Read, 8, 10);
        // Core 0 writes: upgrade, and core 1 loses its copy.
        let w = m.access(0, 0x3000, AccessKind::Write, 8, 20);
        assert!(w.latency < MemLatencies::default().dram_fetch, "upgrade should not refetch data");
        assert_eq!(m.cache(1).state_of(0x3000), MesiState::Invalid);
        assert_eq!(m.cache(0).state_of(0x3000), MesiState::Modified);
        assert!(m.cache(0).stats().upgrades >= 1);
    }

    #[test]
    fn atomic_charges_extra_and_owns_line() {
        let mut m = sys(2);
        let plain = m.access(0, 0x4000, AccessKind::Write, 8, 0);
        let mut m2 = sys(2);
        let atomic = m2.access(0, 0x4000, AccessKind::Atomic, 8, 0);
        assert_eq!(atomic.latency, plain.latency + MemLatencies::default().atomic_extra);
        assert_eq!(m2.cache(0).state_of(0x4000), MesiState::Modified);
    }

    #[test]
    fn ping_pong_is_much_more_expensive_than_private_access() {
        // The cache-line bouncing scenario of Section V-B: two cores alternately updating the
        // same line pay the writeback+fetch round trip every time, while a core updating its own
        // private line pays one cold miss and then hits.
        let mut shared = sys(2);
        let mut bounce_cycles = 0;
        for i in 0..20 {
            let core = i % 2;
            bounce_cycles += shared.access(core, 0x8000, AccessKind::Atomic, 8, (i * 100) as u64).latency;
        }
        let mut private = sys(2);
        let mut private_cycles = 0;
        for i in 0..20 {
            private_cycles += private.access(0, 0x8000, AccessKind::Atomic, 8, (i * 100) as u64).latency;
        }
        assert!(
            bounce_cycles > 3 * private_cycles,
            "bouncing ({bounce_cycles}) should dwarf private access ({private_cycles})"
        );
    }

    #[test]
    fn multi_line_access_touches_every_line() {
        let mut m = sys(1);
        let out = m.access(0, 0x5000, AccessKind::Read, 256, 0);
        assert_eq!(out.lines, 4);
        assert!(!out.l1_hit);
        let again = m.access(0, 0x5000, AccessKind::Read, 256, 1000);
        assert!(again.l1_hit);
        assert_eq!(again.latency, MemLatencies::default().l1_hit);
    }

    #[test]
    fn bus_contention_adds_wait() {
        let mut m = sys(2);
        // Two misses at the same instant: the second pays bus occupancy of the first.
        let a = m.access(0, 0x6000, AccessKind::Read, 8, 0);
        let b = m.access(1, 0x7000, AccessKind::Read, 8, 0);
        assert!(b.latency >= a.latency, "second miss at same cycle waits for the bus");
    }

    #[test]
    fn coherence_invariants_hold_after_random_traffic() {
        let mut m = sys(4);
        let mut rng = tis_sim::SimRng::new(1234);
        for i in 0..5000u64 {
            let core = (rng.next_u64() % 4) as usize;
            let addr = 0x1_0000 + (rng.next_u64() % 64) * 8;
            let kind = match rng.next_u64() % 3 {
                0 => AccessKind::Read,
                1 => AccessKind::Write,
                _ => AccessKind::Atomic,
            };
            m.access(core, addr, kind, 8, i * 3);
        }
        m.check_coherence_invariants().expect("MESI invariants must hold");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_core_panics() {
        let mut m = sys(2);
        m.access(5, 0x0, AccessKind::Read, 8, 0);
    }

    fn dir_sys(cores: usize) -> MemorySystem {
        MemorySystem::with_model(
            cores,
            CacheConfig::rocket_l1d(),
            MemLatencies::default(),
            MemoryModel::directory_mesh(),
        )
    }

    #[test]
    fn model_selection_and_keys() {
        assert_eq!(sys(2).model(), MemoryModel::SnoopBus);
        assert_eq!(dir_sys(2).model(), MemoryModel::directory_mesh());
        assert_eq!(MemoryModel::SnoopBus.key(), "snoop-bus");
        assert_eq!(MemoryModel::directory_mesh().key(), "dir-mesh");
        assert_eq!(MemoryModel::default(), MemoryModel::SnoopBus);
    }

    #[test]
    fn directory_dirty_line_still_bounces_through_memory() {
        // The no-L2 rule survives the interconnect swap: a dirty line moves between cores
        // through DRAM under the directory exactly as under the snooping bus.
        let mut m = dir_sys(4);
        let lat = MemLatencies::default();
        m.access(0, 0x2000, AccessKind::Write, 8, 0);
        let r = m.access(1, 0x2000, AccessKind::Read, 8, 50);
        assert!(r.remote_dirty);
        assert!(r.latency >= lat.writeback + lat.dram_fetch);
        let stats = m.stats();
        assert_eq!(stats.dirty_bounces, 1);
        assert!(stats.dram_writebacks >= 1);
        assert_eq!(stats.bus_transactions, 0, "no bus in the mesh model");
        assert!(stats.noc_messages > 0, "coherence travelled the NoC");
    }

    #[test]
    fn directory_upgrade_fans_out_invalidations() {
        let mut m = dir_sys(4);
        for core in 0..4 {
            m.access(core, 0x3000, AccessKind::Read, 8, core as u64 * 10);
        }
        let w = m.access(2, 0x3000, AccessKind::Write, 8, 100);
        assert!(w.latency < MemLatencies::default().dram_fetch + 50, "upgrade does not refetch");
        for core in [0usize, 1, 3] {
            assert_eq!(m.cache(core).state_of(0x3000), MesiState::Invalid);
        }
        assert_eq!(m.cache(2).state_of(0x3000), MesiState::Modified);
        assert_eq!(m.stats().invalidations, 3);
        m.check_coherence_invariants().expect("directory stays precise");
    }

    #[test]
    fn directory_cold_read_installs_exclusive() {
        let mut m = dir_sys(2);
        m.access(0, 0x1000, AccessKind::Read, 8, 0);
        assert_eq!(m.cache(0).state_of(0x1000), MesiState::Exclusive);
        // The silent E->M upgrade then hits locally, exactly as on the bus.
        let w = m.access(0, 0x1000, AccessKind::Write, 8, 10);
        assert!(w.l1_hit);
    }

    #[test]
    fn directory_miss_latency_grows_with_mesh_distance() {
        // Same cold miss, increasingly distant home tile: a 64-core mesh pays more hops than a
        // 4-core one. Line 0's home is core 0; request it from the farthest corner.
        let mut small = dir_sys(4);
        let mut large = dir_sys(64);
        let near = small.access(3, 0, AccessKind::Read, 8, 0);
        let far = large.access(63, 0, AccessKind::Read, 8, 0);
        assert!(
            far.latency > near.latency,
            "64-core corner-to-corner miss ({}) must out-pay the 4-core one ({})",
            far.latency,
            near.latency
        );
    }

    #[test]
    fn directory_invariants_hold_after_random_traffic_at_64_cores() {
        let mut m = dir_sys(64);
        let mut rng = tis_sim::SimRng::new(99);
        for i in 0..8000u64 {
            let core = (rng.next_u64() % 64) as usize;
            let addr = 0x1_0000 + (rng.next_u64() % 96) * 8;
            let kind = match rng.next_u64() % 3 {
                0 => AccessKind::Read,
                1 => AccessKind::Write,
                _ => AccessKind::Atomic,
            };
            m.access(core, addr, kind, 8, i * 3);
        }
        m.check_coherence_invariants().expect("directory invariants must hold at 64 cores");
        let stats = m.stats();
        assert!(stats.accesses == 8000);
        assert!(stats.stall_cycles > 0);
        assert!(stats.mean_access_latency() > 1.0);
    }

    fn contended_sys(cores: usize) -> MemorySystem {
        MemorySystem::with_model(
            cores,
            CacheConfig::rocket_l1d(),
            MemLatencies::default(),
            MemoryModel::directory_mesh_contended(),
        )
    }

    #[test]
    fn contended_mesh_is_functionally_identical_and_never_faster() {
        // Contention changes *when*, never *what*: the same random trace through the ideal and
        // the contended mesh must produce identical functional outcomes and identical resident
        // states, with contended per-access latency >= ideal (queueing and serialisation only
        // ever add cycles).
        let mut ideal = dir_sys(16);
        let mut contended = contended_sys(16);
        let mut rng = tis_sim::SimRng::new(7);
        let mut total_ideal = 0u64;
        let mut total_contended = 0u64;
        for i in 0..4000u64 {
            let core = (rng.next_u64() % 16) as usize;
            let addr = 0x1_0000 + (rng.next_u64() % 64) * 8;
            let kind = match rng.next_u64() % 3 {
                0 => AccessKind::Read,
                1 => AccessKind::Write,
                _ => AccessKind::Atomic,
            };
            let a = ideal.access(core, addr, kind, 8, i * 3);
            let b = contended.access(core, addr, kind, 8, i * 3);
            assert_eq!(
                (a.l1_hit, a.remote_dirty, a.lines),
                (b.l1_hit, b.remote_dirty, b.lines),
                "functional outcome diverged at access {i}"
            );
            assert!(
                b.latency >= a.latency,
                "contended access {i} ({}) beat the ideal mesh ({})",
                b.latency,
                a.latency
            );
            total_ideal += a.latency;
            total_contended += b.latency;
        }
        assert!(total_contended > total_ideal, "a 16-core hotspot trace must queue somewhere");
        contended.check_coherence_invariants().expect("contention must not break coherence");
        let stats = contended.stats();
        assert!(stats.noc_link_wait_cycles > 0, "queueing must be observed");
        assert!(stats.max_link_occupancy > 0);
        assert!(stats.noc_flits >= stats.noc_messages, "every message carries >= 1 flit");
        let ideal_stats = ideal.stats();
        assert_eq!(ideal_stats.noc_link_wait_cycles, 0, "the ideal mesh never queues");
        assert_eq!(ideal_stats.max_link_occupancy, 0);
        assert_eq!(ideal_stats.noc_flits, 0);
    }

    #[test]
    fn contended_uncontended_miss_pays_serialisation_over_ideal() {
        // A single cold miss on an otherwise idle mesh: the contended latency exceeds the
        // ideal one by exactly the wormhole serialisation of the request (control) and
        // response (data) messages — no queueing on idle links.
        let mut ideal = dir_sys(4);
        let mut contended = contended_sys(4);
        let a = ideal.access(3, 0, AccessKind::Read, 8, 0);
        let b = contended.access(3, 0, AccessKind::Read, 8, 0);
        let params = crate::noc::LinkContention::default();
        let expected =
            params.serialization(CTRL_MSG_BYTES) + params.serialization(DATA_MSG_BYTES);
        assert_eq!(b.latency, a.latency + expected);
        assert_eq!(contended.stats().noc_link_wait_cycles, 0);
    }

    #[test]
    fn memory_model_keys_distinguish_contention() {
        assert_eq!(MemoryModel::directory_mesh_contended().key(), "dir-mesh-c");
        assert_eq!(MemoryModel::directory_mesh().key(), "dir-mesh");
        assert_eq!(MemoryModel::SnoopBus.noc_key(), "none");
        assert_eq!(MemoryModel::directory_mesh().noc_key(), "ideal");
        assert_eq!(MemoryModel::directory_mesh_contended().noc_key(), "bw8-buf4-flit16");
    }

    #[test]
    fn stats_track_stalls_and_accesses_in_both_models() {
        for mut m in [sys(2), dir_sys(2)] {
            let a = m.access(0, 0x100, AccessKind::Read, 8, 0);
            let b = m.access(0, 0x100, AccessKind::Read, 8, 50);
            let stats = m.stats();
            assert_eq!(stats.accesses, 2);
            assert_eq!(stats.stall_cycles, a.latency + b.latency);
            assert!((stats.mean_access_latency() - (a.latency + b.latency) as f64 / 2.0).abs() < 1e-12);
        }
        assert_eq!(MemoryStats::default().mean_access_latency(), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_core_system_panics() {
        MemorySystem::new(0, CacheConfig::rocket_l1d(), MemLatencies::default());
    }

    fn faulted_sys(cores: usize, model: MemoryModel, fault: FaultConfig) -> MemorySystem {
        MemorySystem::with_model_and_faults(
            cores,
            CacheConfig::rocket_l1d(),
            MemLatencies::default(),
            model,
            fault,
        )
    }

    fn random_trace(cores: usize, len: u64, seed: u64) -> Vec<(usize, Addr, AccessKind)> {
        let mut rng = tis_sim::SimRng::new(seed);
        (0..len)
            .map(|_| {
                let core = (rng.next_u64() % cores as u64) as usize;
                let addr = 0x1_0000 + (rng.next_u64() % 64) * 8;
                let kind = match rng.next_u64() % 3 {
                    0 => AccessKind::Read,
                    1 => AccessKind::Write,
                    _ => AccessKind::Atomic,
                };
                (core, addr, kind)
            })
            .collect()
    }

    #[test]
    fn zero_rate_fault_layer_is_cycle_identical() {
        // The engaged-but-zero-rate config walks the whole injection path yet must not move a
        // single cycle, on the ideal and the contended mesh alike.
        for model in [MemoryModel::directory_mesh(), MemoryModel::directory_mesh_contended()] {
            let mut plain = faulted_sys(8, model, FaultConfig::none());
            let mut zeroed = faulted_sys(8, model, FaultConfig::zero_rate());
            for (i, (core, addr, kind)) in random_trace(8, 3000, 0xFA0).into_iter().enumerate() {
                let a = plain.access(core, addr, kind, 8, i as u64 * 3);
                let b = zeroed.access(core, addr, kind, 8, i as u64 * 3);
                assert_eq!(a, b, "zero-rate faults moved access {i} under {model:?}");
            }
            assert_eq!(zeroed.fault_stats(), FaultStats::default());
            assert!(zeroed.fault_diagnosis().is_none());
        }
    }

    #[test]
    fn recoverable_faults_only_add_latency() {
        // Recoverable drops/delays must leave every functional outcome and final cache state
        // untouched — only per-access latency may (and does) grow.
        let mut clean = faulted_sys(8, MemoryModel::directory_mesh(), FaultConfig::none());
        let mut chaos = faulted_sys(8, MemoryModel::directory_mesh(), FaultConfig::recoverable());
        for (i, (core, addr, kind)) in random_trace(8, 4000, 0xFA1).into_iter().enumerate() {
            let a = clean.access(core, addr, kind, 8, i as u64 * 3);
            let b = chaos.access(core, addr, kind, 8, i as u64 * 3);
            assert_eq!(
                (a.l1_hit, a.remote_dirty, a.lines),
                (b.l1_hit, b.remote_dirty, b.lines),
                "a recoverable fault changed function at access {i}"
            );
            assert!(b.latency >= a.latency, "recovery can only add cycles (access {i})");
        }
        for core in 0..8 {
            let mut a: Vec<_> = clean.cache(core).resident().collect();
            let mut b: Vec<_> = chaos.cache(core).resident().collect();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "core {core} cache state diverged under recoverable faults");
        }
        chaos.check_coherence_invariants().expect("faults must not break coherence");
        let fs = chaos.fault_stats();
        assert!(fs.drops > 0 && fs.delays > 0, "the 2%/5% rates must fire on this trace");
        assert_eq!(fs.drops, fs.retries, "every drop is recovered by exactly one retry");
        assert!(fs.recovery_cycles > 0);
        assert_eq!(fs.dead_link_hits, 0);
        assert!(chaos.fault_diagnosis().is_none(), "recoverable faults never diagnose");
        assert_eq!(chaos.stats().fault, fs);
    }

    #[test]
    fn dead_links_are_detected_with_a_precise_diagnosis() {
        // Kill every directed link: the very first cross-tile message must exhaust its retry
        // budget, pay the full detection ramp and record which link/message/cycle failed.
        let fault = FaultConfig { dead_links: u32::MAX, ..FaultConfig::zero_rate() };
        let mut m = faulted_sys(4, MemoryModel::directory_mesh(), fault);
        let mut clean = faulted_sys(4, MemoryModel::directory_mesh(), FaultConfig::none());
        // Line 0 is homed on core 0; requesting it from core 3 crosses dead links.
        let faulted = m.access(3, 0, AccessKind::Read, 8, 17);
        let baseline = clean.access(3, 0, AccessKind::Read, 8, 17);
        assert!(faulted.latency >= baseline.latency + fault.exhaustion_cycles());
        let d = m.fault_diagnosis().expect("detection must record a diagnosis");
        assert_eq!(d.from, 3);
        assert_eq!(d.to, 0);
        assert_eq!(d.cycle, 17);
        assert_eq!(d.attempts, fault.max_retries + 1);
        assert!(m.fault_stats().dead_link_hits > 0);
        // The snooping bus has no links to kill: the same config engages nothing there.
        let mut bus = faulted_sys(4, MemoryModel::SnoopBus, fault);
        bus.access(3, 0, AccessKind::Read, 8, 17);
        assert!(bus.fault_diagnosis().is_none());
        assert_eq!(bus.fault_stats(), FaultStats::default());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        /// MESI single-writer / no-dirty-sharing invariants hold under arbitrary access traces,
        /// and latency is always at least the L1 hit latency.
        #[test]
        fn coherence_invariants(
            ops in proptest::collection::vec((0usize..4, 0u64..32, 0u8..3), 1..400)
        ) {
            let mut m = MemorySystem::new(4, CacheConfig::tiny(), MemLatencies::default());
            let mut now = 0u64;
            for (core, line, kindsel) in ops {
                let kind = match kindsel {
                    0 => AccessKind::Read,
                    1 => AccessKind::Write,
                    _ => AccessKind::Atomic,
                };
                let out = m.access(core, line * LINE_SIZE, kind, 8, now);
                prop_assert!(out.latency >= MemLatencies::default().l1_hit);
                now += out.latency.max(1);
                prop_assert!(m.check_coherence_invariants().is_ok());
            }
        }

        /// After any trace, a core that just wrote a line can read it back as a hit.
        #[test]
        fn write_then_read_hits(
            ops in proptest::collection::vec((0usize..3, 0u64..16), 0..100),
            final_core in 0usize..3,
            final_line in 0u64..16,
        ) {
            let mut m = MemorySystem::new(3, CacheConfig::rocket_l1d(), MemLatencies::default());
            let mut now = 0u64;
            for (core, line) in ops {
                now += m.access(core, line * LINE_SIZE, AccessKind::Write, 8, now).latency;
            }
            now += m.access(final_core, final_line * LINE_SIZE, AccessKind::Write, 8, now).latency;
            let read = m.access(final_core, final_line * LINE_SIZE, AccessKind::Read, 8, now);
            prop_assert!(read.l1_hit);
        }
    }
}
