//! The multi-core coherent memory system.
//!
//! [`MemorySystem`] glues the per-core [`L1Cache`]s together with a snooping bus and a DRAM
//! backend, reproducing the coherence behaviour the paper leans on (Section V-B):
//!
//! * there is **no shared L2**, so a line that is dirty in one core's cache can only reach
//!   another core by being written back to main memory and re-fetched — this is why cache-line
//!   bouncing on shared runtime data is so expensive on the prototype;
//! * the memory clock (667 MHz) is much faster than the 80 MHz core clock, so plain DRAM misses
//!   are comparatively cheap;
//! * upgrades (a core writing a Shared line) cost a bus transaction that invalidates every other
//!   copy.
//!
//! Every runtime in the workspace performs its metadata accesses through this model, so the
//! difference between, say, Phentos' per-core metadata layout and Nanos' centralised queues shows
//! up as genuine simulated coherence traffic rather than as a hand-tuned constant.

use tis_sim::Cycle;

use crate::addr::{lines_touched, Addr, LINE_SIZE};
use crate::cache::{CacheConfig, CacheStats, L1Cache};
use crate::mesi::{local_transition, snoop_transition, AccessKind, BusOp, LocalAction, MesiState, SnoopAction};

/// Latency parameters of the memory system, in core cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemLatencies {
    /// An access that hits in the local L1.
    pub l1_hit: Cycle,
    /// Fetching a line from DRAM (includes the miss handling overhead of the in-order core).
    pub dram_fetch: Cycle,
    /// Writing a dirty line back to DRAM.
    pub writeback: Cycle,
    /// An ownership upgrade (invalidating remote copies) that does not need a data fetch.
    pub upgrade: Cycle,
    /// Occupancy of the snoop bus per transaction; concurrent misses queue behind each other.
    pub bus_occupancy: Cycle,
    /// Extra serialization cycles of an atomic read-modify-write beyond the plain store cost.
    pub atomic_extra: Cycle,
}

impl Default for MemLatencies {
    fn default() -> Self {
        // Calibrated for the 80 MHz Rocket / 667 MHz DDR prototype: a DRAM round trip of a few
        // hundred nanoseconds is only a couple dozen 12.5 ns core cycles.
        MemLatencies {
            l1_hit: 1,
            dram_fetch: 24,
            writeback: 12,
            upgrade: 8,
            bus_occupancy: 4,
            atomic_extra: 6,
        }
    }
}

/// Outcome of one memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryAccessOutcome {
    /// Total stall cycles charged to the requesting core.
    pub latency: Cycle,
    /// Whether every touched line hit in the local L1 in a sufficient state.
    pub l1_hit: bool,
    /// Whether a remote cache held one of the lines in Modified state (dirty bounce).
    pub remote_dirty: bool,
    /// Number of cache lines the access touched.
    pub lines: usize,
}

/// Aggregate statistics of the memory system.
#[derive(Debug, Clone, Default)]
pub struct MemoryStats {
    /// Per-core L1 statistics.
    pub per_core: Vec<CacheStats>,
    /// Number of lines fetched from DRAM.
    pub dram_fetches: u64,
    /// Number of dirty lines written back to DRAM.
    pub dram_writebacks: u64,
    /// Number of snoop-bus transactions.
    pub bus_transactions: u64,
    /// Number of accesses that found the line dirty in a remote cache.
    pub dirty_bounces: u64,
}

/// The coherent multi-core memory system.
#[derive(Debug, Clone)]
pub struct MemorySystem {
    caches: Vec<L1Cache>,
    latencies: MemLatencies,
    bus_free_at: Cycle,
    dram_fetches: u64,
    dram_writebacks: u64,
    bus_transactions: u64,
    dirty_bounces: u64,
}

impl MemorySystem {
    /// Creates a memory system with `cores` private L1 caches.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is zero.
    pub fn new(cores: usize, cache: CacheConfig, latencies: MemLatencies) -> Self {
        assert!(cores > 0, "a machine needs at least one core");
        MemorySystem {
            caches: (0..cores).map(|_| L1Cache::new(cache)).collect(),
            latencies,
            bus_free_at: 0,
            dram_fetches: 0,
            dram_writebacks: 0,
            bus_transactions: 0,
            dirty_bounces: 0,
        }
    }

    /// Number of cores / caches.
    pub fn cores(&self) -> usize {
        self.caches.len()
    }

    /// The latency parameters in use.
    pub fn latencies(&self) -> MemLatencies {
        self.latencies
    }

    /// Immutable view of one core's cache (for tests and statistics).
    pub fn cache(&self, core: usize) -> &L1Cache {
        &self.caches[core]
    }

    /// Performs a memory access of `bytes` bytes at `addr` from `core` at time `now`, returning
    /// the latency to charge to that core.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn access(
        &mut self,
        core: usize,
        addr: Addr,
        kind: AccessKind,
        bytes: u64,
        now: Cycle,
    ) -> MemoryAccessOutcome {
        assert!(core < self.caches.len(), "core index out of range");
        let lines = lines_touched(addr, bytes.max(1));
        let mut latency = 0;
        let mut all_hit = true;
        let mut any_remote_dirty = false;
        for (i, line) in lines.iter().enumerate() {
            let line_addr = line * LINE_SIZE;
            let (l, hit, dirty) = self.access_line(core, line_addr, kind, now + latency);
            // The first line's latency is fully exposed; subsequent lines of a multi-line access
            // overlap with the consumption of the previous one, so only their miss portion adds.
            if i == 0 {
                latency += l;
            } else {
                latency += l.saturating_sub(self.latencies.l1_hit);
            }
            all_hit &= hit;
            any_remote_dirty |= dirty;
        }
        if kind == AccessKind::Atomic {
            latency += self.latencies.atomic_extra;
        }
        MemoryAccessOutcome {
            latency,
            l1_hit: all_hit,
            remote_dirty: any_remote_dirty,
            lines: lines.len(),
        }
    }

    /// Access of a single line; returns (latency, was_hit, remote_was_dirty).
    fn access_line(
        &mut self,
        core: usize,
        line_addr: Addr,
        kind: AccessKind,
        now: Cycle,
    ) -> (Cycle, bool, bool) {
        let state = self.caches[core].state_of(line_addr);
        let (action, new_state) = local_transition(state, kind);
        match action {
            LocalAction::Hit => {
                self.caches[core].note_hit();
                self.caches[core].touch(line_addr, new_state);
                (self.latencies.l1_hit, true, false)
            }
            LocalAction::IssueBusRead => {
                let (lat, dirty, sharers) = self.bus_transaction(core, line_addr, BusOp::BusRead, now);
                self.caches[core].note_miss();
                // If no other cache holds the line we may install it Exclusive (the E state).
                let install_state = if sharers == 0 { MesiState::Exclusive } else { MesiState::Shared };
                let final_state = if new_state == MesiState::Shared { install_state } else { new_state };
                self.install_with_eviction(core, line_addr, final_state);
                (lat, false, dirty)
            }
            LocalAction::IssueBusReadExclusive => {
                let had_line = state == MesiState::Shared;
                let (mut lat, dirty, _) =
                    self.bus_transaction(core, line_addr, BusOp::BusReadExclusive, now);
                if had_line {
                    // Upgrade: the data is already local, only the invalidation round trip counts.
                    self.caches[core].note_upgrade();
                    lat = lat.min(self.latencies.upgrade + self.wait_for_bus(now));
                    self.caches[core].touch(line_addr, MesiState::Modified);
                } else {
                    self.caches[core].note_miss();
                    self.install_with_eviction(core, line_addr, MesiState::Modified);
                }
                (lat, false, dirty)
            }
        }
    }

    fn wait_for_bus(&mut self, now: Cycle) -> Cycle {
        // Cores are stepped in a relaxed time order (a core executing a long task payload can
        // reserve the bus far in the future before a slower core issues an earlier access), so
        // queueing delay is capped at a small number of back-to-back transactions. This keeps
        // the model meaningful — bursts of misses still queue — without letting out-of-order
        // stepping manufacture absurd waits.
        let max_queue = self.latencies.bus_occupancy * 4;
        let wait = self.bus_free_at.saturating_sub(now).min(max_queue);
        self.bus_free_at = now.max(self.bus_free_at.min(now + max_queue)) + self.latencies.bus_occupancy;
        self.bus_transactions += 1;
        wait
    }

    /// Performs the bus side of a miss/upgrade: snoops every remote cache, forces writebacks of
    /// dirty copies through memory, fetches the line from DRAM. Returns (latency, remote_dirty,
    /// remaining_sharers).
    fn bus_transaction(
        &mut self,
        requester: usize,
        line_addr: Addr,
        op: BusOp,
        now: Cycle,
    ) -> (Cycle, bool, usize) {
        let mut latency = self.wait_for_bus(now);
        let mut remote_dirty = false;
        let mut sharers = 0usize;
        for other in 0..self.caches.len() {
            if other == requester {
                continue;
            }
            let remote_state = self.caches[other].state_of(line_addr);
            if remote_state == MesiState::Invalid {
                continue;
            }
            let (action, next) = snoop_transition(remote_state, op);
            let wrote_back = matches!(action, SnoopAction::WritebackAndShare | SnoopAction::WritebackAndInvalidate)
                && remote_state.is_dirty();
            if wrote_back {
                remote_dirty = true;
                self.dram_writebacks += 1;
                // Without an L2, the dirty data goes to DRAM before the requester can fetch it.
                latency += self.latencies.writeback;
            }
            self.caches[other].apply_snoop(line_addr, next, wrote_back);
            if next != MesiState::Invalid {
                sharers += 1;
            }
        }
        // Data always comes from DRAM in this no-L2 hierarchy (clean sharers do not forward).
        if op == BusOp::BusRead || op == BusOp::BusReadExclusive {
            latency += self.latencies.dram_fetch;
            self.dram_fetches += 1;
        }
        if remote_dirty {
            self.dirty_bounces += 1;
        }
        (latency, remote_dirty, sharers)
    }

    fn install_with_eviction(&mut self, core: usize, line_addr: Addr, state: MesiState) {
        if let Some(ev) = self.caches[core].install(line_addr, state) {
            if ev.dirty {
                self.dram_writebacks += 1;
            }
        }
    }

    /// Snapshot of the aggregate statistics.
    pub fn stats(&self) -> MemoryStats {
        MemoryStats {
            per_core: self.caches.iter().map(|c| c.stats().clone()).collect(),
            dram_fetches: self.dram_fetches,
            dram_writebacks: self.dram_writebacks,
            bus_transactions: self.bus_transactions,
            dirty_bounces: self.dirty_bounces,
        }
    }

    /// Checks the fundamental MESI coherence invariants across all caches and returns an error
    /// message describing the first violation found, if any. Used by property tests.
    pub fn check_coherence_invariants(&self) -> Result<(), String> {
        use std::collections::HashMap;
        let mut owners: HashMap<u64, Vec<(usize, MesiState)>> = HashMap::new();
        for (i, c) in self.caches.iter().enumerate() {
            for (line, state) in c.resident() {
                owners.entry(line).or_default().push((i, state));
            }
        }
        for (line, holders) in owners {
            let exclusive_like = holders
                .iter()
                .filter(|(_, s)| matches!(s, MesiState::Modified | MesiState::Exclusive))
                .count();
            if exclusive_like > 1 {
                return Err(format!("line {line:#x} is owned exclusively by {exclusive_like} caches"));
            }
            if exclusive_like == 1 && holders.len() > 1 {
                return Err(format!(
                    "line {line:#x} is both exclusively owned and shared ({} holders)",
                    holders.len()
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sys(cores: usize) -> MemorySystem {
        MemorySystem::new(cores, CacheConfig::rocket_l1d(), MemLatencies::default())
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut m = sys(2);
        let lat = MemLatencies::default();
        let first = m.access(0, 0x1000, AccessKind::Read, 8, 0);
        assert!(!first.l1_hit);
        assert!(first.latency >= lat.dram_fetch);
        let second = m.access(0, 0x1000, AccessKind::Read, 8, first.latency as u64);
        assert!(second.l1_hit);
        assert_eq!(second.latency, lat.l1_hit);
        // Reading an uncached line when no one else has it installs Exclusive, so a subsequent
        // local write is a silent hit.
        let w = m.access(0, 0x1000, AccessKind::Write, 8, 100);
        assert!(w.l1_hit);
    }

    #[test]
    fn dirty_line_bounces_through_memory() {
        let mut m = sys(2);
        let lat = MemLatencies::default();
        m.access(0, 0x2000, AccessKind::Write, 8, 0);
        let r = m.access(1, 0x2000, AccessKind::Read, 8, 50);
        assert!(r.remote_dirty, "core 1 must observe the dirty copy in core 0");
        assert!(
            r.latency >= lat.writeback + lat.dram_fetch,
            "no-L2 MESI forces writeback + refetch, got {}",
            r.latency
        );
        let stats = m.stats();
        assert_eq!(stats.dirty_bounces, 1);
        assert!(stats.dram_writebacks >= 1);
    }

    #[test]
    fn write_to_shared_line_is_an_upgrade() {
        let mut m = sys(2);
        // Both cores read the line -> Shared everywhere.
        m.access(0, 0x3000, AccessKind::Read, 8, 0);
        m.access(1, 0x3000, AccessKind::Read, 8, 10);
        // Core 0 writes: upgrade, and core 1 loses its copy.
        let w = m.access(0, 0x3000, AccessKind::Write, 8, 20);
        assert!(w.latency < MemLatencies::default().dram_fetch, "upgrade should not refetch data");
        assert_eq!(m.cache(1).state_of(0x3000), MesiState::Invalid);
        assert_eq!(m.cache(0).state_of(0x3000), MesiState::Modified);
        assert!(m.cache(0).stats().upgrades >= 1);
    }

    #[test]
    fn atomic_charges_extra_and_owns_line() {
        let mut m = sys(2);
        let plain = m.access(0, 0x4000, AccessKind::Write, 8, 0);
        let mut m2 = sys(2);
        let atomic = m2.access(0, 0x4000, AccessKind::Atomic, 8, 0);
        assert_eq!(atomic.latency, plain.latency + MemLatencies::default().atomic_extra);
        assert_eq!(m2.cache(0).state_of(0x4000), MesiState::Modified);
    }

    #[test]
    fn ping_pong_is_much_more_expensive_than_private_access() {
        // The cache-line bouncing scenario of Section V-B: two cores alternately updating the
        // same line pay the writeback+fetch round trip every time, while a core updating its own
        // private line pays one cold miss and then hits.
        let mut shared = sys(2);
        let mut bounce_cycles = 0;
        for i in 0..20 {
            let core = i % 2;
            bounce_cycles += shared.access(core, 0x8000, AccessKind::Atomic, 8, (i * 100) as u64).latency;
        }
        let mut private = sys(2);
        let mut private_cycles = 0;
        for i in 0..20 {
            private_cycles += private.access(0, 0x8000, AccessKind::Atomic, 8, (i * 100) as u64).latency;
        }
        assert!(
            bounce_cycles > 3 * private_cycles,
            "bouncing ({bounce_cycles}) should dwarf private access ({private_cycles})"
        );
    }

    #[test]
    fn multi_line_access_touches_every_line() {
        let mut m = sys(1);
        let out = m.access(0, 0x5000, AccessKind::Read, 256, 0);
        assert_eq!(out.lines, 4);
        assert!(!out.l1_hit);
        let again = m.access(0, 0x5000, AccessKind::Read, 256, 1000);
        assert!(again.l1_hit);
        assert_eq!(again.latency, MemLatencies::default().l1_hit);
    }

    #[test]
    fn bus_contention_adds_wait() {
        let mut m = sys(2);
        // Two misses at the same instant: the second pays bus occupancy of the first.
        let a = m.access(0, 0x6000, AccessKind::Read, 8, 0);
        let b = m.access(1, 0x7000, AccessKind::Read, 8, 0);
        assert!(b.latency >= a.latency, "second miss at same cycle waits for the bus");
    }

    #[test]
    fn coherence_invariants_hold_after_random_traffic() {
        let mut m = sys(4);
        let mut rng = tis_sim::SimRng::new(1234);
        for i in 0..5000u64 {
            let core = (rng.next_u64() % 4) as usize;
            let addr = 0x1_0000 + (rng.next_u64() % 64) * 8;
            let kind = match rng.next_u64() % 3 {
                0 => AccessKind::Read,
                1 => AccessKind::Write,
                _ => AccessKind::Atomic,
            };
            m.access(core, addr, kind, 8, i * 3);
        }
        m.check_coherence_invariants().expect("MESI invariants must hold");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_core_panics() {
        let mut m = sys(2);
        m.access(5, 0x0, AccessKind::Read, 8, 0);
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_core_system_panics() {
        MemorySystem::new(0, CacheConfig::rocket_l1d(), MemLatencies::default());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        /// MESI single-writer / no-dirty-sharing invariants hold under arbitrary access traces,
        /// and latency is always at least the L1 hit latency.
        #[test]
        fn coherence_invariants(
            ops in proptest::collection::vec((0usize..4, 0u64..32, 0u8..3), 1..400)
        ) {
            let mut m = MemorySystem::new(4, CacheConfig::tiny(), MemLatencies::default());
            let mut now = 0u64;
            for (core, line, kindsel) in ops {
                let kind = match kindsel {
                    0 => AccessKind::Read,
                    1 => AccessKind::Write,
                    _ => AccessKind::Atomic,
                };
                let out = m.access(core, line * LINE_SIZE, kind, 8, now);
                prop_assert!(out.latency >= MemLatencies::default().l1_hit);
                now += out.latency.max(1);
                prop_assert!(m.check_coherence_invariants().is_ok());
            }
        }

        /// After any trace, a core that just wrote a line can read it back as a hit.
        #[test]
        fn write_then_read_hits(
            ops in proptest::collection::vec((0usize..3, 0u64..16), 0..100),
            final_core in 0usize..3,
            final_line in 0u64..16,
        ) {
            let mut m = MemorySystem::new(3, CacheConfig::rocket_l1d(), MemLatencies::default());
            let mut now = 0u64;
            for (core, line) in ops {
                now += m.access(core, line * LINE_SIZE, AccessKind::Write, 8, now).latency;
            }
            now += m.access(final_core, final_line * LINE_SIZE, AccessKind::Write, 8, now).latency;
            let read = m.access(final_core, final_line * LINE_SIZE, AccessKind::Read, 8, now);
            prop_assert!(read.l1_hit);
        }
    }
}
