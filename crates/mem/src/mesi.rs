//! The MESI coherence protocol as a pure transition table.
//!
//! Keeping the protocol logic separate from the cache structure lets the test suite check the
//! textbook invariants exhaustively (at most one core holds a line Modified or Exclusive, no
//! Modified coexists with Shared, …) independently of replacement-policy details.

/// MESI stability states of one cache line in one core's L1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum MesiState {
    /// The line is present and dirty; no other cache holds it.
    Modified,
    /// The line is present, clean and exclusive to this cache.
    Exclusive,
    /// The line is present and clean; other caches may also hold it.
    Shared,
    /// The line is not present (or has been invalidated).
    Invalid,
}

impl MesiState {
    /// Whether the line can satisfy a read hit in this state.
    pub fn can_read(self) -> bool {
        self != MesiState::Invalid
    }

    /// Whether the line can satisfy a write hit without a coherence transaction.
    pub fn can_write(self) -> bool {
        matches!(self, MesiState::Modified | MesiState::Exclusive)
    }

    /// Whether the line holds dirty data that must be written back before eviction or transfer.
    pub fn is_dirty(self) -> bool {
        self == MesiState::Modified
    }
}

/// The kind of processor access driving a coherence transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// A load.
    Read,
    /// A store.
    Write,
    /// An atomic read-modify-write (`amoadd`, `lr/sc`, …). Coherence-wise this behaves like a
    /// store (needs ownership) but the latency model charges extra serialization cycles.
    Atomic,
}

impl AccessKind {
    /// Whether the access requires exclusive ownership of the line.
    pub fn needs_ownership(self) -> bool {
        !matches!(self, AccessKind::Read)
    }
}

/// What the local cache must do to satisfy an access, given the line's current local state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LocalAction {
    /// The access hits; no bus transaction is needed.
    Hit,
    /// The access misses; issue a bus read (`BusRd`).
    IssueBusRead,
    /// The access misses or lacks ownership; issue a bus read-for-ownership (`BusRdX` /
    /// upgrade), invalidating other copies.
    IssueBusReadExclusive,
}

/// Computes the local action and the resulting local state for an access.
pub fn local_transition(state: MesiState, kind: AccessKind) -> (LocalAction, MesiState) {
    use AccessKind::*;
    use LocalAction::*;
    use MesiState::*;
    match (state, kind) {
        (Modified, _) => (Hit, Modified),
        (Exclusive, Read) => (Hit, Exclusive),
        (Exclusive, Write | Atomic) => (Hit, Modified),
        (Shared, Read) => (Hit, Shared),
        (Shared, Write | Atomic) => (IssueBusReadExclusive, Modified),
        (Invalid, Read) => (IssueBusRead, Shared), // may be promoted to Exclusive if no sharers
        (Invalid, Write | Atomic) => (IssueBusReadExclusive, Modified),
    }
}

/// What a *remote* cache must do when it observes a bus transaction for a line it holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnoopAction {
    /// The remote cache does nothing.
    None,
    /// The remote cache downgrades to Shared; if it held the line Modified it must first write
    /// the dirty data back to memory (MESI without an L2 cannot forward dirty data directly).
    WritebackAndShare,
    /// The remote cache invalidates its copy; if dirty, it must first write back.
    WritebackAndInvalidate,
    /// The remote cache invalidates a clean copy (no writeback needed).
    Invalidate,
}

/// Bus transactions observed by remote caches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BusOp {
    /// Another core wants to read the line.
    BusRead,
    /// Another core wants exclusive ownership of the line.
    BusReadExclusive,
}

/// Computes the snoop action and resulting state for a remote cache holding `state`.
pub fn snoop_transition(state: MesiState, op: BusOp) -> (SnoopAction, MesiState) {
    use BusOp::*;
    use MesiState::*;
    use SnoopAction::*;
    match (state, op) {
        (Invalid, _) => (None, Invalid),
        (Modified, BusRead) => (WritebackAndShare, Shared),
        (Modified, BusReadExclusive) => (WritebackAndInvalidate, Invalid),
        (Exclusive, BusRead) => (WritebackAndShare, Shared), // clean, "writeback" is a no-op flush
        (Exclusive, BusReadExclusive) => (Invalidate, Invalid),
        (Shared, BusRead) => (None, Shared),
        (Shared, BusReadExclusive) => (Invalidate, Invalid),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use AccessKind::*;
    use MesiState::*;

    #[test]
    fn state_predicates() {
        assert!(Modified.can_read() && Modified.can_write() && Modified.is_dirty());
        assert!(Exclusive.can_read() && Exclusive.can_write() && !Exclusive.is_dirty());
        assert!(Shared.can_read() && !Shared.can_write());
        assert!(!Invalid.can_read() && !Invalid.can_write());
        assert!(Atomic.needs_ownership() && Write.needs_ownership() && !Read.needs_ownership());
    }

    #[test]
    fn local_hits_do_not_touch_the_bus() {
        assert_eq!(local_transition(Modified, Read), (LocalAction::Hit, Modified));
        assert_eq!(local_transition(Modified, Write), (LocalAction::Hit, Modified));
        assert_eq!(local_transition(Exclusive, Read), (LocalAction::Hit, Exclusive));
        // The silent E->M upgrade is the whole point of the Exclusive state.
        assert_eq!(local_transition(Exclusive, Write), (LocalAction::Hit, Modified));
        assert_eq!(local_transition(Shared, Read), (LocalAction::Hit, Shared));
    }

    #[test]
    fn local_misses_issue_the_right_bus_op() {
        assert_eq!(local_transition(Invalid, Read), (LocalAction::IssueBusRead, Shared));
        assert_eq!(
            local_transition(Invalid, Write),
            (LocalAction::IssueBusReadExclusive, Modified)
        );
        assert_eq!(
            local_transition(Shared, Write),
            (LocalAction::IssueBusReadExclusive, Modified)
        );
        assert_eq!(
            local_transition(Shared, Atomic),
            (LocalAction::IssueBusReadExclusive, Modified)
        );
    }

    #[test]
    fn snoop_transitions_match_mesi_textbook() {
        use BusOp::*;
        use SnoopAction::*;
        assert_eq!(snoop_transition(Modified, BusRead), (WritebackAndShare, Shared));
        assert_eq!(snoop_transition(Modified, BusReadExclusive), (WritebackAndInvalidate, Invalid));
        assert_eq!(snoop_transition(Shared, BusReadExclusive), (Invalidate, Invalid));
        assert_eq!(snoop_transition(Shared, BusRead), (None, Shared));
        assert_eq!(snoop_transition(Invalid, BusRead), (None, Invalid));
        assert_eq!(snoop_transition(Exclusive, BusRead), (WritebackAndShare, Shared));
        assert_eq!(snoop_transition(Exclusive, BusReadExclusive), (Invalidate, Invalid));
    }

    #[test]
    fn write_always_ends_modified_locally() {
        for s in [Modified, Exclusive, Shared, Invalid] {
            let (_, next) = local_transition(s, Write);
            assert_eq!(next, Modified);
            let (_, next) = local_transition(s, Atomic);
            assert_eq!(next, Modified);
        }
    }

    #[test]
    fn bus_read_exclusive_always_invalidates_remotes() {
        for s in [Modified, Exclusive, Shared] {
            let (_, next) = snoop_transition(s, BusOp::BusReadExclusive);
            assert_eq!(next, Invalid);
        }
    }
}
