//! Addresses and cache-line geometry.

/// A physical byte address in the simulated machine.
pub type Addr = u64;

/// Cache line size in bytes. Rocket Chip's L1 data cache uses 64-byte lines, and the paper's
/// Phentos runtime sizes its task-metadata elements to exactly one or two such lines.
pub const LINE_SIZE: u64 = 64;

/// Returns the cache-line index containing `addr`.
pub fn line_of(addr: Addr) -> u64 {
    addr / LINE_SIZE
}

/// Returns the first byte address of the line containing `addr`.
pub fn line_base(addr: Addr) -> Addr {
    addr & !(LINE_SIZE - 1)
}

/// Returns the set of distinct cache lines touched by an access of `bytes` bytes at `addr`.
pub fn lines_touched(addr: Addr, bytes: u64) -> Vec<u64> {
    if bytes == 0 {
        return vec![line_of(addr)];
    }
    let first = line_of(addr);
    let last = line_of(addr + bytes - 1);
    (first..=last).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_size_is_power_of_two() {
        assert!(LINE_SIZE.is_power_of_two());
        assert_eq!(LINE_SIZE, 64);
    }

    #[test]
    fn line_of_and_base() {
        assert_eq!(line_of(0), 0);
        assert_eq!(line_of(63), 0);
        assert_eq!(line_of(64), 1);
        assert_eq!(line_base(0x1234), (0x1200 + 0x30 - 0x30) & !(LINE_SIZE - 1));
        assert_eq!(line_base(127), 64);
    }

    #[test]
    fn lines_touched_spans() {
        assert_eq!(lines_touched(0, 1), vec![0]);
        assert_eq!(lines_touched(0, 64), vec![0]);
        assert_eq!(lines_touched(0, 65), vec![0, 1]);
        assert_eq!(lines_touched(60, 8), vec![0, 1]);
        assert_eq!(lines_touched(128, 0), vec![2]);
        assert_eq!(lines_touched(0, 256), vec![0, 1, 2, 3]);
    }
}
