//! A parameterised 2D-mesh network-on-chip latency and contention model.
//!
//! The paper's prototype keeps all eight cores in one snoop domain, which stops being realistic
//! well before 64 cores: at that scale coherence traffic travels a packet-switched mesh, and
//! every protocol message pays per-hop router/link latency on top of a fixed network-interface
//! injection cost (the ESP SoC methodology and the HTS scheduler-vs-memory study both model
//! exactly this). This module provides that story in two selectable tiers
//! ([`NocContention`]):
//!
//! * **[`NocContention::Ideal`]** — deterministic hop counts only, no link contention: a
//!   message from tile A to tile B costs `injection + hops × per_hop`
//!   ([`NocConfig::message_latency`]). This is the bandwidth-free model PR 4 introduced, and
//!   the figure pins in `tests/figure_pins.rs` hold it bit-for-bit.
//! * **[`NocContention::Contended`]** — per-link FIFO occupancy on top of the hop latency:
//!   messages are split into flits ([`LinkContention::flit_bytes`]), XY-routed hop by hop
//!   ([`Mesh::xy_route`]), and each directed link serialises the flits it carries at
//!   [`LinkContention::link_bytes_per_cycle`] — concurrent messages crossing the same link
//!   queue behind each other, the same free-at/queue-behind idiom as the DRAM channel in
//!   [`crate::bandwidth`]. Router input buffers are finite
//!   ([`LinkContention::buffer_flits`]): queueing a router's buffer cannot absorb
//!   back-pressures the *upstream* link, which stays occupied by the blocked message's tail —
//!   so saturation spreads backwards toward the injection point, exactly the behaviour that
//!   makes dense-communication workloads sub-linear on real meshes.
//!
//! Cores are mapped to tiles row-major on a `width × height` mesh chosen by [`mesh_dims`]
//! (width = ⌈√cores⌉), and a message from tile A to tile B traverses their Manhattan distance in
//! hops ([`Mesh::hops`]). Protocol-level costs (the directory lookup at the home tile,
//! per-invalidation fan-out serialisation) also live here so the directory protocol in
//! [`crate::directory`] stays purely functional; the per-link state lives in [`NocTraffic`],
//! owned by [`crate::MemorySystem`].

use tis_sim::Cycle;

use crate::addr::LINE_SIZE;

/// Bytes of a control-only NoC message (request, acknowledgement, invalidation): header,
/// address, routing metadata — no payload.
pub const CTRL_MSG_BYTES: u64 = 8;

/// Bytes of a data-carrying NoC message: a control header plus one cache line of payload.
/// Dirty-line writebacks and fill responses are this size, so their cost grows with the
/// payload under [`NocContention::Contended`].
pub const DATA_MSG_BYTES: u64 = CTRL_MSG_BYTES + LINE_SIZE;

/// Link-level contention parameters of the mesh under [`NocContention::Contended`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkContention {
    /// Peak bandwidth of one directed link, in bytes per core cycle.
    pub link_bytes_per_cycle: u64,
    /// Input-buffer depth of each router port, in flits. Queueing beyond this depth cannot be
    /// absorbed locally and back-pressures the upstream link (`0` disables buffering entirely:
    /// every wait propagates all the way back).
    pub buffer_flits: u64,
    /// Flit size in bytes; messages serialise onto links one flit at a time.
    pub flit_bytes: u64,
}

impl Default for LinkContention {
    fn default() -> Self {
        // A 128-bit link at the 80 MHz core clock moves 16 B/cycle; halving it to 8 B/cycle
        // reflects router arbitration inefficiency. Four-flit input buffers are the classic
        // small-VC-buffer design point of low-cost mesh routers.
        LinkContention { link_bytes_per_cycle: 8, buffer_flits: 4, flit_bytes: 16 }
    }
}

impl LinkContention {
    /// Number of flits a message of `bytes` bytes occupies (at least one).
    pub fn flits(&self, bytes: u64) -> u64 {
        bytes.div_ceil(self.flit_bytes).max(1)
    }

    /// Cycles one flit occupies a link: `⌈flit_bytes / link_bytes_per_cycle⌉`.
    pub fn cycles_per_flit(&self) -> Cycle {
        self.flit_bytes.div_ceil(self.link_bytes_per_cycle).max(1)
    }

    /// Cycles a message of `bytes` bytes occupies each link it crosses (its serialisation
    /// latency, paid once end-to-end thanks to wormhole pipelining).
    pub fn serialization(&self, bytes: u64) -> Cycle {
        self.flits(bytes) * self.cycles_per_flit()
    }

    /// Validates the parameters.
    ///
    /// # Panics
    ///
    /// Panics if the link bandwidth or flit size is zero (a zero *buffer* depth is legal: it
    /// models unbuffered routers where all queueing back-pressures the source).
    pub fn validate(&self) {
        assert!(self.link_bytes_per_cycle > 0, "link bandwidth must be positive");
        assert!(self.flit_bytes > 0, "flit size must be positive");
    }

    /// Stable short key naming this parameter point in machine-readable output, e.g.
    /// `bw8-buf4-flit16`.
    pub fn key_string(&self) -> String {
        format!("bw{}-buf{}-flit{}", self.link_bytes_per_cycle, self.buffer_flits, self.flit_bytes)
    }
}

/// Whether (and how) the mesh models link contention.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum NocContention {
    /// No contention: every message is priced by the closed-form
    /// [`NocConfig::message_latency`] alone. The default, preserving the bandwidth-free
    /// model's numbers bit-for-bit (pinned by `tests/figure_pins.rs`).
    #[default]
    Ideal,
    /// Link bandwidth and finite router buffers are modelled per [`LinkContention`].
    Contended(LinkContention),
}

impl NocContention {
    /// The contended model at its default parameter point.
    pub fn contended() -> Self {
        NocContention::Contended(LinkContention::default())
    }

    /// Stable key naming this contention point in machine-readable output: `ideal`, or the
    /// [`LinkContention::key_string`] of the contended parameters.
    pub fn key_string(&self) -> String {
        match self {
            NocContention::Ideal => "ideal".to_string(),
            NocContention::Contended(c) => c.key_string(),
        }
    }
}

/// Latency parameters of the mesh NoC, in core cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NocConfig {
    /// Router traversal + link latency per hop.
    pub per_hop: Cycle,
    /// Network-interface injection/ejection overhead per message (charged once per message,
    /// covering both ends).
    pub injection: Cycle,
    /// Directory access at the home tile (SRAM lookup + state update).
    pub directory_lookup: Cycle,
    /// Serialisation at the home tile per invalidation it fans out (the invalidations
    /// themselves travel in parallel; the sender issues them one per cycle-ish).
    pub per_invalidation: Cycle,
    /// Link-contention model: [`NocContention::Ideal`] (default) or finite-bandwidth,
    /// finite-buffer links.
    pub contention: NocContention,
}

impl Default for NocConfig {
    fn default() -> Self {
        // Calibrated to the same 80 MHz core clock as `MemLatencies::default()`: a 3-cycle
        // router+link pipeline, a 4-cycle network interface, a 6-cycle directory SRAM access.
        NocConfig {
            per_hop: 3,
            injection: 4,
            directory_lookup: 6,
            per_invalidation: 2,
            contention: NocContention::Ideal,
        }
    }
}

impl NocConfig {
    /// The default latency point with the default contended link model.
    pub fn contended() -> Self {
        NocConfig { contention: NocContention::contended(), ..NocConfig::default() }
    }

    /// Latency of one message traversing `hops` hops under the ideal (contention-free) model:
    /// `injection + hops × per_hop`.
    pub fn message_latency(&self, hops: u64) -> Cycle {
        self.injection + hops * self.per_hop
    }
}

/// A near-square 2D mesh with cores mapped to tiles row-major.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mesh {
    /// Number of cores placed on the mesh.
    pub cores: usize,
    /// Mesh width in tiles.
    pub width: usize,
    /// Mesh height in tiles (the last row may be partially populated).
    pub height: usize,
}

/// Chooses the mesh geometry for `cores` cores: width = ⌈√cores⌉, height = ⌈cores / width⌉.
/// 8 cores get a 3×3 mesh with one empty tile; 64 cores get the classic 8×8.
///
/// # Panics
///
/// Panics if `cores` is zero.
pub fn mesh_dims(cores: usize) -> (usize, usize) {
    assert!(cores > 0, "a mesh needs at least one core");
    let width = (cores as f64).sqrt().ceil() as usize;
    let height = cores.div_ceil(width);
    (width, height)
}

impl Mesh {
    /// Creates the mesh for `cores` cores.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is zero.
    pub fn new(cores: usize) -> Self {
        let (width, height) = mesh_dims(cores);
        Mesh { cores, width, height }
    }

    /// Tile coordinates of a core (row-major placement).
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn tile_of(&self, core: usize) -> (usize, usize) {
        assert!(core < self.cores, "core index out of range");
        (core % self.width, core / self.width)
    }

    /// Manhattan hop distance between two cores' tiles.
    pub fn hops(&self, from: usize, to: usize) -> u64 {
        let (fx, fy) = self.tile_of(from);
        let (tx, ty) = self.tile_of(to);
        (fx.abs_diff(tx) + fy.abs_diff(ty)) as u64
    }

    /// The mesh diameter in hops (corner to corner).
    pub fn diameter(&self) -> u64 {
        (self.width - 1 + (self.height - 1)) as u64
    }

    /// The **home tile** of a cache line: directory state is interleaved across all tiles at
    /// line granularity, so consecutive lines live on consecutive tiles.
    pub fn home_of(&self, line: u64) -> usize {
        (line % self.cores as u64) as usize
    }

    /// Number of directed link slots the mesh addresses (four per tile: east, west, south,
    /// north — edge tiles simply never use their outward slots).
    pub fn link_slots(&self) -> usize {
        self.width * self.height * 4
    }

    /// The deterministic **XY route** from one core's tile to another's, as the sequence of
    /// directed-link ids crossed: first along the X dimension to the destination column, then
    /// along Y to the destination row. XY (dimension-ordered) routing is the standard
    /// deadlock-free choice for 2D meshes, and being a pure function of the endpoints it keeps
    /// the contention model deterministic. The route's length equals [`Mesh::hops`].
    ///
    /// Allocation-free (the per-message hot path of the contended mesh walks it directly);
    /// collect it when a materialised route is handier.
    ///
    /// # Panics
    ///
    /// Panics if either core is out of range.
    pub fn xy_route(&self, from: usize, to: usize) -> impl Iterator<Item = usize> + '_ {
        let (mut x, mut y) = self.tile_of(from);
        let (tx, ty) = self.tile_of(to);
        let width = self.width;
        std::iter::from_fn(move || {
            let link = |x: usize, y: usize, dir: usize| (y * width + x) * 4 + dir;
            if x < tx {
                let l = link(x, y, 0); // east
                x += 1;
                Some(l)
            } else if x > tx {
                let l = link(x, y, 1); // west
                x -= 1;
                Some(l)
            } else if y < ty {
                let l = link(x, y, 2); // south
                y += 1;
                Some(l)
            } else if y > ty {
                let l = link(x, y, 3); // north
                y -= 1;
                Some(l)
            } else {
                None
            }
        })
    }
}

/// Per-link occupancy state of a contended mesh: the mutable half of the NoC model, owned by
/// [`crate::MemorySystem`] (one instance per memory system; [`NocConfig`] stays `Copy`).
///
/// Each directed link keeps the cycle at which it becomes free, in the same
/// free-at/queue-behind style as [`crate::bandwidth::BandwidthModel`]: a message arriving
/// earlier waits, and the wait is charged to the requesting core. Finite router buffers couple
/// the links: wait that exceeds the input-buffer depth keeps the message's tail parked on the
/// *upstream* link, extending its busy time and thereby delaying unrelated traffic — the
/// back-pressure tree that makes hotspot traffic collapse on real meshes.
#[derive(Debug, Clone)]
pub struct NocTraffic {
    params: LinkContention,
    /// Cycle at which each directed link becomes free (`link_slots` entries).
    free_at: Vec<Cycle>,
    link_wait_cycles: u64,
    max_link_occupancy: u64,
    messages: u64,
    flits: u64,
}

impl NocTraffic {
    /// Creates the link state for `mesh` under the given contention parameters.
    ///
    /// # Panics
    ///
    /// Panics if the parameters are degenerate ([`LinkContention::validate`]).
    pub fn new(mesh: &Mesh, params: LinkContention) -> Self {
        params.validate();
        NocTraffic {
            params,
            free_at: vec![0; mesh.link_slots()],
            link_wait_cycles: 0,
            max_link_occupancy: 0,
            messages: 0,
            flits: 0,
        }
    }

    /// The contention parameters in force.
    pub fn params(&self) -> LinkContention {
        self.params
    }

    /// Sends one message of `bytes` bytes from `from` to `to` starting at `now`, traversing
    /// the XY route link by link, and returns its end-to-end latency (injection, per-hop
    /// router latency, link queueing, and one serialisation term — wormhole switching pipelines
    /// the flits across hops, so serialisation is paid once, not per hop).
    ///
    /// Uncontended, the result is exactly `cfg.message_latency(hops) + serialisation(bytes)`;
    /// queueing only ever adds to that, so a contended mesh is never faster than the ideal one.
    pub fn send(
        &mut self,
        mesh: &Mesh,
        cfg: &NocConfig,
        from: usize,
        to: usize,
        bytes: u64,
        now: Cycle,
    ) -> Cycle {
        let serialization = self.params.serialization(bytes);
        let cycles_per_flit = self.params.cycles_per_flit();
        let buffer_cycles = self.params.buffer_flits * cycles_per_flit;
        self.messages += 1;
        self.flits += self.params.flits(bytes);

        // Head flit leaves the source network interface after the injection overhead.
        let mut head = now + cfg.injection;
        let mut upstream: Option<usize> = None;
        for link in mesh.xy_route(from, to) {
            let start = head.max(self.free_at[link]);
            let wait = start - head;
            if wait > 0 {
                self.link_wait_cycles += wait;
                // The router's input buffer absorbs up to `buffer_flits` of queued message;
                // any excess keeps the tail parked on the upstream link, which stays busy
                // for the overflow duration and back-pressures everyone behind it.
                let overflow = wait.saturating_sub(buffer_cycles);
                if overflow > 0 {
                    if let Some(up) = upstream {
                        self.free_at[up] += overflow;
                    }
                }
            }
            self.free_at[link] = start + serialization;
            // Occupancy in flits: the work queued ahead of this message's head when it reached
            // the link (its wait), plus the message's own flits — pure propagation latency does
            // not count, so an idle mesh reports exactly the message's own size.
            self.max_link_occupancy =
                self.max_link_occupancy.max((wait + serialization).div_ceil(cycles_per_flit));
            head = start + cfg.per_hop;
            upstream = Some(link);
        }
        // The tail arrives one serialisation term after the head (wormhole pipelining).
        (head + serialization) - now
    }

    /// Total cycles messages spent queueing for busy links (the contention metric surfaced as
    /// `noc_link_wait_cycles`).
    pub fn link_wait_cycles(&self) -> u64 {
        self.link_wait_cycles
    }

    /// Maximum link occupancy observed, in flits: over all (message, link) traversals, the
    /// largest sum of work queued ahead of the message's head on arrival plus the message's
    /// own flits (surfaced as `max_link_occupancy`). An idle mesh reports the largest single
    /// message's flit count.
    pub fn max_link_occupancy(&self) -> u64 {
        self.max_link_occupancy
    }

    /// Number of messages sent through the contended mesh.
    pub fn messages(&self) -> u64 {
        self.messages
    }

    /// Total flits those messages carried.
    pub fn flits(&self) -> u64 {
        self.flits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mesh_dims_are_near_square() {
        assert_eq!(mesh_dims(1), (1, 1));
        assert_eq!(mesh_dims(2), (2, 1));
        assert_eq!(mesh_dims(4), (2, 2));
        assert_eq!(mesh_dims(8), (3, 3));
        assert_eq!(mesh_dims(16), (4, 4));
        assert_eq!(mesh_dims(64), (8, 8));
        assert_eq!(mesh_dims(6), (3, 2));
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_core_mesh_panics() {
        mesh_dims(0);
    }

    #[test]
    fn row_major_tiles_and_manhattan_hops() {
        let m = Mesh::new(8); // 3x3, core 7 at (1, 2)
        assert_eq!(m.tile_of(0), (0, 0));
        assert_eq!(m.tile_of(4), (1, 1));
        assert_eq!(m.tile_of(7), (1, 2));
        assert_eq!(m.hops(0, 0), 0);
        assert_eq!(m.hops(0, 1), 1);
        assert_eq!(m.hops(0, 4), 2);
        assert_eq!(m.hops(0, 7), 3);
        assert_eq!(m.hops(7, 0), 3, "hops are symmetric");
    }

    #[test]
    fn diameter_grows_with_the_machine() {
        assert_eq!(Mesh::new(2).diameter(), 1);
        assert_eq!(Mesh::new(8).diameter(), 4);
        assert_eq!(Mesh::new(64).diameter(), 14);
        assert!(Mesh::new(64).diameter() > Mesh::new(8).diameter());
    }

    #[test]
    fn homes_are_interleaved_over_all_tiles() {
        let m = Mesh::new(4);
        assert_eq!(m.home_of(0), 0);
        assert_eq!(m.home_of(1), 1);
        assert_eq!(m.home_of(4), 0);
        assert_eq!(m.home_of(7), 3);
        // Every core is home to some line.
        let homes: std::collections::HashSet<usize> = (0..100).map(|l| m.home_of(l)).collect();
        assert_eq!(homes.len(), 4);
    }

    #[test]
    fn message_latency_formula() {
        let noc = NocConfig::default();
        assert_eq!(noc.message_latency(0), noc.injection);
        assert_eq!(noc.message_latency(5), noc.injection + 5 * noc.per_hop);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn tile_of_out_of_range_panics() {
        Mesh::new(4).tile_of(4);
    }

    #[test]
    fn xy_routes_are_deterministic_x_first_and_hop_exact() {
        let m = Mesh::new(16); // 4x4
        for from in 0..16 {
            for to in 0..16 {
                let route: Vec<usize> = m.xy_route(from, to).collect();
                let again: Vec<usize> = m.xy_route(from, to).collect();
                assert_eq!(route, again, "routing is a pure function");
                assert_eq!(route.len() as u64, m.hops(from, to), "route length is Manhattan");
            }
        }
        // Core 1 (1,0) -> core 14 (2,3): east once, then south three times.
        let route: Vec<usize> = m.xy_route(1, 14).collect();
        let link = |x: usize, y: usize, d: usize| (y * 4 + x) * 4 + d;
        assert_eq!(route, vec![link(1, 0, 0), link(2, 0, 2), link(2, 1, 2), link(2, 2, 2)]);
        // The reverse route uses the opposite directed links (west/north), not the same ones.
        let back: Vec<usize> = m.xy_route(14, 1).collect();
        assert!(route.iter().all(|l| !back.contains(l)), "directed links are one-way");
        assert_eq!(m.xy_route(5, 5).count(), 0, "self-send crosses no links");
    }

    #[test]
    fn flit_and_serialisation_arithmetic() {
        let c = LinkContention::default(); // 8 B/cycle links, 16 B flits, 4-flit buffers
        assert_eq!(c.cycles_per_flit(), 2);
        assert_eq!(c.flits(CTRL_MSG_BYTES), 1, "a control message is one flit");
        assert_eq!(c.flits(DATA_MSG_BYTES), 5, "72 B of header+line is five 16 B flits");
        assert_eq!(c.flits(0), 1, "even an empty message carries a head flit");
        assert_eq!(c.serialization(DATA_MSG_BYTES), 10);
        assert_eq!(c.key_string(), "bw8-buf4-flit16");
        assert_eq!(NocContention::Ideal.key_string(), "ideal");
        assert_eq!(NocContention::contended().key_string(), "bw8-buf4-flit16");
    }

    #[test]
    #[should_panic(expected = "link bandwidth")]
    fn zero_link_bandwidth_is_rejected() {
        NocTraffic::new(
            &Mesh::new(4),
            LinkContention { link_bytes_per_cycle: 0, ..LinkContention::default() },
        );
    }

    #[test]
    fn uncontended_send_is_hop_latency_plus_serialisation() {
        let mesh = Mesh::new(16);
        let cfg = NocConfig::contended();
        let mut t = NocTraffic::new(&mesh, LinkContention::default());
        let hops = mesh.hops(0, 15);
        let lat = t.send(&mesh, &cfg, 0, 15, CTRL_MSG_BYTES, 0);
        assert_eq!(lat, cfg.message_latency(hops) + t.params().serialization(CTRL_MSG_BYTES));
        assert_eq!(t.link_wait_cycles(), 0, "an idle mesh has no queueing");
        assert_eq!(t.messages(), 1);
        // Larger payloads cost proportionally more on the same route.
        let mut t2 = NocTraffic::new(&mesh, LinkContention::default());
        let data = t2.send(&mesh, &cfg, 0, 15, DATA_MSG_BYTES, 0);
        assert_eq!(data - lat, t2.params().serialization(DATA_MSG_BYTES) - t2.params().serialization(CTRL_MSG_BYTES));
    }

    #[test]
    fn single_link_saturation_queues_linearly() {
        // Cores 0 and 1 are one hop apart: every message crosses the same directed link, so
        // the k-th concurrent message waits behind k-1 serialisations.
        let mesh = Mesh::new(4);
        let cfg = NocConfig::contended();
        let mut t = NocTraffic::new(&mesh, LinkContention::default());
        let ser = t.params().serialization(DATA_MSG_BYTES);
        let base = t.send(&mesh, &cfg, 0, 1, DATA_MSG_BYTES, 0);
        for k in 1..8u64 {
            let lat = t.send(&mesh, &cfg, 0, 1, DATA_MSG_BYTES, 0);
            assert_eq!(lat, base + k * ser, "message {k} queues behind {k} predecessors");
        }
        assert_eq!(t.link_wait_cycles(), (1..8u64).map(|k| k * ser).sum::<u64>());
        assert!(t.max_link_occupancy() >= 8 * t.params().flits(DATA_MSG_BYTES));
    }

    #[test]
    fn zero_depth_buffers_back_pressure_the_upstream_link() {
        // Two-hop route 0 -> 2 on a 4-core (2x2) mesh... use a 1x4-ish mesh: 4 cores is 2x2,
        // so 0 -> 3 routes east then south. First saturate the *second* link (1 -> 3) with
        // cross traffic, then send 0 -> 3: with zero-depth buffers the wait at the second link
        // must extend the first link's busy time; with deep buffers it must not.
        let mesh = Mesh::new(4);
        let cfg = NocConfig::contended();
        let route: Vec<usize> = mesh.xy_route(0, 3).collect();
        let (east, south) = (route[0], route[1]);
        assert_eq!(
            mesh.xy_route(1, 3).collect::<Vec<_>>(),
            vec![south],
            "cross traffic shares only the second link"
        );

        let run = |buffer_flits: u64| {
            let mut t = NocTraffic::new(
                &mesh,
                LinkContention { buffer_flits, ..LinkContention::default() },
            );
            for _ in 0..4 {
                t.send(&mesh, &cfg, 1, 3, DATA_MSG_BYTES, 0);
            }
            let lat = t.send(&mesh, &cfg, 0, 3, DATA_MSG_BYTES, 0);
            (lat, t)
        };
        let (lat_unbuffered, t0) = run(0);
        let (lat_buffered, t64) = run(64);
        assert_eq!(
            lat_unbuffered, lat_buffered,
            "the blocked message itself waits the same either way"
        );
        // But the upstream (east) link is held busy by the blocked tail only when the router
        // cannot buffer it.
        assert!(
            t0.free_at[east] > t64.free_at[east],
            "zero-depth buffers must park the tail on the upstream link ({} vs {})",
            t0.free_at[east],
            t64.free_at[east]
        );
        assert_eq!(t64.link_wait_cycles(), t0.link_wait_cycles());
    }

    #[test]
    fn finite_buffers_absorb_small_waits_without_upstream_coupling() {
        let mesh = Mesh::new(4);
        let cfg = NocConfig::contended();
        let east = mesh.xy_route(0, 3).next().unwrap();
        // One in-flight message on the second link: a 4-flit buffer absorbs part of the wait.
        let mut t = NocTraffic::new(&mesh, LinkContention::default());
        t.send(&mesh, &cfg, 1, 3, CTRL_MSG_BYTES, 0);
        let before = t.free_at[east];
        t.send(&mesh, &cfg, 0, 3, CTRL_MSG_BYTES, 0);
        assert!(
            t.free_at[east] >= before,
            "the message occupies the east link for its own serialisation"
        );
        assert_eq!(t.link_wait_cycles(), 0, "a one-flit predecessor leaves before we arrive");
    }
}
