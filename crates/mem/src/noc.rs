//! A parameterised 2D-mesh network-on-chip latency model.
//!
//! The paper's prototype keeps all eight cores in one snoop domain, which stops being realistic
//! well before 64 cores: at that scale coherence traffic travels a packet-switched mesh, and
//! every protocol message pays per-hop router/link latency on top of a fixed network-interface
//! injection cost (the ESP SoC methodology and the HTS scheduler-vs-memory study both model
//! exactly this). This module provides the latency side of that story as a **bandwidth-free
//! first cut**: deterministic hop counts on a near-square mesh, no link contention.
//!
//! Cores are mapped to tiles row-major on a `width × height` mesh chosen by [`mesh_dims`]
//! (width = ⌈√cores⌉), and a message from tile A to tile B traverses their Manhattan distance in
//! hops ([`Mesh::hops`]). The [`NocConfig`] prices one message as
//! `injection + hops × per_hop` ([`NocConfig::message_latency`]); protocol-level costs (the
//! directory lookup at the home tile, per-invalidation fan-out serialisation) also live here so
//! the directory protocol in [`crate::directory`] stays purely functional.

use tis_sim::Cycle;

/// Latency parameters of the mesh NoC, in core cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NocConfig {
    /// Router traversal + link latency per hop.
    pub per_hop: Cycle,
    /// Network-interface injection/ejection overhead per message (charged once per message,
    /// covering both ends).
    pub injection: Cycle,
    /// Directory access at the home tile (SRAM lookup + state update).
    pub directory_lookup: Cycle,
    /// Serialisation at the home tile per invalidation it fans out (the invalidations
    /// themselves travel in parallel; the sender issues them one per cycle-ish).
    pub per_invalidation: Cycle,
}

impl Default for NocConfig {
    fn default() -> Self {
        // Calibrated to the same 80 MHz core clock as `MemLatencies::default()`: a 3-cycle
        // router+link pipeline, a 4-cycle network interface, a 6-cycle directory SRAM access.
        NocConfig { per_hop: 3, injection: 4, directory_lookup: 6, per_invalidation: 2 }
    }
}

impl NocConfig {
    /// Latency of one message traversing `hops` hops: `injection + hops × per_hop`.
    pub fn message_latency(&self, hops: u64) -> Cycle {
        self.injection + hops * self.per_hop
    }
}

/// A near-square 2D mesh with cores mapped to tiles row-major.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mesh {
    /// Number of cores placed on the mesh.
    pub cores: usize,
    /// Mesh width in tiles.
    pub width: usize,
    /// Mesh height in tiles (the last row may be partially populated).
    pub height: usize,
}

/// Chooses the mesh geometry for `cores` cores: width = ⌈√cores⌉, height = ⌈cores / width⌉.
/// 8 cores get a 3×3 mesh with one empty tile; 64 cores get the classic 8×8.
///
/// # Panics
///
/// Panics if `cores` is zero.
pub fn mesh_dims(cores: usize) -> (usize, usize) {
    assert!(cores > 0, "a mesh needs at least one core");
    let width = (cores as f64).sqrt().ceil() as usize;
    let height = cores.div_ceil(width);
    (width, height)
}

impl Mesh {
    /// Creates the mesh for `cores` cores.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is zero.
    pub fn new(cores: usize) -> Self {
        let (width, height) = mesh_dims(cores);
        Mesh { cores, width, height }
    }

    /// Tile coordinates of a core (row-major placement).
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn tile_of(&self, core: usize) -> (usize, usize) {
        assert!(core < self.cores, "core index out of range");
        (core % self.width, core / self.width)
    }

    /// Manhattan hop distance between two cores' tiles.
    pub fn hops(&self, from: usize, to: usize) -> u64 {
        let (fx, fy) = self.tile_of(from);
        let (tx, ty) = self.tile_of(to);
        (fx.abs_diff(tx) + fy.abs_diff(ty)) as u64
    }

    /// The mesh diameter in hops (corner to corner).
    pub fn diameter(&self) -> u64 {
        (self.width - 1 + (self.height - 1)) as u64
    }

    /// The **home tile** of a cache line: directory state is interleaved across all tiles at
    /// line granularity, so consecutive lines live on consecutive tiles.
    pub fn home_of(&self, line: u64) -> usize {
        (line % self.cores as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mesh_dims_are_near_square() {
        assert_eq!(mesh_dims(1), (1, 1));
        assert_eq!(mesh_dims(2), (2, 1));
        assert_eq!(mesh_dims(4), (2, 2));
        assert_eq!(mesh_dims(8), (3, 3));
        assert_eq!(mesh_dims(16), (4, 4));
        assert_eq!(mesh_dims(64), (8, 8));
        assert_eq!(mesh_dims(6), (3, 2));
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_core_mesh_panics() {
        mesh_dims(0);
    }

    #[test]
    fn row_major_tiles_and_manhattan_hops() {
        let m = Mesh::new(8); // 3x3, core 7 at (1, 2)
        assert_eq!(m.tile_of(0), (0, 0));
        assert_eq!(m.tile_of(4), (1, 1));
        assert_eq!(m.tile_of(7), (1, 2));
        assert_eq!(m.hops(0, 0), 0);
        assert_eq!(m.hops(0, 1), 1);
        assert_eq!(m.hops(0, 4), 2);
        assert_eq!(m.hops(0, 7), 3);
        assert_eq!(m.hops(7, 0), 3, "hops are symmetric");
    }

    #[test]
    fn diameter_grows_with_the_machine() {
        assert_eq!(Mesh::new(2).diameter(), 1);
        assert_eq!(Mesh::new(8).diameter(), 4);
        assert_eq!(Mesh::new(64).diameter(), 14);
        assert!(Mesh::new(64).diameter() > Mesh::new(8).diameter());
    }

    #[test]
    fn homes_are_interleaved_over_all_tiles() {
        let m = Mesh::new(4);
        assert_eq!(m.home_of(0), 0);
        assert_eq!(m.home_of(1), 1);
        assert_eq!(m.home_of(4), 0);
        assert_eq!(m.home_of(7), 3);
        // Every core is home to some line.
        let homes: std::collections::HashSet<usize> = (0..100).map(|l| m.home_of(l)).collect();
        assert_eq!(homes.len(), 4);
    }

    #[test]
    fn message_latency_formula() {
        let noc = NocConfig::default();
        assert_eq!(noc.message_latency(0), noc.injection);
        assert_eq!(noc.message_latency(5), noc.injection + 5 * noc.per_hop);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn tile_of_out_of_range_panics() {
        Mesh::new(4).tile_of(4);
    }
}
