//! A directory-based coherence protocol as a pure transition table, mirroring [`crate::mesi`].
//!
//! Past one snoop domain, broadcasting every miss to every core stops scaling; the standard
//! answer is a **directory**: per-line bookkeeping at a *home tile* that records exactly which
//! cores hold the line ([`SharerSet`]) and routes coherence messages point-to-point over the
//! NoC ([`crate::noc`]) instead of snooping a bus. This module is the functional half of that
//! design — states, operations and transitions, unit-tested over every `(state, op)` pair —
//! while [`crate::system`] layers the latency accounting on top.
//!
//! The protocol is MESI-equivalent by construction: the directory serialises requests per line
//! exactly as the snoop bus does, grants Exclusive on a read when no other core holds the line,
//! and (like the paper's no-L2 prototype) moves dirty data between cores **through memory** —
//! an owner recalled or downgraded must write back before the requester fetches. Caches notify
//! the home on every eviction ([`DirOp::Evict`]), clean or dirty, so the directory is always
//! *precise* — the property the differential suite in `tests/mem_model_equivalence.rs` pins
//! against the snooping baseline.

/// A bitset of cores holding a line, supporting machines up to 256 cores (the sweep grid goes
/// to 64; four words leave headroom without heap allocation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SharerSet {
    bits: [u64; 4],
}

/// Maximum number of cores a [`SharerSet`] can track.
pub const MAX_SHARERS: usize = 256;

impl SharerSet {
    /// The empty set.
    pub fn empty() -> Self {
        SharerSet::default()
    }

    /// The set containing exactly `core`.
    pub fn only(core: usize) -> Self {
        let mut s = SharerSet::empty();
        s.insert(core);
        s
    }

    /// Adds a core to the set.
    ///
    /// # Panics
    ///
    /// Panics if `core` is at or beyond [`MAX_SHARERS`].
    pub fn insert(&mut self, core: usize) {
        assert!(core < MAX_SHARERS, "sharer bitset supports up to {MAX_SHARERS} cores");
        self.bits[core / 64] |= 1u64 << (core % 64);
    }

    /// Removes a core from the set (no-op if absent).
    pub fn remove(&mut self, core: usize) {
        if core < MAX_SHARERS {
            self.bits[core / 64] &= !(1u64 << (core % 64));
        }
    }

    /// Whether the set contains `core`.
    pub fn contains(&self, core: usize) -> bool {
        core < MAX_SHARERS && self.bits[core / 64] & (1u64 << (core % 64)) != 0
    }

    /// Number of cores in the set.
    pub fn count(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.bits.iter().all(|&w| w == 0)
    }

    /// Iterates over the cores in the set, in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        (0..MAX_SHARERS).filter(move |&c| self.contains(c))
    }

    /// This set minus `core`.
    pub fn without(mut self, core: usize) -> Self {
        self.remove(core);
        self
    }
}

/// Directory state of one cache line at its home tile.
///
/// The directory cannot distinguish a clean-Exclusive from a Modified owner without asking
/// (the silent E→M upgrade is local), so a single [`DirState::Owned`] covers both — the
/// recall/downgrade path checks the owner's actual cache state to decide whether a writeback
/// is due, exactly as a snooped cache does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DirState {
    /// No cache holds the line; memory is the only copy.
    Uncached,
    /// One core holds the line Exclusive or Modified.
    Owned(usize),
    /// The recorded cores hold the line Shared (clean).
    Shared(SharerSet),
}

/// Requests arriving at a line's home tile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DirOp {
    /// A core missed on a read and wants a readable copy.
    GetS(usize),
    /// A core wants an exclusive (writable) copy — a write miss or an S→M upgrade.
    GetM(usize),
    /// A core evicted its copy (clean or dirty) and notifies the home so the directory stays
    /// precise. Dirty data travels with the notification as an ordinary writeback.
    Evict(usize),
}

/// What the home tile must orchestrate to satisfy a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DirAction {
    /// No remote cache is involved: fetch the line from memory for the requester.
    FetchFromMemory,
    /// The owner keeps a copy but downgrades to Shared; if its copy is dirty it writes back
    /// first, then the requester fetches from memory (no-L2: no cache-to-cache data transfer).
    DowngradeOwner(usize),
    /// The owner invalidates its copy; if dirty it writes back first, then the requester
    /// fetches from memory.
    RecallOwner(usize),
    /// The requester already holds the line Shared: invalidate the other sharers and grant
    /// ownership in place — no data fetch.
    InvalidateForUpgrade(SharerSet),
    /// Invalidate all sharers, then fetch the line from memory for the requester.
    InvalidateAndFetch(SharerSet),
    /// Pure bookkeeping; nothing to orchestrate.
    None,
}

/// Computes the home tile's action and the line's next directory state for a request.
///
/// Mirrors [`crate::mesi::local_transition`] / [`crate::mesi::snoop_transition`]: a pure
/// function over the full `(state, op)` cross product, exhaustively unit-tested below.
/// Requests from a core the directory already records as owner (possible only if protocol
/// bookkeeping desynchronised) and evictions by non-holders are treated as precise-directory
/// violations and tolerated as no-ops; the system-level invariant checker reports them.
pub fn dir_transition(state: DirState, op: DirOp) -> (DirAction, DirState) {
    use DirAction::*;
    use DirOp::*;
    use DirState::*;
    match (state, op) {
        // Cold or memory-only lines: the requester becomes owner (Exclusive on a read when no
        // one else holds the line — same rule the snoop model applies when zero sharers answer).
        (Uncached, GetS(r)) | (Uncached, GetM(r)) => (FetchFromMemory, Owned(r)),
        (Uncached, Evict(_)) => (None, Uncached),

        // An owned line: a reader forces a downgrade to Shared, a writer a full recall.
        (Owned(o), GetS(r)) if r != o => {
            let mut sharers = SharerSet::only(o);
            sharers.insert(r);
            (DowngradeOwner(o), Shared(sharers))
        }
        (Owned(o), GetM(r)) if r != o => (RecallOwner(o), Owned(r)),
        // The owner can already read and write locally; a request from it means the directory
        // lost an eviction notification. Tolerate (the invariant checker flags it).
        (Owned(o), GetS(r)) | (Owned(o), GetM(r)) if r == o => (None, Owned(o)),
        (Owned(o), Evict(c)) if c == o => (None, Uncached),
        (Owned(o), Evict(_)) => (None, Owned(o)),

        // A shared line: readers join the sharer set (data still comes from memory — clean
        // sharers do not forward in the no-L2 hierarchy); writers invalidate everyone else.
        (Shared(mut s), GetS(r)) => {
            s.insert(r);
            (FetchFromMemory, Shared(s))
        }
        (Shared(s), GetM(r)) if s.contains(r) => {
            let others = s.without(r);
            (InvalidateForUpgrade(others), Owned(r))
        }
        (Shared(s), GetM(r)) => (InvalidateAndFetch(s), Owned(r)),
        (Shared(s), Evict(c)) => {
            let rest = s.without(c);
            if rest.is_empty() {
                (None, Uncached)
            } else {
                (None, Shared(rest))
            }
        }

        // Unreachable arm-wise, but the guards above are not exhaustive for the compiler.
        (s, _) => (None, s),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use DirAction as A;
    use DirOp::*;
    use DirState::*;

    fn shared(cores: &[usize]) -> DirState {
        let mut s = SharerSet::empty();
        for &c in cores {
            s.insert(c);
        }
        Shared(s)
    }

    #[test]
    fn sharer_set_basics() {
        let mut s = SharerSet::empty();
        assert!(s.is_empty());
        assert_eq!(s.count(), 0);
        s.insert(0);
        s.insert(63);
        s.insert(64); // crosses the word boundary
        assert!(s.contains(0) && s.contains(63) && s.contains(64));
        assert!(!s.contains(1));
        assert_eq!(s.count(), 3);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 63, 64]);
        s.remove(63);
        assert!(!s.contains(63));
        assert_eq!(s.count(), 2);
        s.remove(200); // absent: no-op
        assert_eq!(s.count(), 2);
        assert_eq!(SharerSet::only(5).iter().collect::<Vec<_>>(), vec![5]);
        assert_eq!(SharerSet::only(5).without(5), SharerSet::empty());
    }

    #[test]
    fn sharer_set_saturates_at_64_cores() {
        // The sweep grid's largest machine: all 64 cores share one line, then one of them
        // upgrades and the directory must fan the other 63 invalidations out.
        let mut s = SharerSet::empty();
        for c in 0..64 {
            s.insert(c);
        }
        assert_eq!(s.count(), 64);
        assert!((0..64).all(|c| s.contains(c)));
        assert_eq!(s.iter().count(), 64);
        let (action, next) = dir_transition(Shared(s), GetM(7));
        match action {
            A::InvalidateForUpgrade(inv) => {
                assert_eq!(inv.count(), 63);
                assert!(!inv.contains(7), "the upgrader is not invalidated");
                assert!((0..64).filter(|&c| c != 7).all(|c| inv.contains(c)));
            }
            other => panic!("expected an upgrade fan-out, got {other:?}"),
        }
        assert_eq!(next, Owned(7));
    }

    #[test]
    #[should_panic(expected = "up to 256 cores")]
    fn sharer_set_rejects_cores_beyond_capacity() {
        SharerSet::empty().insert(MAX_SHARERS);
    }

    #[test]
    fn uncached_requests_install_an_owner() {
        // Like the snoop model's zero-sharer answer, a cold read installs Exclusive (Owned).
        assert_eq!(dir_transition(Uncached, GetS(2)), (A::FetchFromMemory, Owned(2)));
        assert_eq!(dir_transition(Uncached, GetM(2)), (A::FetchFromMemory, Owned(2)));
        assert_eq!(dir_transition(Uncached, Evict(0)), (A::None, Uncached));
    }

    #[test]
    fn owned_read_downgrades_owner_to_shared() {
        let (action, next) = dir_transition(Owned(1), GetS(3));
        assert_eq!(action, A::DowngradeOwner(1));
        assert_eq!(next, shared(&[1, 3]));
    }

    #[test]
    fn owned_write_recalls_owner() {
        assert_eq!(dir_transition(Owned(1), GetM(3)), (A::RecallOwner(1), Owned(3)));
    }

    #[test]
    fn owned_eviction_returns_line_to_memory() {
        assert_eq!(dir_transition(Owned(1), Evict(1)), (A::None, Uncached));
        // A non-owner eviction of an owned line is bookkeeping noise: tolerated, state kept.
        assert_eq!(dir_transition(Owned(1), Evict(2)), (A::None, Owned(1)));
    }

    #[test]
    fn owner_self_requests_are_tolerated_no_ops() {
        assert_eq!(dir_transition(Owned(4), GetS(4)), (A::None, Owned(4)));
        assert_eq!(dir_transition(Owned(4), GetM(4)), (A::None, Owned(4)));
    }

    #[test]
    fn shared_read_joins_the_sharer_set() {
        let (action, next) = dir_transition(shared(&[0, 2]), GetS(5));
        assert_eq!(action, A::FetchFromMemory, "clean sharers do not forward without an L2");
        assert_eq!(next, shared(&[0, 2, 5]));
        // Re-reading as an existing sharer is idempotent on the set.
        assert_eq!(dir_transition(shared(&[0, 2]), GetS(2)).1, shared(&[0, 2]));
    }

    #[test]
    fn shared_upgrade_invalidates_only_the_others() {
        let (action, next) = dir_transition(shared(&[0, 2, 5]), GetM(2));
        match action {
            A::InvalidateForUpgrade(inv) => {
                assert_eq!(inv.iter().collect::<Vec<_>>(), vec![0, 5]);
            }
            other => panic!("expected an upgrade, got {other:?}"),
        }
        assert_eq!(next, Owned(2));
    }

    #[test]
    fn shared_write_by_non_sharer_invalidates_and_fetches() {
        let (action, next) = dir_transition(shared(&[0, 5]), GetM(3));
        match action {
            A::InvalidateAndFetch(inv) => {
                assert_eq!(inv.iter().collect::<Vec<_>>(), vec![0, 5]);
            }
            other => panic!("expected invalidate-and-fetch, got {other:?}"),
        }
        assert_eq!(next, Owned(3));
    }

    #[test]
    fn shared_evictions_shrink_then_clear_the_set() {
        assert_eq!(dir_transition(shared(&[0, 5]), Evict(0)), (A::None, shared(&[5])));
        assert_eq!(dir_transition(shared(&[5]), Evict(5)), (A::None, Uncached));
        // Evicting a core that was never a sharer leaves the set untouched.
        assert_eq!(dir_transition(shared(&[0, 5]), Evict(3)), (A::None, shared(&[0, 5])));
    }

    #[test]
    fn every_transition_preserves_single_owner() {
        // Sweep the full (state, op) cross product on a 4-core machine: the next state never
        // names more than one owner and never lists an owner inside a sharer set.
        let states = [
            Uncached,
            Owned(0),
            Owned(3),
            shared(&[0]),
            shared(&[1, 2]),
            shared(&[0, 1, 2, 3]),
        ];
        for state in states {
            for core in 0..4 {
                for op in [GetS(core), GetM(core), Evict(core)] {
                    let (_, next) = dir_transition(state, op);
                    match next {
                        Uncached | Owned(_) => {}
                        Shared(s) => {
                            assert!(!s.is_empty(), "{state:?} + {op:?} produced an empty Shared");
                        }
                    }
                    // GetM always ends with the requester owning the line (unless it already
                    // owned it and the request was spurious).
                    if let (GetM(r), Owned(o)) = (op, next) {
                        if state != Owned(o) || o == r {
                            assert_eq!(o, r, "{state:?} + {op:?} must give {r} ownership");
                        }
                    }
                }
            }
        }
    }
}
