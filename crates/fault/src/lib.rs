//! Deterministic fault injection with paired detection/recovery.
//!
//! The rest of the workspace models a *perfect* machine: no NoC message is ever lost, no
//! Picos tracker entry ever decays. Real hardware schedulers must preserve liveness under
//! exactly those conditions, so this crate provides a **replayable chaos layer**: every fault
//! schedule is a pure function of `(seed, `[`FaultConfig`]`)`, derived through
//! [`tis_sim::SimRng::stream`] splitting, so any run — at any sweep worker count — can be
//! reproduced byte for byte from its configuration alone.
//!
//! Three fault classes are modelled, each with an explicit detection/recovery mechanism:
//!
//! | Fault | Where injected | Detection | Recovery |
//! |---|---|---|---|
//! | dropped message | per directory-protocol NoC leg ([`LinkFaults::leg_penalty`]) | timeout ([`FaultConfig::retry_timeout`]) | bounded retry with linear backoff; the final attempt always delivers, so bounded drops can never break liveness |
//! | delayed message | same legs | — (delay is bounded by [`FaultConfig::max_delay_cycles`]) | absorb the latency |
//! | dead link | every link on a message's XY route ([`LinkFaults::dead_route_check`]) | retries exhaust against the same link | none — an exact [`FaultDiagnosis`] is recorded and the engine surfaces it instead of hanging |
//! | tracker-entry loss | Picos submission port ([`TrackerFaults::submission_losses`]) | submission echo mismatch | bounded resubmit with backoff; the final attempt always commits |
//!
//! **Faults perturb latency, never function.** Recovery is folded into the latency a
//! component reports (the retried message arrives later; the resubmitted task commits later),
//! so a run with any recoverable fault schedule retires exactly the task set of the fault-free
//! run — this is what the chaos property suite in `tests/fault_chaos.rs` pins. A *zero-rate*
//! configuration ([`FaultConfig::zero_rate`]) walks the entire injection code path but draws
//! probabilities that can never fire, making "fault layer on, nothing injected" provably
//! bit-identical to "fault layer absent" (pinned against the figure pins and the memory-model
//! equivalence quartet).
//!
//! All rates are stored as integer **parts-per-million** so [`FaultConfig`] stays `Copy + Eq +
//! Hash` — it rides inside `PicosConfig`/`MachineConfig` and keys sweep cells exactly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use tis_sim::{Cycle, SimRng};

/// One million: the denominator of every `_ppm` rate field.
pub const PPM: u64 = 1_000_000;

/// A complete, replayable fault schedule description.
///
/// `Default` (== [`FaultConfig::none`]) means *no fault layer at all*: components check
/// [`FaultConfig::engages`] and skip constructing any fault state, so the default
/// configuration is byte-identical to the pre-fault-layer tree by construction. Any
/// non-default configuration — even one whose rates are all zero — engages the layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FaultConfig {
    /// Root seed of every fault stream. Identical `(seed, config)` pairs replay identical
    /// fault schedules; the sweep runner re-derives a per-cell seed from the sweep seed via
    /// `SimRng::stream`, so replays are independent of worker count.
    pub seed: u64,
    /// Probability (parts per million) that a NoC message leg is dropped and must be retried.
    pub drop_ppm: u32,
    /// Probability (parts per million) that a delivered NoC message leg is delayed.
    pub delay_ppm: u32,
    /// Maximum extra cycles a delayed message can lose (delays are uniform in
    /// `[1, max_delay_cycles]`).
    pub max_delay_cycles: Cycle,
    /// Number of directed mesh links to kill permanently (sampled without replacement from the
    /// mesh's link slots by the root stream; values at or above the slot count kill them all).
    pub dead_links: u32,
    /// Probability (parts per million) that a Picos tracker submission is lost before commit
    /// and must be resubmitted.
    pub tracker_loss_ppm: u32,
    /// Retry budget per message leg / per submission. Droppable legs always deliver on the
    /// final attempt, so this bound is only ever *exhausted* against a dead link.
    pub max_retries: u32,
    /// Cycles a sender waits before concluding a message/submission was lost (the detection
    /// timeout charged per retry).
    pub retry_timeout: Cycle,
    /// Extra wait added per successive retry of the same message (linear backoff).
    pub retry_backoff: Cycle,
    /// No-progress watchdog window override for the execution engine, in cycles. `0` keeps the
    /// engine's default window. A tighter window turns a hung (unrecoverably faulted) run into
    /// a prompt diagnosis instead of a long wait.
    pub watchdog_cycles: Cycle,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            seed: 0xFA17_5EED,
            drop_ppm: 0,
            delay_ppm: 0,
            max_delay_cycles: 32,
            dead_links: 0,
            tracker_loss_ppm: 0,
            max_retries: 3,
            retry_timeout: 64,
            retry_backoff: 32,
            watchdog_cycles: 0,
        }
    }
}

impl FaultConfig {
    /// The no-fault configuration (the `Default`): components skip the fault layer entirely.
    pub fn none() -> Self {
        FaultConfig::default()
    }

    /// A configuration that **engages** the fault layer (every probability draw happens, every
    /// stream is derived) but whose rates guarantee nothing ever fires. Used by the
    /// differential pins: it must be bit-identical to [`FaultConfig::none`] in every observable
    /// cycle count.
    pub fn zero_rate() -> Self {
        FaultConfig { seed: 0xC01D_CAFE, ..FaultConfig::default() }
    }

    /// A moderate, fully *recoverable* chaos point used by the CI bench and examples: 2% of
    /// message legs dropped (retried), 5% delayed, 1% of tracker submissions lost
    /// (resubmitted), no dead links — liveness holds by construction.
    pub fn recoverable() -> Self {
        FaultConfig {
            seed: 0xC4A0_5000,
            drop_ppm: 20_000,
            delay_ppm: 50_000,
            tracker_loss_ppm: 10_000,
            ..FaultConfig::default()
        }
    }

    /// Whether this configuration engages the fault layer at all. The layer is constructed iff
    /// this returns `true`, so `none()` costs nothing and perturbs nothing.
    pub fn engages(&self) -> bool {
        *self != FaultConfig::none()
    }

    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics if any rate exceeds one million ppm, or if an engaging configuration has a zero
    /// retry timeout (a zero timeout would make recovery latency invisible — detection must
    /// cost something).
    pub fn validate(&self) {
        assert!(self.drop_ppm as u64 <= PPM, "drop_ppm above 100%");
        assert!(self.delay_ppm as u64 <= PPM, "delay_ppm above 100%");
        assert!(self.tracker_loss_ppm as u64 <= PPM, "tracker_loss_ppm above 100%");
        if self.engages() {
            assert!(self.retry_timeout > 0, "an engaging fault config needs a detection timeout");
        }
    }

    /// Stable short key naming this configuration in machine-readable output: `"none"` for the
    /// default, otherwise the seed and every rate that can fire.
    pub fn key(&self) -> String {
        if !self.engages() {
            return "none".to_string();
        }
        format!(
            "s{:x}-drop{}-delay{}-dead{}-loss{}-r{}",
            self.seed,
            self.drop_ppm,
            self.delay_ppm,
            self.dead_links,
            self.tracker_loss_ppm,
            self.max_retries
        )
    }

    /// Total detection latency of exhausting the retry budget against a dead resource:
    /// `attempts × timeout + backoff ramp`, with `attempts = max_retries + 1`.
    pub fn exhaustion_cycles(&self) -> Cycle {
        let attempts = self.max_retries as u64 + 1;
        attempts * self.retry_timeout + (attempts * attempts.saturating_sub(1) / 2) * self.retry_backoff
    }
}

/// Counters of everything the fault layer injected and recovered, folded into the memory
/// system's stats (and from there into sweep cells).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Message legs dropped (each one recovered by a retry).
    pub drops: u64,
    /// Message legs delivered late.
    pub delays: u64,
    /// Total extra cycles lost to delays.
    pub delay_cycles: u64,
    /// Retries issued after drop detection (equals `drops` while the budget holds).
    pub retries: u64,
    /// Total cycles spent detecting and retrying (timeout + backoff terms, both for drops and
    /// for dead-link exhaustion).
    pub recovery_cycles: u64,
    /// Messages whose XY route crossed a permanently dead link (each records a diagnosis).
    pub dead_link_hits: u64,
}

impl FaultStats {
    /// Merges another counter set into this one.
    pub fn absorb(&mut self, other: &FaultStats) {
        self.drops += other.drops;
        self.delays += other.delays;
        self.delay_cycles += other.delay_cycles;
        self.retries += other.retries;
        self.recovery_cycles += other.recovery_cycles;
        self.dead_link_hits += other.dead_link_hits;
    }
}

/// The precise diagnosis recorded when detection gives up on an unrecoverable fault: which
/// directed link is dead, which message hit it, when, and after how many attempts. Surfaced by
/// the execution engine as `EngineError::UnrecoverableFault` together with the blocked task
/// set — the negative watchdog test asserts every field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultDiagnosis {
    /// Directed link slot that never delivered (see `Mesh::link_slots` in `tis-mem`).
    pub link: usize,
    /// Sending core/tile of the undeliverable message.
    pub from: usize,
    /// Destination core/tile of the undeliverable message.
    pub to: usize,
    /// Cycle at which the sender started the doomed transfer.
    pub cycle: Cycle,
    /// Attempts made before declaring the link dead (`max_retries + 1`).
    pub attempts: u32,
}

/// How a run that engaged the fault layer ended, from the report's point of view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DegradedOutcome {
    /// Every injected fault was recovered; the run is functionally identical to the fault-free
    /// one and only paid the recorded recovery latency.
    Recovered {
        /// Faults detected and recovered (drops retried + tracker losses resubmitted).
        faults: u64,
        /// Total cycles spent in detection/recovery.
        recovery_cycles: u64,
    },
    /// Detection exhausted its budget against a dead resource; the run was aborted with this
    /// diagnosis instead of hanging.
    Unrecoverable(FaultDiagnosis),
}

/// Fault state for the NoC message path, owned by the memory system (one per
/// `MemorySystem`). Drop/delay fates are drawn sequentially from a dedicated
/// `stream("link-fates")`; the dead-link set is sampled once from `stream("dead-links")` — so
/// the whole schedule replays from `(seed, config, link_slots)` alone.
#[derive(Debug, Clone)]
pub struct LinkFaults {
    cfg: FaultConfig,
    fates: SimRng,
    dead: Vec<bool>,
    stats: FaultStats,
    diagnosis: Option<FaultDiagnosis>,
}

fn draw(rng: &mut SimRng, ppm: u32) -> bool {
    // An integer threshold draw: ppm == 0 can never fire (below() is strictly < PPM), which is
    // what makes zero-rate configs exact; ppm == PPM always fires.
    rng.below(PPM) < ppm as u64
}

impl LinkFaults {
    /// Creates the link-fault state for a mesh with `link_slots` directed links.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid ([`FaultConfig::validate`]).
    pub fn new(cfg: FaultConfig, link_slots: usize) -> Self {
        cfg.validate();
        let mut dead = vec![false; link_slots];
        if cfg.dead_links as usize >= link_slots {
            dead.iter_mut().for_each(|d| *d = true);
        } else if cfg.dead_links > 0 {
            let mut picker = SimRng::new(cfg.seed).stream("dead-links", 0);
            let mut killed = 0;
            while killed < cfg.dead_links as usize {
                let slot = picker.below(link_slots as u64) as usize;
                if !dead[slot] {
                    dead[slot] = true;
                    killed += 1;
                }
            }
        }
        LinkFaults {
            cfg,
            fates: SimRng::new(cfg.seed).stream("link-fates", 0),
            dead,
            stats: FaultStats::default(),
            diagnosis: None,
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> FaultConfig {
        self.cfg
    }

    /// Whether the directed link `slot` is dead.
    pub fn link_is_dead(&self, slot: usize) -> bool {
        self.dead.get(slot).copied().unwrap_or(false)
    }

    /// Checks a message's route for dead links. On a hit, charges the full detection cost
    /// (every retry times out against the same link), records a [`FaultDiagnosis`] (first hit
    /// wins) and returns `Some(detection_cycles)`; the engine aborts the run with the
    /// diagnosis at its next poll, so the message's nominal state effects are moot.
    pub fn dead_route_check<I: IntoIterator<Item = usize>>(
        &mut self,
        route: I,
        from: usize,
        to: usize,
        now: Cycle,
    ) -> Option<Cycle> {
        let link = route.into_iter().find(|&l| self.link_is_dead(l))?;
        let penalty = self.cfg.exhaustion_cycles();
        self.stats.dead_link_hits += 1;
        self.stats.recovery_cycles += penalty;
        if self.diagnosis.is_none() {
            self.diagnosis = Some(FaultDiagnosis {
                link,
                from,
                to,
                cycle: now,
                attempts: self.cfg.max_retries + 1,
            });
        }
        Some(penalty)
    }

    /// Runs the drop/delay fate draw for one live message leg and returns the extra latency it
    /// costs. Drops are detected by timeout and retried with linear backoff; **the final
    /// attempt always delivers**, so the per-leg drop count is bounded by `max_retries` and
    /// eventual delivery is guaranteed — recoverable faults can slow a protocol leg but never
    /// change what it does.
    pub fn leg_penalty(&mut self) -> Cycle {
        let mut penalty = 0;
        for attempt in 0..self.cfg.max_retries as u64 {
            if !draw(&mut self.fates, self.cfg.drop_ppm) {
                break;
            }
            let wait = self.cfg.retry_timeout + attempt * self.cfg.retry_backoff;
            self.stats.drops += 1;
            self.stats.retries += 1;
            self.stats.recovery_cycles += wait;
            penalty += wait;
        }
        if draw(&mut self.fates, self.cfg.delay_ppm) {
            let d = 1 + self.fates.below(self.cfg.max_delay_cycles.max(1));
            self.stats.delays += 1;
            self.stats.delay_cycles += d;
            penalty += d;
        }
        penalty
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> FaultStats {
        self.stats
    }

    /// The first unrecoverable-fault diagnosis, if detection has given up on a dead link.
    pub fn diagnosis(&self) -> Option<FaultDiagnosis> {
        self.diagnosis
    }
}

/// Fault state for the Picos submission port, owned by each `Picos` device instance. Losses
/// are drawn from a dedicated `stream("tracker-loss")`, independent of the link streams.
#[derive(Debug, Clone)]
pub struct TrackerFaults {
    cfg: FaultConfig,
    losses: SimRng,
    lost: u64,
    resubmits: u64,
    recovery_cycles: u64,
}

impl TrackerFaults {
    /// Creates the tracker-fault state.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid ([`FaultConfig::validate`]).
    pub fn new(cfg: FaultConfig) -> Self {
        cfg.validate();
        TrackerFaults {
            cfg,
            losses: SimRng::new(cfg.seed).stream("tracker-loss", 0),
            lost: 0,
            resubmits: 0,
            recovery_cycles: 0,
        }
    }

    /// Draws the loss fate for one tracker submission: returns `(lost_attempts, penalty)`.
    /// Each lost attempt is detected by the submission timeout and resubmitted with backoff;
    /// the final attempt always commits, so a submission is delayed, never lost for good — the
    /// failed inserts leave no semantic trace in the tracker.
    pub fn submission_losses(&mut self) -> (u32, Cycle) {
        let mut lost = 0;
        let mut penalty = 0;
        for attempt in 0..self.cfg.max_retries as u64 {
            if !draw(&mut self.losses, self.cfg.tracker_loss_ppm) {
                break;
            }
            lost += 1;
            penalty += self.cfg.retry_timeout + attempt * self.cfg.retry_backoff;
        }
        self.lost += lost as u64;
        self.resubmits += lost as u64;
        self.recovery_cycles += penalty;
        (lost, penalty)
    }

    /// Submissions lost (before their eventual commit) so far.
    pub fn lost(&self) -> u64 {
        self.lost
    }

    /// Resubmissions issued so far (one per loss).
    pub fn resubmits(&self) -> u64 {
        self.resubmits
    }

    /// Total cycles spent detecting losses and resubmitting.
    pub fn recovery_cycles(&self) -> Cycle {
        self.recovery_cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_none_and_does_not_engage() {
        assert_eq!(FaultConfig::none(), FaultConfig::default());
        assert!(!FaultConfig::none().engages());
        assert_eq!(FaultConfig::none().key(), "none");
    }

    #[test]
    fn zero_rate_engages_but_never_fires() {
        let cfg = FaultConfig::zero_rate();
        assert!(cfg.engages());
        let mut lf = LinkFaults::new(cfg, 36);
        for _ in 0..10_000 {
            assert_eq!(lf.leg_penalty(), 0, "a zero-rate draw must never fire");
        }
        assert_eq!(lf.stats(), FaultStats::default());
        assert!(lf.dead_route_check(0..36, 0, 1, 0).is_none(), "no links are dead");
        let mut tf = TrackerFaults::new(cfg);
        for _ in 0..10_000 {
            assert_eq!(tf.submission_losses(), (0, 0));
        }
    }

    #[test]
    fn fault_schedules_replay_exactly() {
        let cfg = FaultConfig::recoverable();
        let run = |cfg| {
            let mut lf = LinkFaults::new(cfg, 64);
            let penalties: Vec<Cycle> = (0..4000).map(|_| lf.leg_penalty()).collect();
            (penalties, lf.stats())
        };
        let (a, sa) = run(cfg);
        let (b, sb) = run(cfg);
        assert_eq!(a, b, "identical (seed, config) must replay the identical schedule");
        assert_eq!(sa, sb);
        assert!(sa.drops > 0 && sa.delays > 0, "2%/5% rates must fire in 4000 draws");
        // A different seed produces a different schedule.
        let (c, _) = run(FaultConfig { seed: 1, ..cfg });
        assert_ne!(a, c);
    }

    #[test]
    fn final_attempt_always_delivers() {
        // drop_ppm == 100%: every attempt up to the budget drops, then the final delivery
        // happens anyway — the recovery penalty is exactly the exhaustion ramp minus the last
        // (delivering) attempt's timeout... i.e. max_retries timeouts with backoff.
        let cfg = FaultConfig {
            drop_ppm: PPM as u32,
            max_retries: 3,
            retry_timeout: 100,
            retry_backoff: 10,
            ..FaultConfig::zero_rate()
        };
        let mut lf = LinkFaults::new(cfg, 4);
        let p = lf.leg_penalty();
        assert_eq!(p, 100 + 110 + 120, "three drops, linear backoff, then delivery");
        assert_eq!(lf.stats().drops, 3);
        assert_eq!(lf.stats().retries, 3);
        assert!(lf.diagnosis().is_none(), "bounded drops are never unrecoverable");
    }

    #[test]
    fn dead_links_are_sampled_deterministically_and_diagnosed() {
        let cfg = FaultConfig { dead_links: 3, ..FaultConfig::zero_rate() };
        let a = LinkFaults::new(cfg, 36);
        let b = LinkFaults::new(cfg, 36);
        let dead_a: Vec<usize> = (0..36).filter(|&l| a.link_is_dead(l)).collect();
        let dead_b: Vec<usize> = (0..36).filter(|&l| b.link_is_dead(l)).collect();
        assert_eq!(dead_a, dead_b, "the dead set is a pure function of (seed, slots)");
        assert_eq!(dead_a.len(), 3);

        let mut lf = LinkFaults::new(cfg, 36);
        let dead = dead_a[0];
        let hit = lf.dead_route_check([dead], 2, 5, 1234).expect("route crosses a dead link");
        assert_eq!(hit, cfg.exhaustion_cycles());
        let d = lf.diagnosis().expect("a diagnosis must be recorded");
        assert_eq!((d.link, d.from, d.to, d.cycle, d.attempts), (dead, 2, 5, 1234, 4));
        // A later hit on another link does not overwrite the first diagnosis.
        lf.dead_route_check([dead_a[1]], 0, 1, 9999);
        assert_eq!(lf.diagnosis().unwrap().cycle, 1234);
        assert_eq!(lf.stats().dead_link_hits, 2);
    }

    #[test]
    fn dead_links_above_slot_count_kill_everything() {
        let lf = LinkFaults::new(
            FaultConfig { dead_links: 1000, ..FaultConfig::zero_rate() },
            16,
        );
        assert!((0..16).all(|l| lf.link_is_dead(l)));
    }

    #[test]
    fn tracker_losses_are_bounded_and_replayable() {
        let cfg = FaultConfig {
            tracker_loss_ppm: 500_000, // 50%: losses are common, budget exhaustion impossible
            max_retries: 2,
            retry_timeout: 40,
            retry_backoff: 8,
            ..FaultConfig::zero_rate()
        };
        let mut a = TrackerFaults::new(cfg);
        let mut b = TrackerFaults::new(cfg);
        for _ in 0..2000 {
            let (lost, penalty) = a.submission_losses();
            assert_eq!((lost, penalty), b.submission_losses());
            assert!(lost <= cfg.max_retries, "losses per submission are bounded");
        }
        assert!(a.lost() > 0);
        assert_eq!(a.lost(), a.resubmits(), "every loss is recovered by one resubmit");
        assert!(a.recovery_cycles() >= a.lost() * cfg.retry_timeout);
    }

    #[test]
    fn streams_are_independent() {
        // The dead-link sample must not perturb the fate stream: the same fates are drawn with
        // and without dead links configured.
        let base = FaultConfig::recoverable();
        let mut plain = LinkFaults::new(base, 36);
        let mut with_dead = LinkFaults::new(FaultConfig { dead_links: 4, ..base }, 36);
        let a: Vec<Cycle> = (0..500).map(|_| plain.leg_penalty()).collect();
        let b: Vec<Cycle> = (0..500).map(|_| with_dead.leg_penalty()).collect();
        assert_eq!(a, b, "fate draws live on their own stream");
    }

    #[test]
    fn keys_are_stable_and_distinct() {
        assert_eq!(FaultConfig::none().key(), "none");
        let r = FaultConfig::recoverable();
        assert_eq!(r.key(), "sc4a05000-drop20000-delay50000-dead0-loss10000-r3");
        assert_ne!(FaultConfig::zero_rate().key(), r.key());
    }

    #[test]
    fn exhaustion_cost_matches_the_ramp() {
        let cfg = FaultConfig { max_retries: 3, retry_timeout: 64, retry_backoff: 32, ..FaultConfig::none() };
        // 4 attempts × 64 timeout + (0+1+2+3) × 32 backoff.
        assert_eq!(cfg.exhaustion_cycles(), 4 * 64 + 6 * 32);
    }

    #[test]
    #[should_panic(expected = "drop_ppm above 100%")]
    fn over_unity_rates_are_rejected() {
        FaultConfig { drop_ppm: 1_000_001, ..FaultConfig::zero_rate() }.validate();
    }

    #[test]
    #[should_panic(expected = "detection timeout")]
    fn engaging_config_without_timeout_is_rejected() {
        LinkFaults::new(FaultConfig { retry_timeout: 0, ..FaultConfig::zero_rate() }, 4);
    }
}
