//! A minimal, dependency-free JSON writer for machine-readable benchmark output.
//!
//! The workspace vendors no serialisation crate (the build environment has no registry
//! access), and the benchmark output is a small, fixed shape — so a hand-rolled value tree
//! with a compliant renderer is all that is needed. The renderer escapes strings per RFC 8259,
//! emits non-finite numbers as `null` (JSON has no NaN/Infinity), and pretty-prints with
//! two-space indentation so the artifacts diff cleanly between CI runs.

/// A JSON value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (serialised without a decimal point).
    Int(i64),
    /// An unsigned integer (cycle counts exceed `i64` range in long simulations).
    UInt(u64),
    /// A floating-point number; non-finite values render as `null`.
    Num(f64),
    /// A string (escaped on render).
    Str(String),
    /// An ordered array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for an object from `(key, value)` pairs.
    pub fn obj<I: IntoIterator<Item = (&'static str, Json)>>(pairs: I) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Renders the value as pretty-printed JSON with two-space indentation.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out.push('\n');
        out
    }

    fn render_into(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => out.push_str(&i.to_string()),
            Json::UInt(u) => out.push_str(&u.to_string()),
            Json::Num(n) => {
                if n.is_finite() {
                    // `{:?}` keeps full round-trip precision and always marks the value as
                    // non-integer where relevant (e.g. "1.0"), which keeps column types stable
                    // for downstream tooling.
                    out.push_str(&format!("{n:?}"));
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => escape_into(s, out),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.render_into(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    escape_into(key, out);
                    out.push_str(": ");
                    value.render_into(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn push_indent(out: &mut String, levels: usize) {
    for _ in 0..levels {
        out.push_str("  ");
    }
}

/// Escapes a string per RFC 8259 and appends it, quotes included.
fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(Json::Null.render(), "null\n");
        assert_eq!(Json::Bool(true).render(), "true\n");
        assert_eq!(Json::Int(-3).render(), "-3\n");
        assert_eq!(Json::UInt(u64::MAX).render(), format!("{}\n", u64::MAX));
        assert_eq!(Json::Num(2.13).render(), "2.13\n");
        assert_eq!(Json::Num(f64::NAN).render(), "null\n", "JSON has no NaN");
        assert_eq!(Json::Num(f64::INFINITY).render(), "null\n");
    }

    #[test]
    fn strings_escape() {
        assert_eq!(Json::Str("a\"b\\c\nd".into()).render(), "\"a\\\"b\\\\c\\nd\"\n");
        assert_eq!(Json::Str("\u{1}".into()).render(), "\"\\u0001\"\n");
        assert_eq!(Json::Str("plain ascii-64x64".into()).render(), "\"plain ascii-64x64\"\n");
    }

    #[test]
    fn empty_containers_are_compact() {
        assert_eq!(Json::Arr(vec![]).render(), "[]\n");
        assert_eq!(Json::Obj(vec![]).render(), "{}\n");
    }

    #[test]
    fn nested_structure_pretty_prints() {
        let v = Json::obj([
            ("name", Json::Str("fig09".into())),
            ("speedups", Json::Arr(vec![Json::Num(1.5), Json::Num(4.25)])),
        ]);
        let expected = "{\n  \"name\": \"fig09\",\n  \"speedups\": [\n    1.5,\n    4.25\n  ]\n}\n";
        assert_eq!(v.render(), expected);
    }

    #[test]
    fn numbers_keep_roundtrip_precision() {
        let v = Json::Num(13.190000000000001);
        let rendered = v.render();
        let parsed: f64 = rendered.trim().parse().unwrap();
        assert_eq!(parsed, 13.190000000000001);
        assert_eq!(Json::Num(1.0).render(), "1.0\n", "floats keep a decimal point");
    }
}
