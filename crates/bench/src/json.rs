//! Re-export of the workspace JSON value tree.
//!
//! The hand-rolled JSON writer started life here (PR 2's `BENCH_*.json` artifacts) but is now
//! shared with the observability layer's `TRACE_*` / `METRICS_*` exports, so the implementation
//! lives in [`tis_sim::json`]. This module keeps every historical `tis_bench::json::…` path
//! working unchanged.

pub use tis_sim::json::{Json, JsonParseError};
