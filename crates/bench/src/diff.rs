//! Diffing of `BENCH_*.json` artifacts across runs (the ROADMAP's trajectory follow-up).
//!
//! [`diff`] walks two parsed JSON trees in parallel and collects every numeric leaf present in
//! both, keyed by its path (e.g. `workloads[3].platforms.phentos.speedup_over_serial`). The
//! result classifies each changed leaf by whether the change is an improvement, a regression or
//! direction-neutral, using the metric's name: `speedup`/`geomean`/`utilisation` metrics are
//! better when higher, `cycles`/`overhead` metrics are better when lower, and anything else is
//! reported but never gates. The `bench-diff` binary turns this into a human-readable report
//! and a CI exit code.

use crate::json::Json;

/// Which direction of change is an improvement for a metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Larger values are better (speedups, geomeans, utilisation).
    HigherIsBetter,
    /// Smaller values are better (cycle counts, overheads).
    LowerIsBetter,
    /// The metric carries no quality direction (task counts, configuration echoes).
    Neutral,
}

/// Infers the quality direction of a metric from its path. Workload-description echoes
/// (`serial_cycles`, `mean_task_cycles`) are neutral: they restate the input, so a change
/// there means the workload changed, not that the model regressed.
pub fn direction_of(path: &str) -> Direction {
    if path.contains("serial_cycles") || path.contains("mean_task_cycles") {
        Direction::Neutral
    } else if path.contains("speedup") || path.contains("geomean") || path.contains("utilisation") {
        Direction::HigherIsBetter
    } else if path.contains("cycles") || path.contains("overhead") {
        Direction::LowerIsBetter
    } else {
        Direction::Neutral
    }
}

/// One numeric leaf present in both artifacts.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffRow {
    /// Dotted path of the leaf, with catalog rows keyed by workload label where possible.
    pub path: String,
    /// Value in the baseline artifact.
    pub before: f64,
    /// Value in the candidate artifact.
    pub after: f64,
}

impl DiffRow {
    /// Relative change `(after - before) / |before|`; an absolute change when `before` is zero.
    pub fn relative_change(&self) -> f64 {
        if self.before == 0.0 {
            self.after - self.before
        } else {
            (self.after - self.before) / self.before.abs()
        }
    }

    /// Whether this row is a regression worse than `threshold` (a fraction, e.g. `0.05`),
    /// honouring the metric's direction.
    pub fn is_regression(&self, threshold: f64) -> bool {
        match direction_of(&self.path) {
            Direction::HigherIsBetter => self.relative_change() < -threshold,
            Direction::LowerIsBetter => self.relative_change() > threshold,
            Direction::Neutral => false,
        }
    }
}

/// Result of diffing two benchmark artifacts.
#[derive(Debug, Clone, Default)]
pub struct BenchDiff {
    /// Numeric leaves present in both artifacts, in the baseline's order.
    pub rows: Vec<DiffRow>,
    /// Paths present only in the baseline.
    pub only_before: Vec<String>,
    /// Paths present only in the candidate.
    pub only_after: Vec<String>,
}

impl BenchDiff {
    /// Rows whose value changed at all.
    pub fn changed(&self) -> impl Iterator<Item = &DiffRow> {
        self.rows.iter().filter(|r| r.before != r.after)
    }

    /// Rows that regress by more than `threshold` (a fraction).
    pub fn regressions(&self, threshold: f64) -> Vec<&DiffRow> {
        self.rows.iter().filter(|r| r.is_regression(threshold)).collect()
    }

    /// Renders the human-readable report: every changed row, schema differences, and a
    /// regression summary against `threshold`.
    pub fn render(&self, threshold: f64) -> String {
        let mut out = String::new();
        let changed: Vec<&DiffRow> = self.changed().collect();
        if changed.is_empty() {
            out.push_str("no numeric changes\n");
        } else {
            out.push_str(&format!(
                "{:>14} {:>14} {:>9}  metric\n",
                "before", "after", "delta"
            ));
            for r in &changed {
                let marker = if r.is_regression(threshold) {
                    " REGRESSION"
                } else {
                    ""
                };
                out.push_str(&format!(
                    "{:>14.4} {:>14.4} {:>+8.2}%  {}{}\n",
                    r.before,
                    r.after,
                    r.relative_change() * 100.0,
                    r.path,
                    marker
                ));
            }
        }
        for p in &self.only_before {
            out.push_str(&format!("only in baseline:  {p}\n"));
        }
        for p in &self.only_after {
            out.push_str(&format!("only in candidate: {p}\n"));
        }
        let regressions = self.regressions(threshold);
        out.push_str(&format!(
            "{} leaves compared, {} changed, {} regression(s) beyond {:.1}%\n",
            self.rows.len(),
            changed.len(),
            regressions.len(),
            threshold * 100.0
        ));
        out
    }
}

/// Key for an array element: prefer a human-stable identity over the positional index, so
/// reordered or extended artifacts still line up. Catalog rows are keyed by benchmark+input;
/// sweep cells additionally carry their axis coordinates (core count, memory model,
/// NoC-contention point, platform, tracker capacities), because one sweep emits many cells
/// sharing a workload label.
fn element_key(item: &Json, index: usize) -> String {
    let by = |k: &str| item.get(k).and_then(Json::as_str).map(str::to_string);
    let base = match (by("benchmark"), by("input")) {
        (Some(b), Some(i)) => Some(format!("{b} {i}")),
        _ => by("workload").or_else(|| by("label")).or_else(|| by("name")),
    };
    let Some(mut key) = base else {
        return index.to_string();
    };
    if let Some(cores) = item.get("cores").and_then(Json::as_f64) {
        key.push_str(&format!(" c{cores:.0}"));
    }
    if let Some(memory) = by("memory") {
        key.push_str(&format!(" {memory}"));
    }
    if let Some(noc) = by("noc") {
        key.push_str(&format!(" {noc}"));
    }
    if let Some(platform) = by("platform") {
        key.push_str(&format!(" {platform}"));
    }
    if let Some(tracker) = item.get("tracker") {
        if let (Some(tm), Some(at)) = (
            tracker.get("task_memory_entries").and_then(Json::as_f64),
            tracker.get("address_table_entries").and_then(Json::as_f64),
        ) {
            key.push_str(&format!(" tm{tm:.0}-at{at:.0}"));
        }
    }
    if let Some(fault) = by("fault") {
        key.push_str(&format!(" {fault}"));
    }
    key
}

/// Element keys for a whole array, disambiguated: the n-th occurrence of a repeated key gets a
/// `#n` suffix, so duplicate-labelled elements pair up in order instead of all matching the
/// first occurrence.
fn element_keys(items: &[Json]) -> Vec<String> {
    let mut seen: std::collections::HashMap<String, usize> = std::collections::HashMap::new();
    items
        .iter()
        .enumerate()
        .map(|(i, v)| {
            let key = element_key(v, i);
            let n = seen.entry(key.clone()).or_insert(0);
            let disambiguated = if *n == 0 { key } else { format!("{key}#{n}") };
            *n += 1;
            disambiguated
        })
        .collect()
}

fn walk(prefix: &str, before: &Json, after: &Json, out: &mut BenchDiff) {
    match (before, after) {
        (Json::Obj(b), Json::Obj(_)) => {
            for (key, bv) in b {
                let path = if prefix.is_empty() { key.clone() } else { format!("{prefix}.{key}") };
                match after.get(key) {
                    Some(av) => walk(&path, bv, av, out),
                    None => collect_paths(&path, bv, &mut out.only_before),
                }
            }
            if let Json::Obj(a) = after {
                for (key, av) in a {
                    if before.get(key).is_none() {
                        let path =
                            if prefix.is_empty() { key.clone() } else { format!("{prefix}.{key}") };
                        collect_paths(&path, av, &mut out.only_after);
                    }
                }
            }
        }
        (Json::Arr(b), Json::Arr(a)) => {
            let b_keys = element_keys(b);
            let a_keys = element_keys(a);
            for (bv, key) in b.iter().zip(&b_keys) {
                let path = format!("{prefix}[{key}]");
                match a_keys.iter().position(|k| k == key) {
                    Some(j) => walk(&path, bv, &a[j], out),
                    None => collect_paths(&path, bv, &mut out.only_before),
                }
            }
            for (av, key) in a.iter().zip(&a_keys) {
                if !b_keys.contains(key) {
                    collect_paths(&format!("{prefix}[{key}]"), av, &mut out.only_after);
                }
            }
        }
        _ => match (before.as_f64(), after.as_f64()) {
            (Some(bn), Some(an)) => {
                out.rows.push(DiffRow { path: prefix.to_string(), before: bn, after: an })
            }
            // Non-numeric leaves (labels, nulls) only matter when their kind disagrees.
            _ if std::mem::discriminant(before) != std::mem::discriminant(after) => {
                out.only_before.push(prefix.to_string());
                out.only_after.push(prefix.to_string());
            }
            _ => {}
        },
    }
}

fn collect_paths(prefix: &str, value: &Json, out: &mut Vec<String>) {
    match value {
        Json::Obj(pairs) => {
            for (k, v) in pairs {
                collect_paths(&format!("{prefix}.{k}"), v, out);
            }
        }
        Json::Arr(items) => {
            for (i, v) in items.iter().enumerate() {
                collect_paths(&format!("{prefix}[{}]", element_key(v, i)), v, out);
            }
        }
        _ => out.push(prefix.to_string()),
    }
}

/// Diffs two parsed benchmark artifacts.
pub fn diff(before: &Json, after: &Json) -> BenchDiff {
    let mut out = BenchDiff::default();
    walk("", before, after, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn artifact(speedup: f64, cycles: u64) -> Json {
        Json::obj([
            ("figure", Json::Str("fig09".into())),
            (
                "workloads",
                Json::Arr(vec![Json::obj([
                    ("benchmark", Json::Str("blackscholes".into())),
                    ("input", Json::Str("4K B64".into())),
                    (
                        "platforms",
                        Json::obj([(
                            "phentos",
                            Json::obj([
                                ("cycles", Json::UInt(cycles)),
                                ("speedup_over_serial", Json::Num(speedup)),
                            ]),
                        )]),
                    ),
                ])]),
            ),
            ("geomeans", Json::obj([("phentos_over_nanos_sw", Json::Num(speedup))])),
        ])
    }

    #[test]
    fn identical_artifacts_have_no_changes_or_regressions() {
        let d = diff(&artifact(4.0, 1000), &artifact(4.0, 1000));
        assert_eq!(d.rows.len(), 3);
        assert_eq!(d.changed().count(), 0);
        assert!(d.regressions(0.0).is_empty());
        assert!(d.render(0.05).contains("0 regression(s)"));
    }

    #[test]
    fn speedup_drop_and_cycle_rise_are_regressions() {
        let d = diff(&artifact(4.0, 1000), &artifact(3.0, 1200));
        let regs = d.regressions(0.05);
        assert_eq!(regs.len(), 3, "two speedup leaves down 25% and cycles up 20%: {regs:?}");
        assert!(d.regressions(0.30).is_empty(), "threshold above the change gates nothing");
        let rendered = d.render(0.05);
        assert!(rendered.contains("REGRESSION"));
        assert!(rendered.contains("workloads[blackscholes 4K B64].platforms.phentos.cycles"));
    }

    #[test]
    fn improvements_are_not_regressions() {
        let d = diff(&artifact(4.0, 1000), &artifact(5.0, 800));
        assert!(d.regressions(0.0).is_empty());
        assert_eq!(d.changed().count(), 3);
    }

    #[test]
    fn workload_rows_match_by_label_not_position() {
        let mut before = artifact(4.0, 1000);
        // Prepend an unrelated workload to the candidate: the original row must still pair up.
        let after = {
            let extra = Json::obj([
                ("benchmark", Json::Str("jacobi".into())),
                ("input", Json::Str("N128 B1".into())),
                ("platforms", Json::obj([("phentos", Json::obj([("cycles", Json::UInt(7))]))])),
            ]);
            let mut a = artifact(4.0, 1000);
            if let Json::Obj(pairs) = &mut a {
                for (k, v) in pairs.iter_mut() {
                    if k == "workloads" {
                        if let Json::Arr(items) = v {
                            items.insert(0, extra.clone());
                        }
                    }
                }
            }
            a
        };
        let d = diff(&before, &after);
        assert_eq!(d.changed().count(), 0, "matched rows are unchanged");
        assert_eq!(d.only_after.len(), 3, "every leaf of the new row is candidate-only");
        assert!(d.only_after.iter().all(|p| p.contains("jacobi N128 B1")));

        // And deleting a key reports baseline-only paths.
        if let Json::Obj(pairs) = &mut before {
            pairs.push(("extra_metric".into(), Json::Num(1.0)));
        }
        let d = diff(&before, &artifact(4.0, 1000));
        assert_eq!(d.only_before, vec!["extra_metric".to_string()]);
    }

    #[test]
    fn sweep_cells_sharing_a_workload_label_pair_by_axis_coordinates() {
        let cell = |cores: u64, platform: &str, cycles: u64| {
            Json::obj([
                ("workload", Json::Str("synth-er(d=0.02) x256 t12000".into())),
                ("cores", Json::UInt(cores)),
                ("platform", Json::Str(platform.to_string())),
                (
                    "tracker",
                    Json::obj([
                        ("task_memory_entries", Json::UInt(256)),
                        ("address_table_entries", Json::UInt(2048)),
                    ]),
                ),
                ("cycles", Json::UInt(cycles)),
            ])
        };
        let sweep = |c2: u64, c4: u64| {
            Json::obj([(
                "cells",
                Json::Arr(vec![cell(2, "phentos", c2), cell(4, "phentos", c4)]),
            )])
        };
        // Only the 4-core cell changes; the 2-core cell must not produce a spurious delta.
        let d = diff(&sweep(1_000, 2_000), &sweep(1_000, 2_500));
        let changed: Vec<&DiffRow> = d.changed().collect();
        assert_eq!(changed.len(), 1, "exactly the 4-core cell changed: {changed:?}");
        assert!(changed[0].path.contains("c4"), "path names the cell's coordinates: {}", changed[0].path);
        assert!(d.only_before.is_empty() && d.only_after.is_empty());

        // Truly identical duplicate keys still pair in order rather than all-to-first.
        let dup = |x: u64, y: u64| {
            Json::Arr(vec![
                Json::obj([("name", Json::Str("probe".into())), ("cycles", Json::UInt(x))]),
                Json::obj([("name", Json::Str("probe".into())), ("cycles", Json::UInt(y))]),
            ])
        };
        let d = diff(&dup(10, 20), &dup(10, 25));
        let changed: Vec<&DiffRow> = d.changed().collect();
        assert_eq!(changed.len(), 1);
        assert_eq!(changed[0].path, "[probe#1].cycles");
        assert_eq!((changed[0].before, changed[0].after), (20.0, 25.0));
    }

    #[test]
    fn cells_differing_only_in_the_noc_coordinate_pair_by_it() {
        // A contention sweep emits cells identical in every axis except the NoC parameter
        // point; the `noc` coordinate must keep their trajectories label-stable.
        let cell = |noc: &str, cycles: u64| {
            Json::obj([
                ("workload", Json::Str("synth-er(d=0.3) x192 t4000".into())),
                ("cores", Json::UInt(64)),
                ("memory", Json::Str("dir-mesh-c".into())),
                ("noc", Json::Str(noc.to_string())),
                ("platform", Json::Str("phentos".into())),
                ("cycles", Json::UInt(cycles)),
            ])
        };
        let sweep = |a: u64, b: u64| {
            Json::obj([(
                "cells",
                Json::Arr(vec![cell("bw8-buf4-flit16", a), cell("bw4-buf2-flit16", b)]),
            )])
        };
        let d = diff(&sweep(1_000, 2_000), &sweep(1_000, 2_500));
        let changed: Vec<&DiffRow> = d.changed().collect();
        assert_eq!(changed.len(), 1, "only the narrow-link cell changed: {changed:?}");
        assert!(
            changed[0].path.contains("bw4-buf2-flit16"),
            "path names the contention point: {}",
            changed[0].path
        );
        assert!(d.only_before.is_empty() && d.only_after.is_empty());
    }

    #[test]
    fn cells_differing_only_in_the_fault_schedule_pair_by_it() {
        // A fault-injection sweep emits a fault-free cell (no `fault` key at all) next to
        // engaging cells distinguished only by their fault schedule.
        let cell = |fault: Option<&str>, cycles: u64| {
            let mut pairs = vec![
                ("workload".to_string(), Json::Str("blackscholes 4K B64".into())),
                ("cores".to_string(), Json::UInt(8)),
                ("platform".to_string(), Json::Str("phentos".into())),
                ("cycles".to_string(), Json::UInt(cycles)),
            ];
            if let Some(f) = fault {
                pairs.push(("fault".to_string(), Json::Str(f.to_string())));
            }
            Json::Obj(pairs)
        };
        let sweep = |clean: u64, faulted: u64| {
            Json::obj([(
                "cells",
                Json::Arr(vec![
                    cell(None, clean),
                    cell(Some("s1-drop20000-delay50000-dead0-loss10000-r3"), faulted),
                ]),
            )])
        };
        let d = diff(&sweep(1_000, 2_000), &sweep(1_000, 2_500));
        let changed: Vec<&DiffRow> = d.changed().collect();
        assert_eq!(changed.len(), 1, "only the faulted cell changed: {changed:?}");
        assert!(
            changed[0].path.contains("drop20000"),
            "path names the fault schedule: {}",
            changed[0].path
        );
        assert!(d.only_before.is_empty() && d.only_after.is_empty());
    }

    #[test]
    fn direction_inference() {
        assert_eq!(direction_of("geomeans.phentos_over_nanos_sw"), Direction::HigherIsBetter);
        assert_eq!(direction_of("a.b.cycles"), Direction::LowerIsBetter);
        assert_eq!(direction_of("cells[x].lifetime_overhead"), Direction::LowerIsBetter);
        assert_eq!(direction_of("workloads[w].tasks"), Direction::Neutral);
        // Zero baselines fall back to absolute change and never divide by zero.
        let row = DiffRow { path: "x.cycles".into(), before: 0.0, after: 2.0 };
        assert_eq!(row.relative_change(), 2.0);
        assert!(row.is_regression(1.0));
    }
}
