//! Experiment harness shared by the figure/table bench targets, the integration tests and the
//! examples.
//!
//! The harness knows how to run any [`TaskProgram`] on any of the paper's four platforms
//! ([`Platform`]), how to measure the lifetime-overhead microbenchmarks of Figure 7, and how to
//! evaluate the 37-workload catalog of Figure 9. Each `benches/figNN_*.rs` target is a thin
//! `main` that calls into this crate and prints the same rows/series as the corresponding figure
//! or table of the paper, next to the paper's published values where they are scalar.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod diff;
pub mod json;

pub use json::{Json, JsonParseError};

use tis_core::{PhentosConfig, Phentos, TisConfig, TisFabric};
use tis_machine::{
    run_machine, run_machine_observed, EngineError, ExecutionReport, MachineConfig, NullFabric,
};
use tis_nanos::{AxiConfig, AxiFabric, Nanos, NanosTuning, NanosVariant};
use tis_sim::geomean;
use tis_taskmodel::{TaskProgram, TaskSource, TenantRunData, TenantSource};
use tis_workloads::{paper_catalog, task_chain, task_free, WorkloadInstance};

/// The four Task Scheduling platforms compared throughout the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Platform {
    /// The paper's fly-weight runtime on the tightly-integrated (RoCC) fabric.
    Phentos,
    /// Nanos with the `picos` plugin on the tightly-integrated (RoCC) fabric.
    NanosRv,
    /// Nanos with Picos behind an AXI/MMIO driver (the Picos++ baseline of Tan et al.).
    NanosAxi,
    /// Nanos with software dependence inference (no scheduling hardware).
    NanosSw,
}

impl Platform {
    /// All platforms in the order the paper's figures list them.
    pub const ALL: [Platform; 4] =
        [Platform::Phentos, Platform::NanosRv, Platform::NanosAxi, Platform::NanosSw];

    /// The three platforms of Figure 9 (Nanos-AXI only appears in the overhead/MTT figures).
    pub const FIGURE9: [Platform; 3] = [Platform::NanosSw, Platform::NanosRv, Platform::Phentos];

    /// Label used in the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            Platform::Phentos => "Phentos",
            Platform::NanosRv => "Nanos-RV",
            Platform::NanosAxi => "Nanos-AXI",
            Platform::NanosSw => "Nanos-SW",
        }
    }

    /// Stable lower-case key used in machine-readable output.
    pub fn key(self) -> &'static str {
        match self {
            Platform::Phentos => "phentos",
            Platform::NanosRv => "nanos-rv",
            Platform::NanosAxi => "nanos-axi",
            Platform::NanosSw => "nanos-sw",
        }
    }
}

/// Everything needed to run experiments: machine plus per-platform configuration.
#[derive(Debug, Clone)]
pub struct Harness {
    /// Machine configuration (core count, caches, memory, cost model).
    pub machine: MachineConfig,
    /// Tightly-integrated fabric configuration.
    pub tis: TisConfig,
    /// AXI fabric configuration.
    pub axi: AxiConfig,
    /// Phentos tuning.
    pub phentos: PhentosConfig,
    /// Nanos tuning.
    pub nanos: NanosTuning,
}

impl Harness {
    /// The paper's eight-core prototype.
    pub fn paper_prototype() -> Self {
        Harness {
            machine: MachineConfig::rocket_octacore(),
            tis: TisConfig::default(),
            axi: AxiConfig::default(),
            phentos: PhentosConfig::default(),
            nanos: NanosTuning::default(),
        }
    }

    /// The same system with a different core count.
    pub fn with_cores(cores: usize) -> Self {
        Harness { machine: MachineConfig::rocket_with_cores(cores), ..Self::paper_prototype() }
    }

    /// The same system with the given Picos tracker capacities applied to **both** Picos-backed
    /// fabrics (RoCC and AXI) — the tracker-capacity axis of the `tis-exp` sweeps. The software
    /// runtime (Nanos-SW) has no tracker and is unaffected.
    pub fn with_tracker(mut self, tracker: tis_picos::TrackerConfig) -> Self {
        self.tis.picos.tracker = tracker;
        self.axi.picos.tracker = tracker;
        self
    }

    /// The same system with the given coherence interconnect model — the memory-model axis of
    /// the `tis-exp` sweeps. The default [`Harness::paper_prototype`] keeps the snooping bus
    /// every figure reproduction is pinned to.
    pub fn with_memory_model(mut self, model: tis_machine::MemoryModel) -> Self {
        self.machine.memory_model = model;
        self
    }

    /// The same system with the given deterministic fault schedule — the fault axis of the
    /// `tis-exp` sweeps. Message faults apply to the machine's NoC (mesh models only); tracker
    /// losses apply to **both** Picos-backed fabrics, mirroring [`Harness::with_tracker`]. The
    /// default [`tis_machine::FaultConfig::none`] constructs no fault layer at all, keeping
    /// every fault-free result bit-identical to the pre-fault harness.
    pub fn with_faults(mut self, fault: tis_machine::FaultConfig) -> Self {
        self.machine.fault = fault;
        self.tis.picos.fault = fault;
        self.axi.picos.fault = fault;
        self
    }

    /// Number of cores in the configured machine.
    pub fn cores(&self) -> usize {
        self.machine.cores
    }

    /// Serial-execution baseline of a program on this machine, in cycles.
    pub fn serial_cycles(&self, program: &TaskProgram) -> u64 {
        program.serial_cycles(self.machine.dram_bytes_per_cycle, self.machine.costs.serial_call_overhead)
    }

    /// Runs `program` on the given platform.
    ///
    /// # Errors
    ///
    /// Propagates any [`EngineError`] (deadlock / cycle-cap) from the simulation.
    pub fn run(&self, platform: Platform, program: &TaskProgram) -> Result<ExecutionReport, EngineError> {
        self.run_inner(platform, program, None)
    }

    /// [`Harness::run`] with an observer attached (see
    /// [`tis_machine::run_machine_observed`]): task-lifecycle, memory and
    /// metrics events stream to `obs` while the simulation runs. Observation never spends
    /// simulated cycles, so the returned report is identical to [`Harness::run`]'s.
    ///
    /// # Errors
    ///
    /// Exactly as [`Harness::run`].
    pub fn run_observed(
        &self,
        platform: Platform,
        program: &TaskProgram,
        obs: &mut dyn tis_obs::Observer,
    ) -> Result<ExecutionReport, EngineError> {
        self.run_inner(platform, program, Some(obs))
    }

    /// Runs a streamed workload ([`TaskSource`]) on the given platform.
    ///
    /// The streaming counterpart of [`Harness::run`]: the runtime pulls ops on demand and
    /// frees each descriptor on retire, so a bounded-window source simulates millions of
    /// tasks in `O(window)` host memory. With `collect_records` off the runtime also skips
    /// accumulating per-task [`tis_taskmodel::ExecRecord`]s — the whole run is then
    /// `O(window)` resident, which is exactly what the streaming-scale gate measures (the
    /// report's `peak_resident_tasks` field carries the high-water mark).
    ///
    /// There is no up-front preflight pass here — a streamed program never exists in memory
    /// at once. Sources are expected to validate themselves as they generate (see
    /// `tis_analyze::WindowedPreflight`, which `tis_exp::StreamingSynth` runs inline).
    ///
    /// # Errors
    ///
    /// Propagates any [`EngineError`] (deadlock / cycle-cap) from the simulation.
    pub fn run_source(
        &self,
        platform: Platform,
        source: Box<dyn TaskSource>,
        collect_records: bool,
    ) -> Result<ExecutionReport, EngineError> {
        let cores = self.machine.cores;
        match platform {
            Platform::Phentos => {
                let mut runtime = Phentos::from_source(source, cores, self.phentos);
                runtime.set_collect_records(collect_records);
                let mut fabric = TisFabric::new(cores, self.tis);
                run_machine(&self.machine, &mut runtime, &mut fabric)
            }
            Platform::NanosRv => {
                let mut runtime = Nanos::from_source(source, cores, NanosVariant::PicosRocc, self.nanos);
                runtime.set_collect_records(collect_records);
                let mut fabric = TisFabric::new(cores, self.tis);
                run_machine(&self.machine, &mut runtime, &mut fabric)
            }
            Platform::NanosAxi => {
                let mut runtime = Nanos::from_source(source, cores, NanosVariant::PicosAxi, self.nanos);
                runtime.set_collect_records(collect_records);
                let mut fabric = AxiFabric::new(cores, self.axi);
                run_machine(&self.machine, &mut runtime, &mut fabric)
            }
            Platform::NanosSw => {
                let mut runtime = Nanos::from_source(source, cores, NanosVariant::Software, self.nanos);
                runtime.set_collect_records(collect_records);
                let mut fabric = NullFabric::new();
                run_machine(&self.machine, &mut runtime, &mut fabric)
            }
        }
    }

    /// Runs a multi-tenant co-scheduled workload ([`TenantSource`]) on the given platform,
    /// returning both the execution report (whose `tenants` field carries per-tenant
    /// makespan/turnaround metrics) and the run's [`TenantRunData`] — the tenant names plus
    /// the global-task-id → tenant assignment that per-tenant trace export
    /// ([`tis_obs::trace_json_tenants`]) and per-tenant critical-path decomposition
    /// ([`tis_obs::critical_path_per_tenant`]) consume.
    ///
    /// The runtime consumes the source, so the assignment is recovered after the run through
    /// the source's downcast hook. Pass an observer to capture spans/samples for the
    /// per-tenant artifacts; observation never changes the report.
    ///
    /// # Errors
    ///
    /// Propagates any [`EngineError`] (deadlock / cycle-cap) from the simulation.
    ///
    /// # Panics
    ///
    /// Panics if the runtime's source no longer downcasts to a [`TenantSource`] — that would
    /// be a harness bug, not a workload property.
    pub fn run_tenants(
        &self,
        platform: Platform,
        source: TenantSource,
        collect_records: bool,
        mut obs: Option<&mut dyn tis_obs::Observer>,
    ) -> Result<(ExecutionReport, TenantRunData), EngineError> {
        let cores = self.machine.cores;
        let boxed: Box<dyn TaskSource> = Box::new(source);
        let mut launch = |runtime: &mut dyn tis_machine::RuntimeSystem,
                          fabric: &mut dyn tis_machine::SchedulerFabric| {
            match obs.as_deref_mut() {
                Some(o) => run_machine_observed(&self.machine, runtime, fabric, o),
                None => run_machine(&self.machine, runtime, fabric),
            }
        };
        let take = |src: &mut dyn TaskSource| -> TenantRunData {
            src.as_any_mut()
                .and_then(|any| any.downcast_mut::<TenantSource>())
                .map(TenantSource::take_run_data)
                .expect("run_tenants runtime must hold a TenantSource")
        };
        match platform {
            Platform::Phentos => {
                let mut runtime = Phentos::from_source(boxed, cores, self.phentos);
                runtime.set_collect_records(collect_records);
                let mut fabric = TisFabric::new(cores, self.tis);
                let report = launch(&mut runtime, &mut fabric)?;
                Ok((report, take(runtime.source_mut())))
            }
            Platform::NanosRv => {
                let mut runtime = Nanos::from_source(boxed, cores, NanosVariant::PicosRocc, self.nanos);
                runtime.set_collect_records(collect_records);
                let mut fabric = TisFabric::new(cores, self.tis);
                let report = launch(&mut runtime, &mut fabric)?;
                Ok((report, take(runtime.source_mut())))
            }
            Platform::NanosAxi => {
                let mut runtime = Nanos::from_source(boxed, cores, NanosVariant::PicosAxi, self.nanos);
                runtime.set_collect_records(collect_records);
                let mut fabric = AxiFabric::new(cores, self.axi);
                let report = launch(&mut runtime, &mut fabric)?;
                Ok((report, take(runtime.source_mut())))
            }
            Platform::NanosSw => {
                let mut runtime = Nanos::from_source(boxed, cores, NanosVariant::Software, self.nanos);
                runtime.set_collect_records(collect_records);
                let mut fabric = NullFabric::new();
                let report = launch(&mut runtime, &mut fabric)?;
                Ok((report, take(runtime.source_mut())))
            }
        }
    }

    fn run_inner(
        &self,
        platform: Platform,
        program: &TaskProgram,
        obs: Option<&mut dyn tis_obs::Observer>,
    ) -> Result<ExecutionReport, EngineError> {
        // In debug builds every program entering the harness is preflighted: acyclic,
        // reference-clean, conflict-covered. Release benches skip the pass so pinned
        // figure timings are untouched; the generators' own chokepoints still cover them.
        #[cfg(debug_assertions)]
        if let Err(e) = tis_analyze::analyze_program(program) {
            panic!("program failed preflight before simulation: {e}");
        }
        let cores = self.machine.cores;
        let launch = |runtime: &mut dyn tis_machine::RuntimeSystem,
                      fabric: &mut dyn tis_machine::SchedulerFabric| {
            match obs {
                Some(o) => run_machine_observed(&self.machine, runtime, fabric, o),
                None => run_machine(&self.machine, runtime, fabric),
            }
        };
        match platform {
            Platform::Phentos => {
                let mut runtime = Phentos::new(program, cores, self.phentos);
                let mut fabric = TisFabric::new(cores, self.tis);
                launch(&mut runtime, &mut fabric)
            }
            Platform::NanosRv => {
                let mut runtime = Nanos::new(program, cores, NanosVariant::PicosRocc, self.nanos);
                let mut fabric = TisFabric::new(cores, self.tis);
                launch(&mut runtime, &mut fabric)
            }
            Platform::NanosAxi => {
                let mut runtime = Nanos::new(program, cores, NanosVariant::PicosAxi, self.nanos);
                let mut fabric = AxiFabric::new(cores, self.axi);
                launch(&mut runtime, &mut fabric)
            }
            Platform::NanosSw => {
                let mut runtime = Nanos::new(program, cores, NanosVariant::Software, self.nanos);
                let mut fabric = NullFabric::new();
                launch(&mut runtime, &mut fabric)
            }
        }
    }
}

impl Default for Harness {
    fn default() -> Self {
        Harness::paper_prototype()
    }
}

/// The paper's Figure 7 reference values (lifetime overhead in Rocket-equivalent cycles), used
/// by the harness output and the experiment-shape tests: rows are platforms, columns are
/// Task-Free(1), Task-Free(15), Task-Chain(1), Task-Chain(15).
pub fn figure7_paper_values(platform: Platform) -> [f64; 4] {
    match platform {
        Platform::Phentos => [185.0, 320.0, 329.0, 423.0],
        Platform::NanosRv => [12_348.0, 13_143.0, 12_835.0, 12_393.0],
        Platform::NanosAxi => [13_426.0, 17_042.0, 18_459.0, 18_668.0],
        Platform::NanosSw => [25_208.0, 99_008.0, 35_867.0, 58_214.0],
    }
}

/// The four lifetime-overhead workloads of Figure 7, in column order.
///
/// Labels are clean names with no baked-in padding; consumers that print tables align them
/// with width-parameterised format specifiers (`{:<width$}` / `{:>width$}`) at the print site.
pub fn figure7_workloads(tasks_per_run: usize) -> Vec<(&'static str, TaskProgram)> {
    vec![
        ("Task-Free 1 dep", task_free(tasks_per_run, 1)),
        ("Task-Free 15 deps", task_free(tasks_per_run, 15)),
        ("Task-Chain 1 dep", task_chain(tasks_per_run, 1)),
        ("Task-Chain 15 deps", task_chain(tasks_per_run, 15)),
    ]
}

/// Measures the lifetime task-scheduling overhead (cycles per task) of a platform on one of the
/// Figure 7 microbenchmarks. As in the paper, the measurement isolates scheduling cost: payloads
/// are empty and a single core plays both producer and consumer, so the makespan divided by the
/// task count is the per-task lifetime overhead.
pub fn measure_lifetime_overhead(harness: &Harness, platform: Platform, program: &TaskProgram) -> f64 {
    let single = Harness { machine: MachineConfig { cores: 1, ..harness.machine }, ..harness.clone() };
    let report = single.run(platform, program).expect("overhead microbenchmark must complete");
    report.mean_cycles_per_task()
}

/// Measures the **maximum task throughput** (MTT, Section VI-B2) of a platform in tasks per
/// cycle, at the harness's configured core count: an empty-payload Task-Free run floods the
/// scheduling system with `tasks` independent single-dependence tasks, so the retirement rate
/// is the system-wide scheduling ceiling. `min(cores, t × MTT)` (see
/// `tis_machine::mtt_speedup_bound_from_throughput`) then bounds the speedup of any workload
/// with mean task size `t` on this machine — the core-count-honest form of the Figure 6
/// bounds, which matters beyond 8 cores for the runtimes whose per-task overhead parallelises
/// across workers.
pub fn measure_task_throughput(harness: &Harness, platform: Platform, tasks: usize) -> f64 {
    let program = task_free(tasks, 1);
    let report = harness.run(platform, &program).expect("throughput microbenchmark must complete");
    if report.total_cycles == 0 {
        return 0.0;
    }
    report.tasks_retired as f64 / report.total_cycles as f64
}

/// Result of evaluating one catalog workload on one platform.
#[derive(Debug, Clone)]
pub struct PlatformResult {
    /// Which platform ran.
    pub platform: Platform,
    /// Makespan in cycles.
    pub cycles: u64,
    /// Speedup over the serial baseline.
    pub speedup_vs_serial: f64,
}

/// Result of evaluating one catalog workload across platforms.
#[derive(Debug, Clone)]
pub struct WorkloadResult {
    /// Benchmark name.
    pub benchmark: &'static str,
    /// Paper input label.
    pub input: String,
    /// Mean task size in cycles (the granularity axis of Figures 8 and 10).
    pub mean_task_cycles: f64,
    /// Serial baseline in cycles.
    pub serial_cycles: u64,
    /// One entry per evaluated platform.
    pub platforms: Vec<PlatformResult>,
}

impl WorkloadResult {
    /// Speedup of one platform over the serial baseline, if it was evaluated.
    pub fn speedup(&self, platform: Platform) -> Option<f64> {
        self.platforms.iter().find(|p| p.platform == platform).map(|p| p.speedup_vs_serial)
    }

    /// Ratio of two platforms' performance (first over second), if both were evaluated.
    pub fn ratio(&self, num: Platform, den: Platform) -> Option<f64> {
        match (self.speedup(num), self.speedup(den)) {
            (Some(a), Some(b)) if b > 0.0 => Some(a / b),
            _ => None,
        }
    }
}

/// Evaluates one workload on the given platforms, validating every schedule against the
/// reference dependence graph.
pub fn evaluate_workload(
    harness: &Harness,
    workload: &WorkloadInstance,
    platforms: &[Platform],
) -> WorkloadResult {
    // Catalog entries were preflighted at generation; hand-built instances get the same
    // soundness proof here before any platform simulates them.
    if let Err(e) = tis_analyze::analyze_program(&workload.program) {
        panic!("{} failed preflight: {e}", workload.label());
    }
    let serial = harness.serial_cycles(&workload.program);
    let mut results = Vec::new();
    for &p in platforms {
        let report = harness
            .run(p, &workload.program)
            .unwrap_or_else(|e| panic!("{} on {}: {e}", workload.label(), p.label()));
        report
            .validate_against(&workload.program)
            .unwrap_or_else(|e| panic!("{} on {} produced an invalid schedule: {e}", workload.label(), p.label()));
        results.push(PlatformResult {
            platform: p,
            cycles: report.total_cycles,
            speedup_vs_serial: report.speedup_over(serial),
        });
    }
    WorkloadResult {
        benchmark: workload.benchmark,
        input: workload.input.clone(),
        mean_task_cycles: workload.program.stats(harness.machine.dram_bytes_per_cycle).mean_task_cycles,
        serial_cycles: serial,
        platforms: results,
    }
}

/// Evaluates the whole 37-workload catalog of Figure 9 on the given platforms.
pub fn evaluate_catalog(harness: &Harness, platforms: &[Platform]) -> Vec<WorkloadResult> {
    paper_catalog()
        .iter()
        .map(|w| evaluate_workload(harness, w, platforms))
        .collect()
}

/// Geometric mean of the ratio `num / den` over a set of workload results (the paper's headline
/// 2.13× / 13.19× / 6.20× numbers are computed this way over all 37 workloads).
pub fn geomean_ratio(results: &[WorkloadResult], num: Platform, den: Platform) -> Option<f64> {
    geomean(results.iter().filter_map(|r| r.ratio(num, den)))
}

/// Machine-readable snapshot of a Figure 9 evaluation: per-workload makespans and speedups
/// plus the paper's three headline geometric means, as a JSON value tree (ROADMAP: persist the
/// `BENCH_*.json` trajectory instead of losing every run to the terminal).
pub fn fig09_json(results: &[WorkloadResult]) -> Json {
    let opt_num = |v: Option<f64>| v.map(Json::Num).unwrap_or(Json::Null);
    let workloads = results
        .iter()
        .map(|r| {
            let platforms = r
                .platforms
                .iter()
                .map(|p| {
                    (
                        p.platform.key().to_string(),
                        Json::obj([
                            ("cycles", Json::UInt(p.cycles)),
                            ("speedup_over_serial", Json::Num(p.speedup_vs_serial)),
                        ]),
                    )
                })
                .collect();
            Json::obj([
                ("benchmark", Json::Str(r.benchmark.to_string())),
                ("input", Json::Str(r.input.clone())),
                ("mean_task_cycles", Json::Num(r.mean_task_cycles)),
                ("serial_cycles", Json::UInt(r.serial_cycles)),
                ("platforms", Json::Obj(platforms)),
            ])
        })
        .collect();
    Json::obj([
        ("figure", Json::Str("fig09".to_string())),
        ("workloads", Json::Arr(workloads)),
        (
            "geomeans",
            Json::obj([
                (
                    "nanos_rv_over_nanos_sw",
                    opt_num(geomean_ratio(results, Platform::NanosRv, Platform::NanosSw)),
                ),
                (
                    "phentos_over_nanos_sw",
                    opt_num(geomean_ratio(results, Platform::Phentos, Platform::NanosSw)),
                ),
                (
                    "phentos_over_nanos_rv",
                    opt_num(geomean_ratio(results, Platform::Phentos, Platform::NanosRv)),
                ),
            ]),
        ),
    ])
}

/// Writes `BENCH_fig09.json` into the directory named by the `TIS_BENCH_JSON` environment
/// variable, creating the directory if needed (an empty value means the current directory).
/// Returns `Ok(None)` without touching the filesystem when the variable is unset, so plain
/// bench runs stay side-effect free.
///
/// # Errors
///
/// Propagates any I/O error from creating the directory or writing the file.
pub fn write_fig09_json_if_requested(
    results: &[WorkloadResult],
) -> std::io::Result<Option<std::path::PathBuf>> {
    let Some(dir) = std::env::var_os("TIS_BENCH_JSON") else {
        return Ok(None);
    };
    let dir = if dir.is_empty() { std::path::PathBuf::from(".") } else { dir.into() };
    std::fs::create_dir_all(&dir)?;
    let path = dir.join("BENCH_fig09.json");
    std::fs::write(&path, fig09_json(results).render())?;
    Ok(Some(path))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tis_workloads::blackscholes::blackscholes;

    #[test]
    fn harness_runs_every_platform_on_a_small_workload() {
        let harness = Harness::with_cores(2);
        let w = WorkloadInstance {
            benchmark: "blackscholes",
            input: "tiny".into(),
            program: blackscholes(256, 32),
        };
        let result = evaluate_workload(&harness, &w, &Platform::ALL);
        assert_eq!(result.platforms.len(), 4);
        for p in Platform::ALL {
            assert!(result.speedup(p).unwrap() > 0.0, "{} produced no speedup value", p.label());
        }
        // The tightly-integrated runtimes must not lose to the software baseline here.
        assert!(result.ratio(Platform::Phentos, Platform::NanosSw).unwrap() > 1.0);
    }

    #[test]
    fn lifetime_overhead_ordering_matches_figure_7() {
        let harness = Harness::paper_prototype();
        let program = task_chain(60, 1);
        let phentos = measure_lifetime_overhead(&harness, Platform::Phentos, &program);
        let rv = measure_lifetime_overhead(&harness, Platform::NanosRv, &program);
        let axi = measure_lifetime_overhead(&harness, Platform::NanosAxi, &program);
        let sw = measure_lifetime_overhead(&harness, Platform::NanosSw, &program);
        assert!(phentos < rv && rv < axi && axi < sw, "ordering: {phentos:.0} {rv:.0} {axi:.0} {sw:.0}");
        assert!(phentos < 1_500.0, "Phentos overhead must be hundreds of cycles, got {phentos:.0}");
        assert!(sw > 15_000.0, "Nanos-SW overhead must be tens of thousands of cycles, got {sw:.0}");
    }

    #[test]
    fn figure7_reference_values_are_the_paper_numbers() {
        assert_eq!(figure7_paper_values(Platform::Phentos)[0], 185.0);
        assert_eq!(figure7_paper_values(Platform::NanosSw)[1], 99_008.0);
        assert_eq!(figure7_workloads(10).len(), 4);
    }

    #[test]
    fn figure7_labels_are_clean() {
        for (label, _) in figure7_workloads(5) {
            assert_eq!(label, label.trim(), "label {label:?} carries baked-in padding");
            assert!(!label.contains("  "), "label {label:?} carries internal padding");
        }
    }

    #[test]
    fn fig09_json_shape_and_content() {
        let results = vec![WorkloadResult {
            benchmark: "blackscholes",
            input: "64x\"quoted\"".into(),
            mean_task_cycles: 512.5,
            serial_cycles: 1_000_000,
            platforms: vec![
                PlatformResult { platform: Platform::NanosSw, cycles: 500_000, speedup_vs_serial: 2.0 },
                PlatformResult { platform: Platform::Phentos, cycles: 125_000, speedup_vs_serial: 8.0 },
            ],
        }];
        let rendered = fig09_json(&results).render();
        assert!(rendered.contains("\"figure\": \"fig09\""));
        assert!(rendered.contains("\"benchmark\": \"blackscholes\""));
        assert!(rendered.contains("\"64x\\\"quoted\\\"\""), "inputs are escaped");
        assert!(rendered.contains("\"nanos-sw\"") && rendered.contains("\"phentos\""));
        assert!(rendered.contains("\"serial_cycles\": 1000000"));
        assert!(
            rendered.contains("\"phentos_over_nanos_sw\": 4.0"),
            "geomean of a single ratio is the ratio:\n{rendered}"
        );
        assert!(
            rendered.contains("\"phentos_over_nanos_rv\": null"),
            "platforms that were not evaluated produce null geomeans"
        );
    }

    #[test]
    fn geomean_ratio_over_two_workloads() {
        let harness = Harness::with_cores(2);
        let results: Vec<WorkloadResult> = [blackscholes(256, 16), blackscholes(256, 64)]
            .into_iter()
            .enumerate()
            .map(|(i, program)| {
                evaluate_workload(
                    &harness,
                    &WorkloadInstance { benchmark: "blackscholes", input: format!("t{i}"), program },
                    &[Platform::Phentos, Platform::NanosSw],
                )
            })
            .collect();
        let g = geomean_ratio(&results, Platform::Phentos, Platform::NanosSw).unwrap();
        assert!(g > 1.0, "Phentos beats Nanos-SW in geomean, got {g:.2}");
    }
}
