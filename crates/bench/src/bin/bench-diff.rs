//! `bench-diff` — compare two `BENCH_*.json` artifacts and gate on regressions.
//!
//! ```text
//! bench-diff BASELINE.json CANDIDATE.json [--threshold FRACTION]
//! ```
//!
//! Prints every changed metric with its relative delta (rows whose identity can be recovered —
//! catalog workloads, sweep cells — are matched by label, not position, so reordered or grown
//! artifacts still line up). Exits with:
//!
//! * `0` — no metric regressed beyond the threshold (default 5%);
//! * `1` — at least one speedup/geomean fell or cycle/overhead count rose beyond the threshold;
//! * `2` — usage or I/O error.
//!
//! CI runs this as a non-blocking trajectory report against the checked-in baseline; locally it
//! is the quickest way to see what a change did to the figures:
//!
//! ```text
//! TIS_BENCH_JSON=/tmp/now cargo bench -p tis-bench --bench fig09_benchmarks
//! cargo run -p tis-bench --bin bench-diff -- bench-baselines/BENCH_fig09.json /tmp/now/BENCH_fig09.json
//! ```

use std::process::ExitCode;

use tis_bench::diff::diff;
use tis_bench::Json;

fn usage() -> ExitCode {
    eprintln!("usage: bench-diff BASELINE.json CANDIDATE.json [--threshold FRACTION]");
    ExitCode::from(2)
}

fn load(path: &str) -> Result<Json, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    Json::parse(&text).map_err(|e| format!("{path}: {e}"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths = Vec::new();
    let mut threshold = 0.05f64;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if arg == "--threshold" {
            let Some(v) = it.next().and_then(|v| v.parse::<f64>().ok()) else {
                return usage();
            };
            if !(v >= 0.0 && v.is_finite()) {
                return usage();
            }
            threshold = v;
        } else if arg.starts_with('-') {
            return usage();
        } else {
            paths.push(arg.clone());
        }
    }
    if paths.len() != 2 {
        return usage();
    }

    let (before, after) = match (load(&paths[0]), load(&paths[1])) {
        (Ok(b), Ok(a)) => (b, a),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("bench-diff: {e}");
            return ExitCode::from(2);
        }
    };

    let d = diff(&before, &after);
    print!("{}", d.render(threshold));
    if d.regressions(threshold).is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
