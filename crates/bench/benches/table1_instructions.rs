//! Table I — the supported custom task-scheduling instructions, printed from the implemented
//! instruction set (encodings included as a bonus).
//!
//! Run with `cargo bench -p tis-bench --bench table1_instructions`.

use tis_core::rocc::{RoccInstruction, TaskSchedOp};

fn main() {
    println!("Table I: supported custom Task Scheduling instructions");
    println!(
        "{:<22} {:<10} {:<8} {:<11} {:<9} description",
        "name", "mnemonic", "funct7", "operands", "blocking"
    );
    println!("{}", "-".repeat(110));
    for op in TaskSchedOp::ALL {
        let mut operands = Vec::new();
        if op.uses_rs1() {
            operands.push("rs1");
        }
        if op.uses_rs2() {
            operands.push("rs2");
        }
        if op.uses_rd() {
            operands.push("rd");
        }
        let encoded = RoccInstruction::for_op(op, 10, 11, 12).encode();
        println!(
            "{:<22} {:<10} 0x{:02x}     {:<11} {:<9} {}",
            format!("{op:?}"),
            op.mnemonic(),
            op.funct7(),
            operands.join(","),
            if op.is_non_blocking() { "no" } else { "yes" },
            op.description()
        );
        println!("{:<22} {:<10} word: 0x{encoded:08x}", "", "");
    }
    println!();
    println!("Only Retire Task is blocking, exactly as in the paper (Section IV-B).");
}
