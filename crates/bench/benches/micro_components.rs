//! Criterion microbenchmarks of the core data paths: the Picos dependence tracker, the packet
//! codec, the RoCC instruction codec and the MESI memory system.
//!
//! These measure the *simulator's* throughput (host-side), which is what bounds how large an
//! experiment the harness can run; the simulated latencies are covered by the figure benches.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tis_core::rocc::{RoccInstruction, TaskSchedOp};
use tis_mem::{AccessKind, CacheConfig, MemLatencies, MemorySystem};
use tis_picos::{decode_descriptor, encode_descriptor, DependenceTracker, SubmittedTask, TrackerConfig};
use tis_taskmodel::Dependence;

fn bench_tracker(c: &mut Criterion) {
    c.bench_function("picos_tracker_insert_retire_chain", |b| {
        b.iter(|| {
            let mut t = DependenceTracker::new(TrackerConfig::default());
            let mut prev = None;
            for i in 0..200u64 {
                let (id, _) =
                    t.insert(&SubmittedTask::new(i, vec![Dependence::read_write(0x1000)])).unwrap();
                if let Some(p) = prev {
                    t.retire(p).unwrap();
                }
                prev = Some(id);
            }
            black_box(t.in_flight())
        })
    });
}

fn bench_packet_codec(c: &mut Criterion) {
    let task = SubmittedTask::new(
        0x1234_5678_9ABC_DEF0,
        (0..15u64).map(|i| Dependence::read_write(0x8000_0000 + i * 64)).collect(),
    );
    c.bench_function("picos_descriptor_roundtrip_15deps", |b| {
        b.iter(|| {
            let packets = encode_descriptor(black_box(&task));
            black_box(decode_descriptor(&packets).unwrap())
        })
    });
}

fn bench_rocc_codec(c: &mut Criterion) {
    c.bench_function("rocc_encode_decode_all_ops", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for op in TaskSchedOp::ALL {
                let w = RoccInstruction::for_op(op, 5, 6, 7).encode();
                acc ^= RoccInstruction::decode(w).encode();
            }
            black_box(acc)
        })
    });
}

fn bench_mesi(c: &mut Criterion) {
    c.bench_function("mesi_ping_pong_1000_accesses", |b| {
        b.iter(|| {
            let mut m = MemorySystem::new(4, CacheConfig::rocket_l1d(), MemLatencies::default());
            let mut total = 0u64;
            for i in 0..1000u64 {
                let core = (i % 4) as usize;
                total += m.access(core, 0x9000, AccessKind::Atomic, 8, i * 10).latency;
            }
            black_box(total)
        })
    });
}

criterion_group!(benches, bench_tracker, bench_packet_codec, bench_rocc_codec, bench_mesi);
criterion_main!(benches);
