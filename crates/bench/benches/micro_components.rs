//! Criterion microbenchmarks of the core data paths: the Picos dependence tracker, the packet
//! codec, the RoCC instruction codec and the MESI memory system — plus a **tracker regression
//! guard** that measures the current tracker against a faithful copy of the seed-era
//! implementation, so the hot-path speedup is measured on every run, not asserted once in a
//! commit message.
//!
//! These measure the *simulator's* throughput (host-side), which is what bounds how large an
//! experiment the harness can run; the simulated latencies are covered by the figure benches.
//! A second guard reports `tasks_per_host_second` through the full streaming engine (a
//! bounded-window [`TaskSource`] chain on Phentos with records off), so the end-to-end cost of
//! simulating one task is a number every CI run prints.
//! The tracker chains drive both implementations identically and in steady state (persistent
//! tracker, reused descriptor and wake buffers) — the same shape the Picos device model uses —
//! so the ratio isolates the implementation difference.
//!
//! Set `TIS_BENCH_STRICT=1` to turn a guard shortfall into a non-zero exit.

use criterion::{criterion_group, Criterion};
use std::hint::black_box;
use std::time::Instant;
use tis_bench::{Harness, Platform};
use tis_core::rocc::{RoccInstruction, TaskSchedOp};
use tis_mem::{AccessKind, CacheConfig, MemLatencies, MemorySystem};
use tis_picos::{decode_descriptor, encode_descriptor, DependenceTracker, PicosId, SubmittedTask, TrackerConfig};
use tis_taskmodel::{
    Dependence, Payload, ProgramOp, SourcePoll, TaskId, TaskSource, TaskSpec,
};

/// Tasks per measured chain (one insert + one retire each).
const CHAIN: u64 = 200;

/// Drives one 200-task dependence chain through the current tracker: every task `inout`s the
/// same address, so each insert matches against the previous task and each retire wakes the
/// next — the worst-case lock-step pattern of the Figure 7 Task-Chain microbenchmark.
fn drive_chain(t: &mut DependenceTracker, task: &mut SubmittedTask, woken: &mut Vec<PicosId>) -> usize {
    let mut prev = None;
    for i in 0..CHAIN {
        task.sw_id = i;
        let (id, _) = t.insert(task).unwrap();
        if let Some(p) = prev {
            t.retire_into(p, woken).unwrap();
        }
        prev = Some(id);
    }
    if let Some(p) = prev {
        t.retire_into(p, woken).unwrap();
    }
    t.in_flight()
}

/// The seed-era tracker, reproduced verbatim in miniature: `std::collections::HashMap` with the
/// default (SipHash) hasher, `Vec` storage for every list, linear `contains` scans for
/// predecessor de-duplication, per-insert allocation of the working sets, and an allocating
/// `retire`. This is what `picos_tracker_insert_retire_chain` measured before the hot-path
/// rework; keeping it here makes the speedup a number this bench reports, not a claim.
mod seed {
    use std::collections::HashMap;
    use tis_picos::{PicosId, SubmittedTask};

    #[derive(Clone)]
    struct TaskEntry {
        sw_id: u64,
        serial: u64,
        unresolved: usize,
        successors: Vec<PicosId>,
        deps: Vec<(u64, tis_taskmodel::Direction)>,
    }

    #[derive(Clone, Default)]
    struct AddrEntry {
        last_writer: Option<(PicosId, u64)>,
        readers: Vec<(PicosId, u64)>,
    }

    pub struct Tracker {
        entries: Vec<Option<TaskEntry>>,
        free_list: Vec<u32>,
        addr_table: HashMap<u64, AddrEntry>,
        next_serial: u64,
        in_flight: usize,
    }

    impl Tracker {
        pub fn new(task_memory_entries: usize) -> Self {
            Tracker {
                entries: vec![None; task_memory_entries],
                free_list: (0..task_memory_entries as u32).rev().collect(),
                addr_table: HashMap::new(),
                next_serial: 0,
                in_flight: 0,
            }
        }

        pub fn in_flight(&self) -> usize {
            self.in_flight
        }

        fn prune(entries: &[Option<TaskEntry>], entry: &mut AddrEntry) {
            let alive = |id: PicosId, serial: u64| {
                entries
                    .get(id.0 as usize)
                    .and_then(|e| e.as_ref())
                    .map(|e| e.serial == serial)
                    .unwrap_or(false)
            };
            if let Some((id, serial)) = entry.last_writer {
                if !alive(id, serial) {
                    entry.last_writer = None;
                }
            }
            entry.readers.retain(|&(id, serial)| alive(id, serial));
        }

        pub fn insert(&mut self, task: &SubmittedTask) -> (PicosId, bool) {
            let mut seen = Vec::new();
            for d in &task.deps {
                if !self.addr_table.contains_key(&d.addr) && !seen.contains(&d.addr) {
                    seen.push(d.addr);
                }
            }
            let slot = self.free_list.pop().expect("seed tracker driven within capacity");
            let id = PicosId(slot);
            let serial = self.next_serial;
            self.next_serial += 1;
            let mut unresolved_from: Vec<PicosId> = Vec::new();
            for d in &task.deps {
                let entries = &self.entries;
                let entry = self.addr_table.entry(d.addr).or_default();
                Self::prune(entries, entry);
                if d.dir.reads() {
                    if let Some((w, wserial)) = entry.last_writer {
                        if entries
                            .get(w.0 as usize)
                            .and_then(|e| e.as_ref())
                            .map(|e| e.serial == wserial)
                            .unwrap_or(false)
                            && !unresolved_from.contains(&w)
                        {
                            unresolved_from.push(w);
                        }
                    }
                }
                if d.dir.writes() {
                    if let Some((w, _)) = entry.last_writer {
                        if !unresolved_from.contains(&w) {
                            unresolved_from.push(w);
                        }
                    }
                    for &(r, _) in &entry.readers {
                        if r != id && !unresolved_from.contains(&r) {
                            unresolved_from.push(r);
                        }
                    }
                }
                if d.dir.writes() {
                    entry.last_writer = Some((id, serial));
                    entry.readers.clear();
                    if d.dir.reads() {
                        entry.readers.push((id, serial));
                    }
                } else {
                    entry.readers.push((id, serial));
                }
            }
            let unresolved = unresolved_from.len();
            for pred in &unresolved_from {
                self.entries[pred.0 as usize]
                    .as_mut()
                    .expect("predecessor in flight")
                    .successors
                    .push(id);
            }
            self.entries[slot as usize] = Some(TaskEntry {
                sw_id: task.sw_id,
                serial,
                unresolved,
                successors: Vec::new(),
                deps: task.deps.iter().map(|d| (d.addr, d.dir)).collect(),
            });
            self.in_flight += 1;
            (id, unresolved == 0)
        }

        pub fn retire(&mut self, id: PicosId) -> Vec<PicosId> {
            let slot = id.0 as usize;
            let entry = self.entries[slot].take().expect("retire of an in-flight task");
            self.in_flight -= 1;
            self.free_list.push(id.0);
            for (addr, _) in &entry.deps {
                if let Some(a) = self.addr_table.get_mut(addr) {
                    if matches!(a.last_writer, Some((w, s)) if w == id && s == entry.serial) {
                        a.last_writer = None;
                    }
                    a.readers.retain(|&(r, s)| !(r == id && s == entry.serial));
                    if a.last_writer.is_none() && a.readers.is_empty() {
                        self.addr_table.remove(addr);
                    }
                }
            }
            let mut newly_ready = Vec::new();
            for succ in entry.successors {
                if let Some(s) = self.entries[succ.0 as usize].as_mut() {
                    s.unresolved -= 1;
                    if s.unresolved == 0 {
                        newly_ready.push(succ);
                    }
                }
            }
            let _ = entry.sw_id;
            newly_ready
        }
    }
}

/// The same 200-task chain through the seed-era implementation, driven identically.
fn drive_chain_seed(t: &mut seed::Tracker, task: &mut SubmittedTask) -> usize {
    let mut prev = None;
    for i in 0..CHAIN {
        task.sw_id = i;
        let (id, _) = t.insert(task);
        if let Some(p) = prev {
            black_box(t.retire(p));
        }
        prev = Some(id);
    }
    if let Some(p) = prev {
        black_box(t.retire(p));
    }
    t.in_flight()
}

fn bench_tracker(c: &mut Criterion) {
    c.bench_function("picos_tracker_insert_retire_chain", |b| {
        let mut t = DependenceTracker::new(TrackerConfig::default());
        let mut task = SubmittedTask::new(0, vec![Dependence::read_write(0x1000)]);
        let mut woken = Vec::new();
        b.iter(|| black_box(drive_chain(&mut t, &mut task, &mut woken)))
    });
    c.bench_function("picos_tracker_chain_seed_impl", |b| {
        let mut t = seed::Tracker::new(TrackerConfig::default().task_memory_entries);
        let mut task = SubmittedTask::new(0, vec![Dependence::read_write(0x1000)]);
        b.iter(|| black_box(drive_chain_seed(&mut t, &mut task)))
    });
}

fn bench_packet_codec(c: &mut Criterion) {
    let task = SubmittedTask::new(
        0x1234_5678_9ABC_DEF0,
        (0..15u64).map(|i| Dependence::read_write(0x8000_0000 + i * 64)).collect(),
    );
    c.bench_function("picos_descriptor_roundtrip_15deps", |b| {
        b.iter(|| {
            let packets = encode_descriptor(black_box(&task));
            black_box(decode_descriptor(&packets).unwrap())
        })
    });
}

fn bench_rocc_codec(c: &mut Criterion) {
    c.bench_function("rocc_encode_decode_all_ops", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for op in TaskSchedOp::ALL {
                let w = RoccInstruction::for_op(op, 5, 6, 7).encode();
                acc ^= RoccInstruction::decode(w).encode();
            }
            black_box(acc)
        })
    });
}

fn bench_mesi(c: &mut Criterion) {
    c.bench_function("mesi_ping_pong_1000_accesses", |b| {
        b.iter(|| {
            let mut m = MemorySystem::new(4, CacheConfig::rocket_l1d(), MemLatencies::default());
            let mut total = 0u64;
            for i in 0..1000u64 {
                let core = (i % 4) as usize;
                total += m.access(core, 0x9000, AccessKind::Atomic, 8, i * 10).latency;
            }
            black_box(total)
        })
    });
}

/// Median nanoseconds per call of `f` over `samples` batches of `batch` calls each.
fn measure_median_ns(mut f: impl FnMut(), batch: u32, samples: usize) -> f64 {
    // Warm-up.
    for _ in 0..batch {
        f();
    }
    let mut times: Vec<f64> = (0..samples)
        .map(|_| {
            let t0 = Instant::now();
            for _ in 0..batch {
                f();
            }
            t0.elapsed().as_nanos() as f64 / batch as f64
        })
        .collect();
    times.sort_by(|a, b| a.total_cmp(b));
    times[samples / 2]
}

/// The regression guard: measure seed vs current on the identical steady-state chain and
/// report the speedup. The floor is deliberately below the locally observed ratio so the guard
/// trips on real regressions (e.g. someone reintroducing a linear scan), not on CI noise.
fn tracker_regression_guard() {
    const FLOOR: f64 = 2.0;
    let mut cur = DependenceTracker::new(TrackerConfig::default());
    let mut cur_task = SubmittedTask::new(0, vec![Dependence::read_write(0x1000)]);
    let mut woken = Vec::new();
    let current = measure_median_ns(
        || {
            black_box(drive_chain(&mut cur, &mut cur_task, &mut woken));
        },
        64,
        15,
    );
    let mut old = seed::Tracker::new(TrackerConfig::default().task_memory_entries);
    let mut old_task = SubmittedTask::new(0, vec![Dependence::read_write(0x1000)]);
    let seed_ns = measure_median_ns(
        || {
            black_box(drive_chain_seed(&mut old, &mut old_task));
        },
        64,
        15,
    );
    let speedup = seed_ns / current;
    let verdict = if speedup >= FLOOR { "ok" } else { "REGRESSION" };
    println!();
    println!(
        "tracker regression guard: seed impl {:.0} ns/chain, current {:.0} ns/chain, speedup {:.2}x (floor {:.1}x) ... {}",
        seed_ns, current, speedup, FLOOR, verdict
    );
    if speedup < FLOOR && std::env::var_os("TIS_BENCH_STRICT").is_some() {
        std::process::exit(1);
    }
}

/// A minimal dependence-chain [`TaskSource`], implemented here from scratch rather than via
/// `tis_exp::StreamingSynth`: the bench crate sits below `tis-exp`, and a from-first-principles
/// implementation doubles as proof that the trait is usable outside the workspace's own
/// generators. Task `i` writes its slot and reads slot `i-1`; only `window` descriptors are
/// ever resident.
#[derive(Debug)]
struct ChainSource {
    tasks: u64,
    window: usize,
    next_id: u64,
    wait_emitted: bool,
    resident: std::collections::BTreeMap<u64, TaskSpec>,
    peak_resident: usize,
}

impl ChainSource {
    fn new(tasks: u64, window: usize) -> Self {
        ChainSource {
            tasks,
            window,
            next_id: 0,
            wait_emitted: false,
            resident: std::collections::BTreeMap::new(),
            peak_resident: 0,
        }
    }
}

impl TaskSource for ChainSource {
    fn name(&self) -> &str {
        "host-throughput-chain"
    }

    fn poll(&mut self) -> SourcePoll {
        if self.next_id >= self.tasks {
            if self.wait_emitted {
                return SourcePoll::Done;
            }
            self.wait_emitted = true;
            return SourcePoll::Op(ProgramOp::TaskWait);
        }
        if self.resident.len() >= self.window {
            return SourcePoll::Blocked;
        }
        let i = self.next_id;
        let addr = |id: u64| 0xC000_0000 + id * 64;
        let mut deps = vec![Dependence::write(addr(i))];
        if i > 0 {
            deps.push(Dependence::read(addr(i - 1)));
        }
        let spec = TaskSpec::new(TaskId(i), Payload::compute(500), deps);
        self.resident.insert(i, spec.clone());
        self.peak_resident = self.peak_resident.max(self.resident.len());
        self.next_id += 1;
        SourcePoll::Op(ProgramOp::Spawn(spec))
    }

    fn spec(&self, sw_id: u64) -> &TaskSpec {
        &self.resident[&sw_id]
    }

    fn retire(&mut self, sw_id: u64) {
        self.resident.remove(&sw_id);
    }

    fn max_deps(&self) -> usize {
        2
    }

    fn resident(&self) -> usize {
        self.resident.len()
    }

    fn peak_resident(&self) -> usize {
        self.peak_resident
    }
}

/// The host-throughput guard for the streaming engine: simulated **tasks per host second**
/// through the full machine (Phentos + TIS fabric, records off), the figure that bounds how
/// large a streamed cell the harness can afford. The floor is far below the locally observed
/// rate so the guard trips on an algorithmic regression (e.g. an O(tasks) scan sneaking back
/// into the per-step path), not on a slow CI host.
fn streaming_host_throughput_guard() {
    const TASKS: u64 = 200_000;
    const WINDOW: usize = 1_024;
    const FLOOR_TASKS_PER_SEC: f64 = 50_000.0;
    let harness = Harness::paper_prototype();
    // Warm-up run (page-in, branch training), then the measured run.
    for _ in 0..1 {
        let r = harness
            .run_source(Platform::Phentos, Box::new(ChainSource::new(TASKS, WINDOW)), false)
            .expect("streamed warm-up chain must complete");
        assert_eq!(r.tasks_retired, TASKS);
    }
    let t0 = Instant::now();
    let report = harness
        .run_source(Platform::Phentos, Box::new(ChainSource::new(TASKS, WINDOW)), false)
        .expect("streamed chain must complete");
    let elapsed = t0.elapsed().as_secs_f64();
    assert_eq!(report.tasks_retired, TASKS);
    assert!(
        report.peak_resident_tasks <= WINDOW as u64,
        "peak resident descriptors {} exceeded the {}-task window",
        report.peak_resident_tasks,
        WINDOW
    );
    let tasks_per_host_second = TASKS as f64 / elapsed;
    let verdict = if tasks_per_host_second >= FLOOR_TASKS_PER_SEC { "ok" } else { "REGRESSION" };
    println!(
        "tasks_per_host_second: {:.0} ({} tasks in {:.3} s, window {}, peak resident {}, floor {:.0}) ... {}",
        tasks_per_host_second,
        TASKS,
        elapsed,
        WINDOW,
        report.peak_resident_tasks,
        FLOOR_TASKS_PER_SEC,
        verdict
    );
    if tasks_per_host_second < FLOOR_TASKS_PER_SEC && std::env::var_os("TIS_BENCH_STRICT").is_some()
    {
        std::process::exit(1);
    }
}

criterion_group!(benches, bench_tracker, bench_packet_codec, bench_rocc_codec, bench_mesi);

fn main() {
    benches();
    tracker_regression_guard();
    streaming_host_throughput_guard();
}
