//! Figure 7 — lifetime task-scheduling overhead (cycles per task) for Task-Free / Task-Chain
//! with 1 and 15 dependences, on the four platforms.
//!
//! Run with `cargo bench -p tis-bench --bench fig07_lifetime_overhead`.

use tis_bench::{figure7_paper_values, figure7_workloads, measure_lifetime_overhead, Harness, Platform};

fn main() {
    let harness = Harness::paper_prototype();
    let workloads = figure7_workloads(150);

    println!("Figure 7: lifetime Task Scheduling overhead (cycles/task), measured vs paper");
    println!(
        "{:<10} | {:>22} | {:>22} | {:>22} | {:>22}",
        "platform", "Task-Free 1 dep", "Task-Free 15 deps", "Task-Chain 1 dep", "Task-Chain 15 deps"
    );
    println!("{}", "-".repeat(110));
    for platform in Platform::ALL {
        let paper = figure7_paper_values(platform);
        let mut cells = Vec::new();
        for (i, (_, program)) in workloads.iter().enumerate() {
            let measured = measure_lifetime_overhead(&harness, platform, program);
            cells.push(format!("{:>8.0} (paper {:>6.0})", measured, paper[i]));
        }
        println!(
            "{:<10} | {} | {} | {} | {}",
            platform.label(),
            cells[0],
            cells[1],
            cells[2],
            cells[3]
        );
    }

    // The paper's reduction headlines: up to 7.53x (Nanos-RV) and 308x (Phentos) vs Nanos-SW.
    let chain1 = &workloads[2].1;
    let phentos = measure_lifetime_overhead(&harness, Platform::Phentos, chain1);
    let rv = measure_lifetime_overhead(&harness, Platform::NanosRv, chain1);
    let tf15 = &workloads[1].1;
    let sw_tf15 = measure_lifetime_overhead(&harness, Platform::NanosSw, tf15);
    let phentos_tf15 = measure_lifetime_overhead(&harness, Platform::Phentos, tf15);
    let rv_tf15 = measure_lifetime_overhead(&harness, Platform::NanosRv, tf15);
    println!();
    println!(
        "overhead reduction vs Nanos-SW (Task-Free 15 deps): Phentos {:.0}x (paper up to 308x), Nanos-RV {:.2}x (paper up to 7.53x)",
        sw_tf15 / phentos_tf15,
        sw_tf15 / rv_tf15
    );
    println!(
        "Task-Chain 1 dep overheads used by Figures 6 and 10: Phentos {:.0}, Nanos-RV {:.0} cycles/task",
        phentos, rv
    );
}
