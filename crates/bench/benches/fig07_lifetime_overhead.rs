//! Figure 7 — lifetime task-scheduling overhead (cycles per task) for Task-Free / Task-Chain
//! with 1 and 15 dependences, on the four platforms.
//!
//! Run with `cargo bench -p tis-bench --bench fig07_lifetime_overhead`.

use tis_bench::{figure7_paper_values, figure7_workloads, measure_lifetime_overhead, Harness, Platform};

/// Width of one workload column; cells are `{measured:>8} (paper {paper:>6})` = 23 characters.
const COL: usize = 23;
const PLATFORM_COL: usize = 10;

fn main() {
    let harness = Harness::paper_prototype();
    let workloads = figure7_workloads(150);

    println!("Figure 7: lifetime Task Scheduling overhead (cycles/task), measured vs paper");
    print!("{:<PLATFORM_COL$}", "platform");
    for (label, _) in &workloads {
        print!(" | {label:>COL$}");
    }
    println!();
    println!("{}", "-".repeat(PLATFORM_COL + (COL + 3) * workloads.len()));
    for platform in Platform::ALL {
        let paper = figure7_paper_values(platform);
        print!("{:<PLATFORM_COL$}", platform.label());
        for (i, (_, program)) in workloads.iter().enumerate() {
            let measured = measure_lifetime_overhead(&harness, platform, program);
            let cell = format!("{:>8.0} (paper {:>6.0})", measured, paper[i]);
            print!(" | {cell:>COL$}");
        }
        println!();
    }

    // The paper's reduction headlines: up to 7.53x (Nanos-RV) and 308x (Phentos) vs Nanos-SW.
    let chain1 = &workloads[2].1;
    let phentos = measure_lifetime_overhead(&harness, Platform::Phentos, chain1);
    let rv = measure_lifetime_overhead(&harness, Platform::NanosRv, chain1);
    let tf15 = &workloads[1].1;
    let sw_tf15 = measure_lifetime_overhead(&harness, Platform::NanosSw, tf15);
    let phentos_tf15 = measure_lifetime_overhead(&harness, Platform::Phentos, tf15);
    let rv_tf15 = measure_lifetime_overhead(&harness, Platform::NanosRv, tf15);
    println!();
    println!(
        "overhead reduction vs Nanos-SW (Task-Free 15 deps): Phentos {:.0}x (paper up to 308x), Nanos-RV {:.2}x (paper up to 7.53x)",
        sw_tf15 / phentos_tf15,
        sw_tf15 / rv_tf15
    );
    println!(
        "Task-Chain 1 dep overheads used by Figures 6 and 10: Phentos {:.0}, Nanos-RV {:.0} cycles/task",
        phentos, rv
    );
}
