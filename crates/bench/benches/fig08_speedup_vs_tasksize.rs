//! Figure 8 — speedup as a function of mean task size: over the serial version, over Nanos-SW
//! and over Nanos-RV, for every workload of the catalog.
//!
//! Run with `cargo bench -p tis-bench --bench fig08_speedup_vs_tasksize`.

use tis_bench::{evaluate_catalog, Harness, Platform};

fn main() {
    let harness = Harness::paper_prototype();
    let mut results = evaluate_catalog(&harness, &Platform::FIGURE9);
    results.sort_by(|a, b| a.mean_task_cycles.partial_cmp(&b.mean_task_cycles).unwrap());

    println!("Figure 8 (left): speedup over serial vs task size");
    println!("{:>14} | {:>10} | {:>10} | {:>10} | workload", "task size", "Phentos", "Nanos-RV", "Nanos-SW");
    println!("{}", "-".repeat(80));
    for r in &results {
        println!(
            "{:>14.0} | {:>10.2} | {:>10.2} | {:>10.2} | {} {}",
            r.mean_task_cycles,
            r.speedup(Platform::Phentos).unwrap_or(0.0),
            r.speedup(Platform::NanosRv).unwrap_or(0.0),
            r.speedup(Platform::NanosSw).unwrap_or(0.0),
            r.benchmark,
            r.input
        );
    }

    println!();
    println!("Figure 8 (middle): speedup over Nanos-SW vs task size");
    println!("{:>14} | {:>12} | {:>12} | workload", "task size", "Phentos/SW", "Nanos-RV/SW");
    println!("{}", "-".repeat(64));
    for r in &results {
        println!(
            "{:>14.0} | {:>12.2} | {:>12.2} | {} {}",
            r.mean_task_cycles,
            r.ratio(Platform::Phentos, Platform::NanosSw).unwrap_or(0.0),
            r.ratio(Platform::NanosRv, Platform::NanosSw).unwrap_or(0.0),
            r.benchmark,
            r.input
        );
    }

    println!();
    println!("Figure 8 (right): speedup over Nanos-RV vs task size");
    println!("{:>14} | {:>12} | workload", "task size", "Phentos/RV");
    println!("{}", "-".repeat(48));
    for r in &results {
        println!(
            "{:>14.0} | {:>12.2} | {} {}",
            r.mean_task_cycles,
            r.ratio(Platform::Phentos, Platform::NanosRv).unwrap_or(0.0),
            r.benchmark,
            r.input
        );
    }

    // The paper's qualitative claim: the advantage of the accelerated platforms shrinks as task
    // granularity grows.
    let fine: Vec<f64> = results
        .iter()
        .filter(|r| r.mean_task_cycles < 10_000.0)
        .filter_map(|r| r.ratio(Platform::Phentos, Platform::NanosSw))
        .collect();
    let coarse: Vec<f64> = results
        .iter()
        .filter(|r| r.mean_task_cycles >= 10_000.0)
        .filter_map(|r| r.ratio(Platform::Phentos, Platform::NanosSw))
        .collect();
    let mean = |v: &[f64]| if v.is_empty() { 0.0 } else { v.iter().sum::<f64>() / v.len() as f64 };
    println!();
    println!(
        "Mean Phentos/Nanos-SW advantage: {:.1}x on fine-grained (<10k cycles) vs {:.1}x on coarse-grained workloads",
        mean(&fine),
        mean(&coarse)
    );
}
