//! Figure 9 — normalized benchmark performance (speedup over serial) for every one of the 37
//! workload inputs under Nanos-SW, Nanos-RV and Phentos, plus the paper's headline geometric
//! means.
//!
//! Run with `cargo bench -p tis-bench --bench fig09_benchmarks`.
//!
//! Set `TIS_BENCH_JSON=<dir>` to additionally write the results as `BENCH_fig09.json` into
//! `<dir>` (machine-readable: per-workload cycles/speedups plus the headline geomeans); CI
//! uploads that file as an artifact so the benchmark trajectory is preserved across commits.

use tis_bench::{evaluate_catalog, geomean_ratio, write_fig09_json_if_requested, Harness, Platform};

fn main() {
    let harness = Harness::paper_prototype();
    let results = evaluate_catalog(&harness, &Platform::FIGURE9);

    println!("Figure 9: speedup over serial execution, 8 cores");
    println!(
        "{:<14} {:<12} | {:>10} | {:>10} | {:>10} | {:>14}",
        "benchmark", "input", "Nanos-SW", "Nanos-RV", "Phentos", "task size (cyc)"
    );
    println!("{}", "-".repeat(84));
    let mut current = "";
    for r in &results {
        if r.benchmark != current {
            current = r.benchmark;
            println!("{}", "-".repeat(84));
        }
        println!(
            "{:<14} {:<12} | {:>10.2} | {:>10.2} | {:>10.2} | {:>14.0}",
            r.benchmark,
            r.input,
            r.speedup(Platform::NanosSw).unwrap_or(0.0),
            r.speedup(Platform::NanosRv).unwrap_or(0.0),
            r.speedup(Platform::Phentos).unwrap_or(0.0),
            r.mean_task_cycles
        );
    }

    let rv_over_sw = geomean_ratio(&results, Platform::NanosRv, Platform::NanosSw).unwrap_or(0.0);
    let ph_over_sw = geomean_ratio(&results, Platform::Phentos, Platform::NanosSw).unwrap_or(0.0);
    let ph_over_rv = geomean_ratio(&results, Platform::Phentos, Platform::NanosRv).unwrap_or(0.0);
    let max = |p: Platform| {
        results.iter().filter_map(|r| r.speedup(p)).fold(0.0f64, f64::max)
    };
    let wins = |a: Platform, b: Platform| {
        results.iter().filter(|r| r.ratio(a, b).map(|x| x > 1.0).unwrap_or(false)).count()
    };

    println!();
    println!("Headline comparison (geometric means over the 37 workloads):");
    println!("  Nanos-RV / Nanos-SW : {:>6.2}x   (paper: 2.13x)", rv_over_sw);
    println!("  Phentos  / Nanos-SW : {:>6.2}x   (paper: 13.19x)", ph_over_sw);
    println!("  Phentos  / Nanos-RV : {:>6.2}x   (paper: 6.20x)", ph_over_rv);
    println!("  max speedup over serial: Nanos-RV {:.2}x (paper 5.62x), Phentos {:.2}x (paper 5.72x)", max(Platform::NanosRv), max(Platform::Phentos));
    println!(
        "  Nanos-RV beats Nanos-SW on {}/37 workloads (paper: 34/37); Phentos beats Nanos-SW on {}/37 (paper: 36/37); Phentos beats Nanos-RV on {}/37 (paper: 34/37)",
        wins(Platform::NanosRv, Platform::NanosSw),
        wins(Platform::Phentos, Platform::NanosSw),
        wins(Platform::Phentos, Platform::NanosRv)
    );

    match write_fig09_json_if_requested(&results) {
        Ok(Some(path)) => println!("\nwrote machine-readable results to {}", path.display()),
        Ok(None) => {}
        Err(e) => {
            eprintln!("failed to write BENCH_fig09.json: {e}");
            std::process::exit(1);
        }
    }
}
