//! Ablation — Phentos private retirement counters vs a naive shared counter (paper Section V-B,
//! design goal 5).
//!
//! Phentos batches retirement-counter updates in per-core private counters to avoid bouncing the
//! shared cache line on every retirement. This ablation runs the same fine-grained workload with
//! batching enabled (default) and disabled (`eager_shared_counter`), and reports the makespan
//! and the coherence traffic difference.
//!
//! Run with `cargo bench -p tis-bench --bench ablation_retirement_counters`.

use tis_core::{Phentos, PhentosConfig, TisConfig, TisFabric};
use tis_machine::{run_machine, MachineConfig};
use tis_workloads::blackscholes::blackscholes;

fn run(eager: bool) -> (u64, u64) {
    let cfg = MachineConfig::rocket_octacore();
    let program = blackscholes(16 * 1024, 8); // 2048 fine-grained tasks
    let mut runtime = Phentos::new(
        &program,
        cfg.cores,
        PhentosConfig { eager_shared_counter: eager, ..PhentosConfig::default() },
    );
    let mut fabric = TisFabric::new(cfg.cores, TisConfig::default());
    let report = run_machine(&cfg, &mut runtime, &mut fabric).expect("run completes");
    (report.total_cycles, report.memory_stats.dirty_bounces)
}

fn main() {
    let (batched_cycles, batched_bounces) = run(false);
    let (eager_cycles, eager_bounces) = run(true);
    println!("Ablation: Phentos retirement-counter batching (blackscholes 16K B8, 8 cores)");
    println!("{:<28} | {:>14} | {:>20}", "configuration", "makespan (cyc)", "dirty-line bounces");
    println!("{}", "-".repeat(70));
    println!("{:<28} | {:>14} | {:>20}", "private counters (paper)", batched_cycles, batched_bounces);
    println!("{:<28} | {:>14} | {:>20}", "eager shared counter", eager_cycles, eager_bounces);
    println!();
    println!(
        "Batching removes {} dirty-line bounces and changes the makespan by {:+.2}%.",
        eager_bounces.saturating_sub(batched_bounces),
        (eager_cycles as f64 - batched_cycles as f64) / batched_cycles as f64 * 100.0
    );
}
