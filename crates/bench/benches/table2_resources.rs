//! Table II — FPGA resource usage breakdown of the prototype, from the resource model.
//!
//! Run with `cargo bench -p tis-bench --bench table2_resources`.

use tis_core::ResourceReport;

fn main() {
    println!("Table II: resource usage breakdown in number of FPGA cells (8-core prototype)");
    println!("{}", ResourceReport::paper_prototype().render());
    println!(
        "Scheduling subsystem fraction: {:.2}% (paper: 1.79%, claim: below 2%)",
        ResourceReport::paper_prototype().scheduling_fraction() * 100.0
    );
    println!();
    println!("Scaling the same design to other core counts:");
    println!("{:>8} | {:>12} | {:>22}", "cores", "total cells", "scheduling fraction");
    println!("{}", "-".repeat(50));
    for cores in [2usize, 4, 8, 16, 32] {
        let r = ResourceReport::for_cores(cores);
        println!(
            "{:>8} | {:>11}K | {:>21.2}%",
            cores,
            r.rows()[0].cells / 1000,
            r.scheduling_fraction() * 100.0
        );
    }
}
