//! Ablation — Submit Three Packets vs single Submit Packet (paper Section IV-E3).
//!
//! The paper adds the three-packet submission instruction specifically to cut the number of
//! RoCC instructions per task descriptor. This ablation submits tasks with 0..15 dependences
//! through the fabric both ways and reports the core cycles spent per submission.
//!
//! Run with `cargo bench -p tis-bench --bench ablation_submit_three`.

use tis_core::{TisConfig, TisFabric};
use tis_machine::fabric::SchedulerFabric;
use tis_picos::{encode_nonzero_prefix, SubmittedTask};
use tis_taskmodel::Dependence;

/// Submits one task through the fabric in chunks of `chunk` packets, returning the core cycles
/// spent on the submission instructions.
fn submit_with_chunks(deps: usize, chunk: usize, sw_id: u64) -> u64 {
    let mut fabric = TisFabric::new(1, TisConfig::default());
    let task = SubmittedTask::new(
        sw_id,
        (0..deps as u64).map(|i| Dependence::read_write(0x5000_0000 + i * 64)).collect(),
    );
    let packets = encode_nonzero_prefix(&task);
    let mut now = 0u64;
    let (lat, out) = fabric.submission_request(0, packets.len() as u32, now);
    assert!(out.is_success());
    now += lat;
    for c in packets.chunks(chunk) {
        let (lat, out) = fabric.submit_packets(0, c, now);
        assert!(out.is_success());
        now += lat;
    }
    now
}

fn main() {
    println!("Ablation: Submit Three Packets vs Submit Packet (cycles per task submission)");
    println!("{:>6} | {:>14} | {:>16} | {:>8}", "deps", "1-packet instr", "3-packet instr", "saving");
    println!("{}", "-".repeat(56));
    for deps in [0usize, 1, 3, 7, 15] {
        let single = submit_with_chunks(deps, 1, 1);
        let triple = submit_with_chunks(deps, 3, 2);
        println!(
            "{:>6} | {:>14} | {:>16} | {:>7.2}x",
            deps,
            single,
            triple,
            single as f64 / triple as f64
        );
    }
    println!();
    println!("The three-packet variant cuts the submission instruction count roughly threefold,");
    println!("which is why the paper's runtimes never use the single-packet form on the fast path.");
}
