//! Figure 10 — measured speedups over serial execution compared against the MTT-derived
//! theoretical bound, per platform.
//!
//! As in the paper, the bound uses the Task-Chain (1 dep) lifetime overhead of each platform.
//!
//! Run with `cargo bench -p tis-bench --bench fig10_speedup_vs_bounds`.

use tis_bench::{evaluate_catalog, measure_lifetime_overhead, Harness, Platform};
use tis_machine::mtt_speedup_bound;
use tis_workloads::task_chain;

fn main() {
    let harness = Harness::paper_prototype();
    let cores = harness.cores();
    let chain = task_chain(150, 1);
    let mut results = evaluate_catalog(&harness, &Platform::FIGURE9);
    results.sort_by(|a, b| a.mean_task_cycles.partial_cmp(&b.mean_task_cycles).unwrap());

    for platform in Platform::FIGURE9 {
        let lo = measure_lifetime_overhead(&harness, platform, &chain);
        println!();
        println!(
            "Figure 10 ({}): measured speedup vs MTT bound (Lo = {:.0} cycles, {} cores)",
            platform.label(),
            lo,
            cores
        );
        println!("{:>14} | {:>10} | {:>10} | {:>8} | workload", "task size", "measured", "bound", "within");
        println!("{}", "-".repeat(72));
        let mut violations = 0usize;
        for r in &results {
            let measured = r.speedup(platform).unwrap_or(0.0);
            let bound = mtt_speedup_bound(r.mean_task_cycles, lo, cores);
            // Allow a small tolerance: the bound is derived from a single-dependence chain while
            // real workloads have different dependence mixes.
            let within = measured <= bound * 1.15 + 0.1;
            if !within {
                violations += 1;
            }
            println!(
                "{:>14.0} | {:>10.2} | {:>10.2} | {:>8} | {} {}",
                r.mean_task_cycles,
                measured,
                bound,
                if within { "yes" } else { "NO" },
                r.benchmark,
                r.input
            );
        }
        println!(
            "{} of {} measured points exceed the MTT bound (the paper's points all sit below their bounds)",
            violations,
            results.len()
        );
    }
}
