//! Figure 6 — MTT-derived maximum speedup bounds for an eight-core system, as a function of
//! mean task size, for the four platforms.
//!
//! As in the paper, the bound for each platform is `MS(t) = min(8, t / Lo)` where `Lo` is the
//! lifetime overhead measured on the Task-Chain (1 dep) microbenchmark.
//!
//! Run with `cargo bench -p tis-bench --bench fig06_mtt_bounds`.

use tis_bench::{measure_lifetime_overhead, Harness, Platform};
use tis_machine::mtt_speedup_bound;
use tis_workloads::task_chain;

fn main() {
    let harness = Harness::paper_prototype();
    let cores = harness.cores();
    let chain = task_chain(150, 1);

    let overheads: Vec<(Platform, f64)> = Platform::ALL
        .iter()
        .map(|&p| (p, measure_lifetime_overhead(&harness, p, &chain)))
        .collect();

    println!("Figure 6: MTT-derived maximum speedup ({} cores), Lo from Task-Chain (1 dep)", cores);
    print!("{:>12}", "task size");
    for (p, lo) in &overheads {
        print!(" | {:>10} (Lo={:.0})", p.label(), lo);
    }
    println!();
    println!("{}", "-".repeat(12 + overheads.len() * 25));

    // Log-spaced task sizes from 10^2 to 10^5 cycles, like the x-axis of Figure 6.
    let mut t = 100.0f64;
    while t <= 100_000.0 {
        print!("{:>12.0}", t);
        for (_, lo) in &overheads {
            print!(" | {:>21.2}", mtt_speedup_bound(t, *lo, cores));
        }
        println!();
        t *= 10f64.powf(0.25);
    }

    println!();
    println!("Paper landmarks: at ~1000-cycle tasks Phentos' bound is just below 3x while every");
    println!("other platform is below 0.1x; by ~10000-cycle tasks Phentos has saturated at 8x");
    println!("while the others are still below 1x.");
    let phentos_lo = overheads[0].1;
    let others_max_lo = overheads[1..].iter().map(|(_, lo)| *lo).fold(0.0f64, f64::max);
    println!(
        "Measured: Phentos bound at 1k cycles = {:.2}x, at 10k cycles = {:.2}x; slowest platform at 10k = {:.2}x",
        mtt_speedup_bound(1_000.0, phentos_lo, cores),
        mtt_speedup_bound(10_000.0, phentos_lo, cores),
        mtt_speedup_bound(10_000.0, others_max_lo, cores)
    );
}
