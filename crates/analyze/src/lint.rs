//! A hand-rolled source lint for the repo's determinism rules.
//!
//! Everything in this workspace must be a pure function of configuration and
//! seed — that is what makes replay bit-exact, the parallel sweep runner
//! byte-identical at any worker count, and result caching sound. The rules:
//!
//! - **wall-clock**: no host-time reads (`std::time` instant or system
//!   clock) outside the host-side benchmark harness (`crates/bench`) and the
//!   criterion shim. Simulated time comes from the engine, never the host.
//! - **std-hash-hot-path**: no `std::collections` hash containers in the
//!   hot-path crates (`sim`, `picos`, `core`, `nanos`) outside test modules —
//!   their iteration order is randomised per process; hot paths use the
//!   deterministic `FxHash` containers from `tis-sim`.
//! - **thread-spawn**: no thread creation outside the sweep runner, the one
//!   place that proved byte-identical results at any worker count.
//! - **ambient-rng**: no `rand` crate usage anywhere; all randomness derives
//!   from `SimRng` streams.
//! - **observer-chokepoint**: `tis_obs::Observer` methods are invoked only
//!   from the obs crate itself and the engine's two emission sites
//!   (`crates/machine/src/context.rs`, `crates/machine/src/engine.rs`).
//!   Every other layer buffers plain data behind an `observing` flag and is
//!   drained *by* the engine — that is what keeps the obs-off path provably
//!   free and the event streams totally ordered. Integration tests may drive
//!   observers directly.
//!
//! The scan is plain substring matching over source lines (comments count:
//! a commented-out wall-clock read is one `git revert` away from running).
//! Needles are assembled from parts at runtime so this file never matches
//! its own rule definitions. Lines may carry an explicit
//! `tis-lint: allow(<rule>)` waiver; none exist in the workspace today, but
//! the escape hatch keeps the lint honest rather than bypassed.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// One determinism rule: substring needles plus path scoping.
#[derive(Debug, Clone)]
pub struct LintRule {
    /// Stable rule name, used in findings and waiver comments.
    pub name: &'static str,
    /// Substrings whose presence on a line is a violation.
    needles: Vec<String>,
    /// Path prefixes (relative to the workspace root, `/`-separated) where
    /// the rule does not apply.
    allowed_prefixes: Vec<&'static str>,
    /// If set, the rule applies only under these prefixes.
    only_prefixes: Option<Vec<&'static str>>,
    /// Ignore matches after the first `#[cfg(test)]` line of a file (test
    /// modules sit at the bottom of every file in this workspace).
    exempt_test_code: bool,
}

/// One rule violation at a specific source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintFinding {
    /// Name of the violated rule.
    pub rule: &'static str,
    /// Workspace-relative path of the offending file.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// The offending line, trimmed.
    pub excerpt: String,
}

impl std::fmt::Display for LintFinding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.path, self.line, self.rule, self.excerpt)
    }
}

/// The workspace's determinism rules.
pub fn default_rules() -> Vec<LintRule> {
    vec![
        LintRule {
            name: "wall-clock",
            needles: vec![
                format!("{}::now", "Instant"),
                format!("{}Time", "System"),
            ],
            // Bench harnesses measure host throughput by design; the host-time
            // figures stay on stdout and never enter a JSON artifact.
            allowed_prefixes: vec!["crates/bench/", "crates/exp/benches/", "shims/criterion/"],
            only_prefixes: None,
            exempt_test_code: false,
        },
        LintRule {
            name: "std-hash-hot-path",
            needles: vec![
                format!("std::{}::HashMap", "collections"),
                format!("std::{}::HashSet", "collections"),
            ],
            allowed_prefixes: vec![],
            only_prefixes: Some(vec![
                "crates/sim/",
                "crates/picos/",
                "crates/core/",
                "crates/nanos/",
            ]),
            exempt_test_code: true,
        },
        LintRule {
            name: "thread-spawn",
            needles: vec![
                format!("{}::spawn", "thread"),
                format!("{}::scope", "thread"),
            ],
            allowed_prefixes: vec!["crates/exp/src/runner.rs"],
            only_prefixes: None,
            exempt_test_code: false,
        },
        LintRule {
            name: "ambient-rng",
            needles: vec![
                format!("{}::thread_rng", "rand"),
                format!("{}::random", "rand"),
                format!("{}::rngs", "rand"),
            ],
            allowed_prefixes: vec![],
            only_prefixes: None,
            exempt_test_code: false,
        },
        LintRule {
            name: "observer-chokepoint",
            needles: vec![
                format!(".{}(", "on_task"),
                format!(".{}(", "on_mem"),
                format!(".{}(", "on_sample"),
            ],
            allowed_prefixes: vec![
                "crates/obs/",
                "crates/machine/src/context.rs",
                "crates/machine/src/engine.rs",
                "tests/",
            ],
            only_prefixes: None,
            exempt_test_code: true,
        },
    ]
}

fn waiver_for(line: &str, rule: &str) -> bool {
    // `tis-lint: allow(rule)` anywhere on the line waives that rule there.
    line.contains(&format!("tis-lint: allow({rule})"))
}

/// Lints one file's contents against `rules`. `rel_path` is the
/// workspace-relative path with `/` separators; it drives the path scoping.
pub fn lint_source(rules: &[LintRule], rel_path: &str, contents: &str) -> Vec<LintFinding> {
    let mut findings = Vec::new();
    let cfg_test_marker = format!("#[cfg({})]", "test");
    let mut in_test_code = false;
    for (i, line) in contents.lines().enumerate() {
        if line.trim_start().starts_with(&cfg_test_marker) {
            in_test_code = true;
        }
        for rule in rules {
            if let Some(only) = &rule.only_prefixes {
                if !only.iter().any(|p| rel_path.starts_with(p)) {
                    continue;
                }
            }
            if rule.allowed_prefixes.iter().any(|p| rel_path.starts_with(p)) {
                continue;
            }
            if rule.exempt_test_code && in_test_code {
                continue;
            }
            if rule.needles.iter().any(|n| line.contains(n.as_str()))
                && !waiver_for(line, rule.name)
            {
                findings.push(LintFinding {
                    rule: rule.name,
                    path: rel_path.to_string(),
                    line: i + 1,
                    excerpt: line.trim().to_string(),
                });
            }
        }
    }
    findings
}

/// Recursively collects the workspace's `.rs` files (sorted, so findings are
/// deterministic), skipping build output and VCS internals.
fn collect_rust_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<_> =
        fs::read_dir(dir)?.collect::<Result<_, _>>()?;
    entries.sort_by_key(|e| e.path());
    for entry in entries {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            collect_rust_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lints every `.rs` file under `root` against `rules`.
pub fn lint_workspace(root: &Path, rules: &[LintRule]) -> io::Result<Vec<LintFinding>> {
    let mut files = Vec::new();
    collect_rust_files(root, &mut files)?;
    let mut findings = Vec::new();
    for path in files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        let contents = fs::read_to_string(&path)?;
        findings.extend(lint_source(rules, &rel, &contents));
    }
    Ok(findings)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn findings_for(path: &str, contents: &str) -> Vec<LintFinding> {
        lint_source(&default_rules(), path, contents)
    }

    #[test]
    fn wall_clock_read_is_flagged_outside_bench() {
        let src = format!("fn f() {{ let t = {}::now(); }}\n", "Instant");
        let hits = findings_for("crates/machine/src/engine.rs", &src);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].rule, "wall-clock");
        assert_eq!(hits[0].line, 1);
        // The same line inside the bench harness is the measurement loop.
        assert!(findings_for("crates/bench/benches/micro.rs", &src).is_empty());
        assert!(findings_for("shims/criterion/src/lib.rs", &src).is_empty());
    }

    #[test]
    fn system_time_is_flagged() {
        let src = format!("use std::time::{}Time;\n", "System");
        assert_eq!(findings_for("crates/sim/src/rng.rs", &src).len(), 1);
    }

    #[test]
    fn std_hash_map_is_flagged_only_in_hot_path_crates() {
        let src = format!("use std::{}::HashMap;\n", "collections");
        let hits = findings_for("crates/picos/src/tracker.rs", &src);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].rule, "std-hash-hot-path");
        // Cold-path crates may use std maps (e.g. the report writers).
        assert!(findings_for("crates/exp/src/report.rs", &src).is_empty());
        assert!(findings_for("crates/mem/src/system.rs", &src).is_empty());
    }

    #[test]
    fn std_hash_in_a_test_module_is_exempt() {
        let src = format!(
            "pub fn real() {{}}\n#[cfg({})]\nmod tests {{\n    use std::{}::HashSet;\n}}\n",
            "test", "collections"
        );
        assert!(findings_for("crates/core/src/rocc.rs", &src).is_empty());
        // But before the test marker it still counts.
        let src = format!(
            "use std::{}::HashSet;\n#[cfg({})]\nmod tests {{}}\n",
            "collections", "test"
        );
        assert_eq!(findings_for("crates/core/src/rocc.rs", &src).len(), 1);
    }

    #[test]
    fn thread_spawn_is_flagged_outside_the_sweep_runner() {
        let src = format!("std::{}::spawn(|| {{}});\n", "thread");
        let hits = findings_for("crates/nanos/src/runtime.rs", &src);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].rule, "thread-spawn");
        assert!(findings_for("crates/exp/src/runner.rs", &src).is_empty());
        let scoped = format!("std::{}::scope(|s| {{}});\n", "thread");
        assert_eq!(findings_for("crates/bench/src/lib.rs", &scoped).len(), 1);
    }

    #[test]
    fn ambient_rng_is_flagged_everywhere() {
        let src = format!("let x: u64 = {}::random();\n", "rand");
        for path in ["crates/sim/src/rng.rs", "crates/exp/src/synth.rs", "src/lib.rs"] {
            let hits = findings_for(path, &src);
            assert_eq!(hits.len(), 1, "{path}");
            assert_eq!(hits[0].rule, "ambient-rng");
        }
    }

    #[test]
    fn observer_calls_are_flagged_outside_the_chokepoint() {
        let src = format!("obs.{}(&event);\n", "on_task");
        let hits = findings_for("crates/mem/src/system.rs", &src);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].rule, "observer-chokepoint");
        // The engine's two emission sites, the obs crate, and integration tests may call
        // observer methods directly.
        assert!(findings_for("crates/machine/src/context.rs", &src).is_empty());
        assert!(findings_for("crates/machine/src/engine.rs", &src).is_empty());
        assert!(findings_for("crates/obs/src/recorder.rs", &src).is_empty());
        assert!(findings_for("tests/observability.rs", &src).is_empty());
        // The other two streams are fenced the same way.
        let mem = format!("o.{}(&leg);\n", "on_mem");
        assert_eq!(findings_for("crates/picos/src/device.rs", &mem).len(), 1);
        let sample = format!("o.{}(&snapshot);\n", "on_sample");
        assert_eq!(findings_for("crates/core/src/fabric.rs", &sample).len(), 1);
        // Unit-test modules (after the cfg marker) are exempt.
        let in_test = format!("#[cfg({})]\nmod tests {{\n    o.{}(&e);\n}}\n", "test", "on_task");
        assert!(findings_for("crates/nanos/src/runtime.rs", &in_test).is_empty());
    }

    #[test]
    fn waiver_comment_suppresses_a_single_rule() {
        let src = format!(
            "let t = {}::now(); // tis-lint: allow(wall-clock)\n",
            "Instant"
        );
        assert!(findings_for("crates/machine/src/engine.rs", &src).is_empty());
        // A waiver for a different rule does not help.
        let src = format!(
            "let t = {}::now(); // tis-lint: allow(ambient-rng)\n",
            "Instant"
        );
        assert_eq!(findings_for("crates/machine/src/engine.rs", &src).len(), 1);
    }

    #[test]
    fn lint_workspace_walks_files_and_reports_relative_paths() {
        let dir = std::env::temp_dir().join(format!("tis-lint-walk-{}", std::process::id()));
        let src_dir = dir.join("crates/machine/src");
        fs::create_dir_all(&src_dir).unwrap();
        // A decoy build-output directory that must be skipped.
        let target_dir = dir.join("target/debug");
        fs::create_dir_all(&target_dir).unwrap();
        let bad = format!("fn f() {{ let t = {}::now(); }}\n", "Instant");
        fs::write(src_dir.join("engine.rs"), &bad).unwrap();
        fs::write(target_dir.join("generated.rs"), &bad).unwrap();
        fs::write(src_dir.join("clean.rs"), "fn g() {}\n").unwrap();

        let findings = lint_workspace(&dir, &default_rules()).unwrap();
        fs::remove_dir_all(&dir).unwrap();
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].path, "crates/machine/src/engine.rs");
        assert_eq!(findings[0].rule, "wall-clock");
    }

    #[test]
    fn the_workspace_itself_is_clean() {
        // CARGO_MANIFEST_DIR = crates/analyze; the workspace root is two up.
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let findings = lint_workspace(&root, &default_rules()).unwrap();
        assert!(
            findings.is_empty(),
            "determinism lint violations:\n{}",
            findings.iter().map(|f| f.to_string()).collect::<Vec<_>>().join("\n")
        );
    }
}
