//! Static and dynamic analysis for the task-scheduling simulator.
//!
//! The paper's central claim is that the hardware dependence tracker enforces
//! task data-dependences correctly at full speed. This crate machine-checks
//! that claim from three independent angles, plus a source-level determinism
//! lint:
//!
//! 1. **Preflight graph analysis** ([`analyze_graph`] / [`analyze_program`]):
//!    one chokepoint every experiment's task graph passes through before any
//!    cell runs. Detects cycles (iterative three-colour DFS), dangling and
//!    duplicate edge references, duplicate declared addresses, and — the part
//!    specific to task scheduling — classifies every conflicting task pair
//!    (RaW/WaR/WaW on the same address) and proves an ordering edge, a
//!    taskwait phase, or a transitive path covers it.
//! 2. **Vector-clock race detection** ([`detect_races`]): replays the
//!    engine's dispatch/retire trace against per-core vector clocks derived
//!    from the declared wake edges. Any conflicting pair whose accesses are
//!    not happens-before ordered at dispatch time yields a precise
//!    [`RaceReport`] — a per-run scheduler-soundness certificate that works
//!    identically for Picos, Phentos, and both Nanos platforms.
//! 3. **Exhaustive protocol model check** ([`model_check_protocol`]): bounded
//!    enumeration of every reachable global `(per-core MESI, directory)`
//!    state through the pure transition tables in `tis-mem`, proving SWMR and
//!    directory precision over the full reachable space rather than the
//!    sampled traces runtime invariant checks see.
//! 4. **Determinism lint** ([`lint`], `tis-lint` binary): a hand-rolled
//!    source scan enforcing the repo rules that make byte-identical replay
//!    possible (no wall-clock reads, no std hash maps in hot-path crates, no
//!    stray threads, no ambient RNG).
//!
//! Analyses 1 and 2 are gated by [`AnalysisConfig`] so the default
//! experiment path pays nothing — reports and artifacts stay byte-identical
//! with analysis off.
//!
//! For *streamed* workloads — which never materialize a whole graph — the
//! [`windowed`] module provides the incremental counterpart to preflight: a
//! [`WindowedPreflight`] checks structure per spawn and enumerates the
//! conflict frontier over a bounded history window.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod graph;
pub mod lint;
pub mod protocol;
pub mod race;
pub mod windowed;

pub use graph::{
    analyze_graph, analyze_program, conflict_frontier, ConflictPair, GraphAnalysis, GraphError,
    GraphSpec,
};
pub use windowed::{WindowedAnalysis, WindowedPreflight};
pub use lint::{default_rules, lint_source, lint_workspace, LintFinding, LintRule};
pub use protocol::{
    check_global_invariants, model_check_protocol, ModelCheckReport, ProtocolViolation,
};
pub use race::{detect_races, RaceAnalysis, RaceReport};

/// Which optional analyses an experiment run performs.
///
/// The default is everything off: the sweep hot path must not change by a
/// single cycle (or output byte) unless analysis is explicitly requested.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AnalysisConfig {
    /// Run [`analyze_graph`] on every instantiated program before simulation.
    pub preflight: bool,
    /// Run [`detect_races`] on every cell's execution trace after simulation.
    pub races: bool,
}

impl AnalysisConfig {
    /// No analysis at all (the default).
    pub fn off() -> Self {
        Self::default()
    }

    /// Every gated analysis on: preflight graph checks and race detection.
    pub fn full() -> Self {
        Self { preflight: true, races: true }
    }

    /// True if any gated analysis is enabled.
    ///
    /// Report serialisation uses this the same way it uses
    /// `FaultConfig::engages`: analysis keys appear in output JSON only when
    /// the run actually analysed something, keeping baseline artifacts
    /// byte-identical.
    pub fn engages(&self) -> bool {
        self.preflight || self.races
    }

    /// Short stable label for experiment axes and report rows.
    pub fn key(&self) -> &'static str {
        match (self.preflight, self.races) {
            (false, false) => "off",
            (true, false) => "preflight",
            (false, true) => "races",
            (true, true) => "full",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_defaults_off_and_keys_are_stable() {
        assert!(!AnalysisConfig::default().engages());
        assert_eq!(AnalysisConfig::off().key(), "off");
        assert!(AnalysisConfig::full().engages());
        assert_eq!(AnalysisConfig::full().key(), "full");
        assert_eq!(AnalysisConfig { preflight: true, races: false }.key(), "preflight");
        assert_eq!(AnalysisConfig { preflight: false, races: true }.key(), "races");
    }
}
