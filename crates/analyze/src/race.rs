//! Vector-clock race detection over an execution trace.
//!
//! The engine reports one [`ExecRecord`] per retired task (core, dispatch
//! cycle, retire cycle). This module replays that trace against vector clocks
//! whose only happens-before sources are the ones the scheduler is *entitled*
//! to rely on:
//!
//! - **wake edges** — a task's dispatch joins the retire clock of each
//!   declared predecessor,
//! - **program order on a core** — a core runs its tasks sequentially,
//! - **taskwait barriers** — a task's dispatch joins the retire clocks of
//!   every earlier phase.
//!
//! A conflicting pair (same address, at least one write) whose accesses are
//! not happens-before ordered at dispatch time is a race: the schedule that
//! ran was merely lucky, nothing *forced* the order. This is deliberately
//! stricter than checking timestamps — a racy pair that happened to execute
//! in the right order is still reported, which is what makes the mutation
//! tests (drop a wake edge, rerun the detector) deterministic.

use tis_taskmodel::{DepAddr, Dependence, ExecRecord, TaskId};

use crate::graph::{conflict_frontier, GraphSpec};

/// One unordered conflicting pair: the per-run soundness certificate failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RaceReport {
    /// The earlier task of the pair (spawn order).
    pub first: TaskId,
    /// The later task of the pair (spawn order).
    pub second: TaskId,
    /// The contended address.
    pub addr: DepAddr,
    /// The earlier task's declared access to `addr`.
    pub first_access: Dependence,
    /// The later task's declared access to `addr`.
    pub second_access: Dependence,
    /// Cycle at which the earlier task dispatched.
    pub first_dispatch: u64,
    /// Cycle at which the later task dispatched.
    pub second_dispatch: u64,
}

impl std::fmt::Display for RaceReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "race on {:#x}: task {} ({:?} @ cycle {}) unordered with task {} ({:?} @ cycle {})",
            self.addr,
            self.first.raw(),
            self.first_access.dir,
            self.first_dispatch,
            self.second.raw(),
            self.second_access.dir,
            self.second_dispatch,
        )
    }
}

/// Result of replaying one execution trace through the race detector.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RaceAnalysis {
    /// Cores observed in the trace.
    pub cores: usize,
    /// Conflicting frontier pairs with both sides executed, all checked.
    pub pairs_checked: usize,
    /// Conflicting pairs skipped because a side never executed (the
    /// [`tis_taskmodel::ExecutionValidator`] reports those separately).
    pub pairs_skipped: usize,
    /// Every unordered conflicting pair found.
    pub races: Vec<RaceReport>,
}

impl RaceAnalysis {
    /// True when the trace is certified race-free (and nothing was skipped).
    pub fn is_race_free(&self) -> bool {
        self.races.is_empty() && self.pairs_skipped == 0
    }
}

/// Replays `records` against `spec`'s wake edges and reports every
/// conflicting pair not happens-before ordered at dispatch time.
///
/// # Panics
///
/// Panics if a record's task id is outside `spec` or recorded twice — those
/// are trace corruptions, not schedules to analyze.
pub fn detect_races(spec: &GraphSpec, records: &[ExecRecord]) -> RaceAnalysis {
    let n = spec.tasks;
    let cores = records.iter().map(|r| r.core + 1).max().unwrap_or(0);

    // Per-task record slot, panicking on corrupt traces.
    let mut rec: Vec<Option<ExecRecord>> = vec![None; n];
    for r in records {
        let idx = r.task.raw() as usize;
        assert!(idx < n, "record for task {idx} outside the {n}-task graph");
        assert!(rec[idx].is_none(), "task {idx} recorded twice");
        rec[idx] = Some(*r);
    }

    // Wake-edge predecessors of each task.
    let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
    for &(from, to) in &spec.edges {
        preds[to].push(from);
    }

    // Interleave dispatches and retires in time order. Ties are resolved by
    // task id, then dispatch-before-retire: a successor may dispatch at the
    // exact cycle its predecessor retires, and dependence edges always point
    // forward in spawn order, so the smaller-id predecessor's retire lands
    // first; a zero-duration task still dispatches before it retires.
    #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
    enum Kind {
        Dispatch,
        Retire,
    }
    let mut events: Vec<(u64, usize, Kind)> = Vec::with_capacity(2 * records.len());
    for r in records {
        let idx = r.task.raw() as usize;
        events.push((r.start, idx, Kind::Dispatch));
        events.push((r.end, idx, Kind::Retire));
    }
    events.sort_unstable();

    let phases = spec.phase.iter().copied().max().map_or(0, |p| p + 1);
    let mut core_vc: Vec<Vec<u64>> = vec![vec![0; cores]; cores];
    let mut dispatch_vc: Vec<Option<Vec<u64>>> = vec![None; n];
    let mut retire_vc: Vec<Option<Vec<u64>>> = vec![None; n];
    // Join of the retire clocks of every task in a given phase, for barriers.
    let mut phase_vc: Vec<Vec<u64>> = vec![vec![0; cores]; phases];

    fn join(into: &mut [u64], from: &[u64]) {
        for (a, b) in into.iter_mut().zip(from) {
            *a = (*a).max(*b);
        }
    }

    for (_, idx, kind) in events {
        let r = rec[idx].expect("event for unrecorded task");
        match kind {
            Kind::Dispatch => {
                let mut vc = core_vc[r.core].clone();
                for &p in &preds[idx] {
                    if let Some(pvc) = &retire_vc[p] {
                        join(&mut vc, pvc);
                    }
                }
                for earlier in &phase_vc[..spec.phase[idx]] {
                    join(&mut vc, earlier);
                }
                vc[r.core] += 1;
                dispatch_vc[idx] = Some(vc.clone());
                core_vc[r.core] = vc;
            }
            Kind::Retire => {
                core_vc[r.core][r.core] += 1;
                let vc = core_vc[r.core].clone();
                join(&mut phase_vc[spec.phase[idx]], &vc);
                retire_vc[idx] = Some(vc);
            }
        }
    }

    let mut analysis = RaceAnalysis { cores, ..Default::default() };
    for pair in conflict_frontier(spec) {
        let (Some(first_vc), Some(second_vc)) =
            (&retire_vc[pair.earlier], &dispatch_vc[pair.later])
        else {
            analysis.pairs_skipped += 1;
            continue;
        };
        analysis.pairs_checked += 1;
        let ordered = first_vc.iter().zip(second_vc.iter()).all(|(a, b)| a <= b);
        if !ordered {
            let access_to = |task: usize| {
                spec.deps[task]
                    .iter()
                    .find(|d| d.addr == pair.addr)
                    .copied()
                    .expect("conflict pair tasks both declare the address")
            };
            analysis.races.push(RaceReport {
                first: TaskId(pair.earlier as u64),
                second: TaskId(pair.later as u64),
                addr: pair.addr,
                first_access: access_to(pair.earlier),
                second_access: access_to(pair.later),
                first_dispatch: rec[pair.earlier].map(|r| r.start).unwrap_or(0),
                second_dispatch: rec[pair.later].map(|r| r.start).unwrap_or(0),
            });
        }
    }
    analysis
}

#[cfg(test)]
mod tests {
    use super::*;
    use tis_taskmodel::{Payload, ProgramBuilder};

    /// 0 writes A; 1 and 2 read A and write their own outputs; 3 reads both.
    fn diamond() -> GraphSpec {
        let mut b = ProgramBuilder::new("diamond");
        b.spawn(Payload::compute(10), vec![Dependence::write(0xA0)]);
        b.spawn(Payload::compute(10), vec![Dependence::read(0xA0), Dependence::write(0xB0)]);
        b.spawn(Payload::compute(10), vec![Dependence::read(0xA0), Dependence::write(0xC0)]);
        b.spawn(Payload::compute(10), vec![Dependence::read(0xB0), Dependence::read(0xC0)]);
        GraphSpec::from_program(&b.build())
    }

    fn record(task: u64, core: usize, start: u64, end: u64) -> ExecRecord {
        ExecRecord { task: TaskId(task), core, start, end }
    }

    /// A legal two-core schedule for the diamond: middles run in parallel
    /// after 0 retires, 3 runs after both retire.
    fn diamond_schedule() -> Vec<ExecRecord> {
        vec![
            record(0, 0, 0, 10),
            record(1, 0, 10, 20),
            record(2, 1, 10, 20),
            record(3, 0, 20, 30),
        ]
    }

    #[test]
    fn ordered_parallel_schedule_is_race_free() {
        let analysis = detect_races(&diamond(), &diamond_schedule());
        assert_eq!(analysis.cores, 2);
        assert_eq!(analysis.pairs_checked, 4, "RaW pairs 0-1, 0-2, 1-3, 2-3: {analysis:?}");
        assert!(analysis.is_race_free(), "{:?}", analysis.races);
    }

    #[test]
    fn dropped_wake_edge_is_a_race_even_when_timing_looks_ordered() {
        let mut spec = diamond();
        // Remove the wake edge 0 -> 2: task 2 ran on core 1 with nothing
        // forcing it after task 0. Timestamps alone still look ordered —
        // the detector must flag it anyway.
        spec.edges.retain(|&e| e != (0, 2));
        let analysis = detect_races(&spec, &diamond_schedule());
        assert_eq!(analysis.races.len(), 1);
        let race = analysis.races[0];
        assert_eq!((race.first, race.second), (TaskId(0), TaskId(2)));
        assert_eq!(race.addr, 0xA0);
        assert!(race.first_access.dir.writes());
        assert!(race.second_access.dir.reads());
        assert_eq!((race.first_dispatch, race.second_dispatch), (0, 10));
    }

    #[test]
    fn same_core_program_order_covers_a_dropped_edge() {
        let mut spec = diamond();
        // Task 1 ran on core 0 right after task 0 retired; even without the
        // wake edge, the core's program order is a legitimate HB source.
        spec.edges.retain(|&e| e != (0, 1));
        let analysis = detect_races(&spec, &diamond_schedule());
        assert!(analysis.is_race_free(), "{:?}", analysis.races);
    }

    #[test]
    fn barrier_orders_tasks_without_edges() {
        let mut b = ProgramBuilder::new("barrier");
        b.spawn(Payload::compute(10), vec![Dependence::write(0xA0)]);
        b.taskwait();
        b.spawn(Payload::compute(10), vec![Dependence::read(0xA0)]);
        let mut spec = GraphSpec::from_program(&b.build());
        // Strip the edge: only the barrier orders the pair.
        spec.edges.clear();
        let records = vec![record(0, 0, 0, 10), record(1, 1, 10, 20)];
        let analysis = detect_races(&spec, &records);
        assert_eq!(analysis.pairs_checked, 1);
        assert!(analysis.is_race_free(), "{:?}", analysis.races);
    }

    #[test]
    fn truly_concurrent_conflict_is_reported() {
        let mut b = ProgramBuilder::new("overlap");
        b.spawn(Payload::compute(10), vec![Dependence::write(0xA0)]);
        b.spawn(Payload::compute(10), vec![Dependence::write(0xA0)]);
        let mut spec = GraphSpec::from_program(&b.build());
        spec.edges.clear();
        // Both dispatch at cycle 0 on different cores: a WaW race.
        let records = vec![record(0, 0, 0, 10), record(1, 1, 0, 10)];
        let analysis = detect_races(&spec, &records);
        assert_eq!(analysis.races.len(), 1);
        assert!(analysis.races[0].first_access.dir.writes());
        assert!(analysis.races[0].second_access.dir.writes());
    }

    #[test]
    fn missing_record_is_skipped_not_raced() {
        let spec = diamond();
        let mut records = diamond_schedule();
        records.retain(|r| r.task != TaskId(3));
        let analysis = detect_races(&spec, &records);
        assert_eq!(analysis.pairs_skipped, 2, "1-3 and 2-3 lack a record");
        assert!(!analysis.is_race_free());
        assert!(analysis.races.is_empty());
    }

    #[test]
    fn empty_trace_on_empty_graph_is_clean() {
        let spec = GraphSpec::from_program(&ProgramBuilder::new("empty").build());
        let analysis = detect_races(&spec, &[]);
        assert!(analysis.is_race_free());
        assert_eq!(analysis.cores, 0);
    }
}
