//! Preflight static analysis of task dependence graphs.
//!
//! Every experiment's graph passes through [`analyze_graph`] (usually via the
//! [`analyze_program`] convenience) before any cell runs. The checks are the
//! classic preflight trio — cycles, dangling references, duplicates — plus a
//! scheduling-specific one: *conflict coverage*. Two tasks conflict when they
//! declare accesses to the same address and at least one writes (RaW, WaR or
//! WaW); sequential task semantics require every such pair to be ordered. The
//! analysis enumerates the conflict frontier per address (exactly the pairs
//! the reference graph builder orders) and proves each pair is covered by a
//! direct edge, a taskwait phase boundary, or a transitive edge path.
//!
//! Covering the *frontier* suffices for all conflicting pairs: per address the
//! frontier chains writer → readers → next writer, so any two conflicting
//! accesses are connected by a path of frontier pairs, and happens-before is
//! transitive.

use std::collections::HashMap;

use tis_taskmodel::{DepAddr, Dependence, TaskId, TaskProgram};

/// A task graph in analyzable form: plain edge list plus per-task metadata.
///
/// Fields are public so tests (and mutation studies) can corrupt a valid
/// graph — drop an edge, retarget one — and verify the analyses catch it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GraphSpec {
    /// Number of tasks; ids are dense `0..tasks` in spawn order.
    pub tasks: usize,
    /// Ordering edges `(from, to)`: `to` may not dispatch before `from` retires.
    pub edges: Vec<(usize, usize)>,
    /// Taskwait phase of each task; a barrier separates adjacent phases.
    pub phase: Vec<usize>,
    /// Declared dependences of each task, in declaration order.
    pub deps: Vec<Vec<Dependence>>,
}

impl GraphSpec {
    /// Extracts the analyzable form of a program: the reference dependence
    /// graph's edges and phases plus each task's declared accesses.
    pub fn from_program(program: &TaskProgram) -> Self {
        let graph = program.reference_graph();
        let n = graph.task_count();
        let mut edges = Vec::with_capacity(graph.edge_count());
        let mut phase = Vec::with_capacity(n);
        for from in 0..n {
            let id = TaskId(from as u64);
            phase.push(graph.phase(id));
            for to in graph.successors(id) {
                edges.push((from, to.raw() as usize));
            }
        }
        let mut deps = vec![Vec::new(); n];
        for spec in program.tasks() {
            deps[spec.id.raw() as usize] = spec.deps.clone();
        }
        GraphSpec { tasks: n, edges, phase, deps }
    }

    /// Successor adjacency built from the edge list (no dedup, no checks).
    fn adjacency(&self) -> Vec<Vec<usize>> {
        let mut adj = vec![Vec::new(); self.tasks];
        for &(from, to) in &self.edges {
            adj[from].push(to);
        }
        adj
    }
}

/// A structural or coverage defect found by [`analyze_graph`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// The spec's per-task vectors do not match its task count.
    Malformed {
        /// What is inconsistent.
        detail: String,
    },
    /// An edge endpoint references a task id outside `0..tasks`.
    DanglingEdge {
        /// Edge source.
        from: usize,
        /// Edge target.
        to: usize,
    },
    /// The same ordering edge appears more than once.
    DuplicateEdge {
        /// Edge source.
        from: usize,
        /// Edge target.
        to: usize,
    },
    /// A task declares the same address twice.
    DuplicateDependence {
        /// The offending task.
        task: usize,
        /// The address declared more than once.
        addr: DepAddr,
    },
    /// The ordering edges contain a cycle; no schedule can satisfy them.
    Cycle {
        /// One witness cycle: a path of task ids whose last edge closes back
        /// on the first element.
        path: Vec<usize>,
    },
    /// Two tasks conflict on an address but no edge, phase boundary, or
    /// transitive path orders them — the scheduler would be free to race them.
    UncoveredConflict {
        /// The earlier task (spawn order).
        earlier: usize,
        /// The later task (spawn order).
        later: usize,
        /// The shared address.
        addr: DepAddr,
        /// The earlier task's declared access to `addr`.
        earlier_access: Dependence,
        /// The later task's declared access to `addr`.
        later_access: Dependence,
    },
}

impl std::fmt::Display for GraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphError::Malformed { detail } => write!(f, "malformed graph spec: {detail}"),
            GraphError::DanglingEdge { from, to } => {
                write!(f, "edge ({from} -> {to}) references a task outside the graph")
            }
            GraphError::DuplicateEdge { from, to } => {
                write!(f, "edge ({from} -> {to}) appears more than once")
            }
            GraphError::DuplicateDependence { task, addr } => {
                write!(f, "task {task} declares address {addr:#x} more than once")
            }
            GraphError::Cycle { path } => {
                write!(f, "dependence cycle through tasks {path:?}")
            }
            GraphError::UncoveredConflict { earlier, later, addr, .. } => {
                write!(
                    f,
                    "tasks {earlier} and {later} conflict on {addr:#x} but nothing orders them"
                )
            }
        }
    }
}

impl std::error::Error for GraphError {}

/// Summary of a successful preflight analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GraphAnalysis {
    /// Tasks in the graph.
    pub tasks: usize,
    /// Ordering edges.
    pub edges: usize,
    /// Taskwait phases (1 for a barrier-free program, 0 for an empty one).
    pub phases: usize,
    /// Conflicting frontier pairs examined.
    pub conflict_pairs: usize,
    /// Pairs covered by a direct ordering edge.
    pub covered_by_edge: usize,
    /// Pairs covered by a taskwait phase boundary.
    pub covered_by_phase: usize,
    /// Pairs covered only by a transitive edge path.
    pub covered_transitively: usize,
}

/// Runs the full preflight analysis on a program.
///
/// Equivalent to `analyze_graph(&GraphSpec::from_program(program))`.
pub fn analyze_program(program: &TaskProgram) -> Result<GraphAnalysis, GraphError> {
    analyze_graph(&GraphSpec::from_program(program))
}

/// The preflight chokepoint: structural checks, cycle detection, and conflict
/// coverage, in that order. Returns the first defect found.
pub fn analyze_graph(spec: &GraphSpec) -> Result<GraphAnalysis, GraphError> {
    if spec.phase.len() != spec.tasks {
        return Err(GraphError::Malformed {
            detail: format!("{} phases for {} tasks", spec.phase.len(), spec.tasks),
        });
    }
    if spec.deps.len() != spec.tasks {
        return Err(GraphError::Malformed {
            detail: format!("{} dep lists for {} tasks", spec.deps.len(), spec.tasks),
        });
    }

    // Dangling and duplicate edges.
    let mut seen = std::collections::HashSet::with_capacity(spec.edges.len());
    for &(from, to) in &spec.edges {
        if from >= spec.tasks || to >= spec.tasks {
            return Err(GraphError::DanglingEdge { from, to });
        }
        if !seen.insert((from, to)) {
            return Err(GraphError::DuplicateEdge { from, to });
        }
    }

    // Duplicate declared addresses (mirrors `TaskSpec::validate`, but also
    // covers hand-built specs that never went through a builder).
    for (task, deps) in spec.deps.iter().enumerate() {
        for (i, dep) in deps.iter().enumerate() {
            if deps[..i].iter().any(|d| d.addr == dep.addr) {
                return Err(GraphError::DuplicateDependence { task, addr: dep.addr });
            }
        }
    }

    let adj = spec.adjacency();
    find_cycle(&adj)?;
    let coverage = check_conflict_coverage(spec, &adj)?;

    Ok(GraphAnalysis {
        tasks: spec.tasks,
        edges: spec.edges.len(),
        phases: spec.phase.iter().copied().max().map_or(0, |p| p + 1),
        conflict_pairs: coverage.0,
        covered_by_edge: coverage.1,
        covered_by_phase: coverage.2,
        covered_transitively: coverage.3,
    })
}

/// Iterative three-colour DFS. White = unvisited, grey = on the current DFS
/// path, black = finished. A grey→grey edge closes a cycle; the witness path
/// is the grey stack segment from the re-entered node to the top.
///
/// Iterative on an explicit stack: catalog chains run to tens of thousands of
/// tasks, far past any recursion limit.
fn find_cycle(adj: &[Vec<usize>]) -> Result<(), GraphError> {
    #[derive(Clone, Copy, PartialEq)]
    enum Colour {
        White,
        Grey,
        Black,
    }
    let mut colour = vec![Colour::White; adj.len()];
    // (node, index of the next successor to visit)
    let mut stack: Vec<(usize, usize)> = Vec::new();

    for root in 0..adj.len() {
        if colour[root] != Colour::White {
            continue;
        }
        colour[root] = Colour::Grey;
        stack.push((root, 0));
        while let Some(&mut (node, ref mut next)) = stack.last_mut() {
            if let Some(&succ) = adj[node].get(*next) {
                *next += 1;
                match colour[succ] {
                    Colour::White => {
                        colour[succ] = Colour::Grey;
                        stack.push((succ, 0));
                    }
                    Colour::Grey => {
                        let start = stack.iter().position(|&(n, _)| n == succ).unwrap();
                        let path = stack[start..].iter().map(|&(n, _)| n).collect();
                        return Err(GraphError::Cycle { path });
                    }
                    Colour::Black => {}
                }
            } else {
                colour[node] = Colour::Black;
                stack.pop();
            }
        }
    }
    Ok(())
}

/// One conflicting task pair on the per-address frontier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConflictPair {
    /// The earlier task (spawn order).
    pub earlier: usize,
    /// The later task (spawn order).
    pub later: usize,
    /// The shared address.
    pub addr: DepAddr,
}

/// Enumerates the conflict frontier: for each declared access, the unique
/// earlier tasks it conflicts with (the last writer of its address plus, for
/// writes, the readers since that write) — exactly the pairs the reference
/// graph builder orders. Any two conflicting accesses are connected through
/// frontier pairs transitively, so ordering the frontier orders everything.
pub fn conflict_frontier(spec: &GraphSpec) -> Vec<ConflictPair> {
    #[derive(Default)]
    struct AddrState {
        last_writer: Option<usize>,
        readers_since_write: Vec<usize>,
    }

    let mut addr_state: HashMap<DepAddr, AddrState> = HashMap::new();
    let mut pairs = Vec::new();
    for idx in 0..spec.tasks {
        for dep in &spec.deps[idx] {
            let st = addr_state.entry(dep.addr).or_default();
            // Unique earlier tasks this access conflicts with. An InOut writer
            // appears both as last writer and in its own reader list, so
            // dedup before emitting.
            let mut earlier: Vec<usize> = Vec::new();
            if let Some(w) = st.last_writer {
                earlier.push(w);
            }
            if dep.dir.writes() {
                for &r in &st.readers_since_write {
                    if r != idx && !earlier.contains(&r) {
                        earlier.push(r);
                    }
                }
            }
            pairs.extend(
                earlier.iter().map(|&e| ConflictPair { earlier: e, later: idx, addr: dep.addr }),
            );
            if dep.dir.writes() {
                st.last_writer = Some(idx);
                st.readers_since_write.clear();
                if dep.dir.reads() {
                    st.readers_since_write.push(idx);
                }
            } else {
                st.readers_since_write.push(idx);
            }
        }
    }
    pairs
}

/// Proves every frontier conflict pair is ordered by a direct edge, a
/// taskwait phase boundary, or a transitive edge path.
///
/// Returns `(conflict_pairs, by_edge, by_phase, transitive)`.
fn check_conflict_coverage(
    spec: &GraphSpec,
    adj: &[Vec<usize>],
) -> Result<(usize, usize, usize, usize), GraphError> {
    let edge_set: std::collections::HashSet<(usize, usize)> = spec.edges.iter().copied().collect();
    let frontier = conflict_frontier(spec);
    let pairs = frontier.len();
    let mut by_edge = 0usize;
    let mut by_phase = 0usize;
    let mut transitive = 0usize;

    for ConflictPair { earlier, later, addr } in frontier {
        if edge_set.contains(&(earlier, later)) {
            by_edge += 1;
        } else if spec.phase[earlier] != spec.phase[later] {
            by_phase += 1;
        } else if reaches(adj, earlier, later) {
            transitive += 1;
        } else {
            let access_to = |task: usize| {
                spec.deps[task]
                    .iter()
                    .find(|d| d.addr == addr)
                    .copied()
                    .expect("conflict pair tasks both declare the address")
            };
            return Err(GraphError::UncoveredConflict {
                earlier,
                later,
                addr,
                earlier_access: access_to(earlier),
                later_access: access_to(later),
            });
        }
    }
    Ok((pairs, by_edge, by_phase, transitive))
}

/// Breadth-first reachability over ordering edges. Only consulted for pairs
/// not already covered by a direct edge or phase boundary, which is rare in
/// practice (the reference builder emits direct frontier edges).
fn reaches(adj: &[Vec<usize>], from: usize, to: usize) -> bool {
    let mut visited = vec![false; adj.len()];
    let mut queue = std::collections::VecDeque::new();
    visited[from] = true;
    queue.push_back(from);
    while let Some(node) = queue.pop_front() {
        for &succ in &adj[node] {
            if succ == to {
                return true;
            }
            if !visited[succ] {
                visited[succ] = true;
                queue.push_back(succ);
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use tis_taskmodel::{Payload, ProgramBuilder};

    fn chain(n: usize) -> TaskProgram {
        let mut b = ProgramBuilder::new("chain");
        for _ in 0..n {
            b.spawn(Payload::compute(100), vec![Dependence::read_write(0x1000)]);
        }
        b.build()
    }

    #[test]
    fn clean_chain_passes_with_edge_coverage() {
        let a = analyze_program(&chain(100)).unwrap();
        assert_eq!(a.tasks, 100);
        assert_eq!(a.edges, 99);
        assert_eq!(a.conflict_pairs, 99);
        assert_eq!(a.covered_by_edge, 99);
        assert_eq!(a.covered_by_phase, 0);
        assert_eq!(a.covered_transitively, 0);
    }

    #[test]
    fn deep_chain_does_not_overflow_the_stack() {
        // The recursion-based DFS this guards against dies around a few
        // thousand frames; 50k proves the implementation is iterative.
        analyze_program(&chain(50_000)).unwrap();
    }

    #[test]
    fn dangling_edge_is_reported() {
        let mut spec = GraphSpec::from_program(&chain(3));
        spec.edges.push((1, 7));
        assert_eq!(analyze_graph(&spec), Err(GraphError::DanglingEdge { from: 1, to: 7 }));
    }

    #[test]
    fn duplicate_edge_is_reported() {
        let mut spec = GraphSpec::from_program(&chain(3));
        spec.edges.push(spec.edges[0]);
        let (from, to) = spec.edges[0];
        assert_eq!(analyze_graph(&spec), Err(GraphError::DuplicateEdge { from, to }));
    }

    #[test]
    fn duplicate_declared_address_is_reported() {
        let mut spec = GraphSpec::from_program(&chain(2));
        spec.deps[1].push(Dependence::read(0x1000));
        assert_eq!(
            analyze_graph(&spec),
            Err(GraphError::DuplicateDependence { task: 1, addr: 0x1000 })
        );
    }

    #[test]
    fn cycle_is_reported_with_a_witness_path() {
        let mut spec = GraphSpec::from_program(&chain(4));
        spec.edges.push((3, 1));
        match analyze_graph(&spec) {
            Err(GraphError::Cycle { path }) => {
                assert!(path.contains(&1) && path.contains(&3), "witness {path:?}");
                // The witness must actually be a cycle in the edge set.
                let edges: std::collections::HashSet<_> = spec.edges.iter().copied().collect();
                for i in 0..path.len() {
                    let a = path[i];
                    let b = path[(i + 1) % path.len()];
                    assert!(edges.contains(&(a, b)), "missing cycle edge {a}->{b}");
                }
            }
            other => panic!("expected cycle, got {other:?}"),
        }
    }

    #[test]
    fn dropped_edge_on_a_conflicting_pair_is_uncovered() {
        let mut spec = GraphSpec::from_program(&chain(3));
        spec.edges.retain(|&e| e != (1, 2));
        match analyze_graph(&spec) {
            Err(GraphError::UncoveredConflict { earlier: 1, later: 2, addr: 0x1000, .. }) => {}
            other => panic!("expected uncovered conflict, got {other:?}"),
        }
    }

    #[test]
    fn phase_boundary_covers_a_dropped_edge() {
        let mut b = ProgramBuilder::new("barrier");
        b.spawn(Payload::compute(10), vec![Dependence::write(0x2000)]);
        b.taskwait();
        b.spawn(Payload::compute(10), vec![Dependence::read(0x2000)]);
        let mut spec = GraphSpec::from_program(&b.build());
        spec.edges.clear();
        let a = analyze_graph(&spec).unwrap();
        assert_eq!(a.conflict_pairs, 1);
        assert_eq!(a.covered_by_phase, 1);
    }

    #[test]
    fn transitive_path_covers_a_dropped_direct_edge() {
        // Task 0 writes A, task 1 reads A and writes B, task 2 reads B and
        // writes A. Dropping the direct WaW edge 0->2 leaves the path
        // 0->1->2, which still orders the (0, 2) conflict on A.
        let mut b = ProgramBuilder::new("transitive");
        b.spawn(Payload::compute(10), vec![Dependence::write(0xA0)]);
        b.spawn(Payload::compute(10), vec![Dependence::read(0xA0), Dependence::write(0xB0)]);
        b.spawn(Payload::compute(10), vec![Dependence::read(0xB0), Dependence::write(0xA0)]);
        let mut spec = GraphSpec::from_program(&b.build());
        // Conflicts: (0,1) RaW on A, (1,2) RaW on B, (1,2) WaR on A, (0,2) WaW on A.
        // Drop the direct 0->2 edge if present; path 0->1->2 still covers it.
        spec.edges.retain(|&e| e != (0, 2));
        let a = analyze_graph(&spec).unwrap();
        assert_eq!(a.conflict_pairs, 4);
        assert_eq!(a.covered_transitively, 1);
    }

    #[test]
    fn empty_program_is_clean() {
        let a = analyze_program(&ProgramBuilder::new("empty").build()).unwrap();
        assert_eq!(a.tasks, 0);
        assert_eq!(a.phases, 0);
    }
}
