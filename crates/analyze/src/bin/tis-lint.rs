//! CI gate for the workspace determinism rules.
//!
//! Scans every `.rs` file in the workspace against the rules in
//! [`tis_analyze::lint`] and exits non-zero if any violation is found.
//! Optionally takes the workspace root as the sole argument (defaults to the
//! repository this binary was built from).

use std::path::PathBuf;
use std::process::ExitCode;

use tis_analyze::lint::{default_rules, lint_workspace};

fn main() -> ExitCode {
    let root = std::env::args().nth(1).map(PathBuf::from).unwrap_or_else(|| {
        // crates/analyze -> workspace root.
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
    });
    let findings = match lint_workspace(&root, &default_rules()) {
        Ok(findings) => findings,
        Err(e) => {
            eprintln!("tis-lint: failed to scan {}: {e}", root.display());
            return ExitCode::FAILURE;
        }
    };
    if findings.is_empty() {
        println!("tis-lint: workspace clean ({} determinism rules)", default_rules().len());
        return ExitCode::SUCCESS;
    }
    for f in &findings {
        println!("{f}");
    }
    eprintln!("tis-lint: {} violation(s)", findings.len());
    ExitCode::FAILURE
}
