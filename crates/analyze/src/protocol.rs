//! Exhaustive model check of the coherence protocol tables.
//!
//! The runtime invariant checker in `tis-mem` (`check_coherence_invariants`)
//! only sees the states a particular workload happens to visit. This module
//! closes the gap: it enumerates **every** reachable global state of one
//! cache line — a per-core MESI state vector plus the home directory entry —
//! under the pure transition tables [`tis_mem::mesi::local_transition`],
//! [`tis_mem::mesi::snoop_transition`] and
//! [`tis_mem::directory::dir_transition`], and proves two invariants over the
//! whole space:
//!
//! - **SWMR** (single writer / multiple readers): at most one core holds the
//!   line writable (M/E), and a writable copy excludes every other copy.
//! - **Directory precision**: the directory entry names exactly the holders —
//!   `Uncached` means no copies, `Owned(o)` means core `o` alone holds M/E,
//!   `Shared(s)` means exactly the cores in `s` hold clean Shared copies.
//!
//! Lines are independent in both memory models, so one line generalises. The
//! reachable space for `n >= 2` cores is exactly `2^n + 2n` states (all-invalid,
//! `n × {E, M}` owned states, and one `Shared(s)` per non-empty sharer set);
//! a test pins that count so a protocol change that grows or shrinks the
//! space is noticed.

use tis_mem::directory::{dir_transition, DirAction, DirOp, DirState};
use tis_mem::mesi::{local_transition, snoop_transition, AccessKind, BusOp, LocalAction};
use tis_mem::MesiState;

/// An invariant breach found in a global `(caches, directory)` state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolViolation {
    /// Two cores hold copies and at least one of them is writable.
    SwmrViolation {
        /// The core holding a writable (M/E) copy.
        writer: usize,
        /// Another core simultaneously holding any copy.
        other: usize,
        /// That other core's cache state.
        other_state: MesiState,
    },
    /// The directory entry disagrees with a core's actual cache state.
    DirectoryImprecise {
        /// The core whose cache state contradicts the directory.
        core: usize,
        /// That core's cache state.
        cache_state: MesiState,
        /// The directory entry.
        dir: DirState,
    },
}

impl std::fmt::Display for ProtocolViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolViolation::SwmrViolation { writer, other, other_state } => write!(
                f,
                "SWMR violated: core {writer} holds a writable copy while core {other} is {other_state:?}"
            ),
            ProtocolViolation::DirectoryImprecise { core, cache_state, dir } => write!(
                f,
                "directory imprecise: core {core} is {cache_state:?} but the directory says {dir:?}"
            ),
        }
    }
}

impl std::error::Error for ProtocolViolation {}

/// Checks SWMR and directory precision for one global state.
///
/// Public so runtime layers (and mutation tests that corrupt a
/// [`tis_mem::SharerSet`] bit) can apply the exact invariant the model check proves.
pub fn check_global_invariants(
    caches: &[MesiState],
    dir: DirState,
) -> Result<(), ProtocolViolation> {
    // SWMR: a writable copy excludes every other copy.
    for (writer, &ws) in caches.iter().enumerate() {
        if !matches!(ws, MesiState::Modified | MesiState::Exclusive) {
            continue;
        }
        for (other, &os) in caches.iter().enumerate() {
            if other != writer && os != MesiState::Invalid {
                return Err(ProtocolViolation::SwmrViolation { writer, other, other_state: os });
            }
        }
    }

    // Directory precision: the entry names exactly the holders.
    for (core, &cs) in caches.iter().enumerate() {
        let expected_holder = match dir {
            DirState::Uncached => false,
            DirState::Owned(o) => core == o,
            DirState::Shared(s) => s.contains(core),
        };
        let precise = match (expected_holder, cs) {
            (false, MesiState::Invalid) => true,
            (false, _) => false,
            (true, MesiState::Invalid) => false,
            (true, MesiState::Shared) => matches!(dir, DirState::Shared(_)),
            (true, MesiState::Modified | MesiState::Exclusive) => {
                matches!(dir, DirState::Owned(_))
            }
        };
        if !precise {
            return Err(ProtocolViolation::DirectoryImprecise { core, cache_state: cs, dir });
        }
    }
    Ok(())
}

/// Outcome of an exhaustive reachability run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelCheckReport {
    /// Cores modelled.
    pub cores: usize,
    /// Distinct reachable global states, all invariant-checked.
    pub states_explored: usize,
    /// Transitions taken (edges of the reachability graph).
    pub transitions: usize,
    /// Which `(DirState, DirOp)` shape pairs were driven through
    /// `dir_transition`, indexed `[Uncached|Owned|Shared][GetS|GetM|Evict]`.
    pub dir_pairs: [[bool; 3]; 3],
    /// Which `(MesiState, AccessKind)` pairs were driven through
    /// `local_transition`.
    pub local_pairs_covered: usize,
}

impl ModelCheckReport {
    /// Count of distinct `(DirState, DirOp)` shape pairs exercised.
    pub fn dir_pairs_covered(&self) -> usize {
        self.dir_pairs.iter().flatten().filter(|&&c| c).count()
    }

    /// True when every *reachable* `(DirState, DirOp)` shape pair was
    /// exercised. `(Uncached, Evict)` is provably unreachable under a precise
    /// directory — an eviction implies a holder, a holder implies a non-
    /// `Uncached` entry — so full coverage is 8 of the 9 shape pairs.
    pub fn full_reachable_dir_coverage(&self) -> bool {
        let unreachable = [(0usize, 2usize)]; // (Uncached, Evict)
        (0..3).all(|s| {
            (0..3).all(|o| self.dir_pairs[s][o] != unreachable.contains(&(s, o)))
        })
    }
}

fn dir_shape(d: DirState) -> usize {
    match d {
        DirState::Uncached => 0,
        DirState::Owned(_) => 1,
        DirState::Shared(_) => 2,
    }
}

fn op_shape(op: DirOp) -> usize {
    match op {
        DirOp::GetS(_) => 0,
        DirOp::GetM(_) => 1,
        DirOp::Evict(_) => 2,
    }
}

/// One global state of the modelled line.
#[derive(Clone)]
struct Global {
    caches: Vec<MesiState>,
    dir: DirState,
}

impl Global {
    /// Canonical key: 2 bits per cache state, then the directory entry.
    /// `SharerSet` supports 256 cores but the model check never needs more
    /// than 64, so the sharer bits fit one word.
    fn key(&self) -> (u64, u8, u64) {
        let mut bits = 0u64;
        for (i, &s) in self.caches.iter().enumerate() {
            let code = match s {
                MesiState::Invalid => 0u64,
                MesiState::Shared => 1,
                MesiState::Exclusive => 2,
                MesiState::Modified => 3,
            };
            bits |= code << (2 * i);
        }
        match self.dir {
            DirState::Uncached => (bits, 0, 0),
            DirState::Owned(o) => (bits, 1, o as u64),
            DirState::Shared(s) => {
                let mut set = 0u64;
                for c in s.iter() {
                    set |= 1 << c;
                }
                (bits, 2, set)
            }
        }
    }
}

/// Applies a directory action's remote side effects through the snoop table,
/// keeping the two protocol tables honest against each other.
fn apply_dir_action(caches: &mut [MesiState], action: DirAction) {
    match action {
        DirAction::FetchFromMemory | DirAction::None => {}
        DirAction::DowngradeOwner(o) => {
            caches[o] = snoop_transition(caches[o], BusOp::BusRead).1;
        }
        DirAction::RecallOwner(o) => {
            caches[o] = snoop_transition(caches[o], BusOp::BusReadExclusive).1;
        }
        DirAction::InvalidateForUpgrade(s) | DirAction::InvalidateAndFetch(s) => {
            for c in s.iter() {
                caches[c] = snoop_transition(caches[c], BusOp::BusReadExclusive).1;
            }
        }
    }
}

/// Exhaustively enumerates every reachable global state of one line for
/// `cores` cores, checking [`check_global_invariants`] at each state.
///
/// From every state, every core attempts every [`AccessKind`] (misses route
/// through `dir_transition`, remote effects through `snoop_transition`) and
/// every holder attempts an eviction.
///
/// Returns the first invariant violation as an error — a correct protocol
/// yields `Ok` with the full reachable space enumerated.
pub fn model_check_protocol(cores: usize) -> Result<ModelCheckReport, ProtocolViolation> {
    assert!(
        (1..=16).contains(&cores),
        "model check is exponential in cores; 1..=16 covers every real configuration"
    );

    let initial = Global { caches: vec![MesiState::Invalid; cores], dir: DirState::Uncached };
    let mut seen = std::collections::HashSet::new();
    seen.insert(initial.key());
    let mut frontier = vec![initial];
    let mut report = ModelCheckReport {
        cores,
        states_explored: 0,
        transitions: 0,
        dir_pairs: [[false; 3]; 3],
        local_pairs_covered: 0,
    };
    let mut local_pairs = std::collections::HashSet::new();

    while let Some(state) = frontier.pop() {
        report.states_explored += 1;
        check_global_invariants(&state.caches, state.dir)?;

        let mut successors: Vec<Global> = Vec::new();

        for core in 0..cores {
            for kind in [AccessKind::Read, AccessKind::Write, AccessKind::Atomic] {
                local_pairs.insert((state.caches[core] as u8, kind as u8));
                let (action, hit_next) = local_transition(state.caches[core], kind);
                let mut next = state.clone();
                match action {
                    LocalAction::Hit => {
                        next.caches[core] = hit_next;
                    }
                    LocalAction::IssueBusRead => {
                        let op = DirOp::GetS(core);
                        report.dir_pairs[dir_shape(next.dir)][op_shape(op)] = true;
                        let (dir_action, dir_next) = dir_transition(next.dir, op);
                        apply_dir_action(&mut next.caches, dir_action);
                        // Same promotion rule as the snoop model: sole holder
                        // reads straight to Exclusive.
                        next.caches[core] = if dir_next == DirState::Owned(core) {
                            MesiState::Exclusive
                        } else {
                            MesiState::Shared
                        };
                        next.dir = dir_next;
                    }
                    LocalAction::IssueBusReadExclusive => {
                        let op = DirOp::GetM(core);
                        report.dir_pairs[dir_shape(next.dir)][op_shape(op)] = true;
                        let (dir_action, dir_next) = dir_transition(next.dir, op);
                        apply_dir_action(&mut next.caches, dir_action);
                        next.caches[core] = MesiState::Modified;
                        next.dir = dir_next;
                    }
                }
                successors.push(next);
            }

            if state.caches[core] != MesiState::Invalid {
                let mut next = state.clone();
                let op = DirOp::Evict(core);
                report.dir_pairs[dir_shape(next.dir)][op_shape(op)] = true;
                let (dir_action, dir_next) = dir_transition(next.dir, op);
                apply_dir_action(&mut next.caches, dir_action);
                next.caches[core] = MesiState::Invalid;
                next.dir = dir_next;
                successors.push(next);
            }
        }

        for next in successors {
            report.transitions += 1;
            if seen.insert(next.key()) {
                frontier.push(next);
            }
        }
    }

    report.local_pairs_covered = local_pairs.len();
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tis_mem::SharerSet;

    #[test]
    fn reachable_space_is_exactly_2n_plus_2_to_the_n() {
        for cores in 2..=8 {
            let report = model_check_protocol(cores).unwrap();
            assert_eq!(
                report.states_explored,
                (1usize << cores) + 2 * cores,
                "unexpected reachable-state count for {cores} cores"
            );
        }
        // A lone core can never be downgraded to Shared (that takes a second
        // reader), so its space is just {Invalid, Exclusive, Modified}.
        assert_eq!(model_check_protocol(1).unwrap().states_explored, 3);
    }

    #[test]
    fn full_reachable_dir_pair_coverage_and_all_local_pairs() {
        let report = model_check_protocol(4).unwrap();
        assert!(report.full_reachable_dir_coverage(), "pairs: {:?}", report.dir_pairs);
        assert_eq!(report.dir_pairs_covered(), 8);
        // 4 MESI states x 3 access kinds, every combination driven.
        assert_eq!(report.local_pairs_covered, 12);
    }

    #[test]
    fn uncached_evict_is_unreachable_but_defensively_tolerated() {
        let report = model_check_protocol(4).unwrap();
        assert!(!report.dir_pairs[0][2], "(Uncached, Evict) must be unreachable");
        // The table still tolerates the desync defensively.
        let (action, next) = dir_transition(DirState::Uncached, DirOp::Evict(1));
        assert_eq!(action, DirAction::None);
        assert_eq!(next, DirState::Uncached);
    }

    #[test]
    fn ghost_sharer_bit_is_caught() {
        // Cores 0 and 2 legitimately share; corrupt the entry by setting a
        // ghost bit for core 1, which holds nothing.
        let caches =
            [MesiState::Shared, MesiState::Invalid, MesiState::Shared, MesiState::Invalid];
        let mut s = SharerSet::only(0);
        s.insert(2);
        assert!(check_global_invariants(&caches, DirState::Shared(s)).is_ok());
        s.insert(1);
        let err = check_global_invariants(&caches, DirState::Shared(s)).unwrap_err();
        assert_eq!(
            err,
            ProtocolViolation::DirectoryImprecise {
                core: 1,
                cache_state: MesiState::Invalid,
                dir: DirState::Shared(s),
            }
        );
    }

    #[test]
    fn dropped_sharer_bit_is_caught() {
        let caches = [MesiState::Shared, MesiState::Invalid, MesiState::Shared];
        let full = {
            let mut s = SharerSet::only(0);
            s.insert(2);
            s
        };
        let corrupted = full.without(2);
        let err = check_global_invariants(&caches, DirState::Shared(corrupted)).unwrap_err();
        assert!(
            matches!(err, ProtocolViolation::DirectoryImprecise { core: 2, .. }),
            "dropping a real sharer must be imprecise: {err:?}"
        );
    }

    #[test]
    fn two_writers_violate_swmr() {
        let caches = [MesiState::Modified, MesiState::Modified];
        let err = check_global_invariants(&caches, DirState::Owned(0)).unwrap_err();
        assert!(matches!(err, ProtocolViolation::SwmrViolation { .. }));
    }

    #[test]
    fn writer_alongside_reader_violates_swmr() {
        let caches = [MesiState::Exclusive, MesiState::Shared];
        let err = check_global_invariants(&caches, DirState::Owned(0)).unwrap_err();
        assert_eq!(
            err,
            ProtocolViolation::SwmrViolation {
                writer: 0,
                other: 1,
                other_state: MesiState::Shared,
            }
        );
    }
}
