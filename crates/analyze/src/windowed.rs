//! Incremental preflight for streamed task sources.
//!
//! [`analyze_graph`](crate::analyze_graph) needs the whole program materialized: it builds the
//! reference graph, enumerates every conflict pair, and proves coverage by edge, phase, or
//! transitive path. A streamed million-task workload never exists in memory all at once, so the
//! streaming entry points use this module instead: a [`WindowedPreflight`] observes each spawn
//! as the source generates it, holding only a bounded history window of address state.
//!
//! # What a window can and cannot prove
//!
//! Within the window the checker proves exactly what the full analysis proves *structurally*:
//! dense sequential IDs, the per-task dependence cap, and no duplicate declared addresses. For
//! conflict coverage it enumerates the same writer/reader frontier as
//! [`conflict_frontier`](crate::conflict_frontier), but only over pairs whose earlier endpoint
//! is still inside the window; pairs separated by a `taskwait` are classified as phase-covered,
//! the rest as window-covered.
//!
//! What it *cannot* see is a conflict whose earlier access aged out of the window before the
//! later task spawned. Those are counted ([`WindowedAnalysis::aged_out_addresses`]), not
//! errored, because in a streamed run they are still safe by construction: a streamed task may
//! only depend on earlier tasks, so at the moment the later task is submitted its conflicting
//! predecessor is either still in the tracker (which orders the pair with a real edge) or
//! already retired (which is a happens-before ordering by definition). The window bounds what
//! preflight can *prove*, not what the runtime *enforces*.

use std::collections::HashMap;

use tis_taskmodel::{DepAddr, Dependence, MAX_DEPENDENCES};

use crate::graph::GraphError;

/// Per-address frontier state, the incremental analogue of the map inside
/// [`conflict_frontier`](crate::conflict_frontier).
#[derive(Debug, Clone, Default)]
struct AddrState {
    /// Most recent writer of the address: `(task id, phase)`.
    last_writer: Option<(u64, usize)>,
    /// Readers since that write: `(task id, phase)`.
    readers_since_write: Vec<(u64, usize)>,
    /// Most recent task (of any direction) to touch the address, for age-out.
    last_touch: u64,
}

/// Incremental structural + conflict-frontier checker for a streamed spawn sequence.
///
/// Feed every spawn through [`observe_spawn`](WindowedPreflight::observe_spawn) and every
/// barrier through [`observe_taskwait`](WindowedPreflight::observe_taskwait); call
/// [`finish`](WindowedPreflight::finish) when the source is exhausted. Memory stays
/// `O(window x max_deps)` regardless of how many tasks stream through.
#[derive(Debug, Clone)]
pub struct WindowedPreflight {
    /// History window in tasks: address state older than this is discarded.
    window: usize,
    /// Next expected task id (ids must be dense `0, 1, 2, ...` in spawn order).
    next_id: u64,
    /// Current taskwait phase.
    phase: usize,
    taskwaits: u64,
    frontier: HashMap<DepAddr, AddrState>,
    conflict_pairs: u64,
    covered_in_window: u64,
    covered_by_phase: u64,
    aged_out_addresses: u64,
    peak_tracked_addresses: usize,
}

/// Summary of a completed windowed preflight.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WindowedAnalysis {
    /// Tasks observed.
    pub tasks: u64,
    /// Taskwait barriers observed.
    pub taskwaits: u64,
    /// Phases the stream was divided into (`taskwaits + 1`).
    pub phases: u64,
    /// Conflict pairs enumerated inside the window (same-address, at least one write).
    pub conflict_pairs: u64,
    /// Conflict pairs whose endpoints share a phase: the runtime must order these with a real
    /// dependence edge, and the windowed frontier proves the pair was visible to it.
    pub covered_in_window: u64,
    /// Conflict pairs separated by at least one `taskwait`: ordered by the barrier.
    pub covered_by_phase: u64,
    /// Addresses whose frontier state aged out of the window while the stream continued. Any
    /// later conflict on such an address is unprovable per-window (though still ordered by
    /// construction in a streamed run — see the module docs).
    pub aged_out_addresses: u64,
    /// History window the analysis ran with.
    pub window: usize,
    /// High-water mark of tracked addresses — the checker's own memory proxy.
    pub peak_tracked_addresses: usize,
}

impl WindowedPreflight {
    /// Creates a checker with a history window of `window` tasks (clamped to at least 1).
    pub fn new(window: usize) -> Self {
        WindowedPreflight {
            window: window.max(1),
            next_id: 0,
            phase: 0,
            taskwaits: 0,
            frontier: HashMap::new(),
            conflict_pairs: 0,
            covered_in_window: 0,
            covered_by_phase: 0,
            aged_out_addresses: 0,
            peak_tracked_addresses: 0,
        }
    }

    /// Observes the next spawned task. `sw_id` must be the next dense id; `deps` are the
    /// task's declared accesses in declaration order.
    pub fn observe_spawn(&mut self, sw_id: u64, deps: &[Dependence]) -> Result<(), GraphError> {
        if sw_id != self.next_id {
            return Err(GraphError::Malformed {
                detail: format!(
                    "streamed task ids must be dense and sequential: expected T{}, got T{sw_id}",
                    self.next_id
                ),
            });
        }
        if deps.len() > MAX_DEPENDENCES {
            return Err(GraphError::Malformed {
                detail: format!(
                    "T{sw_id} declares {} dependences, above the descriptor limit of {MAX_DEPENDENCES}",
                    deps.len()
                ),
            });
        }
        for (i, d) in deps.iter().enumerate() {
            if deps[..i].iter().any(|earlier| earlier.addr == d.addr) {
                return Err(GraphError::DuplicateDependence { task: sw_id as usize, addr: d.addr });
            }
        }
        self.next_id += 1;

        for d in deps {
            let state = self.frontier.entry(d.addr).or_default();
            // Enumerate the frontier pairs this access closes, mirroring `conflict_frontier`:
            // a write conflicts with the previous writer and every reader since; a read
            // conflicts with the previous writer only.
            if d.dir.writes() {
                if let Some((w, wp)) = state.last_writer {
                    Self::classify(
                        self.phase,
                        wp,
                        &mut self.conflict_pairs,
                        &mut self.covered_in_window,
                        &mut self.covered_by_phase,
                    );
                    debug_assert!(w < sw_id);
                }
                for &(r, rp) in &state.readers_since_write {
                    debug_assert!(r < sw_id);
                    Self::classify(
                        self.phase,
                        rp,
                        &mut self.conflict_pairs,
                        &mut self.covered_in_window,
                        &mut self.covered_by_phase,
                    );
                }
                // An InOut task's read needs no separate frontier entry: the write already
                // pairs every later access with it through `last_writer`.
                state.last_writer = Some((sw_id, self.phase));
                state.readers_since_write.clear();
            } else if let Some((_, wp)) = state.last_writer {
                Self::classify(
                    self.phase,
                    wp,
                    &mut self.conflict_pairs,
                    &mut self.covered_in_window,
                    &mut self.covered_by_phase,
                );
                state.readers_since_write.push((sw_id, self.phase));
            } else {
                state.readers_since_write.push((sw_id, self.phase));
            }
            state.last_touch = sw_id;
        }
        self.peak_tracked_addresses = self.peak_tracked_addresses.max(self.frontier.len());

        // Amortised age-out sweep: once per window's worth of spawns, drop address state no
        // task inside the window has touched. Between sweeps the map holds at most two
        // windows' worth of addresses, so memory stays bounded.
        if self.next_id.is_multiple_of(self.window as u64) {
            let horizon = self.next_id.saturating_sub(self.window as u64);
            let before = self.frontier.len();
            self.frontier.retain(|_, s| s.last_touch >= horizon);
            self.aged_out_addresses += (before - self.frontier.len()) as u64;
        }
        Ok(())
    }

    /// Observes a `taskwait` barrier: later tasks are phase-ordered after earlier ones.
    pub fn observe_taskwait(&mut self) {
        self.taskwaits += 1;
        self.phase += 1;
    }

    /// Finishes the stream and returns the summary.
    pub fn finish(self) -> WindowedAnalysis {
        WindowedAnalysis {
            tasks: self.next_id,
            taskwaits: self.taskwaits,
            phases: self.taskwaits + 1,
            conflict_pairs: self.conflict_pairs,
            covered_in_window: self.covered_in_window,
            covered_by_phase: self.covered_by_phase,
            aged_out_addresses: self.aged_out_addresses,
            window: self.window,
            peak_tracked_addresses: self.peak_tracked_addresses,
        }
    }

    fn classify(
        current_phase: usize,
        earlier_phase: usize,
        pairs: &mut u64,
        in_window: &mut u64,
        by_phase: &mut u64,
    ) {
        *pairs += 1;
        if earlier_phase < current_phase {
            *by_phase += 1;
        } else {
            *in_window += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphSpec;
    use tis_taskmodel::{Payload, ProgramBuilder};

    fn observe_program(pf: &mut WindowedPreflight, b: &ProgramBuilder) {
        let program = b.clone().build();
        for op in program.ops() {
            match op {
                tis_taskmodel::ProgramOp::Spawn(spec) => {
                    pf.observe_spawn(spec.id.raw(), &spec.deps).expect("valid spawn")
                }
                tis_taskmodel::ProgramOp::TaskWait => pf.observe_taskwait(),
            }
        }
    }

    #[test]
    fn matches_full_frontier_when_window_covers_the_program() {
        let mut b = ProgramBuilder::new("chain");
        for _ in 0..20 {
            b.spawn(Payload::compute(100), vec![Dependence::read_write(0x100)]);
        }
        b.taskwait();
        for _ in 0..5 {
            b.spawn(Payload::compute(100), vec![Dependence::read_write(0x100)]);
        }
        let mut pf = WindowedPreflight::new(1024);
        observe_program(&mut pf, &b);
        let a = pf.finish();
        let full = crate::conflict_frontier(&GraphSpec::from_program(&b.build()));
        assert_eq!(a.conflict_pairs, full.len() as u64);
        assert_eq!(a.tasks, 25);
        assert_eq!(a.taskwaits, 1);
        assert_eq!(a.phases, 2);
        // Exactly one frontier pair crosses the barrier (writer chain: T19 -> T20).
        assert_eq!(a.covered_by_phase, 1);
        assert_eq!(a.covered_in_window + a.covered_by_phase, a.conflict_pairs);
        assert_eq!(a.aged_out_addresses, 0);
    }

    #[test]
    fn rejects_non_dense_ids_duplicate_addresses_and_dep_overflow() {
        let mut pf = WindowedPreflight::new(8);
        pf.observe_spawn(0, &[Dependence::write(0x10)]).unwrap();
        assert!(matches!(pf.observe_spawn(2, &[]), Err(GraphError::Malformed { .. })));

        let mut pf = WindowedPreflight::new(8);
        let dup = [Dependence::read(0x40), Dependence::write(0x40)];
        assert!(matches!(
            pf.observe_spawn(0, &dup),
            Err(GraphError::DuplicateDependence { task: 0, .. })
        ));

        let mut pf = WindowedPreflight::new(8);
        let too_many: Vec<_> = (0..MAX_DEPENDENCES as u64 + 1).map(|i| Dependence::write(i * 64)).collect();
        assert!(matches!(pf.observe_spawn(0, &too_many), Err(GraphError::Malformed { .. })));
    }

    #[test]
    fn aged_out_state_is_counted_not_errored() {
        // Touch one address, then stream enough disjoint tasks to push it out of the window.
        let mut pf = WindowedPreflight::new(16);
        pf.observe_spawn(0, &[Dependence::write(0xAAAA_0000)]).unwrap();
        for i in 1..64u64 {
            pf.observe_spawn(i, &[Dependence::write(0x100 + i * 64)]).unwrap();
        }
        let a = pf.finish();
        assert!(a.aged_out_addresses > 0, "stale addresses must age out, got {a:?}");
        assert!(a.peak_tracked_addresses <= 2 * 16 + 1, "frontier must stay O(window), got {a:?}");
        // The writes were all to distinct addresses: no conflicts at all.
        assert_eq!(a.conflict_pairs, 0);
    }

    #[test]
    fn read_read_does_not_conflict_but_raw_war_waw_do() {
        let mut pf = WindowedPreflight::new(64);
        pf.observe_spawn(0, &[Dependence::write(0x100)]).unwrap(); // writer
        pf.observe_spawn(1, &[Dependence::read(0x100)]).unwrap(); // RaW with T0
        pf.observe_spawn(2, &[Dependence::read(0x100)]).unwrap(); // RaW with T0, no pair with T1
        pf.observe_spawn(3, &[Dependence::write(0x100)]).unwrap(); // WaW T0 + WaR T1, T2
        let a = pf.finish();
        assert_eq!(a.conflict_pairs, 5);
        assert_eq!(a.covered_in_window, 5);
        assert_eq!(a.covered_by_phase, 0);
    }
}
