//! The RoCC instruction format (Figure 1) and the custom task-scheduling instruction set
//! (Table I).
//!
//! Rocket Core's RoCC interface lets an accelerator claim one of four `custom0..custom3` major
//! opcodes. An instruction word carries two optional source registers, an optional destination
//! register, three bits saying which of those are used, and a 7-bit `funct7` field selecting the
//! accelerator operation:
//!
//! ```text
//!  31      25 24  20 19  15 14 13 12 11   7 6      0
//! +----------+------+------+--+---+--+------+--------+
//! |  funct7  | rs2  | rs1  |xd|xs1|xs2|  rd  | opcode |
//! +----------+------+------+--+---+--+------+--------+
//! ```
//!
//! The seven task-scheduling operations of Table I are encoded in `funct7`. The concrete
//! numbering is our choice (the paper does not publish it); what matters — and what the tests
//! pin down — is that the fields round-trip and that each operation declares exactly the
//! registers its semantics need (e.g. *Retire Task* has no destination register, which is why
//! the paper made it blocking).

/// The RISC-V `custom0` major opcode claimed by the Picos Delegate.
pub const CUSTOM0_OPCODE: u32 = 0b000_1011;

/// The seven custom task-scheduling operations of Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TaskSchedOp {
    /// Announce an upcoming submission of `rs1` non-zero packets.
    SubmissionRequest,
    /// Submit a single 32-bit packet (low half of `rs1`).
    SubmitPacket,
    /// Submit three 32-bit packets packed into `rs1` (two) and `rs2` (one).
    SubmitThreePackets,
    /// Ask Picos Manager to route one ready descriptor to this core's private ready queue.
    ReadyTaskRequest,
    /// Return the SW ID at the front of this core's private ready queue (peek).
    FetchSwId,
    /// Return the Picos ID at the front of the queue and pop it (requires a prior successful
    /// `FetchSwId`).
    FetchPicosId,
    /// Report the retirement of the task whose Picos ID is in `rs1`.
    RetireTask,
}

impl TaskSchedOp {
    /// All operations, in Table I order.
    pub const ALL: [TaskSchedOp; 7] = [
        TaskSchedOp::SubmissionRequest,
        TaskSchedOp::SubmitPacket,
        TaskSchedOp::SubmitThreePackets,
        TaskSchedOp::ReadyTaskRequest,
        TaskSchedOp::FetchSwId,
        TaskSchedOp::FetchPicosId,
        TaskSchedOp::RetireTask,
    ];

    /// The `funct7` encoding of the operation.
    pub fn funct7(self) -> u32 {
        match self {
            TaskSchedOp::SubmissionRequest => 0x01,
            TaskSchedOp::SubmitPacket => 0x02,
            TaskSchedOp::SubmitThreePackets => 0x03,
            TaskSchedOp::ReadyTaskRequest => 0x04,
            TaskSchedOp::FetchSwId => 0x05,
            TaskSchedOp::FetchPicosId => 0x06,
            TaskSchedOp::RetireTask => 0x07,
        }
    }

    /// Decodes a `funct7` value back into an operation.
    pub fn from_funct7(funct7: u32) -> Option<TaskSchedOp> {
        TaskSchedOp::ALL.into_iter().find(|op| op.funct7() == funct7)
    }

    /// Whether the operation writes a result register (`xd`). All non-blocking operations do,
    /// because they must report the failure flag; *Retire Task* deliberately does not, which is
    /// what lets it be blocking without increasing register pressure (Section IV-B).
    pub fn uses_rd(self) -> bool {
        !matches!(self, TaskSchedOp::RetireTask)
    }

    /// Whether the operation reads `rs1`.
    pub fn uses_rs1(self) -> bool {
        matches!(
            self,
            TaskSchedOp::SubmissionRequest
                | TaskSchedOp::SubmitPacket
                | TaskSchedOp::SubmitThreePackets
                | TaskSchedOp::RetireTask
        )
    }

    /// Whether the operation reads `rs2`.
    pub fn uses_rs2(self) -> bool {
        matches!(self, TaskSchedOp::SubmitThreePackets)
    }

    /// Whether the instruction is non-blocking (returns a failure flag instead of stalling).
    pub fn is_non_blocking(self) -> bool {
        !matches!(self, TaskSchedOp::RetireTask)
    }

    /// Short mnemonic used in traces and the Table-I harness.
    pub fn mnemonic(self) -> &'static str {
        match self {
            TaskSchedOp::SubmissionRequest => "sub.req",
            TaskSchedOp::SubmitPacket => "sub.pkt",
            TaskSchedOp::SubmitThreePackets => "sub.pkt3",
            TaskSchedOp::ReadyTaskRequest => "rdy.req",
            TaskSchedOp::FetchSwId => "fetch.swid",
            TaskSchedOp::FetchPicosId => "fetch.pid",
            TaskSchedOp::RetireTask => "retire",
        }
    }

    /// One-line description matching Table I of the paper.
    pub fn description(self) -> &'static str {
        match self {
            TaskSchedOp::SubmissionRequest => {
                "informs the system that the core will attempt to submit a task"
            }
            TaskSchedOp::SubmitPacket => "submits a single 32-bit wide submission packet",
            TaskSchedOp::SubmitThreePackets => "submits three 32-bit wide submission packets",
            TaskSchedOp::ReadyTaskRequest => {
                "requests one ready-task packet be moved to the executing core's queue"
            }
            TaskSchedOp::FetchSwId => "returns the SW ID at the front of the core's ready queue",
            TaskSchedOp::FetchPicosId => {
                "returns the Picos ID at the front of the ready queue and pops it"
            }
            TaskSchedOp::RetireTask => "informs the system that the task with the given Picos ID retired",
        }
    }
}

/// A decoded RoCC instruction word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoccInstruction {
    /// Accelerator operation selector.
    pub funct7: u32,
    /// Second source register index.
    pub rs2: u32,
    /// First source register index.
    pub rs1: u32,
    /// Whether the instruction writes `rd`.
    pub xd: bool,
    /// Whether the instruction reads `rs1`.
    pub xs1: bool,
    /// Whether the instruction reads `rs2`.
    pub xs2: bool,
    /// Destination register index.
    pub rd: u32,
    /// Major opcode (`custom0..custom3`).
    pub opcode: u32,
}

impl RoccInstruction {
    /// Builds the canonical instruction word for a task-scheduling operation using registers
    /// `rd`, `rs1`, `rs2` (register indices 0–31).
    ///
    /// # Panics
    ///
    /// Panics if a register index exceeds 31.
    pub fn for_op(op: TaskSchedOp, rd: u32, rs1: u32, rs2: u32) -> Self {
        assert!(rd < 32 && rs1 < 32 && rs2 < 32, "register indices are 5 bits");
        RoccInstruction {
            funct7: op.funct7(),
            rs2,
            rs1,
            xd: op.uses_rd(),
            xs1: op.uses_rs1(),
            xs2: op.uses_rs2(),
            rd,
            opcode: CUSTOM0_OPCODE,
        }
    }

    /// Encodes the instruction into its 32-bit word (Figure 1 layout).
    pub fn encode(&self) -> u32 {
        (self.funct7 & 0x7f) << 25
            | (self.rs2 & 0x1f) << 20
            | (self.rs1 & 0x1f) << 15
            | (self.xd as u32) << 14
            | (self.xs1 as u32) << 13
            | (self.xs2 as u32) << 12
            | (self.rd & 0x1f) << 7
            | (self.opcode & 0x7f)
    }

    /// Decodes a 32-bit instruction word.
    pub fn decode(word: u32) -> Self {
        RoccInstruction {
            funct7: (word >> 25) & 0x7f,
            rs2: (word >> 20) & 0x1f,
            rs1: (word >> 15) & 0x1f,
            xd: (word >> 14) & 1 == 1,
            xs1: (word >> 13) & 1 == 1,
            xs2: (word >> 12) & 1 == 1,
            rd: (word >> 7) & 0x1f,
            opcode: word & 0x7f,
        }
    }

    /// The task-scheduling operation this word encodes, if it targets our accelerator.
    pub fn task_sched_op(&self) -> Option<TaskSchedOp> {
        if self.opcode != CUSTOM0_OPCODE {
            return None;
        }
        TaskSchedOp::from_funct7(self.funct7)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn funct7_values_are_distinct_and_roundtrip() {
        let mut seen = std::collections::HashSet::new();
        for op in TaskSchedOp::ALL {
            assert!(seen.insert(op.funct7()), "duplicate funct7 for {op:?}");
            assert_eq!(TaskSchedOp::from_funct7(op.funct7()), Some(op));
            assert!(!op.mnemonic().is_empty());
            assert!(!op.description().is_empty());
        }
        assert_eq!(TaskSchedOp::from_funct7(0x55), None);
    }

    #[test]
    fn only_retire_task_is_blocking_and_has_no_rd() {
        for op in TaskSchedOp::ALL {
            if op == TaskSchedOp::RetireTask {
                assert!(!op.is_non_blocking());
                assert!(!op.uses_rd());
            } else {
                assert!(op.is_non_blocking());
                assert!(op.uses_rd(), "{op:?} must return a failure flag / value");
            }
        }
    }

    #[test]
    fn submit_three_packets_is_the_only_two_operand_op() {
        for op in TaskSchedOp::ALL {
            assert_eq!(op.uses_rs2(), op == TaskSchedOp::SubmitThreePackets);
        }
    }

    #[test]
    fn encode_decode_roundtrip_all_ops() {
        for op in TaskSchedOp::ALL {
            let instr = RoccInstruction::for_op(op, 5, 10, 11);
            let decoded = RoccInstruction::decode(instr.encode());
            assert_eq!(decoded, instr);
            assert_eq!(decoded.task_sched_op(), Some(op));
        }
    }

    #[test]
    fn field_placement_matches_figure_1() {
        let instr = RoccInstruction::for_op(TaskSchedOp::SubmitThreePackets, 3, 7, 9);
        let w = instr.encode();
        assert_eq!(w & 0x7f, CUSTOM0_OPCODE, "opcode in bits 6:0");
        assert_eq!((w >> 7) & 0x1f, 3, "rd in bits 11:7");
        assert_eq!((w >> 15) & 0x1f, 7, "rs1 in bits 19:15");
        assert_eq!((w >> 20) & 0x1f, 9, "rs2 in bits 24:20");
        assert_eq!((w >> 25) & 0x7f, TaskSchedOp::SubmitThreePackets.funct7(), "funct7 in bits 31:25");
        assert_eq!((w >> 12) & 0b111, 0b111, "xd, xs1, xs2 all set for SubmitThreePackets");
    }

    #[test]
    fn foreign_opcode_is_not_ours() {
        let mut instr = RoccInstruction::for_op(TaskSchedOp::RetireTask, 0, 4, 0);
        instr.opcode = 0b010_1011; // custom1
        assert_eq!(instr.task_sched_op(), None);
    }

    #[test]
    #[should_panic(expected = "5 bits")]
    fn oversized_register_index_panics() {
        RoccInstruction::for_op(TaskSchedOp::SubmitPacket, 32, 0, 0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Any 32-bit word decodes and re-encodes to itself once the reserved bits are masked,
        /// i.e. the codec is a bijection on the fields it models.
        #[test]
        fn decode_encode_is_stable(word in any::<u32>()) {
            let decoded = RoccInstruction::decode(word);
            let reencoded = decoded.encode();
            prop_assert_eq!(RoccInstruction::decode(reencoded), decoded);
        }

        /// Encoding never loses register indices or funct7 values.
        #[test]
        fn fields_survive(rd in 0u32..32, rs1 in 0u32..32, rs2 in 0u32..32, op_idx in 0usize..7) {
            let op = TaskSchedOp::ALL[op_idx];
            let instr = RoccInstruction::for_op(op, rd, rs1, rs2);
            let d = RoccInstruction::decode(instr.encode());
            prop_assert_eq!(d.rd, rd);
            prop_assert_eq!(d.rs1, rs1);
            prop_assert_eq!(d.rs2, rs2);
            prop_assert_eq!(d.task_sched_op(), Some(op));
        }
    }
}
